//! # acs — Adaptive Configuration Selection for Power-Constrained
//! Heterogeneous Systems
//!
//! A from-scratch Rust reproduction of Bailey et al., ICPP 2014. Given a
//! node-level power cap on a heterogeneous (CPU + integrated GPU)
//! processor, the library selects the hardware configuration — device,
//! CPU thread count, CPU P-state, GPU P-state — that maximizes a kernel's
//! performance while respecting the cap, after observing the kernel for
//! only **two** iterations (one per device).
//!
//! The workspace is organized as the paper's system plus every substrate
//! it needs:
//!
//! * [`sim`] — a deterministic analytic simulator of the AMD Trinity APU
//!   (P-states, timing, two power planes, PMU counters, 1 kHz power
//!   sensor),
//! * [`kernels`] — a 36-kernel synthetic proxy-application suite (LULESH,
//!   CoMD, SMC, LU) at multiple input sizes (65 combinations),
//! * [`profiling`] — the integrated profiling library with a shared run
//!   history,
//! * [`mlstat`] — regression, Kendall rank correlation, PAM clustering,
//!   and CART trees, implemented from scratch,
//! * [`core`] — the paper's contribution: Pareto frontiers, offline
//!   cluster-and-regress training, online classify-and-predict selection,
//!   simulated RAPL frequency limiting, and the full Table III / Figures
//!   4–9 evaluation protocol,
//! * [`verify`] — the correctness tooling: exhaustive-oracle differential
//!   testing, metamorphic invariants, and golden-trace regression gates,
//! * [`serve`] — the multi-tenant online selection server: a length-
//!   prefixed JSON protocol over TCP, memoized selection, and a cluster
//!   power-budget arbiter partitioning a global cap across sessions.
//!
//! ## Quickstart
//!
//! ```
//! use acs::prelude::*;
//!
//! // A machine and a small training suite.
//! let machine = Machine::new(42);
//! let apps = acs::kernels::app_instances();
//! let training: Vec<KernelProfile> = apps[0]
//!     .kernels
//!     .iter()
//!     .map(|k| KernelProfile::collect(&machine, k))
//!     .collect();
//!
//! // Offline: cluster + regress + train the classifier.
//! let model = acs::core::train(&training, TrainingParams::default()).unwrap();
//!
//! // Online: two sample iterations of a new kernel, then selection.
//! let new_kernel = &apps[1].kernels[0];
//! let samples = SamplePair::new(
//!     machine.run(new_kernel, &sample_config(Device::Cpu)),
//!     machine.run(new_kernel, &sample_config(Device::Gpu)),
//! );
//! let predicted = Predictor::new(&model).predict(&samples);
//! let config = predicted.select(25.0); // 25 W cap
//! println!("run {} at {config}", new_kernel.id());
//! ```

pub use acs_core as core;
pub use acs_kernels as kernels;
pub use acs_mlstat as mlstat;
pub use acs_profiling as profiling;
pub use acs_serve as serve;
pub use acs_sim as sim;
pub use acs_verify as verify;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use acs_core::{
        sample_config, train, Frontier, KernelProfile, Method, PowerPerfPoint, PredictedProfile,
        Predictor, SamplePair, TrainedModel, TrainingParams,
    };
    pub use acs_kernels::{AppInstance, InputSize};
    pub use acs_profiling::{History, Profiler};
    pub use acs_sim::{
        Configuration, CpuPState, Device, GpuPState, KernelCharacteristics, KernelRun, Machine,
    };
}
