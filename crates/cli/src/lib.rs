//! # acs-cli — command-line interface
//!
//! The workflow a system operator runs once per machine, then per
//! application:
//!
//! ```text
//! acs characterize --out profiles.json        # offline sweep (hours on hardware)
//! acs train --profiles profiles.json --out model.json
//! acs predict --model model.json --kernel LULESH/Small/CalcFBHourglassForce --cap 25
//! acs evaluate                                # the paper's Table III
//! ```
//!
//! All subcommands are plain library functions over a `Write` sink
//! ([`commands::run`]), so the whole surface is unit-tested without
//! spawning processes.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::{run, CliError, USAGE};
