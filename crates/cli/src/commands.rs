//! The CLI subcommands, as library functions writing to any `Write` sink
//! so they are directly testable.

use crate::args::{ArgError, Args};
use acs_core::eval::{characterize_apps, evaluate};
use acs_core::{
    sample_config, train, CappedRuntime, KernelProfile, Predictor, SamplePair, TrainedModel,
    TrainingParams,
};
use acs_sim::{Device, Machine};
use std::io::Write;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments.
    Args(ArgError),
    /// Filesystem or serialization failure.
    Io(String),
    /// Domain failure (training, unknown kernel, ...).
    Domain(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Io(m) | CliError::Domain(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

fn io_err<E: std::fmt::Display>(e: E) -> CliError {
    CliError::Io(e.to_string())
}

/// Usage text.
pub const USAGE: &str = "\
acs — adaptive configuration selection for power-constrained heterogeneous systems

USAGE: acs <command> [--key value ...]

COMMANDS:
  suite                                   list the benchmark suite's kernels
  characterize --out FILE [--seed N]      sweep every kernel over all 42
                                          configurations; write profiles JSON
  train --profiles FILE --out FILE        run the offline stage on profiles
        [--clusters K] [--prune true]     and save the trained model
  tree --model FILE                       print the model's classification tree
  predict --model FILE --kernel ID        classify + predict a kernel and
          [--seed N] [--cap W]            select a configuration under a cap
  evaluate [--seed N] [--clusters K]      full leave-one-benchmark-out
                                          evaluation (Table III)
  runtime --model FILE --app LABEL        run an application under a cap with
          --cap W [--iters N] [--seed N]  the capped scheduler; print the
                                          scheduling timeline and summary
  chaos --model FILE --app LABEL --cap W  run under injected faults with the
        [--iters N] [--seed N]            self-healing guarded scheduler and
        [--fault-seed N] [--dropout P]    report fault statistics, retries,
        [--freeze P] [--bias P]           and per-kernel degradation ladders
        [--corrupt P] [--pstate-fail P]   (probabilities in [0,1]; add
        [--run-fail P] [--unguarded true] --timeline true for the full trace)
  verify [--quick true] [--bless true]    differential-test every method
         [--golden-dir DIR]               against the exhaustive oracle, check
         [--cache-dir DIR]                metamorphic invariants, and diff (or,
         [--transfer true] [--out FILE]   with --bless, regenerate) the golden
         [--drift true]                   traces; --cache-dir caches oracle
                                          frontiers between runs; --transfer
                                          instead trains on every machine
                                          family and serves every other,
                                          gating the cross-architecture
                                          transfer-regret matrix and writing
                                          it to results/BENCH_transfer.json
                                          (--out overrides; --bless pins the
                                          quantized matrix as a golden);
                                          --drift instead scores static vs
                                          adaptive regret under every seeded
                                          drift process (thermal ramp, step
                                          throttle, aging, co-tenant), gating
                                          strict adaptive wins under drift and
                                          bit-identity at zero drift, writing
                                          results/BENCH_drift.json
  serve [--model FILE] [--host H]         long-running selection server: loads
        [--port P] [--global-cap W]       the model once (or trains in-process
        [--policy equal|demand]           when --model is omitted), splits the
        [--max-sessions N]                global cap across connected sessions
        [--max-batch N] [--seed N]        via the arbiter, prints the bound
        [--family F] [--timeline-cap N]   address (--port 0 = ephemeral), and
        [--journal FILE]                  serves until SIGINT or a Shutdown
        [--journal-sync true]             poison request; --journal makes
        [--coordinator HOST:PORT]         admissions/budgets/cache keys durable
        [--shard-id N] [--renew-ms MS]    so a restart resumes where a crash
        [--lease-floor W]                 stopped (DESIGN.md §12);
        [--brownout-us US]                --journal-sync upgrades appends to
                                          fdatasync; --coordinator turns the
                                          server into a fleet shard that leases
                                          its cap (--global-cap becomes its
                                          demand, --lease-floor its degraded-
                                          mode reserve; DESIGN.md §13);
                                          --brownout-us arms the brownout
                                          controller: when the observed p99
                                          latency exceeds US µs the server
                                          progressively drops optional work
                                          and, at the top level, sheds
                                          deadline-carrying requests it
                                          predicts will miss (DESIGN.md §17)
  coordinator [--host H] [--port P]       fleet power coordinator: owns the
              [--cap W] [--floor W]       global budget and leases time-bounded
              [--policy equal|demand]     slices to shards; silent shards decay
              [--ttl-ticks N]             to the floor encumbrance and are
              [--tick-ms MS]              re-adopted on return; --journal makes
              [--journal FILE]            every grant/renew/revoke durable so a
              [--journal-sync true]       SIGKILLed coordinator replays to the
              [--evict-after-ticks N]     exact lease table (DESIGN.md §13);
                                          --evict-after-ticks N evicts a lease
                                          N ticks after it expires, reclaiming
                                          its floor encumbrance for the live
                                          shards (0 = never; DESIGN.md §17)
  chaosproxy --upstream HOST:PORT         seeded fault-injecting TCP proxy in
             [--listen HOST:PORT]         front of the server: tears frames,
             [--chaos-seed N]             corrupts bytes, delays, duplicates,
             [--disconnect P] [--tear P]  disconnects mid-batch, and opens
             [--corrupt P] [--delay P]    bidirectional partition windows,
             [--delay-ms MS] [--dup P]    each with its own probability
             [--partition P]              (defaults are mild; 0 disables a
             [--partition-ms MS]          fault); --dribble slow-lorises a
             [--dribble P]                frame one byte per millisecond
  loadgen --addr HOST:PORT                seeded closed-loop load generator:
          [--requests N] [--seed N]       drives the selection server, prints
          [--sessions N] [--run-every N]  throughput/latency and the server's
          [--report-every N] [--log FILE] STATS snapshot, optionally records
          [--feedback true]               the response log (--log) and a JSON
          [--result NAME]                 report under results/ (--result);
          [--shutdown true]               --feedback attaches seeded
          [--open-loop true --rate R]     measurements to Reports, feeding
          [--deadline-ms MS]              the server's adaptation loop;
          [--priority N]                  --open-loop sends at R req/s with
                                          seeded exponential inter-arrivals
                                          (never waiting for responses);
                                          --deadline-ms/--priority attach a
                                          service deadline and priority class
                                          to Select/Run requests, opting into
                                          deadline-aware shedding
  chaosfleet [--seed N] [--shards N]      seeded fleet chaos orchestrator:
             [--phases N] [--sessions N]  coordinator + N shards behind chaos
             [--calls N] [--cap W]        proxies, driven by fleet-client
             [--evict-after-ticks N]      sessions while shards are killed,
             [--quick true]               restarted, and partitioned on a
                                          deterministic schedule; every call
                                          must complete (sessions fail over
                                          off dead shards and replay their
                                          idempotency keys), the fleet budget
                                          must stay conserved throughout, and
                                          the stdout is byte-identical for a
                                          given seed (DESIGN.md §17)
";

/// Dispatch a parsed command line.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    match args.command.as_str() {
        "suite" => cmd_suite(out),
        "characterize" => cmd_characterize(args, out),
        "train" => cmd_train(args, out),
        "tree" => cmd_tree(args, out),
        "predict" => cmd_predict(args, out),
        "evaluate" => cmd_evaluate(args, out),
        "runtime" => cmd_runtime(args, out),
        "chaos" => cmd_chaos(args, out),
        "verify" => cmd_verify(args, out),
        "serve" => cmd_serve(args, out),
        "coordinator" => cmd_coordinator(args, out),
        "chaosproxy" => cmd_chaosproxy(args, out),
        "loadgen" => cmd_loadgen(args, out),
        "chaosfleet" => cmd_chaosfleet(args, out),
        "help" => {
            write!(out, "{USAGE}").map_err(io_err)?;
            Ok(())
        }
        other => Err(CliError::Domain(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

fn cmd_suite(out: &mut dyn Write) -> Result<(), CliError> {
    for app in acs_kernels::app_instances() {
        writeln!(out, "{} ({} kernels)", app.label(), app.kernels.len()).map_err(io_err)?;
        for k in &app.kernels {
            writeln!(out, "  {}  (weight {:.3})", k.id(), k.weight).map_err(io_err)?;
        }
    }
    Ok(())
}

fn cmd_characterize(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let seed: u64 = args.get_or("seed", 2014)?;
    let path = args.require("out")?;
    let machine = Machine::new(seed);
    let profiles: Vec<KernelProfile> = acs_kernels::all_kernel_instances()
        .iter()
        .map(|k| KernelProfile::collect(&machine, k))
        .collect();
    let json = serde_json::to_string(&profiles).map_err(io_err)?;
    std::fs::write(path, json).map_err(io_err)?;
    writeln!(
        out,
        "characterized {} kernel/input combinations over {} configurations each → {path}",
        profiles.len(),
        acs_sim::Configuration::space_size()
    )
    .map_err(io_err)?;
    Ok(())
}

fn load_profiles(path: &str) -> Result<Vec<KernelProfile>, CliError> {
    let json = std::fs::read_to_string(path).map_err(io_err)?;
    serde_json::from_str(&json).map_err(io_err)
}

fn cmd_train(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let profiles = load_profiles(args.require("profiles")?)?;
    let out_path = args.require("out")?;
    let params = TrainingParams {
        n_clusters: args.get_or("clusters", 5)?,
        prune_tree: args.get_or("prune", false)?,
        stabilize_variance: args.get_or("stabilize", false)?,
        ..Default::default()
    };
    let model = train(&profiles, params).map_err(|e| CliError::Domain(e.to_string()))?;
    model.save(out_path).map_err(io_err)?;
    writeln!(
        out,
        "trained {} clusters over {} kernels (silhouette {:.3}, tree depth {}) → {out_path}",
        model.clusters.len(),
        model.kernel_ids.len(),
        model.silhouette,
        model.tree.depth()
    )
    .map_err(io_err)?;
    Ok(())
}

fn cmd_tree(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let model = TrainedModel::load(args.require("model")?).map_err(io_err)?;
    write!(out, "{}", model.render_tree()).map_err(io_err)?;
    Ok(())
}

fn cmd_predict(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let model = TrainedModel::load(args.require("model")?).map_err(io_err)?;
    let kernel_id = args.require("kernel")?;
    let seed: u64 = args.get_or("seed", 2014)?;
    let cap: f64 = args.get_or("cap", f64::INFINITY)?;

    let kernel = acs_kernels::all_kernel_instances()
        .into_iter()
        .find(|k| k.id() == kernel_id)
        .ok_or_else(|| {
            CliError::Domain(format!("unknown kernel '{kernel_id}' (try `acs suite` for the list)"))
        })?;

    let machine = Machine::new(seed);
    let samples = SamplePair::new(
        machine.run_iter(&kernel, &sample_config(Device::Cpu), 0),
        machine.run_iter(&kernel, &sample_config(Device::Gpu), 1),
    );
    let predictor = Predictor::new(&model);
    let predicted = predictor.predict(&samples);

    writeln!(out, "kernel:   {kernel_id}").map_err(io_err)?;
    writeln!(out, "cluster:  {}", predicted.cluster).map_err(io_err)?;
    writeln!(out, "frontier: {} configurations", predicted.frontier.len()).map_err(io_err)?;
    let config = predicted.select(cap);
    let point = predicted.point_for(&config);
    if cap.is_finite() {
        writeln!(out, "cap:      {cap:.1} W").map_err(io_err)?;
    }
    writeln!(
        out,
        "selected: {config}  (predicted {:.1} W, {:.3} ms/iter)",
        point.power_w,
        1e3 / point.perf
    )
    .map_err(io_err)?;
    Ok(())
}

fn cmd_evaluate(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let seed: u64 = args.get_or("seed", 2014)?;
    let params = TrainingParams { n_clusters: args.get_or("clusters", 5)?, ..Default::default() };
    let machine = Machine::new(seed);
    let apps = characterize_apps(&machine, &acs_kernels::app_instances());
    let eval = evaluate(&apps, params).map_err(|e| CliError::Domain(e.to_string()))?;

    writeln!(
        out,
        "{:<9} | {:>7} | {:>11} | {:>12} | {:>11} | {:>10}",
        "Method", "%Under", "Under %Perf", "Under %Power", "Over %Power", "Over %Perf"
    )
    .map_err(io_err)?;
    for s in eval.table3() {
        let p = |v: Option<f64>| v.map_or("—".to_string(), |x| format!("{x:.0}"));
        writeln!(
            out,
            "{:<9} | {:>7.0} | {:>11} | {:>12} | {:>11} | {:>10}",
            s.method.name(),
            s.pct_under,
            p(s.under_perf_pct),
            p(s.under_power_pct),
            p(s.over_power_pct),
            p(s.over_perf_pct),
        )
        .map_err(io_err)?;
    }
    Ok(())
}

fn cmd_runtime(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let model = TrainedModel::load(args.require("model")?).map_err(io_err)?;
    let label = args.require("app")?;
    let cap: f64 = args.require_parsed("cap")?;
    if cap.is_nan() || cap <= 0.0 {
        return Err(CliError::Domain(format!("--cap must be a positive wattage, got {cap}")));
    }
    let iters: u64 = args.get_or("iters", 3)?;
    let seed: u64 = args.get_or("seed", 2014)?;

    let app =
        acs_kernels::app_instances().into_iter().find(|a| a.label() == label).ok_or_else(|| {
            CliError::Domain(format!("unknown application '{label}' (try `acs suite`)"))
        })?;

    let mut rt = CappedRuntime::new(Machine::new(seed), model, cap);
    let report = rt.run_app(&app, iters).map_err(|e| CliError::Domain(e.to_string()))?;

    writeln!(out, "application:   {}", report.app).map_err(io_err)?;
    writeln!(out, "cap:           {:.1} W", report.cap_w).map_err(io_err)?;
    writeln!(out, "total time:    {:.2} ms", report.total_time_s * 1e3).map_err(io_err)?;
    writeln!(out, "avg power:     {:.1} W", report.avg_power_w).map_err(io_err)?;
    writeln!(out, "cap compliance: {:.0}%", report.cap_compliance * 100.0).map_err(io_err)?;
    writeln!(
        out,
        "
final configurations:"
    )
    .map_err(io_err)?;
    for (id, cfg) in &report.final_configs {
        writeln!(out, "  {id} → {cfg}").map_err(io_err)?;
    }
    if args.get_or("timeline", false)? {
        writeln!(
            out,
            "
scheduling timeline:"
        )
        .map_err(io_err)?;
        write!(out, "{}", rt.timeline().render()).map_err(io_err)?;
    }
    Ok(())
}

fn cmd_chaos(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use acs_core::GuardPolicy;
    use acs_sim::{FaultPlan, FaultyMachine};

    let model = TrainedModel::load(args.require("model")?).map_err(io_err)?;
    let label = args.require("app")?;
    let cap: f64 = args.require_parsed("cap")?;
    if cap.is_nan() || cap <= 0.0 {
        return Err(CliError::Domain(format!("--cap must be a positive wattage, got {cap}")));
    }
    let iters: u64 = args.get_or("iters", 10)?;
    let seed: u64 = args.get_or("seed", 2014)?;

    let plan = FaultPlan {
        seed: args.get_or("fault-seed", 1)?,
        sensor_dropout_p: args.get_or("dropout", 0.0)?,
        sensor_freeze_p: args.get_or("freeze", 0.0)?,
        sensor_bias_p: args.get_or("bias", 0.0)?,
        counter_corrupt_p: args.get_or("corrupt", 0.0)?,
        pstate_fail_p: args.get_or("pstate-fail", 0.0)?,
        run_fail_p: args.get_or("run-fail", 0.0)?,
        ..FaultPlan::default()
    };
    for (name, p) in [
        ("dropout", plan.sensor_dropout_p),
        ("freeze", plan.sensor_freeze_p),
        ("bias", plan.sensor_bias_p),
        ("corrupt", plan.counter_corrupt_p),
        ("pstate-fail", plan.pstate_fail_p),
        ("run-fail", plan.run_fail_p),
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(CliError::Domain(format!(
                "--{name} must be a probability in [0,1], got {p}"
            )));
        }
    }

    let app =
        acs_kernels::app_instances().into_iter().find(|a| a.label() == label).ok_or_else(|| {
            CliError::Domain(format!("unknown application '{label}' (try `acs suite`)"))
        })?;

    let executor = FaultyMachine::new(Machine::new(seed), plan);
    let mut rt = if args.get_or("unguarded", false)? {
        CappedRuntime::with_executor(executor, model, cap)
    } else {
        CappedRuntime::guarded(executor, model, cap, GuardPolicy::default())
    };
    let guarded = rt.guard_policy().is_some();
    let report = rt.run_app(&app, iters).map_err(|e| CliError::Domain(e.to_string()))?;
    let stats = rt.executor().stats();

    writeln!(out, "application:    {}", report.app).map_err(io_err)?;
    writeln!(out, "cap:            {:.1} W", report.cap_w).map_err(io_err)?;
    writeln!(out, "scheduler:      {}", if guarded { "guarded" } else { "unguarded" })
        .map_err(io_err)?;
    writeln!(out, "total time:     {:.2} ms", report.total_time_s * 1e3).map_err(io_err)?;
    writeln!(out, "avg power:      {:.1} W", report.avg_power_w).map_err(io_err)?;
    writeln!(out, "cap compliance: {:.0}%", report.cap_compliance * 100.0).map_err(io_err)?;
    writeln!(out, "failed runs:    {}", report.failed_runs).map_err(io_err)?;
    writeln!(
        out,
        "
injected faults ({} invocations):",
        stats.invocations
    )
    .map_err(io_err)?;
    writeln!(out, "  sensor dropouts:     {}", stats.sensor_dropouts).map_err(io_err)?;
    writeln!(out, "  frozen readings:     {}", stats.sensor_freezes).map_err(io_err)?;
    writeln!(out, "  biased readings:     {}", stats.sensor_biases).map_err(io_err)?;
    writeln!(out, "  counter corruptions: {}", stats.counter_corruptions).map_err(io_err)?;
    writeln!(out, "  p-state clamps:      {}", stats.pstate_clamps).map_err(io_err)?;
    writeln!(out, "  run failures:        {}", stats.run_failures).map_err(io_err)?;

    if guarded {
        writeln!(
            out,
            "
kernel health:"
        )
        .map_err(io_err)?;
        for k in &app.kernels {
            let id = k.id();
            if let Some(h) = rt.health(&id) {
                writeln!(
                    out,
                    "  {id}: tier {} (down {}, up {}, retries {})",
                    h.tier.label(),
                    h.degradations,
                    h.recoveries,
                    h.retries
                )
                .map_err(io_err)?;
            }
        }
    }
    if args.get_or("timeline", false)? {
        writeln!(
            out,
            "
scheduling timeline:"
        )
        .map_err(io_err)?;
        write!(out, "{}", rt.timeline().render()).map_err(io_err)?;
    }
    Ok(())
}

/// Parse `--family` (default Trinity), with the valid names in the error.
fn family_arg(args: &Args) -> Result<acs_sim::FamilyId, CliError> {
    match args.get("family") {
        Some(s) => acs_sim::FamilyId::parse(s).ok_or_else(|| {
            CliError::Domain(format!(
                "unknown machine family '{s}' (expected trinity|bigcore|lowpower|accel)"
            ))
        }),
        None => Ok(acs_sim::FamilyId::Trinity),
    }
}

/// `acs verify --transfer`: the cross-architecture differential. Trains a
/// model on every machine family, serves every other family with it, and
/// gates the resulting transfer-regret matrix; the full matrix is written
/// as a benchmark artifact and its quantized summary can be blessed as a
/// golden snapshot.
fn cmd_verify_transfer(
    args: &Args,
    out: &mut dyn Write,
    golden_dir: &std::path::Path,
) -> Result<(), CliError> {
    use acs_verify::{run_transfer, GridParams, ScenarioGrid, TransferThresholds};

    let params = if args.get_or("quick", false)? {
        GridParams::transfer_quick()
    } else {
        GridParams::transfer()
    };
    let grid = ScenarioGrid::generate(params);
    writeln!(
        out,
        "transfer grid: {} scenarios across {} machine families",
        grid.len(),
        grid.machines.len()
    )
    .map_err(io_err)?;

    let matrix = run_transfer(&grid, TrainingParams::default())
        .map_err(|e| CliError::Domain(e.to_string()))?;
    write!(out, "{}", matrix.render()).map_err(io_err)?;

    // The benchmark artifact: the full matrix, pair by pair.
    let artifact = match args.get("out") {
        Some(path) => std::path::PathBuf::from(path),
        None => std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../results/BENCH_transfer.json"),
    };
    if let Some(parent) = artifact.parent() {
        std::fs::create_dir_all(parent).map_err(io_err)?;
    }
    let json = serde_json::to_string_pretty(&matrix).map_err(io_err)?;
    std::fs::write(&artifact, json).map_err(io_err)?;
    writeln!(out, "wrote {}", artifact.display()).map_err(io_err)?;

    // The golden snapshot: the quantized summary, byte-exact once blessed.
    let snapshot_path = golden_dir.join("transfer-matrix.json");
    let snapshot = serde_json::to_string_pretty(&matrix.golden_summary()).map_err(io_err)?;
    if args.get_or("bless", false)? {
        std::fs::create_dir_all(golden_dir).map_err(io_err)?;
        std::fs::write(&snapshot_path, &snapshot).map_err(io_err)?;
        writeln!(out, "blessed {}", snapshot_path.display()).map_err(io_err)?;
        return Ok(());
    }

    let mut failures = matrix.check(&TransferThresholds::default());
    match std::fs::read_to_string(&snapshot_path) {
        Ok(blessed) if blessed == snapshot => {
            writeln!(out, "transfer golden: ok").map_err(io_err)?;
        }
        Ok(_) => failures.push(format!(
            "transfer matrix deviates from blessed snapshot {} \
             (re-bless with `acs verify --transfer true --bless true` if intended)",
            snapshot_path.display()
        )),
        // No snapshot blessed (or a different grid resolution was blessed):
        // the thresholds are still the primary gate, so this is a note.
        Err(_) => {
            writeln!(out, "transfer golden: no blessed snapshot (thresholds only)")
                .map_err(io_err)?;
        }
    }

    if failures.is_empty() {
        writeln!(out, "verify --transfer: PASS").map_err(io_err)?;
        Ok(())
    } else {
        Err(CliError::Domain(format!("verify --transfer: FAIL\n  {}", failures.join("\n  "))))
    }
}

/// `acs verify --drift`: the online-adaptation differential. Runs every
/// seeded drift process over the evaluation kernels, scoring static-model
/// regret against adaptive-model regret per cell, and gates the result:
/// adaptation must strictly win under drift and be bit-identical to the
/// static path at zero drift.
fn cmd_verify_drift(
    args: &Args,
    out: &mut dyn Write,
    golden_dir: &std::path::Path,
) -> Result<(), CliError> {
    use acs_verify::{run_drift, AdaptThresholds, DriftGridParams};

    let params = if args.get_or("quick", false)? {
        DriftGridParams::quick()
    } else {
        DriftGridParams::full()
    };
    let report = run_drift(&params).map_err(|e| CliError::Domain(e.to_string()))?;
    write!(out, "{}", report.render()).map_err(io_err)?;

    // The benchmark artifact: every (process, kernel, cap) cell.
    let artifact = match args.get("out") {
        Some(path) => std::path::PathBuf::from(path),
        None => std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../results/BENCH_drift.json"),
    };
    if let Some(parent) = artifact.parent() {
        std::fs::create_dir_all(parent).map_err(io_err)?;
    }
    let json = serde_json::to_string_pretty(&report).map_err(io_err)?;
    std::fs::write(&artifact, json).map_err(io_err)?;
    writeln!(out, "wrote {}", artifact.display()).map_err(io_err)?;

    // The golden snapshot: the quantized summary, byte-exact once blessed.
    let snapshot_path = golden_dir.join("drift-grid.json");
    let snapshot = serde_json::to_string_pretty(&report.golden_summary()).map_err(io_err)?;
    if args.get_or("bless", false)? {
        std::fs::create_dir_all(golden_dir).map_err(io_err)?;
        std::fs::write(&snapshot_path, &snapshot).map_err(io_err)?;
        writeln!(out, "blessed {}", snapshot_path.display()).map_err(io_err)?;
        return Ok(());
    }

    let mut failures = report.check(&AdaptThresholds::default());
    match std::fs::read_to_string(&snapshot_path) {
        Ok(blessed) if blessed == snapshot => {
            writeln!(out, "drift golden: ok").map_err(io_err)?;
        }
        Ok(_) => failures.push(format!(
            "drift grid deviates from blessed snapshot {} \
             (re-bless with `acs verify --drift true --bless true` if intended)",
            snapshot_path.display()
        )),
        // No snapshot blessed (or a different grid resolution was blessed):
        // the thresholds are still the primary gate, so this is a note.
        Err(_) => {
            writeln!(out, "drift golden: no blessed snapshot (thresholds only)").map_err(io_err)?;
        }
    }

    if failures.is_empty() {
        writeln!(out, "verify --drift: PASS").map_err(io_err)?;
        Ok(())
    } else {
        Err(CliError::Domain(format!("verify --drift: FAIL\n  {}", failures.join("\n  "))))
    }
}

fn cmd_verify(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use acs_verify::{golden, metamorphic, run_differential, GridParams, ScenarioGrid, Thresholds};

    let golden_dir = args
        .get("golden-dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(golden::default_golden_dir);

    if args.get_or("transfer", false)? {
        return cmd_verify_transfer(args, out, &golden_dir);
    }

    if args.get_or("drift", false)? {
        return cmd_verify_drift(args, out, &golden_dir);
    }

    // Blessing regenerates the reference traces and stops — no gates run
    // against files that were just rewritten.
    if args.get_or("bless", false)? {
        let written = acs_verify::bless(&golden_dir).map_err(io_err)?;
        for p in &written {
            writeln!(out, "blessed {}", p.display()).map_err(io_err)?;
        }
        writeln!(out, "{} golden trace(s) regenerated", written.len()).map_err(io_err)?;
        return Ok(());
    }

    let params =
        if args.get_or("quick", false)? { GridParams::quick() } else { GridParams::default() };
    let grid = ScenarioGrid::generate(params);
    writeln!(out, "scenario grid: {} (machine, kernel, cap) scenarios", grid.len())
        .map_err(io_err)?;

    // Optionally persist oracle frontiers so repeat runs skip the sweeps;
    // each machine's kernel sweeps fan out across the rayon pool.
    if let Some(dir) = args.get("cache-dir") {
        let engine = acs_verify::OracleEngine::with_cache(dir);
        let mut cached = 0usize;
        for m in &grid.machines {
            let kernels: Vec<acs_sim::KernelCharacteristics> =
                m.evaluated.iter().map(|(p, _)| p.kernel.clone()).collect();
            cached += engine.frontiers(&m.machine, &kernels).len();
        }
        writeln!(out, "oracle cache: {cached} frontiers under {dir}").map_err(io_err)?;
    }

    let report = run_differential(&grid, TrainingParams::default())
        .map_err(|e| CliError::Domain(e.to_string()))?;
    write!(out, "{}", report.render()).map_err(io_err)?;
    let mut failures = report.check(&Thresholds::default());

    for m in &grid.machines {
        let evaluated: Vec<acs_core::KernelProfile> =
            m.evaluated.iter().map(|(p, _)| p.clone()).collect();
        let model = train(&m.training, TrainingParams::default())
            .map_err(|e| CliError::Domain(e.to_string()))?;
        let app = acs_kernels::app_instances()
            .into_iter()
            .find(|a| a.label() == "LULESH Small")
            .expect("LULESH Small exists");
        for v in metamorphic::check_all(m.machine.seed, &m.training, &evaluated, &model, &app) {
            failures.push(format!("invariant (machine {}): {v}", m.machine.seed));
        }
    }
    writeln!(out, "metamorphic invariants: checked on {} machine(s)", grid.machines.len())
        .map_err(io_err)?;

    let diffs = acs_verify::compare(&golden_dir);
    for d in &diffs {
        writeln!(out, "golden {}", acs_verify::render_diff(d)).map_err(io_err)?;
        if !d.passed() {
            failures.push(format!("golden trace {}: see target/golden-diffs/", d.name));
        }
    }
    if diffs.iter().any(|d| !d.passed()) {
        let artifacts =
            acs_verify::write_failure_artifacts(&golden::default_artifact_dir(), &diffs)
                .map_err(io_err)?;
        for p in artifacts {
            writeln!(out, "wrote failure artifact {}", p.display()).map_err(io_err)?;
        }
    }

    if failures.is_empty() {
        writeln!(out, "verify: PASS").map_err(io_err)?;
        Ok(())
    } else {
        Err(CliError::Domain(format!("verify: FAIL\n  {}", failures.join("\n  "))))
    }
}

/// The model for `serve`: loaded from `--model`, or trained in-process on
/// the full suite at `--seed` when the flag is omitted (a few seconds;
/// convenient for smoke tests and CI, where no model file exists yet).
/// In-process training characterizes on the *served* family, so a
/// heterogeneous shard's model is native to the hardware it schedules.
fn serve_model(args: &Args, family: acs_sim::FamilyId) -> Result<TrainedModel, CliError> {
    if let Some(path) = args.get("model") {
        return TrainedModel::load(path).map_err(io_err);
    }
    let seed: u64 = args.get_or("seed", 2014)?;
    let machine = Machine::from_family(family, seed);
    let profiles: Vec<KernelProfile> = acs_kernels::all_kernel_instances()
        .iter()
        .map(|k| KernelProfile::collect(&machine, k))
        .collect();
    train(&profiles, TrainingParams::default()).map_err(|e| CliError::Domain(e.to_string()))
}

fn cmd_serve(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use acs_serve::{ServeConfig, Server};

    let global_cap_w: f64 = args.get_or("global-cap", 120.0)?;
    if global_cap_w.is_nan() || global_cap_w <= 0.0 {
        return Err(CliError::Domain(format!(
            "--global-cap must be a positive wattage, got {global_cap_w}"
        )));
    }
    let family = family_arg(args)?;
    let config = ServeConfig {
        host: args.get("host").unwrap_or("127.0.0.1").to_string(),
        port: args.get_or("port", 4014)?,
        seed: args.get_or("seed", 2014)?,
        family,
        global_cap_w,
        policy: args.get("policy").unwrap_or("equal").parse().map_err(CliError::Domain)?,
        max_sessions: args.get_or("max-sessions", 8)?,
        max_batch: args.get_or("max-batch", 256)?,
        timeline_capacity: args.get_or("timeline-cap", 4096)?,
        journal: args.get("journal").map(std::path::PathBuf::from),
        journal_sync: args.get_or("journal-sync", false)?,
        coordinator: args.get("coordinator").map(str::to_string),
        shard_id: match args.get("shard-id") {
            Some(_) => Some(args.require_parsed("shard-id")?),
            None => None,
        },
        lease_floor_w: args.get_or("lease-floor", 5.0)?,
        renew_ms: args.get_or("renew-ms", 200)?,
        brownout_us: args.get_or("brownout-us", 0)?,
    };
    let model = serve_model(args, family)?;
    let server = Server::bind(config, model).map_err(|e| CliError::Domain(e.to_string()))?;
    // The bound address line is a contract: `--port 0` callers (CI, the
    // e2e tests) parse it to find the ephemeral port. So is the
    // `recovered:` line, which `bench_recovery` parses.
    if let Some(recovery) = server.handle().recovery() {
        writeln!(
            out,
            "recovered: {} entries replayed, {} kernels warmed, {} orphaned session(s)",
            recovery.replayed,
            recovery.warm_kernels.len(),
            recovery.orphaned_sessions.len()
        )
        .map_err(io_err)?;
    }
    writeln!(out, "listening on {}", server.local_addr()).map_err(io_err)?;
    out.flush().map_err(io_err)?;
    server.run().map_err(|e| CliError::Domain(e.to_string()))
}

fn cmd_coordinator(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use acs_serve::{Coordinator, CoordinatorConfig};

    let global_cap_w: f64 = args.get_or("cap", 120.0)?;
    if global_cap_w.is_nan() || global_cap_w <= 0.0 {
        return Err(CliError::Domain(format!(
            "--cap must be a positive wattage, got {global_cap_w}"
        )));
    }
    let floor_w: f64 = args.get_or("floor", 5.0)?;
    if !(floor_w > 0.0 && floor_w < global_cap_w) {
        return Err(CliError::Domain(format!(
            "--floor must be in (0, cap), got {floor_w} against cap {global_cap_w}"
        )));
    }
    let config = CoordinatorConfig {
        host: args.get("host").unwrap_or("127.0.0.1").to_string(),
        port: args.get_or("port", 4015)?,
        global_cap_w,
        policy: args.get("policy").unwrap_or("demand").parse().map_err(CliError::Domain)?,
        ttl_ticks: args.get_or("ttl-ticks", 20)?,
        tick_ms: args.get_or("tick-ms", 50)?,
        floor_w,
        evict_after_ticks: args.get_or("evict-after-ticks", 0)?,
        journal: args.get("journal").map(std::path::PathBuf::from),
        journal_sync: args.get_or("journal-sync", false)?,
    };
    let coordinator = Coordinator::bind(config).map_err(|e| CliError::Domain(e.to_string()))?;
    // Both lines are a contract: `--port 0` callers parse the address, and
    // `bench_fleet` parses the `recovered:` line after a restart.
    if let Some(recovery) = coordinator.handle().recovery() {
        writeln!(
            out,
            "recovered: {} entries replayed, {} live lease(s), {} encumbered",
            recovery.replayed,
            recovery.live_leases.len(),
            recovery.encumbered_leases.len()
        )
        .map_err(io_err)?;
    }
    writeln!(out, "listening on {}", coordinator.local_addr()).map_err(io_err)?;
    out.flush().map_err(io_err)?;
    coordinator.run().map_err(|e| CliError::Domain(e.to_string()))
}

fn cmd_chaosproxy(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use acs_serve::{ChaosPlan, ChaosProxy};

    let upstream = args.require("upstream")?.to_string();
    let listen = args.get("listen").unwrap_or("127.0.0.1:0").to_string();
    let plan = ChaosPlan {
        seed: args.get_or("chaos-seed", ChaosPlan::default().seed)?,
        disconnect_p: args.get_or("disconnect", ChaosPlan::default().disconnect_p)?,
        tear_p: args.get_or("tear", ChaosPlan::default().tear_p)?,
        corrupt_p: args.get_or("corrupt", ChaosPlan::default().corrupt_p)?,
        delay_p: args.get_or("delay", ChaosPlan::default().delay_p)?,
        delay_ms: args.get_or("delay-ms", ChaosPlan::default().delay_ms)?,
        dup_p: args.get_or("dup", ChaosPlan::default().dup_p)?,
        partition_p: args.get_or("partition", ChaosPlan::default().partition_p)?,
        partition_ms: args.get_or("partition-ms", ChaosPlan::default().partition_ms)?,
        dribble_p: args.get_or("dribble", ChaosPlan::default().dribble_p)?,
    };
    let proxy =
        ChaosProxy::bind(&listen, &upstream, plan).map_err(|e| CliError::Domain(e.to_string()))?;
    let handle = proxy.handle();
    writeln!(out, "listening on {}", proxy.local_addr()).map_err(io_err)?;
    writeln!(out, "proxying to {upstream} under plan {plan:?}").map_err(io_err)?;
    out.flush().map_err(io_err)?;
    proxy.run().map_err(|e| CliError::Domain(e.to_string()))?;
    let stats = handle.stats();
    writeln!(
        out,
        "injected: {} of {} frames faulted ({} torn, {} corrupted, {} delayed, \
         {} duplicated, {} dribbled, {} disconnects) across {} connection(s)",
        stats.faults(),
        stats.frames,
        stats.torn,
        stats.corrupted,
        stats.delayed,
        stats.duplicated,
        stats.dribbled,
        stats.disconnects,
        stats.connections
    )
    .map_err(io_err)?;
    Ok(())
}

fn cmd_loadgen(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use acs_bench::loadgen::{run_loadgen, LoadgenOptions};

    let opts = LoadgenOptions {
        addr: args.require("addr")?.to_string(),
        requests: args.get_or("requests", 1000)?,
        seed: args.get_or("seed", 7)?,
        sessions: args.get_or("sessions", 1)?,
        run_every: args.get_or("run-every", 0)?,
        report_every: args.get_or("report-every", 0)?,
        feedback: args.get_or("feedback", false)?,
        stats_at_end: args.get_or("stats", true)?,
        shutdown_at_end: args.get_or("shutdown", false)?,
        open_loop: args.get_or("open-loop", false)?,
        rate_rps: args.get_or("rate", 0.0)?,
        deadline_ms: args.get_or("deadline-ms", 0)?,
        priority: args.get_or("priority", 0)?,
    };
    if opts.open_loop && opts.rate_rps <= 0.0 {
        return Err(CliError::Domain(format!(
            "--open-loop needs a positive --rate (req/s), got {}",
            opts.rate_rps
        )));
    }
    let (report, log) = run_loadgen(&opts).map_err(CliError::Domain)?;

    if let Some(path) = args.get("log") {
        std::fs::write(path, &log).map_err(io_err)?;
    }
    writeln!(out, "requests:    {}", report.requests).map_err(io_err)?;
    writeln!(out, "sessions:    {}", report.sessions).map_err(io_err)?;
    writeln!(out, "throughput:  {:.0} req/s", report.throughput_rps).map_err(io_err)?;
    writeln!(
        out,
        "latency:     p50 {} µs, p99 {} µs",
        report.p50_latency_us, report.p99_latency_us
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "cold/warm:   {} cold ({:.0} µs mean), {} warm ({:.0} µs mean)",
        report.cold_selects, report.cold_mean_us, report.warm_selects, report.warm_mean_us
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "errors:      {} errored, {} shed, {} dropped",
        report.errors, report.sheds, report.dropped
    )
    .map_err(io_err)?;
    if let Some(stats) = &report.stats {
        writeln!(out, "\nserver STATS:").map_err(io_err)?;
        writeln!(out, "{}", serde_json::to_string_pretty(stats).map_err(io_err)?)
            .map_err(io_err)?;
    }
    if let Some(name) = args.get("result") {
        if name != "none" {
            let path = acs_bench::write_result(name, &report);
            writeln!(out, "wrote {}", path.display()).map_err(io_err)?;
        }
    }
    if report.errors > 0 || report.dropped > 0 {
        return Err(CliError::Domain(format!(
            "loadgen saw {} errored and {} dropped request(s)",
            report.errors, report.dropped
        )));
    }
    Ok(())
}

/// splitmix64: the chaos schedule's only entropy source, so the whole
/// orchestration is a pure function of `--seed`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `acs chaosfleet`: the fleet chaos orchestrator (DESIGN.md §17).
///
/// Spins up a coordinator and N shard servers in-process — each shard
/// reaching the coordinator through its own chaos proxy — then drives
/// fleet-client sessions through a seeded phase schedule that kills,
/// restarts, and partitions shards. Throughout the run:
/// - every logical call must complete: sessions homed on a dead shard
///   fail over to a live one and replay their idempotency keys,
/// - the coordinator-side budget must stay conserved (live committed
///   plus encumbered never above the cap, overshoot exactly zero),
/// - a shard's enforced cap must stay inside [min(floor, last grant),
///   global cap] — bounded degraded decay, never an overshoot.
///
/// Everything printed is a pure function of the seed (schedules, call
/// counts, failover counts), never a measurement, so two runs at the
/// same seed produce byte-identical stdout.
fn cmd_chaosfleet(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use acs_bench::client::{FleetClient, RetryPolicy};
    use acs_serve::{
        ArbiterPolicy, ChaosPlan, ChaosProxy, ChaosProxyHandle, Coordinator, CoordinatorConfig,
        Request, Response, ServeConfig, Server, ServerHandle,
    };
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let seed: u64 = args.get_or("seed", 2014)?;
    let quick = args.get_or("quick", false)?;
    let shards_n: usize = args.get_or("shards", 5)?;
    if shards_n < 2 {
        return Err(CliError::Domain(format!(
            "--shards must be at least 2 so failover has somewhere to go, got {shards_n}"
        )));
    }
    let phases: u64 = args.get_or("phases", if quick { 4 } else { 10 })?;
    let sessions_n: u64 = args.get_or("sessions", if quick { 4 } else { 8 })?;
    let calls_per_phase: u64 = args.get_or("calls", if quick { 3 } else { 6 })?;
    let cap_w: f64 = args.get_or("cap", 90.0)?;
    if cap_w.is_nan() || cap_w <= 0.0 {
        return Err(CliError::Domain(format!("--cap must be a positive wattage, got {cap_w}")));
    }
    let floor_w = 2.0;
    let evict_after_ticks: u64 = args.get_or("evict-after-ticks", 8)?;
    let partition_ms: u64 = if quick { 250 } else { 400 };

    writeln!(
        out,
        "chaosfleet: seed {seed}, {shards_n} shards, {phases} phases, {sessions_n} sessions"
    )
    .map_err(io_err)?;

    // One model shared by every shard, trained on a fixed sample of the
    // suite at a fixed seed: the chaos seed must not change the model.
    let machine = Machine::new(2014);
    let profiles: Vec<KernelProfile> = acs_kernels::all_kernel_instances()
        .iter()
        .take(16)
        .map(|k| KernelProfile::collect(&machine, k))
        .collect();
    let model =
        train(&profiles, TrainingParams::default()).map_err(|e| CliError::Domain(e.to_string()))?;
    let kernel_ids: Vec<String> =
        acs_kernels::all_kernel_instances().iter().take(8).map(|k| k.id()).collect();

    let coordinator = Coordinator::bind(CoordinatorConfig {
        host: "127.0.0.1".into(),
        port: 0,
        global_cap_w: cap_w,
        policy: ArbiterPolicy::DemandProportional,
        ttl_ticks: 20,
        tick_ms: 25,
        floor_w,
        evict_after_ticks,
        journal: None,
        journal_sync: false,
    })
    .map_err(|e| CliError::Domain(e.to_string()))?;
    let coord_addr = coordinator.local_addr().to_string();
    let coord = coordinator.handle();
    let coord_join = std::thread::spawn(move || coordinator.run().expect("coordinator serves"));

    struct Shard {
        addr: String,
        config: ServeConfig,
        proxy: ChaosProxyHandle,
        handle: ServerHandle,
        join: Option<std::thread::JoinHandle<()>>,
    }

    let mut shards: Vec<Shard> = Vec::with_capacity(shards_n);
    for i in 0..shards_n {
        let proxy = ChaosProxy::bind("127.0.0.1:0", &coord_addr, ChaosPlan::quiet(seed ^ i as u64))
            .map_err(|e| CliError::Domain(e.to_string()))?;
        let proxy_addr = proxy.local_addr().to_string();
        let proxy_handle = proxy.handle();
        std::thread::spawn(move || {
            let _ = proxy.run();
        });
        let config = ServeConfig {
            family: acs_sim::FamilyId::Trinity,
            global_cap_w: cap_w,
            policy: ArbiterPolicy::EqualShare,
            max_sessions: 64,
            coordinator: Some(proxy_addr),
            shard_id: Some(i as u64),
            lease_floor_w: floor_w,
            renew_ms: 25,
            ..ServeConfig::default()
        };
        let server = Server::bind(config.clone(), model.clone())
            .map_err(|e| CliError::Domain(e.to_string()))?;
        let addr = server.local_addr().to_string();
        // Pin the port so a restart rebinds the same address the clients
        // already hold in their rings.
        let mut config = config;
        config.port = server.local_addr().port();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("shard serves"));
        shards.push(Shard { addr, config, proxy: proxy_handle, handle, join: Some(join) });
    }

    let up_deadline = Instant::now() + Duration::from_secs(30);
    while !shards.iter().all(|s| s.handle.lease_state() == "leased") {
        if Instant::now() >= up_deadline {
            return Err(CliError::Domain("fleet did not lease within 30 s".into()));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    writeln!(out, "fleet up: {shards_n} shards leased").map_err(io_err)?;

    // Continuous conservation watchdog: samples the coordinator's books
    // every few milliseconds for the whole run.
    let stop = Arc::new(AtomicBool::new(false));
    let violations = Arc::new(AtomicU64::new(0));
    let monitor = {
        let (stop, violations, coord) = (stop.clone(), violations.clone(), coord.clone());
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                let stats = coord.stats();
                if stats.overshoot_w != 0.0
                    || stats.live_committed_w + stats.encumbered_w > cap_w + 1e-9
                {
                    violations.fetch_add(1, Ordering::SeqCst);
                }
                std::thread::sleep(Duration::from_millis(3));
            }
        })
    };

    let policy = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(20),
        request_deadline: Duration::from_secs(10),
        breaker_threshold: 1000,
        breaker_cooldown: Duration::from_millis(1),
    };
    // Rendezvous placement hashes the stable "shard-i" labels, never the
    // dialed addresses: the OS assigns ephemeral ports, and hashing those
    // would make session homes — and every printed re-admission and
    // failover count — vary run to run at the same seed.
    let ring: Vec<(String, String)> =
        shards.iter().enumerate().map(|(i, s)| (format!("shard-{i}"), s.addr.clone())).collect();
    let mut key_rng = seed ^ 0x5E55_1014_C11E_4715;
    let mut clients: Vec<FleetClient> = (0..sessions_n)
        .map(|_| FleetClient::with_ring(&ring, splitmix64(&mut key_rng), policy.clone()))
        .collect();

    // One phase's worth of traffic: every session issues its calls in
    // order; the schedule of kernels and Run-vs-Select is seed-pure.
    let drive = |clients: &mut Vec<FleetClient>, phase: u64| -> Result<u64, CliError> {
        let mut completed = 0u64;
        for (s, client) in clients.iter_mut().enumerate() {
            for c in 0..calls_per_phase {
                let kernel = &kernel_ids
                    [((phase * 31 + s as u64 * 7 + c) % kernel_ids.len() as u64) as usize];
                let response = if c % 3 == 2 {
                    client.run(kernel, 1 + c % 2)
                } else {
                    client.call(&Request::Select {
                        kernel_id: kernel.clone(),
                        deadline_ms: None,
                        priority: 0,
                    })
                };
                match response {
                    Ok(Response::Selected(_)) | Ok(Response::Ran { .. }) => completed += 1,
                    Ok(other) => {
                        return Err(CliError::Domain(format!(
                            "phase {phase} session {s}: unexpected response {other:?}"
                        )))
                    }
                    Err(e) => {
                        return Err(CliError::Domain(format!(
                            "phase {phase} session {s}: call failed: {e}"
                        )))
                    }
                }
            }
        }
        Ok(completed)
    };

    let mut sched = seed ^ 0xC4A0_5F1E_E7B0_0A57;
    let (mut completed, mut kills, mut partitions) = (0u64, 0u64, 0u64);
    let (mut readmitted, mut expected_readmissions) = (0u64, 0u64);
    let mut decay_violations = 0u64;
    for phase in 1..=phases {
        let action = splitmix64(&mut sched) % 3;
        let victim = (splitmix64(&mut sched) as usize) % shards_n;
        match action {
            0 => {
                writeln!(out, "phase {phase}: kill shard-{victim}").map_err(io_err)?;
                let victim_label = format!("shard-{victim}");
                let homed: Vec<usize> = clients
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.pick() == Some(victim_label.as_str()))
                    .map(|(i, _)| i)
                    .collect();
                expected_readmissions += homed.len() as u64;
                shards[victim].handle.simulate_crash();
                if let Some(join) = shards[victim].join.take() {
                    let _ = join.join();
                }
                kills += 1;
                completed += drive(&mut clients, phase)?;
                for i in homed {
                    if clients[i].pick() != Some(victim_label.as_str()) {
                        readmitted += 1;
                    }
                }
                // Restart on the same port; the OS may hold the address
                // briefly, so rebind with a bounded retry.
                let restart_deadline = Instant::now() + Duration::from_secs(10);
                let server = loop {
                    match Server::bind(shards[victim].config.clone(), model.clone()) {
                        Ok(server) => break server,
                        Err(e) if Instant::now() >= restart_deadline => {
                            return Err(CliError::Domain(format!(
                                "shard-{victim} restart failed: {e}"
                            )))
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(20)),
                    }
                };
                shards[victim].handle = server.handle();
                shards[victim].join =
                    Some(std::thread::spawn(move || server.run().expect("shard serves")));
                for client in &mut clients {
                    client.restore(&victim_label);
                }
            }
            1 => {
                writeln!(out, "phase {phase}: partition shard-{victim} ({partition_ms} ms)")
                    .map_err(io_err)?;
                let last_grant = shards[victim].handle.lease_cap_w();
                shards[victim].proxy.partition(partition_ms);
                partitions += 1;
                completed += drive(&mut clients, phase)?;
                // Bounded degraded decay: while (and after) the window,
                // the enforced cap stays inside [min(floor, last grant),
                // global cap]. It may recover upward, never overshoot.
                for _ in 0..10 {
                    let cap = shards[victim].handle.lease_cap_w();
                    if cap < floor_w.min(last_grant) - 1e-9 || cap > cap_w + 1e-9 {
                        decay_violations += 1;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            _ => {
                writeln!(out, "phase {phase}: calm").map_err(io_err)?;
                completed += drive(&mut clients, phase)?;
            }
        }
    }

    stop.store(true, Ordering::SeqCst);
    monitor.join().expect("monitor joins");

    let failovers: u64 = clients.iter().map(|c| c.stats().failovers).sum();
    let replays: u64 = clients.iter().map(|c| c.stats().replays).sum();
    let expected = phases * sessions_n * calls_per_phase;
    writeln!(out, "calls: {completed}/{expected} completed").map_err(io_err)?;
    writeln!(out, "re-admissions: {readmitted} session moves after {kills} kill(s)")
        .map_err(io_err)?;
    writeln!(out, "failovers: {failovers} evictions, {replays} replays").map_err(io_err)?;
    writeln!(out, "partitions: {partitions}").map_err(io_err)?;

    drop(clients);
    for shard in &mut shards {
        shard.handle.shutdown();
        if let Some(join) = shard.join.take() {
            let _ = join.join();
        }
        shard.proxy.shutdown();
    }
    coord.shutdown();
    coord_join.join().expect("coordinator joins");

    let mut failures = Vec::new();
    if completed != expected {
        failures.push(format!("goodput: only {completed}/{expected} calls completed"));
    }
    if readmitted != expected_readmissions {
        failures.push(format!(
            "re-admission: {readmitted} of {expected_readmissions} killed-shard sessions moved"
        ));
    }
    let budget_violations = violations.load(Ordering::SeqCst);
    if budget_violations > 0 {
        failures.push(format!("budget: {budget_violations} conservation violation(s) observed"));
    }
    if decay_violations > 0 {
        failures.push(format!("decay: {decay_violations} out-of-bounds cap sample(s)"));
    }
    if !failures.is_empty() {
        return Err(CliError::Domain(format!("chaosfleet: FAIL\n  {}", failures.join("\n  "))));
    }
    writeln!(out, "budget: conserved under cap {cap_w} W").map_err(io_err)?;
    writeln!(out, "fleet ok").map_err(io_err)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(cmd: &str) -> Result<String, CliError> {
        let args = Args::parse(cmd.split_whitespace().map(String::from))?;
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("acs-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn suite_lists_all_kernels() {
        let out = run_str("suite").unwrap();
        assert!(out.contains("LULESH Small (20 kernels)"));
        assert!(out.contains("LU/Large/lud"));
        assert_eq!(out.matches("weight").count(), 65);
    }

    #[test]
    fn help_prints_usage() {
        let out = run_str("help").unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("characterize"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(matches!(run_str("frobnicate"), Err(CliError::Domain(_))));
    }

    #[test]
    fn characterize_train_predict_roundtrip() {
        let profiles = tmp("profiles.json");
        let model = tmp("model.json");

        let out = run_str(&format!("characterize --out {profiles} --seed 7")).unwrap();
        assert!(out.contains("65 kernel/input combinations"));

        let out = run_str(&format!("train --profiles {profiles} --out {model}")).unwrap();
        assert!(out.contains("trained 5 clusters"));

        let out =
            run_str(&format!("predict --model {model} --kernel LU/Small/lud --cap 20 --seed 7"))
                .unwrap();
        assert!(out.contains("cluster:"));
        assert!(out.contains("selected:"));

        let out = run_str(&format!("tree --model {model}")).unwrap();
        assert!(out.contains("cluster"));
    }

    #[test]
    fn predict_unknown_kernel_fails_cleanly() {
        let profiles = tmp("p2.json");
        let model = tmp("m2.json");
        run_str(&format!("characterize --out {profiles} --seed 3")).unwrap();
        run_str(&format!("train --profiles {profiles} --out {model}")).unwrap();
        let err = run_str(&format!("predict --model {model} --kernel No/Such/Kernel"));
        match err {
            Err(CliError::Domain(msg)) => assert!(msg.contains("unknown kernel")),
            other => panic!("expected domain error, got {other:?}"),
        }
    }

    #[test]
    fn train_rejects_too_many_clusters() {
        let profiles = tmp("p3.json");
        run_str(&format!("characterize --out {profiles} --seed 3")).unwrap();
        let err = run_str(&format!(
            "train --profiles {profiles} --out {} --clusters 100",
            tmp("m3.json")
        ));
        assert!(matches!(err, Err(CliError::Domain(_))));
    }

    #[test]
    fn runtime_reports_and_traces() {
        let profiles = tmp("p4.json");
        let model = tmp("m4.json");
        run_str(&format!("characterize --out {profiles} --seed 7")).unwrap();
        run_str(&format!("train --profiles {profiles} --out {model}")).unwrap();
        let out = run_str(&format!(
            "runtime --model {model} --app CoMD --cap 25 --iters 3 --timeline true --seed 7"
        ))
        .unwrap();
        assert!(out.contains("cap compliance"));
        assert!(out.contains("final configurations"));
        assert!(out.contains("scheduling timeline"));
        assert!(out.contains("CoMD/Default/LJForce"));
        // Unknown app fails cleanly.
        let err = run_str(&format!("runtime --model {model} --app Nope --cap 25"));
        assert!(matches!(err, Err(CliError::Domain(_))));
    }

    #[test]
    fn chaos_reports_faults_and_health() {
        let profiles = tmp("p5.json");
        let model = tmp("m5.json");
        run_str(&format!("characterize --out {profiles} --seed 7")).unwrap();
        run_str(&format!("train --profiles {profiles} --out {model}")).unwrap();
        let out = run_str(&format!(
            "chaos --model {model} --app CoMD --cap 25 --iters 5 --seed 7 \
             --dropout 0.2 --pstate-fail 0.2 --run-fail 0.1 --fault-seed 3"
        ))
        .unwrap();
        assert!(out.contains("scheduler:      guarded"));
        assert!(out.contains("injected faults"));
        assert!(out.contains("sensor dropouts"));
        assert!(out.contains("kernel health:"));
        assert!(out.contains("tier "));
        // Bad probability fails cleanly.
        let err = run_str(&format!("chaos --model {model} --app CoMD --cap 25 --dropout 1.5"));
        match err {
            Err(CliError::Domain(msg)) => assert!(msg.contains("probability")),
            other => panic!("expected domain error, got {other:?}"),
        }
        // A non-positive cap fails cleanly instead of tripping the
        // runtime's assert.
        for cmd in [
            format!("chaos --model {model} --app CoMD --cap -5"),
            format!("runtime --model {model} --app CoMD --cap 0"),
        ] {
            match run_str(&cmd) {
                Err(CliError::Domain(msg)) => assert!(msg.contains("positive wattage")),
                other => panic!("expected domain error for '{cmd}', got {other:?}"),
            }
        }
    }

    #[test]
    fn verify_bless_then_pass_quick() {
        let dir = tmp("golden-dir");
        let _ = std::fs::remove_dir_all(&dir);
        let out = run_str(&format!("verify --bless true --golden-dir {dir}")).unwrap();
        assert!(out.contains("6 golden trace(s) regenerated"), "{out}");

        let out = run_str(&format!("verify --quick true --golden-dir {dir}")).unwrap();
        assert!(out.contains("scenario grid:"), "{out}");
        assert!(out.contains("Model+FL"), "{out}");
        assert!(out.contains("metamorphic invariants"), "{out}");
        assert!(out.contains("verify: PASS"), "{out}");
    }

    #[test]
    fn verify_missing_goldens_fails_with_bless_hint() {
        let dir = tmp("golden-missing");
        let _ = std::fs::remove_dir_all(&dir);
        match run_str(&format!("verify --quick true --golden-dir {dir}")) {
            Err(CliError::Domain(msg)) => {
                assert!(msg.contains("verify: FAIL"), "{msg}");
                assert!(msg.contains("golden trace"), "{msg}");
            }
            other => panic!("expected failure without blessed goldens, got {other:?}"),
        }
    }

    #[test]
    fn verify_cache_dir_populates_oracle_cache() {
        let golden = tmp("golden-cache");
        let cache = tmp("oracle-cache");
        let _ = std::fs::remove_dir_all(&cache);
        run_str(&format!("verify --bless true --golden-dir {golden}")).unwrap();
        let out =
            run_str(&format!("verify --quick true --golden-dir {golden} --cache-dir {cache}"))
                .unwrap();
        assert!(out.contains("oracle cache: 22 frontiers"), "{out}");
        let files = std::fs::read_dir(&cache).unwrap().count();
        assert_eq!(files, 22);
    }

    #[test]
    fn verify_transfer_scores_every_pair_and_pins_a_snapshot() {
        let dir = tmp("golden-transfer");
        let _ = std::fs::remove_dir_all(&dir);
        let artifact = tmp("BENCH_transfer.json");

        // Bless the quantized snapshot first.
        let out = run_str(&format!(
            "verify --transfer true --bless true --quick true --golden-dir {dir} --out {artifact}"
        ))
        .unwrap();
        assert!(out.contains("transfer regret matrix"), "{out}");
        assert!(out.contains("blessed"), "{out}");

        // A scoring run covers every family pair, matches the snapshot,
        // clears the thresholds, and rewrites the benchmark artifact.
        let out = run_str(&format!(
            "verify --transfer true --quick true --golden-dir {dir} --out {artifact}"
        ))
        .unwrap();
        for family in ["trinity", "bigcore", "lowpower", "accel"] {
            assert!(out.contains(family), "{family} missing from {out}");
        }
        assert!(out.contains("transfer golden: ok"), "{out}");
        assert!(out.contains("verify --transfer: PASS"), "{out}");
        let json = std::fs::read_to_string(&artifact).unwrap();
        assert!(json.contains("transfer_regret"), "{json}");

        // A tampered snapshot is a hard failure with a re-bless hint.
        let snapshot = std::path::Path::new(&dir).join("transfer-matrix.json");
        let mut text = std::fs::read_to_string(&snapshot).unwrap();
        text.push(' ');
        std::fs::write(&snapshot, text).unwrap();
        match run_str(&format!(
            "verify --transfer true --quick true --golden-dir {dir} --out {artifact}"
        )) {
            Err(CliError::Domain(msg)) => {
                assert!(msg.contains("deviates from blessed snapshot"), "{msg}")
            }
            other => panic!("expected snapshot mismatch failure, got {other:?}"),
        }
    }

    #[test]
    fn verify_drift_scores_every_process_and_pins_a_snapshot() {
        let dir = tmp("golden-drift");
        let _ = std::fs::remove_dir_all(&dir);
        let artifact = tmp("BENCH_drift.json");

        // Bless the quantized snapshot first.
        let out = run_str(&format!(
            "verify --drift true --bless true --quick true --golden-dir {dir} --out {artifact}"
        ))
        .unwrap();
        assert!(out.contains("drift differential"), "{out}");
        assert!(out.contains("blessed"), "{out}");

        // A scoring run covers every drift process, matches the snapshot,
        // clears the thresholds, and rewrites the benchmark artifact.
        let out = run_str(&format!(
            "verify --drift true --quick true --golden-dir {dir} --out {artifact}"
        ))
        .unwrap();
        for process in ["zero", "thermal-ramp", "step-throttle", "aging", "co-tenant"] {
            assert!(out.contains(process), "{process} missing from {out}");
        }
        assert!(out.contains("drift golden: ok"), "{out}");
        assert!(out.contains("verify --drift: PASS"), "{out}");
        let json = std::fs::read_to_string(&artifact).unwrap();
        assert!(json.contains("adaptive_mean_regret"), "{json}");

        // A tampered snapshot is a hard failure with a re-bless hint.
        let snapshot = std::path::Path::new(&dir).join("drift-grid.json");
        let mut text = std::fs::read_to_string(&snapshot).unwrap();
        text.push(' ');
        std::fs::write(&snapshot, text).unwrap();
        match run_str(&format!(
            "verify --drift true --quick true --golden-dir {dir} --out {artifact}"
        )) {
            Err(CliError::Domain(msg)) => {
                assert!(msg.contains("deviates from blessed snapshot"), "{msg}")
            }
            other => panic!("expected snapshot mismatch failure, got {other:?}"),
        }
    }

    #[test]
    fn serve_rejects_unknown_family() {
        match run_str("serve --family pentium") {
            Err(CliError::Domain(msg)) => {
                assert!(msg.contains("unknown machine family"), "{msg}")
            }
            other => panic!("expected domain error, got {other:?}"),
        }
    }

    #[test]
    fn missing_required_option_is_an_arg_error() {
        assert!(matches!(run_str("characterize"), Err(CliError::Args(_))));
        assert!(matches!(run_str("tree"), Err(CliError::Args(_))));
        assert!(matches!(run_str("loadgen"), Err(CliError::Args(_))));
    }

    #[test]
    fn serve_rejects_bad_cap_and_policy() {
        match run_str("serve --global-cap -5") {
            Err(CliError::Domain(msg)) => assert!(msg.contains("positive wattage"), "{msg}"),
            other => panic!("expected domain error, got {other:?}"),
        }
        match run_str("serve --policy fair") {
            Err(CliError::Domain(msg)) => assert!(msg.contains("unknown arbiter policy"), "{msg}"),
            other => panic!("expected domain error, got {other:?}"),
        }
    }

    /// A `Write` sink shareable with the thread `cmd_serve` blocks on, so
    /// the test can read the "listening on" line while the server runs.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).expect("utf8 output")
        }
    }

    /// End-to-end through the CLI surface: `serve --port 0` prints the
    /// bound address, `loadgen` drives it and reports zero failures, and
    /// the Shutdown poison drains the server thread.
    #[test]
    fn serve_and_loadgen_end_to_end() {
        let buf = SharedBuf::default();
        let server_out = buf.clone();
        let server = std::thread::spawn(move || {
            let mut out = server_out;
            let args = Args::parse(
                "serve --port 0 --global-cap 90 --policy demand --seed 2014"
                    .split_whitespace()
                    .map(String::from),
            )
            .unwrap();
            run(&args, &mut out)
        });
        // In-process training takes a moment; wait for the bound address.
        let addr = loop {
            if let Some(line) = buf.text().lines().find(|l| l.starts_with("listening on ")) {
                break line.trim_start_matches("listening on ").to_string();
            }
            assert!(!server.is_finished(), "server exited early: {:?}", buf.text());
            std::thread::sleep(std::time::Duration::from_millis(50));
        };

        let log = tmp("loadgen-e2e.jsonl");
        let out = run_str(&format!(
            "loadgen --addr {addr} --requests 60 --seed 7 --run-every 9 --report-every 5 \
             --log {log} --shutdown true"
        ))
        .unwrap();
        assert!(out.contains("errors:      0 errored, 0 shed, 0 dropped"), "{out}");
        assert!(out.contains("server STATS:"), "{out}");
        assert!(out.contains("\"protocol_errors\": 0"), "{out}");
        server.join().unwrap().unwrap();

        let log_text = std::fs::read_to_string(&log).unwrap();
        assert_eq!(log_text.lines().count(), 60, "one logged response per request");
        assert!(log_text.contains("Selected"), "{log_text}");
    }

    /// The chaos orchestrator's whole point: at a fixed seed the fleet —
    /// kills, restarts, partitions, failovers and all — must pass its
    /// invariants and print byte-identical output on every execution.
    #[test]
    fn chaosfleet_passes_and_is_byte_identical_at_a_seed() {
        let first = run_str("chaosfleet --quick true --seed 11").unwrap();
        assert!(first.contains("fleet up: 5 shards leased"), "{first}");
        assert!(first.contains("fleet ok"), "{first}");
        assert!(first.contains("budget: conserved under cap 90 W"), "{first}");
        // The seeded schedule must actually exercise failover paths.
        assert!(
            first.contains("kill shard-") || first.contains("partition shard-"),
            "schedule never injected chaos: {first}"
        );
        let second = run_str("chaosfleet --quick true --seed 11").unwrap();
        assert_eq!(first, second, "chaosfleet output diverged across executions");
    }
}
