//! The `acs` binary: thin shell around [`acs_cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match acs_cli::Args::parse(argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", acs_cli::USAGE);
            return ExitCode::from(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    match acs_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
