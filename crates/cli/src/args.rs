//! Minimal `--key value` argument parsing (no external dependency).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` pairs.
    options: BTreeMap<String, String>,
}

/// Errors from argument parsing and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    NoCommand,
    /// A `--flag` without a value, or a stray positional argument.
    Malformed(String),
    /// A required option is missing.
    Missing(&'static str),
    /// An option failed to parse as the expected type.
    Invalid {
        /// The option name.
        key: &'static str,
        /// The rejected value.
        value: String,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::NoCommand => write!(f, "no subcommand given"),
            ArgError::Malformed(tok) => write!(f, "malformed argument near '{tok}'"),
            ArgError::Missing(key) => write!(f, "missing required option --{key}"),
            ArgError::Invalid { key, value } => {
                write!(f, "invalid value '{value}' for --{key}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse an iterator of arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, ArgError> {
        let mut it = argv.into_iter();
        let command = it.next().ok_or(ArgError::NoCommand)?;
        if command.starts_with("--") {
            return Err(ArgError::Malformed(command));
        }
        let mut options = BTreeMap::new();
        while let Some(tok) = it.next() {
            let key = tok.strip_prefix("--").ok_or_else(|| ArgError::Malformed(tok.clone()))?;
            let value = it.next().ok_or_else(|| ArgError::Malformed(tok.clone()))?;
            options.insert(key.to_string(), value);
        }
        Ok(Self { command, options })
    }

    /// A string option.
    pub fn get(&self, key: &'static str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required string option.
    pub fn require(&self, key: &'static str) -> Result<&str, ArgError> {
        self.get(key).ok_or(ArgError::Missing(key))
    }

    /// A typed option with a default.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        key: &'static str,
        default: T,
    ) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::Invalid { key, value: v.to_string() }),
        }
    }

    /// A required typed option.
    pub fn require_parsed<T: std::str::FromStr>(&self, key: &'static str) -> Result<T, ArgError> {
        let v = self.require(key)?;
        v.parse().map_err(|_| ArgError::Invalid { key, value: v.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse("train --clusters 5 --out model.json").unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.get("clusters"), Some("5"));
        assert_eq!(a.require("out").unwrap(), "model.json");
        assert_eq!(a.get_or("clusters", 3usize).unwrap(), 5);
        assert_eq!(a.get_or("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn rejects_empty_and_malformed() {
        assert_eq!(parse(""), Err(ArgError::NoCommand));
        assert!(matches!(parse("--train"), Err(ArgError::Malformed(_))));
        assert!(matches!(parse("train --flag"), Err(ArgError::Malformed(_))));
        assert!(matches!(parse("train stray"), Err(ArgError::Malformed(_))));
    }

    #[test]
    fn reports_missing_and_invalid() {
        let a = parse("predict --cap twenty").unwrap();
        assert_eq!(a.require("model"), Err(ArgError::Missing("model")));
        assert!(matches!(
            a.require_parsed::<f64>("cap"),
            Err(ArgError::Invalid { key: "cap", .. })
        ));
        assert!(matches!(a.get_or::<u64>("cap", 1), Err(ArgError::Invalid { .. })));
    }

    #[test]
    fn errors_display() {
        assert!(ArgError::Missing("x").to_string().contains("--x"));
        assert!(ArgError::Invalid { key: "k", value: "v".into() }.to_string().contains("'v'"));
    }
}
