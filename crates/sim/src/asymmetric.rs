//! Per-module (asymmetric) CPU P-states.
//!
//! Section IV-A: "P-states can be assigned per CU. However, since all
//! compute units on the chip share a voltage plane, the voltage across all
//! compute units is set by the CU with maximum frequency." The paper's
//! configuration space uses symmetric P-states only; this module models
//! the asymmetric ones so the choice can be *quantified*: on a shared
//! voltage plane, a slow module still pays the fast module's V², which
//! pushes asymmetric configurations inside the symmetric Pareto frontier.

use crate::config::{Configuration, NUM_CPU_CORES};
use crate::cpu::{cpu_time_at, shared_core_fraction};
use crate::kernel::KernelCharacteristics;
use crate::power::{PowerBreakdown, PowerCalibration};
use crate::pstate::{shared_plane_voltage, CpuPState};
use serde::{Deserialize, Serialize};

/// A CPU-device configuration with independent per-module P-states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AsymmetricCpuConfig {
    /// P-state of each dual-core module.
    pub module_pstates: [CpuPState; 2],
    /// Active threads (1..=4), packed compactly (module 0 first).
    pub threads: u8,
}

impl AsymmetricCpuConfig {
    /// Construct, validating the thread count.
    pub fn new(module_pstates: [CpuPState; 2], threads: u8) -> Self {
        assert!((1..=NUM_CPU_CORES).contains(&threads), "threads must be 1..=4");
        Self { module_pstates, threads }
    }

    /// Active cores per module under compact packing.
    pub fn cores_per_module(&self) -> [u8; 2] {
        [self.threads.min(2), self.threads.saturating_sub(2)]
    }

    /// Shared-plane voltage: set by the *faster* module among those with
    /// active cores.
    pub fn plane_voltage(&self) -> f64 {
        let cores = self.cores_per_module();
        let active: Vec<CpuPState> =
            (0..2).filter(|&m| cores[m] > 0).map(|m| self.module_pstates[m]).collect();
        shared_plane_voltage(&active)
    }

    /// True when both modules run the same P-state (the paper's space).
    pub fn is_symmetric(&self) -> bool {
        let cores = self.cores_per_module();
        cores[1] == 0 || self.module_pstates[0] == self.module_pstates[1]
    }

    /// The symmetric configuration this collapses to when it is symmetric.
    pub fn as_symmetric(&self) -> Option<Configuration> {
        self.is_symmetric().then(|| Configuration::cpu(self.threads, self.module_pstates[0]))
    }

    /// All asymmetric-capable configurations: threads × P-state pairs.
    /// Symmetric members are included (they are the baseline).
    pub fn enumerate() -> Vec<AsymmetricCpuConfig> {
        let mut out = Vec::new();
        for threads in 1..=NUM_CPU_CORES {
            for p0 in CpuPState::all() {
                if threads <= 2 {
                    // Only module 0 is populated; module 1's state is
                    // irrelevant — park it at the floor.
                    out.push(AsymmetricCpuConfig::new([p0, CpuPState::MIN], threads));
                } else {
                    for p1 in CpuPState::all() {
                        out.push(AsymmetricCpuConfig::new([p0, p1], threads));
                    }
                }
            }
        }
        out
    }
}

/// Timing under asymmetric module frequencies.
///
/// Parallel compute throughput sums per-core frequency contributions
/// (derated by module sharing and synchronization, as in the symmetric
/// model); serial work runs on the fastest active core; DRAM time is
/// frequency-invariant.
pub fn asymmetric_cpu_time(
    kernel: &KernelCharacteristics,
    config: &AsymmetricCpuConfig,
) -> crate::cpu::CpuTiming {
    let cores = config.cores_per_module();
    let f_ref = crate::pstate::CPU_REF_FREQ_GHZ;

    // Aggregate compute throughput in reference-core units.
    let sharing_loss = kernel.module_sharing_penalty * shared_core_fraction(config.threads);
    let sync = 1.0 + kernel.sync_overhead * (f64::from(config.threads) - 1.0);
    let raw: f64 =
        (0..2).map(|m| f64::from(cores[m]) * config.module_pstates[m].freq_ghz() / f_ref).sum();
    let throughput = raw * (1.0 - sharing_loss) / sync;

    // Equivalent single frequency that yields the same throughput with
    // the same thread count lets us reuse the symmetric timing model for
    // the parallel part; serial work uses the fastest active core.
    let f_fast = (0..2)
        .filter(|&m| cores[m] > 0)
        .map(|m| config.module_pstates[m].freq_ghz())
        .fold(0.0, f64::max);

    let serial = kernel.compute_time_s * (1.0 - kernel.parallel_fraction) / (f_fast / f_ref);
    let parallel = kernel.compute_time_s * kernel.parallel_fraction / throughput.max(1e-9);
    let mem_speedup = f64::from(config.threads).min(kernel.bw_saturation_threads);
    let memory = kernel.memory_time_s / mem_speedup;

    let busy = serial + parallel;
    let total = busy + memory;
    let reference = cpu_time_at(kernel, f_ref, 1).total_s;
    crate::cpu::CpuTiming {
        total_s: total,
        busy_s: busy,
        memory_s: memory,
        speedup: reference / total,
    }
}

/// Average power under asymmetric module frequencies: every active core's
/// dynamic power uses the *shared plane voltage* but its own module
/// frequency; leakage follows the plane voltage.
pub fn asymmetric_cpu_power(
    kernel: &KernelCharacteristics,
    config: &AsymmetricCpuConfig,
    timing: &crate::cpu::CpuTiming,
    cal: &PowerCalibration,
) -> PowerBreakdown {
    let v = config.plane_voltage();
    let cores = config.cores_per_module();
    let busy_frac = if timing.total_s > 0.0 { timing.busy_s / timing.total_s } else { 0.0 };
    let activity = kernel.cpu_activity * (busy_frac + cal.mem_stall_activity * (1.0 - busy_frac));

    let mut dyn_w = 0.0;
    let mut leak_w = 0.0;
    let mut idle_cores = 0u8;
    let mut gated_modules = 0u8;
    #[allow(clippy::needless_range_loop)] // parallel-array indexing is the clear form here
    for m in 0..2 {
        if cores[m] == 0 {
            gated_modules += 1;
            continue;
        }
        let f = config.module_pstates[m].freq_ghz();
        dyn_w += cal.k_cpu_dyn * v * v * f * activity * f64::from(cores[m]);
        leak_w += cal.k_cpu_leak_module * v * v;
        idle_cores += 2 - cores[m];
    }
    let cpu_plane_w = dyn_w
        + leak_w
        + cal.cpu_idle_core_w * f64::from(idle_cores)
        + cal.cpu_gated_module_w * f64::from(gated_modules)
        + cal.cpu_uncore_w;

    // GPU parked + NB, exactly as in the symmetric CPU-device model.
    let mem_frac = if timing.total_s > 0.0 { timing.memory_s / timing.total_s } else { 0.0 };
    let sat = (f64::from(config.threads) / kernel.bw_saturation_threads).min(1.0);
    let gp = crate::pstate::GpuPState::MIN.point();
    let gpu_idle = cal.k_gpu_leak * gp.voltage_v * gp.voltage_v;
    let nb = cal.nb_base_w + cal.nb_dram_w * (mem_frac * sat).clamp(0.0, 1.0);

    PowerBreakdown { cpu_plane_w, gpu_nb_plane_w: gpu_idle + nb }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> KernelCharacteristics {
        KernelCharacteristics::default()
    }

    fn cal() -> PowerCalibration {
        PowerCalibration::default()
    }

    #[test]
    fn symmetric_members_match_the_symmetric_model() {
        let k = kernel();
        for threads in [1u8, 2, 3, 4] {
            for p in CpuPState::all() {
                let asym = AsymmetricCpuConfig::new([p, p], threads);
                assert!(asym.is_symmetric());
                let sym_cfg = asym.as_symmetric().expect("symmetric");
                let t_asym = asymmetric_cpu_time(&k, &asym);
                let t_sym = crate::cpu::cpu_time(&k, &sym_cfg);
                assert!(
                    (t_asym.total_s - t_sym.total_s).abs() < 1e-12,
                    "{threads}T {p:?}: {t_asym:?} vs {t_sym:?}"
                );
                let p_asym = asymmetric_cpu_power(&k, &asym, &t_asym, &cal());
                let p_sym = cal().cpu_run_power(&k, &sym_cfg, &t_sym);
                assert!((p_asym.total_w() - p_sym.total_w()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn plane_voltage_is_fastest_active_module() {
        let c = AsymmetricCpuConfig::new([CpuPState(1), CpuPState(5)], 4);
        assert_eq!(c.plane_voltage(), CpuPState(5).voltage_v());
        // With ≤2 threads only module 0 is active: its own voltage rules.
        let c = AsymmetricCpuConfig::new([CpuPState(1), CpuPState(5)], 2);
        assert_eq!(c.plane_voltage(), CpuPState(1).voltage_v());
    }

    #[test]
    fn asymmetric_sits_between_the_symmetric_extremes() {
        let k = kernel();
        let asym = AsymmetricCpuConfig::new([CpuPState(5), CpuPState(1)], 4);
        let t = asymmetric_cpu_time(&k, &asym);
        let fast = crate::cpu::cpu_time(&k, &Configuration::cpu(4, CpuPState(5)));
        let slow = crate::cpu::cpu_time(&k, &Configuration::cpu(4, CpuPState(1)));
        assert!(t.total_s > fast.total_s && t.total_s < slow.total_s);
    }

    #[test]
    fn shared_voltage_penalizes_asymmetry() {
        // The slow module pays the fast module's V²: an asymmetric config
        // draws more power than the throughput-equivalent blend of the
        // two symmetric configs.
        let k = KernelCharacteristics { memory_time_s: 0.0, ..kernel() };
        let hi = CpuPState(5);
        let lo = CpuPState(1);
        let asym = AsymmetricCpuConfig::new([hi, lo], 4);
        let t = asymmetric_cpu_time(&k, &asym);
        let p_asym = asymmetric_cpu_power(&k, &asym, &t, &cal()).total_w();

        // Perf-weighted blend of symmetric powers at the same V²f budget.
        let p_hi = cal()
            .cpu_run_power(
                &k,
                &Configuration::cpu(4, hi),
                &crate::cpu::cpu_time(&k, &Configuration::cpu(4, hi)),
            )
            .total_w();
        let p_lo = cal()
            .cpu_run_power(
                &k,
                &Configuration::cpu(4, lo),
                &crate::cpu::cpu_time(&k, &Configuration::cpu(4, lo)),
            )
            .total_w();
        // Same compute throughput: α·4f_hi + (1−α)·4f_lo = 2(f_hi+f_lo)
        // ⇒ α = 1/2 regardless of the frequencies.
        let blend = 0.5 * p_hi + 0.5 * p_lo;
        assert!(
            p_asym > blend,
            "asymmetric {p_asym:.2} W should exceed the throughput-blend {blend:.2} W"
        );
    }

    #[test]
    fn enumeration_counts() {
        // threads 1,2: 6 each; threads 3,4: 36 each → 12 + 72 = 84.
        let all = AsymmetricCpuConfig::enumerate();
        assert_eq!(all.len(), 84);
        let asym_only = all.iter().filter(|c| !c.is_symmetric()).count();
        assert_eq!(asym_only, 60, "30 asymmetric pairs × 2 thread counts");
    }

    #[test]
    #[should_panic(expected = "threads must be")]
    fn zero_threads_rejected() {
        let _ = AsymmetricCpuConfig::new([CpuPState::MIN, CpuPState::MIN], 0);
    }
}
