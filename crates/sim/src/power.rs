//! Power model for the two Trinity power planes.
//!
//! The simulated microcontroller (like the real one, Section III-B) reports
//! two domains: the CPU cores, and the northbridge + GPU together. Each
//! plane combines dynamic power `k · V² · f · activity` with voltage-
//! dependent leakage; the northbridge adds a DRAM-traffic component so
//! memory-bound kernels draw visibly different power than compute-bound
//! ones at the same operating point.

use crate::config::{Configuration, Device};
use crate::cpu::CpuTiming;
use crate::family::{FamilyId, MachineFamily};
use crate::gpu::GpuTiming;
use crate::kernel::KernelCharacteristics;
use serde::{Deserialize, Serialize};

/// Tunable calibration constants for the power model. The defaults are
/// calibrated so that the configuration space spans roughly the paper's
/// 10–60 W envelope, with CPU configurations reaching the lowest power
/// levels and the best-kernel spread matching the reported 19–55 W.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerCalibration {
    /// CPU dynamic power coefficient, W / (V² · GHz) per active core.
    pub k_cpu_dyn: f64,
    /// CPU leakage per powered module, W / V².
    pub k_cpu_leak_module: f64,
    /// Idle core parked inside a powered module, W.
    pub cpu_idle_core_w: f64,
    /// Fully power-gated module, W.
    pub cpu_gated_module_w: f64,
    /// CPU-plane uncore (shared front-end clocks etc.), W.
    pub cpu_uncore_w: f64,
    /// GPU dynamic power coefficient, W / (V² · GHz) for the whole array.
    pub k_gpu_dyn: f64,
    /// GPU leakage, W / V².
    pub k_gpu_leak: f64,
    /// Always-on cost of an *active* GPU (ungated array, clock tree,
    /// command processor), W, scaled by utilization. This is why Trinity's
    /// slowest GPU configuration still draws far more than a one-thread
    /// CPU configuration (paper Table I: 24.2 W vs 12.5 W) while GPU DVFS
    /// changes total power only mildly.
    pub gpu_active_base_w: f64,
    /// Northbridge base power, W.
    pub nb_base_w: f64,
    /// Additional northbridge power at full DRAM utilization, W.
    pub nb_dram_w: f64,
    /// Relative switching activity of a core while stalled on memory.
    pub mem_stall_activity: f64,
    /// Relative activity of the host core polling for GPU completion.
    pub gpu_host_poll_activity: f64,
}

impl Default for PowerCalibration {
    fn default() -> Self {
        Self {
            k_cpu_dyn: 4.0,
            k_cpu_leak_module: 1.6,
            cpu_idle_core_w: 0.2,
            cpu_gated_module_w: 0.3,
            cpu_uncore_w: 1.8,
            k_gpu_dyn: 26.0,
            k_gpu_leak: 1.8,
            gpu_active_base_w: 7.5,
            nb_base_w: 3.0,
            nb_dram_w: 6.0,
            mem_stall_activity: 0.35,
            gpu_host_poll_activity: 0.10,
        }
    }
}

/// Average power of one kernel execution, split by plane, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// CPU-core power plane, W.
    pub cpu_plane_w: f64,
    /// Northbridge + GPU power plane, W.
    pub gpu_nb_plane_w: f64,
}

impl PowerBreakdown {
    /// Total package power, W.
    #[inline]
    pub fn total_w(&self) -> f64 {
        self.cpu_plane_w + self.gpu_nb_plane_w
    }
}

impl PowerCalibration {
    /// CPU-plane power for `active` cores running at `v`/`f` with the given
    /// effective activity, plus idle-core and gated-module overheads, on
    /// `family`'s core/module topology. Threads beyond the family's
    /// physical core count draw nothing extra — they time-share cores that
    /// are already burning.
    fn cpu_plane(
        &self,
        family: &MachineFamily,
        active_cores: u8,
        v: f64,
        f: f64,
        activity: f64,
    ) -> f64 {
        let per_module = family.cores_per_module.max(1);
        let phys = family.physical_threads(active_cores);
        let active_modules = phys.div_ceil(per_module).max(1);
        let gated_modules = family.total_modules().saturating_sub(active_modules);
        let idle_cores = active_modules * per_module - phys;

        let dyn_w = self.k_cpu_dyn * v * v * f * activity * f64::from(phys);
        let leak_w = self.k_cpu_leak_module * v * v * f64::from(active_modules);
        dyn_w
            + leak_w
            + self.cpu_idle_core_w * f64::from(idle_cores)
            + self.cpu_gated_module_w * f64::from(gated_modules)
            + self.cpu_uncore_w
    }

    /// DRAM-saturation share of `threads` software threads on `family`:
    /// only physically backed threads issue memory streams.
    fn dram_sat(family: &MachineFamily, kernel: &KernelCharacteristics, threads: u8) -> f64 {
        (f64::from(family.physical_threads(threads)) / kernel.bw_saturation_threads).min(1.0)
    }

    /// GPU contribution to the NB+GPU plane at utilization `util`.
    fn gpu_component(&self, v: f64, f: f64, activity: f64, util: f64) -> f64 {
        self.k_gpu_dyn * v * v * f * activity * util
            + self.gpu_active_base_w * util
            + self.k_gpu_leak * v * v
    }

    /// Northbridge power given DRAM utilization in [0, 1].
    fn nb_component(&self, dram_util: f64) -> f64 {
        self.nb_base_w + self.nb_dram_w * dram_util.clamp(0.0, 1.0)
    }

    /// Per-phase powers of a CPU-device execution: the compute-busy phase
    /// and the DRAM-stall phase. Their time-weighted mean over
    /// `(busy_s, memory_s)` equals [`PowerCalibration::cpu_run_power`]
    /// exactly — the phase decomposition refines, never contradicts, the
    /// average model.
    pub fn cpu_phase_powers(
        &self,
        kernel: &KernelCharacteristics,
        config: &Configuration,
    ) -> (PowerBreakdown, PowerBreakdown) {
        self.cpu_phase_powers_on(FamilyId::Trinity.descriptor(), kernel, config)
    }

    /// [`PowerCalibration::cpu_phase_powers`] on an explicit family.
    pub fn cpu_phase_powers_on(
        &self,
        family: &MachineFamily,
        kernel: &KernelCharacteristics,
        config: &Configuration,
    ) -> (PowerBreakdown, PowerBreakdown) {
        debug_assert_eq!(config.device, Device::Cpu);
        let p = family.cpu_point(config.cpu_pstate);
        let gp = family.gpu_point(config.gpu_pstate);
        let gpu_idle = self.k_gpu_leak * gp.voltage_v * gp.voltage_v;
        let sat = Self::dram_sat(family, kernel, config.threads);

        let busy = PowerBreakdown {
            cpu_plane_w: self.cpu_plane(
                family,
                config.threads,
                p.voltage_v,
                p.freq_ghz,
                kernel.cpu_activity,
            ),
            gpu_nb_plane_w: gpu_idle + self.nb_component(0.0),
        };
        let stall = PowerBreakdown {
            cpu_plane_w: self.cpu_plane(
                family,
                config.threads,
                p.voltage_v,
                p.freq_ghz,
                kernel.cpu_activity * self.mem_stall_activity,
            ),
            gpu_nb_plane_w: gpu_idle + self.nb_component(sat),
        };
        (busy, stall)
    }

    /// Per-phase powers of a GPU-device execution: the host phase (serial
    /// portion + launch, GPU idle) and the device phase (GPU busy, host
    /// polling). Their time-weighted mean over `(host_s, device_s)` equals
    /// [`PowerCalibration::gpu_run_power`] exactly.
    pub fn gpu_phase_powers(
        &self,
        kernel: &KernelCharacteristics,
        config: &Configuration,
        timing: &GpuTiming,
    ) -> (PowerBreakdown, PowerBreakdown) {
        self.gpu_phase_powers_on(FamilyId::Trinity.descriptor(), kernel, config, timing)
    }

    /// [`PowerCalibration::gpu_phase_powers`] on an explicit family.
    pub fn gpu_phase_powers_on(
        &self,
        family: &MachineFamily,
        kernel: &KernelCharacteristics,
        config: &Configuration,
        timing: &GpuTiming,
    ) -> (PowerBreakdown, PowerBreakdown) {
        debug_assert_eq!(config.device, Device::Gpu);
        let cp = family.cpu_point(config.cpu_pstate);
        let gp = family.gpu_point(config.gpu_pstate);

        let mem_share = if timing.device_s > 0.0 {
            (timing.device_memory_s / timing.device_s).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let gpu_activity =
            kernel.gpu_activity * ((1.0 - mem_share) + self.mem_stall_activity * mem_share);

        let host = PowerBreakdown {
            cpu_plane_w: self.cpu_plane(family, 1, cp.voltage_v, cp.freq_ghz, kernel.cpu_activity),
            gpu_nb_plane_w: self.gpu_component(gp.voltage_v, gp.freq_ghz, gpu_activity, 0.0)
                + self.nb_component(0.0),
        };
        let device_dram = if timing.device_s > 0.0 {
            (timing.device_memory_s / timing.device_s * kernel.gpu_bw_advantage).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let device = PowerBreakdown {
            cpu_plane_w: self.cpu_plane(
                family,
                1,
                cp.voltage_v,
                cp.freq_ghz,
                self.gpu_host_poll_activity,
            ),
            gpu_nb_plane_w: self.gpu_component(gp.voltage_v, gp.freq_ghz, gpu_activity, 1.0)
                + self.nb_component(device_dram),
        };
        (host, device)
    }

    /// Average power of a CPU-device execution.
    pub fn cpu_run_power(
        &self,
        kernel: &KernelCharacteristics,
        config: &Configuration,
        timing: &CpuTiming,
    ) -> PowerBreakdown {
        self.cpu_run_power_on(FamilyId::Trinity.descriptor(), kernel, config, timing)
    }

    /// [`PowerCalibration::cpu_run_power`] on an explicit family.
    pub fn cpu_run_power_on(
        &self,
        family: &MachineFamily,
        kernel: &KernelCharacteristics,
        config: &Configuration,
        timing: &CpuTiming,
    ) -> PowerBreakdown {
        debug_assert_eq!(config.device, Device::Cpu);
        let p = family.cpu_point(config.cpu_pstate);

        let busy_frac = if timing.total_s > 0.0 { timing.busy_s / timing.total_s } else { 0.0 };
        let activity =
            kernel.cpu_activity * (busy_frac + self.mem_stall_activity * (1.0 - busy_frac));
        let cpu_plane_w = self.cpu_plane(family, config.threads, p.voltage_v, p.freq_ghz, activity);

        // DRAM utilization: fraction of time on memory, scaled by how close
        // the thread count is to saturating bandwidth.
        let mem_frac = if timing.total_s > 0.0 { timing.memory_s / timing.total_s } else { 0.0 };
        let sat = Self::dram_sat(family, kernel, config.threads);
        let dram_util = mem_frac * sat;

        // GPU parked at its minimum P-state: leakage only.
        let gp = family.gpu_point(config.gpu_pstate);
        let gpu_idle = self.k_gpu_leak * gp.voltage_v * gp.voltage_v;

        PowerBreakdown { cpu_plane_w, gpu_nb_plane_w: gpu_idle + self.nb_component(dram_util) }
    }

    /// Average power of a GPU-device execution.
    pub fn gpu_run_power(
        &self,
        kernel: &KernelCharacteristics,
        config: &Configuration,
        timing: &GpuTiming,
    ) -> PowerBreakdown {
        self.gpu_run_power_on(FamilyId::Trinity.descriptor(), kernel, config, timing)
    }

    /// [`PowerCalibration::gpu_run_power`] on an explicit family.
    pub fn gpu_run_power_on(
        &self,
        family: &MachineFamily,
        kernel: &KernelCharacteristics,
        config: &Configuration,
        timing: &GpuTiming,
    ) -> PowerBreakdown {
        debug_assert_eq!(config.device, Device::Gpu);
        let cp = family.cpu_point(config.cpu_pstate);
        let gp = family.gpu_point(config.gpu_pstate);
        let total = timing.total_s.max(1e-12);

        // Host core: busy for the host fraction, polling otherwise.
        let host_frac = (timing.host_s / total).clamp(0.0, 1.0);
        let host_activity =
            kernel.cpu_activity * host_frac + self.gpu_host_poll_activity * (1.0 - host_frac);
        let cpu_plane_w = self.cpu_plane(family, 1, cp.voltage_v, cp.freq_ghz, host_activity);

        // GPU: active for the device fraction; activity derated when the
        // device is memory-stalled.
        let util = (timing.device_s / total).clamp(0.0, 1.0);
        let mem_share = if timing.device_s > 0.0 {
            (timing.device_memory_s / timing.device_s).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let gpu_activity =
            kernel.gpu_activity * ((1.0 - mem_share) + self.mem_stall_activity * mem_share);
        let gpu_w = self.gpu_component(gp.voltage_v, gp.freq_ghz, gpu_activity, util);

        // The GPU saturates DRAM more readily than CPU threads. The
        // instantaneous utilization (clamped to the channel's capacity)
        // applies during the device phase only, so the average weights it
        // by the device-phase share — keeping this average model exactly
        // the time-mean of `gpu_phase_powers`.
        let device_dram = if timing.device_s > 0.0 {
            (timing.device_memory_s / timing.device_s * kernel.gpu_bw_advantage).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let dram_util = (timing.device_s / total).clamp(0.0, 1.0) * device_dram;

        PowerBreakdown { cpu_plane_w, gpu_nb_plane_w: gpu_w + self.nb_component(dram_util) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::cpu_time;
    use crate::gpu::gpu_time;
    use crate::pstate::{CpuPState, GpuPState};

    fn kernel() -> KernelCharacteristics {
        KernelCharacteristics::default()
    }

    fn cpu_power(threads: u8, p: CpuPState) -> PowerBreakdown {
        let k = kernel();
        let cfg = Configuration::cpu(threads, p);
        let t = cpu_time(&k, &cfg);
        PowerCalibration::default().cpu_run_power(&k, &cfg, &t)
    }

    fn gpu_power(gp: GpuPState, cp: CpuPState) -> PowerBreakdown {
        let k = kernel();
        let cfg = Configuration::gpu(gp, cp);
        let t = gpu_time(&k, &cfg);
        PowerCalibration::default().gpu_run_power(&k, &cfg, &t)
    }

    #[test]
    fn cpu_power_increases_with_frequency() {
        let mut prev = 0.0;
        for p in CpuPState::all() {
            let w = cpu_power(4, p).total_w();
            assert!(w > prev, "power must increase with frequency");
            prev = w;
        }
    }

    #[test]
    fn cpu_power_increases_with_threads() {
        let mut prev = 0.0;
        for threads in 1..=4 {
            let w = cpu_power(threads, CpuPState::MAX).total_w();
            assert!(w > prev, "power must increase with threads");
            prev = w;
        }
    }

    #[test]
    fn gpu_power_increases_with_gpu_frequency() {
        let mut prev = 0.0;
        for gp in GpuPState::all() {
            let w = gpu_power(gp, CpuPState::MIN).total_w();
            assert!(w > prev);
            prev = w;
        }
    }

    #[test]
    fn gpu_run_power_increases_with_host_frequency() {
        let mut prev = 0.0;
        for cp in CpuPState::all() {
            let w = gpu_power(GpuPState::MAX, cp).total_w();
            assert!(w > prev, "host DVFS must show up in package power");
            prev = w;
        }
    }

    #[test]
    fn power_envelope_is_plausible() {
        // The whole configuration space should live within the paper's
        // observed 8–60 W envelope for a typical kernel.
        let min = cpu_power(1, CpuPState::MIN).total_w();
        let max = cpu_power(4, CpuPState::MAX).total_w();
        assert!(min > 5.0 && min < 16.0, "min power {min} out of envelope");
        assert!(max > 20.0 && max < 60.0, "max power {max} out of envelope");
    }

    #[test]
    fn cpu_min_configs_reach_lower_power_than_gpu_configs() {
        // Paper Figure 2: "the CPU is able to reach lower power limits".
        let cpu_min = cpu_power(1, CpuPState::MIN).total_w();
        let gpu_min = gpu_power(GpuPState::MIN, CpuPState::MIN).total_w();
        assert!(cpu_min < gpu_min, "cpu {cpu_min} vs gpu {gpu_min}");
    }

    #[test]
    fn planes_are_positive_and_sum() {
        let p = gpu_power(GpuPState(1), CpuPState(2));
        assert!(p.cpu_plane_w > 0.0);
        assert!(p.gpu_nb_plane_w > 0.0);
        assert!((p.total_w() - (p.cpu_plane_w + p.gpu_nb_plane_w)).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_kernel_raises_nb_power() {
        let cal = PowerCalibration::default();
        let compute = KernelCharacteristics { memory_time_s: 0.0, ..kernel() };
        let membound =
            KernelCharacteristics { compute_time_s: 0.001, memory_time_s: 0.02, ..kernel() };
        let cfg = Configuration::cpu(4, CpuPState::MAX);
        let p_c = cal.cpu_run_power(&compute, &cfg, &cpu_time(&compute, &cfg));
        let p_m = cal.cpu_run_power(&membound, &cfg, &cpu_time(&membound, &cfg));
        assert!(p_m.gpu_nb_plane_w > p_c.gpu_nb_plane_w, "DRAM traffic must cost NB power");
        assert!(p_m.cpu_plane_w < p_c.cpu_plane_w, "stalled cores must draw less");
    }

    #[test]
    fn higher_activity_kernel_draws_more() {
        let cal = PowerCalibration::default();
        let lo = KernelCharacteristics { cpu_activity: 0.25, ..kernel() };
        let hi = KernelCharacteristics { cpu_activity: 0.55, ..kernel() };
        let cfg = Configuration::cpu(4, CpuPState::MAX);
        let p_lo = cal.cpu_run_power(&lo, &cfg, &cpu_time(&lo, &cfg));
        let p_hi = cal.cpu_run_power(&hi, &cfg, &cpu_time(&hi, &cfg));
        assert!(p_hi.total_w() > p_lo.total_w());
    }

    #[test]
    fn gpu_idle_when_parked() {
        // A CPU run's GPU/NB plane should be much smaller than an active
        // GPU run's at max GPU P-state.
        let parked = cpu_power(4, CpuPState::MAX).gpu_nb_plane_w;
        let active = gpu_power(GpuPState::MAX, CpuPState::MIN).gpu_nb_plane_w;
        assert!(active > parked + 5.0, "active {active} vs parked {parked}");
    }
}
