//! Phase-resolved power traces.
//!
//! The real microcontroller samples *instantaneous* power at 1 kHz while
//! the kernel's power draw swings between compute-busy and memory-stall
//! phases (CPU) or host and device phases (GPU). This module synthesizes a
//! piecewise-constant power signal whose time average equals the analytic
//! average model exactly, so the sensor can sample a realistic waveform
//! instead of a constant — short kernels then see genuine phase-aliasing
//! error, exactly like hardware.

use crate::config::{Configuration, Device};
use crate::cpu::cpu_time_on;
use crate::family::{FamilyId, MachineFamily};
use crate::gpu::gpu_time_on;
use crate::kernel::KernelCharacteristics;
use crate::noise::{NoiseSource, Stream};
use crate::power::{PowerBreakdown, PowerCalibration};
use crate::sensor::PowerSensor;
use serde::{Deserialize, Serialize};

/// A piecewise-constant two-plane power signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    segments: Vec<TraceSegment>,
    total_s: f64,
}

/// One constant-power span of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSegment {
    /// Segment duration, seconds.
    pub duration_s: f64,
    /// Power during the segment.
    pub power: PowerBreakdown,
}

/// Target alternation period between phases, seconds. Real kernels swing
/// between compute and memory phases at sub-millisecond granularity.
const PHASE_PERIOD_S: f64 = 250e-6;

/// Maximum number of alternation cycles in a trace (bounds memory for
/// very long kernels; the sensor's own sample cap dominates anyway).
const MAX_CYCLES: usize = 512;

impl PowerTrace {
    /// Build a trace from two phases interleaved at a fixed sub-millisecond period
    /// granularity. `a` and `b` are (duration, power) pairs; phase `a`
    /// leads (e.g. launch/host work precedes device work).
    pub fn interleaved(a: (f64, PowerBreakdown), b: (f64, PowerBreakdown)) -> Self {
        let (dur_a, pow_a) = a;
        let (dur_b, pow_b) = b;
        let total = dur_a + dur_b;
        if total <= 0.0 {
            return Self { segments: Vec::new(), total_s: 0.0 };
        }
        if dur_a <= 0.0 || dur_b <= 0.0 {
            let (d, p) = if dur_a > 0.0 { (dur_a, pow_a) } else { (dur_b, pow_b) };
            return Self { segments: vec![TraceSegment { duration_s: d, power: p }], total_s: d };
        }

        let cycles = ((total / PHASE_PERIOD_S).ceil() as usize).clamp(1, MAX_CYCLES);
        let slice_a = dur_a / cycles as f64;
        let slice_b = dur_b / cycles as f64;
        let mut segments = Vec::with_capacity(cycles * 2);
        for _ in 0..cycles {
            segments.push(TraceSegment { duration_s: slice_a, power: pow_a });
            segments.push(TraceSegment { duration_s: slice_b, power: pow_b });
        }
        Self { segments, total_s: total }
    }

    /// A single-phase (constant) trace.
    pub fn constant(duration_s: f64, power: PowerBreakdown) -> Self {
        Self { segments: vec![TraceSegment { duration_s, power }], total_s: duration_s }
    }

    /// The trace's segments.
    pub fn segments(&self) -> &[TraceSegment] {
        &self.segments
    }

    /// Total duration, seconds.
    pub fn total_s(&self) -> f64 {
        self.total_s
    }

    /// Time-weighted average power over the whole trace.
    pub fn average(&self) -> PowerBreakdown {
        if self.total_s <= 0.0 {
            return PowerBreakdown { cpu_plane_w: 0.0, gpu_nb_plane_w: 0.0 };
        }
        let mut cpu = 0.0;
        let mut gpu = 0.0;
        for s in &self.segments {
            cpu += s.power.cpu_plane_w * s.duration_s;
            gpu += s.power.gpu_nb_plane_w * s.duration_s;
        }
        PowerBreakdown { cpu_plane_w: cpu / self.total_s, gpu_nb_plane_w: gpu / self.total_s }
    }

    /// Instantaneous power at time `t` (clamped into the trace).
    pub fn at(&self, t: f64) -> PowerBreakdown {
        let mut acc = 0.0;
        for s in &self.segments {
            acc += s.duration_s;
            if t < acc {
                return s.power;
            }
        }
        self.segments
            .last()
            .map(|s| s.power)
            .unwrap_or(PowerBreakdown { cpu_plane_w: 0.0, gpu_nb_plane_w: 0.0 })
    }

    /// Scale every segment duration by `factor` (used to apply run-to-run
    /// timing jitter to the waveform).
    pub fn scale_time(&mut self, factor: f64) {
        for s in &mut self.segments {
            s.duration_s *= factor;
        }
        self.total_s *= factor;
    }

    /// Scale every segment's power by `factor`.
    pub fn scale_power(&mut self, factor: f64) {
        for s in &mut self.segments {
            s.power.cpu_plane_w *= factor;
            s.power.gpu_nb_plane_w *= factor;
        }
    }

    /// Time-average of `plane` over the interval `[t0, t1)`, by exact
    /// integration of the piecewise-constant signal.
    pub fn window_average(&self, plane: fn(&PowerBreakdown) -> f64, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 || self.segments.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut covered = 0.0;
        let mut seg_start = 0.0;
        for s in &self.segments {
            let seg_end = seg_start + s.duration_s;
            let lo = t0.max(seg_start);
            let hi = t1.min(seg_end);
            if hi > lo {
                acc += plane(&s.power) * (hi - lo);
                covered += hi - lo;
            }
            seg_start = seg_end;
            if seg_start >= t1 {
                break;
            }
        }
        // Windows extending past the trace hold the last segment's power.
        if covered < (t1 - t0) - 1e-15 {
            let last = plane(&self.segments.last().expect("non-empty").power);
            let rest = (t1 - t0) - covered;
            acc += last * rest;
            covered += rest;
        }
        acc / covered
    }
}

/// Build the phase trace of one kernel execution (no noise applied).
pub fn trace_for(
    kernel: &KernelCharacteristics,
    config: &Configuration,
    cal: &PowerCalibration,
) -> PowerTrace {
    trace_for_on(FamilyId::Trinity.descriptor(), kernel, config, cal)
}

/// [`trace_for`] on an explicit machine family.
pub fn trace_for_on(
    family: &MachineFamily,
    kernel: &KernelCharacteristics,
    config: &Configuration,
    cal: &PowerCalibration,
) -> PowerTrace {
    match config.device {
        Device::Cpu => {
            let t = cpu_time_on(family, kernel, config);
            let (busy, stall) = cal.cpu_phase_powers_on(family, kernel, config);
            PowerTrace::interleaved((t.busy_s, busy), (t.memory_s, stall))
        }
        Device::Gpu => {
            let t = gpu_time_on(family, kernel, config);
            let (host, device) = cal.gpu_phase_powers_on(family, kernel, config, &t);
            PowerTrace::interleaved((t.host_s, host), (t.device_s, device))
        }
    }
}

impl PowerSensor {
    /// Estimate per-plane average power from a trace.
    ///
    /// The firmware exposes a running energy accumulator read at the
    /// sensor's rate: each reading reflects the *average* power over its
    /// window (not an instantaneous point), then suffers estimation noise
    /// and quantization. Short kernels therefore measure as one coarse
    /// window rather than a randomly-phased point sample.
    pub fn estimate_trace(
        &self,
        trace: &PowerTrace,
        plane: fn(&PowerBreakdown) -> f64,
        noise: &NoiseSource,
    ) -> f64 {
        if !self.sample_hz.is_finite() {
            return plane(&trace.average());
        }
        let n = self.samples_for(trace.total_s()).min(10_000);
        let dt = trace.total_s() / n as f64;
        let mut acc = 0.0;
        for lane in 0..n {
            let t0 = lane as f64 * dt;
            let window = trace.window_average(plane, t0, t0 + dt)
                * (1.0 + self.noise_sigma * noise.standard_normal(Stream::Sensor, lane));
            acc += self.quantize_pub(window.max(0.0));
        }
        acc / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::cpu_time;
    use crate::pstate::{CpuPState, GpuPState};

    fn kernel() -> KernelCharacteristics {
        KernelCharacteristics::default()
    }

    fn cal() -> PowerCalibration {
        PowerCalibration::default()
    }

    #[test]
    fn cpu_trace_average_matches_analytic_model() {
        let k = kernel();
        for threads in 1..=4u8 {
            let cfg = Configuration::cpu(threads, CpuPState(2));
            let trace = trace_for(&k, &cfg, &cal());
            let t = cpu_time(&k, &cfg);
            let analytic = cal().cpu_run_power(&k, &cfg, &t);
            let avg = trace.average();
            assert!((avg.cpu_plane_w - analytic.cpu_plane_w).abs() < 1e-9, "{threads}T cpu plane");
            assert!((avg.gpu_nb_plane_w - analytic.gpu_nb_plane_w).abs() < 1e-9);
            assert!((trace.total_s() - t.total_s).abs() < 1e-12);
        }
    }

    #[test]
    fn gpu_trace_average_matches_analytic_model() {
        let k = kernel();
        for gp in GpuPState::all() {
            let cfg = Configuration::gpu(gp, CpuPState(1));
            let trace = trace_for(&k, &cfg, &cal());
            let t = crate::gpu::gpu_time(&k, &cfg);
            let analytic = cal().gpu_run_power(&k, &cfg, &t);
            let avg = trace.average();
            assert!(
                (avg.cpu_plane_w - analytic.cpu_plane_w).abs() < 1e-9,
                "gpu pstate {gp:?} cpu plane {} vs {}",
                avg.cpu_plane_w,
                analytic.cpu_plane_w
            );
            assert!(
                (avg.gpu_nb_plane_w - analytic.gpu_nb_plane_w).abs() < 1e-9,
                "gpu pstate {gp:?}"
            );
        }
    }

    #[test]
    fn trace_has_phase_contrast() {
        let k = kernel();
        let cfg = Configuration::cpu(4, CpuPState::MAX);
        let trace = trace_for(&k, &cfg, &cal());
        let powers: Vec<f64> = trace.segments().iter().map(|s| s.power.total_w()).collect();
        let max = powers.iter().fold(0.0f64, |a, &b| a.max(b));
        let min = powers.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(max > min + 1.0, "phases should differ by watts: {min}..{max}");
    }

    #[test]
    fn at_walks_segments() {
        let a = PowerBreakdown { cpu_plane_w: 10.0, gpu_nb_plane_w: 1.0 };
        let b = PowerBreakdown { cpu_plane_w: 2.0, gpu_nb_plane_w: 1.0 };
        let trace = PowerTrace::interleaved((0.001, a), (0.001, b));
        // First segment of the first cycle is phase a.
        assert_eq!(trace.at(0.0).cpu_plane_w, 10.0);
        // Past the end: clamps to the last segment (phase b).
        assert_eq!(trace.at(10.0).cpu_plane_w, 2.0);
    }

    #[test]
    fn degenerate_phases_collapse_to_constant() {
        let p = PowerBreakdown { cpu_plane_w: 5.0, gpu_nb_plane_w: 5.0 };
        let zero = PowerBreakdown { cpu_plane_w: 0.0, gpu_nb_plane_w: 0.0 };
        let t = PowerTrace::interleaved((0.01, p), (0.0, zero));
        assert_eq!(t.segments().len(), 1);
        assert_eq!(t.average(), p);
        let empty = PowerTrace::interleaved((0.0, p), (0.0, zero));
        assert!(empty.segments().is_empty());
        assert_eq!(empty.average().total_w(), 0.0);
    }

    #[test]
    fn sensor_on_trace_converges_for_long_kernels() {
        let k = KernelCharacteristics { compute_time_s: 1.0, memory_time_s: 0.4, ..kernel() };
        let cfg = Configuration::cpu(4, CpuPState::MAX);
        let trace = trace_for(&k, &cfg, &cal());
        let sensor = PowerSensor::default();
        let noise = NoiseSource::new(3, "trace-sensor", 0, 0);
        let est = sensor.estimate_trace(&trace, |p| p.cpu_plane_w, &noise);
        let truth = trace.average().cpu_plane_w;
        assert!((est - truth).abs() / truth < 0.02, "est {est} vs {truth}");
    }

    #[test]
    fn short_kernel_single_window_covers_whole_trace() {
        // A sub-millisecond kernel gets a single accumulator window, which
        // averages the whole execution: the noiseless estimate is the
        // quantized trace average (the accumulator architecture is what
        // keeps short-kernel measurements sane).
        let k = KernelCharacteristics { compute_time_s: 0.0004, memory_time_s: 0.0004, ..kernel() };
        let cfg = Configuration::cpu(4, CpuPState::MAX);
        let trace = trace_for(&k, &cfg, &cal());
        let sensor = PowerSensor { noise_sigma: 0.0, ..PowerSensor::default() };
        let noise = NoiseSource::new(3, "alias", 0, 0);
        let est = sensor.estimate_trace(&trace, |p| p.total_w(), &noise);
        let expected = sensor.quantize_pub(trace.average().total_w());
        assert!((est - expected).abs() < 1e-9, "est {est} vs quantized average {expected}");
    }

    #[test]
    fn window_average_integrates_exactly() {
        let a = PowerBreakdown { cpu_plane_w: 10.0, gpu_nb_plane_w: 0.0 };
        let b = PowerBreakdown { cpu_plane_w: 2.0, gpu_nb_plane_w: 0.0 };
        let trace = PowerTrace::interleaved((0.002, a), (0.002, b));
        // Whole-trace window equals the average.
        let whole = trace.window_average(|p| p.cpu_plane_w, 0.0, trace.total_s());
        assert!((whole - 6.0).abs() < 1e-9, "{whole}");
        // A window past the end extends the last phase.
        let past = trace.window_average(|p| p.cpu_plane_w, trace.total_s(), trace.total_s() + 1.0);
        assert!((past - 2.0).abs() < 1e-9, "{past}");
        // Degenerate window.
        assert_eq!(trace.window_average(|p| p.cpu_plane_w, 0.5, 0.5), 0.0);
    }

    #[test]
    fn scaling_preserves_structure() {
        let k = kernel();
        let cfg = Configuration::cpu(2, CpuPState(3));
        let mut trace = trace_for(&k, &cfg, &cal());
        let before = trace.average();
        let t_before = trace.total_s();
        trace.scale_time(2.0);
        trace.scale_power(0.5);
        assert!((trace.total_s() - 2.0 * t_before).abs() < 1e-12);
        let after = trace.average();
        assert!((after.total_w() - 0.5 * before.total_w()).abs() < 1e-9);
    }

    #[test]
    fn ideal_sensor_reads_exact_average() {
        let k = kernel();
        let cfg = Configuration::gpu(GpuPState::MAX, CpuPState::MAX);
        let trace = trace_for(&k, &cfg, &cal());
        let sensor = PowerSensor::ideal();
        let noise = NoiseSource::new(0, "ideal", 0, 0);
        let est = sensor.estimate_trace(&trace, |p| p.gpu_nb_plane_w, &noise);
        assert_eq!(est, trace.average().gpu_nb_plane_w);
    }
}
