//! On-chip power estimator.
//!
//! The Trinity system-management microcontroller provides real-time power
//! estimates that the paper samples and accumulates at 1 kHz (Section IV-C),
//! integrating over each kernel to obtain an average. We model the same
//! estimator: discrete sampling of the instantaneous (noisy, quantized)
//! power, averaged over the kernel's duration. Short kernels see more
//! estimation error because fewer samples land inside them — the same
//! artifact a real 1 kHz sampler has.

use crate::noise::{NoiseSource, Stream};
use serde::{Deserialize, Serialize};

/// Configuration of the simulated power estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSensor {
    /// Sampling rate, Hz.
    pub sample_hz: f64,
    /// Quantization step of each instantaneous estimate, W.
    pub quantum_w: f64,
    /// Relative standard deviation of instantaneous estimate noise.
    pub noise_sigma: f64,
}

impl Default for PowerSensor {
    fn default() -> Self {
        Self { sample_hz: 1000.0, quantum_w: 0.125, noise_sigma: 0.015 }
    }
}

impl PowerSensor {
    /// An ideal sensor: continuous, noiseless, unquantized. Useful for
    /// isolating model error from measurement error in ablations.
    pub fn ideal() -> Self {
        Self { sample_hz: f64::INFINITY, quantum_w: 0.0, noise_sigma: 0.0 }
    }

    /// Number of samples the estimator accumulates for a kernel of the
    /// given duration (at least one — the paper reads the estimate at
    /// kernel start and finish even for sub-millisecond kernels).
    pub fn samples_for(&self, duration_s: f64) -> u64 {
        if !self.sample_hz.is_finite() {
            return u64::MAX; // continuous; handled separately in `estimate`
        }
        ((duration_s * self.sample_hz).floor() as u64).max(1)
    }

    /// Estimate the average power of an interval whose true average power
    /// is `true_power_w`, deterministically addressed by `noise`.
    pub fn estimate(&self, true_power_w: f64, duration_s: f64, noise: &NoiseSource) -> f64 {
        if !self.sample_hz.is_finite() {
            return true_power_w;
        }
        let n = self.samples_for(duration_s).min(10_000); // cap work for long kernels
        let mut acc = 0.0;
        for lane in 0..n {
            let inst = true_power_w
                * (1.0 + self.noise_sigma * noise.standard_normal(Stream::Sensor, lane));
            acc += self.quantize(inst.max(0.0));
        }
        acc / n as f64
    }

    /// Quantize an instantaneous reading to the estimator's resolution.
    #[inline]
    pub fn quantize_pub(&self, w: f64) -> f64 {
        if self.quantum_w <= 0.0 {
            return w;
        }
        (w / self.quantum_w).round() * self.quantum_w
    }

    #[inline]
    fn quantize(&self, w: f64) -> f64 {
        self.quantize_pub(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise() -> NoiseSource {
        NoiseSource::new(11, "sensor-test", 0, 0)
    }

    #[test]
    fn ideal_sensor_is_exact() {
        let s = PowerSensor::ideal();
        assert_eq!(s.estimate(23.456, 0.0001, &noise()), 23.456);
    }

    #[test]
    fn long_kernel_estimate_converges_to_truth() {
        let s = PowerSensor::default();
        let est = s.estimate(30.0, 5.0, &noise());
        assert!((est - 30.0).abs() < 0.1, "estimate {est}");
    }

    #[test]
    fn short_kernel_has_single_sample() {
        let s = PowerSensor::default();
        assert_eq!(s.samples_for(0.0001), 1);
        assert_eq!(s.samples_for(0.0500), 50);
    }

    #[test]
    fn estimate_is_quantized_for_single_sample() {
        let s = PowerSensor { noise_sigma: 0.0, ..PowerSensor::default() };
        let est = s.estimate(20.06, 0.0001, &noise());
        assert!((est - 20.0).abs() < 1e-12, "single noiseless sample quantizes: {est}");
    }

    #[test]
    fn estimate_never_negative() {
        let s = PowerSensor { noise_sigma: 0.8, ..PowerSensor::default() };
        for run in 0..50 {
            let n = NoiseSource::new(5, "neg", 0, run);
            assert!(s.estimate(0.5, 0.001, &n) >= 0.0);
        }
    }

    #[test]
    fn deterministic_per_address() {
        let s = PowerSensor::default();
        assert_eq!(s.estimate(25.0, 0.01, &noise()), s.estimate(25.0, 0.01, &noise()));
    }

    #[test]
    fn sample_cap_bounds_work() {
        let s = PowerSensor::default();
        // A 100-second kernel would need 100k samples; the cap keeps it at 10k.
        let est = s.estimate(40.0, 100.0, &noise());
        assert!((est - 40.0).abs() < 0.1);
    }
}
