//! The assembled machine: runs a kernel at a configuration and reports what
//! the profiling library would observe on real hardware — wall time, the
//! microcontroller's per-plane power estimates, and performance counters.

use crate::config::{Configuration, Device};
use crate::counters::{self, CounterInputs, CounterSet};
use crate::cpu::cpu_time_on;
use crate::family::{FamilyId, MachineFamily};
use crate::gpu::gpu_time_on;
use crate::kernel::KernelCharacteristics;
use crate::noise::{NoiseSource, Stream};
use crate::power::{PowerBreakdown, PowerCalibration};
use crate::sensor::PowerSensor;
use serde::{Deserialize, Serialize};

/// One observed kernel execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRun {
    /// The configuration the kernel ran at.
    pub config: Configuration,
    /// Measured wall time, seconds.
    pub time_s: f64,
    /// Sensor-estimated average power per plane, W (what software sees).
    pub power: PowerBreakdown,
    /// True average power per plane, W (ground truth, for oracle use only).
    pub true_power: PowerBreakdown,
    /// Performance counter readings.
    pub counters: CounterSet,
}

impl KernelRun {
    /// Total measured package power, W.
    #[inline]
    pub fn power_w(&self) -> f64 {
        self.power.total_w()
    }

    /// Total true package power, W.
    #[inline]
    pub fn true_power_w(&self) -> f64 {
        self.true_power.total_w()
    }

    /// Performance as inverse time (kernel iterations per second).
    #[inline]
    pub fn performance(&self) -> f64 {
        1.0 / self.time_s
    }
}

/// A simulated APU with a fixed calibration and noise seed.
///
/// All observations are deterministic functions of
/// `(seed, kernel id, configuration, run index)`, so sweeps may be executed
/// in any order (or in parallel) and reproduce bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Master noise seed.
    pub seed: u64,
    /// Which machine family this node belongs to (defaults to Trinity, so
    /// records serialized before families existed still deserialize).
    #[serde(default)]
    pub family: FamilyId,
    /// Power model calibration.
    pub power_cal: PowerCalibration,
    /// The on-chip power estimator.
    pub sensor: PowerSensor,
    /// Relative run-to-run timing jitter (OS noise, DRAM refresh, ...).
    pub timing_sigma: f64,
    /// Relative true-power jitter (temperature, input data, ...).
    pub power_sigma: f64,
}

impl Machine {
    /// A Trinity machine with default calibration and the given seed
    /// (equivalent to `Machine::from_family(FamilyId::Trinity, seed)`).
    pub fn new(seed: u64) -> Self {
        Self::from_family(FamilyId::Trinity, seed)
    }

    /// A machine of the given family, instantiated deterministically from
    /// `seed`: same family + same seed ⇒ bit-identical observations.
    pub fn from_family(family: FamilyId, seed: u64) -> Self {
        Self {
            seed,
            family,
            power_cal: family.descriptor().power_cal.clone(),
            sensor: PowerSensor::default(),
            timing_sigma: 0.01,
            power_sigma: 0.01,
        }
    }

    /// A noiseless machine: exact timing, exact power, ideal sensor.
    /// Useful for tests and for isolating model error in ablations.
    pub fn noiseless(seed: u64) -> Self {
        Self::noiseless_from_family(FamilyId::Trinity, seed)
    }

    /// [`Machine::noiseless`] on an explicit family.
    pub fn noiseless_from_family(family: FamilyId, seed: u64) -> Self {
        Self {
            seed,
            family,
            power_cal: family.descriptor().power_cal.clone(),
            sensor: PowerSensor::ideal(),
            timing_sigma: 0.0,
            power_sigma: 0.0,
        }
    }

    /// The family descriptor this machine instantiates.
    #[inline]
    pub fn family_descriptor(&self) -> &'static MachineFamily {
        self.family.descriptor()
    }

    /// Execute `kernel` at `config` (first iteration).
    pub fn run(&self, kernel: &KernelCharacteristics, config: &Configuration) -> KernelRun {
        self.run_iter(kernel, config, 0)
    }

    /// Execute iteration `run` of `kernel` at `config`.
    pub fn run_iter(
        &self,
        kernel: &KernelCharacteristics,
        config: &Configuration,
        run: u64,
    ) -> KernelRun {
        let fam = self.family.descriptor();
        let noise = NoiseSource::new(self.seed, &kernel.id(), config.index(), run);
        let t_jitter = noise.jitter(Stream::Timing, self.timing_sigma);
        let p_jitter = noise.jitter(Stream::Power, self.power_sigma);

        let (time_s, true_power, counter_inputs) = match config.device {
            Device::Cpu => {
                let t = cpu_time_on(fam, kernel, config);
                let p = self.power_cal.cpu_run_power_on(fam, kernel, config, &t);
                let ci = CounterInputs {
                    device: Device::Cpu,
                    total_s: t.total_s * t_jitter,
                    host_busy_s: t.busy_s * t_jitter,
                    memory_s: t.memory_s * t_jitter,
                    threads: config.threads,
                    cpu_freq_ghz: fam.cpu_point(config.cpu_pstate).freq_ghz,
                };
                (t.total_s * t_jitter, p, ci)
            }
            Device::Gpu => {
                let t = gpu_time_on(fam, kernel, config);
                let p = self.power_cal.gpu_run_power_on(fam, kernel, config, &t);
                let ci = CounterInputs {
                    device: Device::Gpu,
                    total_s: t.total_s * t_jitter,
                    host_busy_s: t.host_s * t_jitter,
                    memory_s: t.device_memory_s * t_jitter,
                    threads: 1,
                    cpu_freq_ghz: fam.cpu_point(config.cpu_pstate).freq_ghz,
                };
                (t.total_s * t_jitter, p, ci)
            }
        };

        let true_power = PowerBreakdown {
            cpu_plane_w: true_power.cpu_plane_w * p_jitter,
            gpu_nb_plane_w: true_power.gpu_nb_plane_w * p_jitter,
        };

        // The sensor samples the phase-resolved power waveform (compute
        // vs. memory phases, host vs. device phases) at its own rate —
        // each plane through an independent accumulator, as the firmware
        // exposes them. Jitter applies to the waveform so the sensed and
        // true powers describe the same execution.
        let mut trace = crate::trace::trace_for_on(fam, kernel, config, &self.power_cal);
        trace.scale_time(t_jitter);
        trace.scale_power(p_jitter);
        let plane_noise = NoiseSource::new(self.seed ^ 0xA5A5, &kernel.id(), config.index(), run);
        let power = PowerBreakdown {
            cpu_plane_w: self.sensor.estimate_trace(&trace, |p| p.cpu_plane_w, &noise),
            gpu_nb_plane_w: self.sensor.estimate_trace(&trace, |p| p.gpu_nb_plane_w, &plane_noise),
        };

        let counters = counters::generate(kernel, &counter_inputs, &noise);

        KernelRun { config: *config, time_s, power, true_power, counters }
    }

    /// Execute the kernel at every configuration in the space.
    pub fn sweep(&self, kernel: &KernelCharacteristics) -> Vec<KernelRun> {
        Configuration::all().iter().map(|c| self.run(kernel, c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pstate::{CpuPState, GpuPState};

    fn kernel() -> KernelCharacteristics {
        KernelCharacteristics::default()
    }

    #[test]
    fn run_is_deterministic() {
        let m = Machine::new(7);
        let cfg = Configuration::cpu(4, CpuPState::MAX);
        assert_eq!(m.run(&kernel(), &cfg), m.run(&kernel(), &cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = Configuration::cpu(4, CpuPState::MAX);
        let a = Machine::new(1).run(&kernel(), &cfg);
        let b = Machine::new(2).run(&kernel(), &cfg);
        assert_ne!(a.time_s, b.time_s);
    }

    #[test]
    fn iterations_jitter_but_stay_close() {
        let m = Machine::new(7);
        let cfg = Configuration::cpu(4, CpuPState::MAX);
        let a = m.run_iter(&kernel(), &cfg, 0);
        let b = m.run_iter(&kernel(), &cfg, 1);
        assert_ne!(a.time_s, b.time_s);
        assert!((a.time_s - b.time_s).abs() / a.time_s < 0.10);
    }

    #[test]
    fn noiseless_machine_reports_exact_model() {
        let m = Machine::noiseless(0);
        let k = kernel();
        let cfg = Configuration::cpu(1, CpuPState::MAX);
        let r = m.run(&k, &cfg);
        assert!((r.time_s - k.reference_time_s()).abs() < 1e-12);
        // The ideal sensor reads the trace time-average, equal to the
        // closed-form average power up to float association order.
        assert!((r.power.cpu_plane_w - r.true_power.cpu_plane_w).abs() < 1e-9);
        assert!((r.power.gpu_nb_plane_w - r.true_power.gpu_nb_plane_w).abs() < 1e-9);
    }

    #[test]
    fn sweep_covers_whole_space() {
        let m = Machine::noiseless(0);
        let runs = m.sweep(&kernel());
        assert_eq!(runs.len(), Configuration::space_size());
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.config.index(), i);
            assert!(r.time_s > 0.0);
            assert!(r.power_w() > 0.0);
        }
    }

    #[test]
    fn sensor_estimate_tracks_true_power() {
        let m = Machine::new(3);
        // A long-running kernel: the 1 kHz sensor collects many samples.
        let k = KernelCharacteristics { compute_time_s: 1.0, memory_time_s: 0.3, ..kernel() };
        let r = m.run(&k, &Configuration::cpu(4, CpuPState::MAX));
        let rel = (r.power_w() - r.true_power_w()).abs() / r.true_power_w();
        assert!(rel < 0.02, "sensor error {rel}");
    }

    #[test]
    fn gpu_run_has_gpu_shaped_observations() {
        let m = Machine::new(3);
        let cfg = Configuration::gpu(GpuPState::MAX, CpuPState::MIN);
        let r = m.run(&kernel(), &cfg);
        assert_eq!(r.config.device, Device::Gpu);
        // GPU plane dominates while the host plane is modest.
        assert!(r.true_power.gpu_nb_plane_w > r.true_power.cpu_plane_w);
    }

    #[test]
    fn performance_is_inverse_time() {
        let m = Machine::noiseless(0);
        let r = m.run(&kernel(), &Configuration::cpu(2, CpuPState(3)));
        assert!((r.performance() * r.time_s - 1.0).abs() < 1e-12);
    }
}
