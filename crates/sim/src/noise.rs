//! Deterministic, stream-addressable noise.
//!
//! The simulator must be reproducible: running the same kernel at the same
//! configuration with the same machine seed must yield bit-identical
//! results, regardless of evaluation order (the offline sweep is
//! parallelized with rayon). We therefore derive all noise from a counter-
//! mode hash of `(machine seed, kernel, configuration, run, stream)` rather
//! than from a shared stateful RNG.

/// Identifies which quantity a noise sample perturbs, so that e.g. the
/// timing jitter and the L1-miss jitter of the same run are independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
#[allow(missing_docs)] // variant names are self-describing quantity tags
pub enum Stream {
    Timing = 1,
    Power = 2,
    Sensor = 3,
    Instructions = 4,
    L1Miss = 5,
    L2Miss = 6,
    TlbMiss = 7,
    Branch = 8,
    Vector = 9,
    Stall = 10,
    FpuIdle = 11,
    Dram = 12,
    Interrupt = 13,
}

/// SplitMix64 finalizer: a strong 64-bit mixing function.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string, used to fold kernel names into the seed.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// A deterministic noise source addressed by `(seed, kernel, config, run)`.
#[derive(Debug, Clone, Copy)]
pub struct NoiseSource {
    base: u64,
}

impl NoiseSource {
    /// Build a noise source for one simulated kernel execution.
    pub fn new(machine_seed: u64, kernel_id: &str, config_index: usize, run: u64) -> Self {
        let mut base = splitmix64(machine_seed);
        base = splitmix64(base ^ fnv1a(kernel_id.as_bytes()));
        base = splitmix64(base ^ (config_index as u64).wrapping_mul(0x9E3779B97F4A7C15));
        base = splitmix64(base ^ run);
        Self { base }
    }

    /// Raw 64-bit sample for `stream`, with an extra lane index for streams
    /// that need more than one draw.
    #[inline]
    pub fn bits(&self, stream: Stream, lane: u64) -> u64 {
        splitmix64(self.base ^ (stream as u64).wrapping_mul(0xD1342543DE82EF95) ^ (lane << 32))
    }

    /// Uniform sample in [0, 1).
    #[inline]
    pub fn uniform(&self, stream: Stream, lane: u64) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.bits(stream, lane) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal sample via Box–Muller (deterministic per lane pair).
    pub fn standard_normal(&self, stream: Stream, lane: u64) -> f64 {
        let u1 = self.uniform(stream, lane * 2).max(1e-300);
        let u2 = self.uniform(stream, lane * 2 + 1);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Multiplicative lognormal-ish jitter `exp(sigma * N(0,1))`, clamped to
    /// a sane band so a tail draw can never produce a negative or absurd
    /// measurement.
    pub fn jitter(&self, stream: Stream, sigma: f64) -> f64 {
        (sigma * self.standard_normal(stream, 0)).exp().clamp(0.5, 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_address_same_noise() {
        let a = NoiseSource::new(42, "LULESH/Small/K1", 7, 0);
        let b = NoiseSource::new(42, "LULESH/Small/K1", 7, 0);
        assert_eq!(a.bits(Stream::Timing, 0), b.bits(Stream::Timing, 0));
        assert_eq!(a.uniform(Stream::Power, 3), b.uniform(Stream::Power, 3));
    }

    #[test]
    fn different_streams_differ() {
        let a = NoiseSource::new(42, "k", 0, 0);
        assert_ne!(a.bits(Stream::Timing, 0), a.bits(Stream::Power, 0));
    }

    #[test]
    fn different_kernels_differ() {
        let a = NoiseSource::new(42, "k1", 0, 0);
        let b = NoiseSource::new(42, "k2", 0, 0);
        assert_ne!(a.bits(Stream::Timing, 0), b.bits(Stream::Timing, 0));
    }

    #[test]
    fn different_configs_differ() {
        let a = NoiseSource::new(42, "k", 0, 0);
        let b = NoiseSource::new(42, "k", 1, 0);
        assert_ne!(a.bits(Stream::Timing, 0), b.bits(Stream::Timing, 0));
    }

    #[test]
    fn different_runs_differ() {
        let a = NoiseSource::new(42, "k", 0, 0);
        let b = NoiseSource::new(42, "k", 0, 1);
        assert_ne!(a.bits(Stream::Timing, 0), b.bits(Stream::Timing, 0));
    }

    #[test]
    fn uniform_in_unit_interval() {
        let src = NoiseSource::new(7, "k", 3, 1);
        for lane in 0..1000 {
            let u = src.uniform(Stream::Sensor, lane);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let src = NoiseSource::new(99, "moments", 0, 0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|i| src.standard_normal(Stream::Timing, i)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn jitter_is_bounded_and_centered() {
        let src = NoiseSource::new(1, "jit", 0, 0);
        let j = src.jitter(Stream::Timing, 0.02);
        assert!((0.5..=2.0).contains(&j));
        // sigma=0 means exactly no jitter
        assert_eq!(src.jitter(Stream::Timing, 0.0), 1.0);
    }

    #[test]
    fn fnv1a_distinguishes_strings() {
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b""), fnv1a(b"a"));
    }
}
