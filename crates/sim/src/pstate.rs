//! CPU and GPU P-state (voltage/frequency) tables for the simulated APU.
//!
//! The tables mirror the AMD Trinity A10-5800K as described in the paper:
//! six software-visible CPU P-states from 1.4 to 3.7 GHz sharing a single
//! voltage plane across both compute units, and three effective GPU P-states
//! (311/649/819 MHz) on an independent power plane.

use serde::{Deserialize, Serialize};

/// A single voltage/frequency operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Supply voltage in volts.
    pub voltage_v: f64,
}

impl OperatingPoint {
    /// A new operating point from a frequency (GHz) and voltage (V).
    pub const fn new(freq_ghz: f64, voltage_v: f64) -> Self {
        Self { freq_ghz, voltage_v }
    }
}

/// Software-visible CPU P-states, fastest first is *not* guaranteed; the
/// table is ordered slowest → fastest so that index 0 is the deepest
/// power-saving state, matching ACPI convention reversed for readability.
pub const CPU_PSTATES: [OperatingPoint; 6] = [
    OperatingPoint::new(1.4, 0.850),
    OperatingPoint::new(1.9, 0.925),
    OperatingPoint::new(2.4, 1.000),
    OperatingPoint::new(2.9, 1.075),
    OperatingPoint::new(3.3, 1.1625),
    OperatingPoint::new(3.7, 1.250),
];

/// Effective GPU P-states on the Trinity GPU power plane.
pub const GPU_PSTATES: [OperatingPoint; 3] = [
    OperatingPoint::new(0.311, 0.825),
    OperatingPoint::new(0.649, 1.000),
    OperatingPoint::new(0.819, 1.175),
];

/// Index into [`CPU_PSTATES`]. `CpuPState(0)` is the slowest state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CpuPState(pub u8);

/// Index into [`GPU_PSTATES`]. `GpuPState(0)` is the slowest state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GpuPState(pub u8);

impl CpuPState {
    /// Slowest CPU P-state (1.4 GHz).
    pub const MIN: CpuPState = CpuPState(0);
    /// Fastest software-visible CPU P-state (3.7 GHz).
    pub const MAX: CpuPState = CpuPState(CPU_PSTATES.len() as u8 - 1);

    /// Number of software-visible CPU P-states.
    pub const COUNT: usize = CPU_PSTATES.len();

    /// The operating point for this P-state.
    #[inline]
    pub fn point(self) -> OperatingPoint {
        CPU_PSTATES[self.0 as usize]
    }

    /// Core frequency in GHz.
    #[inline]
    pub fn freq_ghz(self) -> f64 {
        self.point().freq_ghz
    }

    /// Supply voltage in volts.
    #[inline]
    pub fn voltage_v(self) -> f64 {
        self.point().voltage_v
    }

    /// All CPU P-states, slowest first.
    pub fn all() -> impl DoubleEndedIterator<Item = CpuPState> + ExactSizeIterator {
        (0..CPU_PSTATES.len() as u8).map(CpuPState)
    }

    /// The next slower P-state, or `None` at the floor. Used by the
    /// simulated frequency limiter when walking down to meet a cap.
    pub fn step_down(self) -> Option<CpuPState> {
        self.0.checked_sub(1).map(CpuPState)
    }

    /// The next faster P-state, or `None` at the ceiling.
    pub fn step_up(self) -> Option<CpuPState> {
        let next = self.0 + 1;
        (usize::from(next) < CPU_PSTATES.len()).then_some(CpuPState(next))
    }
}

impl GpuPState {
    /// Slowest GPU P-state (311 MHz).
    pub const MIN: GpuPState = GpuPState(0);
    /// Fastest GPU P-state (819 MHz).
    pub const MAX: GpuPState = GpuPState(GPU_PSTATES.len() as u8 - 1);

    /// Number of effective GPU P-states.
    pub const COUNT: usize = GPU_PSTATES.len();

    /// The operating point for this P-state.
    #[inline]
    pub fn point(self) -> OperatingPoint {
        GPU_PSTATES[self.0 as usize]
    }

    /// Core frequency in GHz.
    #[inline]
    pub fn freq_ghz(self) -> f64 {
        self.point().freq_ghz
    }

    /// Supply voltage in volts.
    #[inline]
    pub fn voltage_v(self) -> f64 {
        self.point().voltage_v
    }

    /// All GPU P-states, slowest first.
    pub fn all() -> impl DoubleEndedIterator<Item = GpuPState> + ExactSizeIterator {
        (0..GPU_PSTATES.len() as u8).map(GpuPState)
    }

    /// The next slower P-state, or `None` at the floor.
    pub fn step_down(self) -> Option<GpuPState> {
        self.0.checked_sub(1).map(GpuPState)
    }

    /// The next faster P-state, or `None` at the ceiling.
    pub fn step_up(self) -> Option<GpuPState> {
        let next = self.0 + 1;
        (usize::from(next) < GPU_PSTATES.len()).then_some(GpuPState(next))
    }
}

/// Reference frequency used for counter normalization and the leading-loads
/// timing model: the fastest software-visible CPU P-state.
pub const CPU_REF_FREQ_GHZ: f64 = 3.7;

/// Reference GPU frequency: the fastest GPU P-state.
pub const GPU_REF_FREQ_GHZ: f64 = 0.819;

/// Voltage of the shared CPU plane given the P-states of both compute units.
///
/// Trinity's compute units share a voltage plane, so the plane voltage is
/// that demanded by the faster module even if the other idles at a lower
/// P-state. The paper relies on this coupling (Section IV-A).
pub fn shared_plane_voltage(module_states: &[CpuPState]) -> f64 {
    module_states.iter().map(|p| p.voltage_v()).fold(CPU_PSTATES[0].voltage_v, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_pstates_are_monotonic_in_freq_and_voltage() {
        for w in CPU_PSTATES.windows(2) {
            assert!(w[0].freq_ghz < w[1].freq_ghz);
            assert!(w[0].voltage_v < w[1].voltage_v);
        }
    }

    #[test]
    fn gpu_pstates_are_monotonic_in_freq_and_voltage() {
        for w in GPU_PSTATES.windows(2) {
            assert!(w[0].freq_ghz < w[1].freq_ghz);
            assert!(w[0].voltage_v < w[1].voltage_v);
        }
    }

    #[test]
    fn cpu_pstate_range_matches_paper() {
        assert_eq!(CpuPState::MIN.freq_ghz(), 1.4);
        assert_eq!(CpuPState::MAX.freq_ghz(), 3.7);
        assert_eq!(CpuPState::COUNT, 6);
    }

    #[test]
    fn gpu_pstate_range_matches_paper() {
        assert_eq!(GpuPState::MIN.freq_ghz(), 0.311);
        assert_eq!(GpuPState::MAX.freq_ghz(), 0.819);
        assert_eq!(GpuPState::COUNT, 3);
    }

    #[test]
    fn step_down_reaches_floor() {
        let mut p = CpuPState::MAX;
        let mut hops = 0;
        while let Some(next) = p.step_down() {
            p = next;
            hops += 1;
        }
        assert_eq!(p, CpuPState::MIN);
        assert_eq!(hops, CpuPState::COUNT - 1);
    }

    #[test]
    fn step_up_reaches_ceiling() {
        let mut p = GpuPState::MIN;
        while let Some(next) = p.step_up() {
            p = next;
        }
        assert_eq!(p, GpuPState::MAX);
    }

    #[test]
    fn step_up_then_down_roundtrips() {
        for p in CpuPState::all() {
            if let Some(up) = p.step_up() {
                assert_eq!(up.step_down(), Some(p));
            }
        }
    }

    #[test]
    fn shared_plane_voltage_takes_max() {
        let v = shared_plane_voltage(&[CpuPState(0), CpuPState(5)]);
        assert_eq!(v, CPU_PSTATES[5].voltage_v);
        let v = shared_plane_voltage(&[CpuPState(2), CpuPState(1)]);
        assert_eq!(v, CPU_PSTATES[2].voltage_v);
    }

    #[test]
    fn shared_plane_voltage_of_empty_is_floor() {
        assert_eq!(shared_plane_voltage(&[]), CPU_PSTATES[0].voltage_v);
    }

    #[test]
    fn all_iterators_are_exact_size() {
        assert_eq!(CpuPState::all().len(), 6);
        assert_eq!(GpuPState::all().len(), 3);
    }
}
