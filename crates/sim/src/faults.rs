//! Fault injection: a chaos layer between a scheduler and the machine.
//!
//! Real deployments of the paper's runtime face hardware that misbehaves:
//! the on-chip power estimator drops readings or latches a stale value,
//! PMU counters glitch, DVFS transition requests are silently rejected by
//! firmware, and kernel launches occasionally fail outright. This module
//! wraps a [`Machine`] in a [`FaultyMachine`] that injects exactly those
//! fault classes, each drawn deterministically from a seeded [`FaultPlan`]
//! so a chaos experiment reproduces bit-for-bit.
//!
//! Schedulers stay agnostic via the [`Executor`] trait: a plain `Machine`
//! is an infallible executor; a `FaultyMachine` may clamp the requested
//! configuration, corrupt observations, or fail a run.

use crate::config::Configuration;
use crate::kernel::KernelCharacteristics;
use crate::machine::{KernelRun, Machine};
use crate::noise::splitmix64;
use crate::power::PowerBreakdown;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// The classes of injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The power sensor returned no reading (both planes read 0 W).
    SensorDropout,
    /// The power sensor latched and repeats a stale reading.
    SensorFreeze,
    /// The power sensor reads with a systematic multiplicative bias.
    SensorBias,
    /// PMU counter readings were scrambled.
    CounterCorruption,
    /// A requested P-state transition was silently rejected: the kernel
    /// ran at the previously applied configuration.
    PStateTransition,
    /// The kernel execution itself failed transiently.
    KernelRunFailure,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::SensorDropout => "sensor dropout",
            FaultKind::SensorFreeze => "sensor freeze",
            FaultKind::SensorBias => "sensor bias",
            FaultKind::CounterCorruption => "counter corruption",
            FaultKind::PStateTransition => "p-state transition failure",
            FaultKind::KernelRunFailure => "kernel run failure",
        };
        f.write_str(s)
    }
}

/// A transient execution failure reported by an [`Executor`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionFault {
    /// Which fault class fired.
    pub kind: FaultKind,
    /// The executor-global invocation index at which it fired.
    pub invocation: u64,
}

impl std::fmt::Display for ExecutionFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at invocation {}", self.kind, self.invocation)
    }
}

impl std::error::Error for ExecutionFault {}

/// A deterministic fault schedule.
///
/// Every probability is evaluated per executor invocation from a hash of
/// `(seed, fault class, invocation index)`; two machines running the same
/// plan observe identical fault sequences. All-zero probabilities (the
/// [`Default`]) make a [`FaultyMachine`] behave exactly like its inner
/// [`Machine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for all fault draws (independent of the machine's noise seed).
    pub seed: u64,
    /// Per-invocation probability the sensor drops its reading to 0 W.
    pub sensor_dropout_p: f64,
    /// Per-invocation probability the sensor freezes.
    pub sensor_freeze_p: f64,
    /// How many subsequent invocations a frozen sensor repeats its reading.
    pub sensor_freeze_window: u64,
    /// Per-invocation probability a bias window starts.
    pub sensor_bias_p: f64,
    /// Relative bias applied while a bias window is active (e.g. `-0.15`
    /// reads 15% low — the dangerous direction for a power cap).
    pub sensor_bias_frac: f64,
    /// How many invocations a bias window lasts.
    pub sensor_bias_window: u64,
    /// Per-invocation probability the counter readings are scrambled.
    pub counter_corrupt_p: f64,
    /// Probability a *requested* P-state/device transition silently fails,
    /// leaving the hardware at its previously applied configuration.
    pub pstate_fail_p: f64,
    /// Per-invocation probability the run itself fails with an error.
    pub run_fail_p: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            sensor_dropout_p: 0.0,
            sensor_freeze_p: 0.0,
            sensor_freeze_window: 4,
            sensor_bias_p: 0.0,
            sensor_bias_frac: -0.15,
            sensor_bias_window: 4,
            counter_corrupt_p: 0.0,
            pstate_fail_p: 0.0,
            run_fail_p: 0.0,
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (identical behavior to the bare machine).
    pub fn none(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }
}

/// Counts of injected faults, by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Total executor invocations (including failed ones).
    pub invocations: u64,
    /// Readings zeroed by sensor dropout.
    pub sensor_dropouts: u64,
    /// Stale readings served by a frozen sensor.
    pub sensor_freezes: u64,
    /// Readings scaled by an active bias window.
    pub sensor_biases: u64,
    /// Runs whose counters were scrambled.
    pub counter_corruptions: u64,
    /// Transitions silently clamped to the previous configuration.
    pub pstate_clamps: u64,
    /// Runs that failed outright.
    pub run_failures: u64,
}

impl FaultStats {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.sensor_dropouts
            + self.sensor_freezes
            + self.sensor_biases
            + self.counter_corruptions
            + self.pstate_clamps
            + self.run_failures
    }
}

/// Something that can execute a kernel iteration at a configuration.
///
/// A bare [`Machine`] is infallible and always runs exactly the requested
/// configuration. A [`FaultyMachine`] may return an [`ExecutionFault`], or
/// return `Ok` with `run.config != requested` when a P-state transition
/// was silently rejected — callers that care must compare.
pub trait Executor {
    /// Execute iteration `iteration` of `kernel`, requesting `config`.
    fn execute(
        &self,
        kernel: &KernelCharacteristics,
        config: &Configuration,
        iteration: u64,
    ) -> Result<KernelRun, ExecutionFault>;
}

impl Executor for Machine {
    fn execute(
        &self,
        kernel: &KernelCharacteristics,
        config: &Configuration,
        iteration: u64,
    ) -> Result<KernelRun, ExecutionFault> {
        Ok(self.run_iter(kernel, config, iteration))
    }
}

/// Mutable fault-injection state, advanced once per invocation.
#[derive(Debug, Clone, Default)]
struct FaultState {
    invocation: u64,
    /// The configuration the hardware is actually at (None before the
    /// first successful run; the first transition always succeeds).
    applied: Option<Configuration>,
    /// Latched sensor reading and remaining invocations to serve it.
    frozen: Option<(PowerBreakdown, u64)>,
    /// Remaining invocations of an active bias window.
    bias_remaining: u64,
    stats: FaultStats,
}

/// A [`Machine`] wrapped in a deterministic fault injector.
///
/// Interior mutability (`RefCell`) keeps the [`Executor`] signature `&self`
/// while the injector tracks the applied configuration, freeze/bias
/// windows, and fault statistics across invocations.
#[derive(Debug, Clone)]
pub struct FaultyMachine {
    machine: Machine,
    plan: FaultPlan,
    state: RefCell<FaultState>,
}

/// Per-class draw lanes: distinct tags keep the fault classes' coin flips
/// independent even at the same invocation index.
mod lane {
    pub const RUN_FAIL: u64 = 1;
    pub const PSTATE: u64 = 2;
    pub const COUNTER: u64 = 3;
    pub const FREEZE: u64 = 4;
    pub const DROPOUT: u64 = 5;
    pub const BIAS: u64 = 6;
    pub const SCRAMBLE: u64 = 7;
}

impl FaultyMachine {
    /// Wrap `machine` with the fault schedule of `plan`.
    pub fn new(machine: Machine, plan: FaultPlan) -> Self {
        Self { machine, plan, state: RefCell::new(FaultState::default()) }
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The fault schedule.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of the fault counters.
    pub fn stats(&self) -> FaultStats {
        self.state.borrow().stats
    }

    /// The configuration the hardware is actually at, if any run completed.
    pub fn applied_config(&self) -> Option<Configuration> {
        self.state.borrow().applied
    }

    /// Reset all injection state and counters (the plan is kept).
    pub fn reset(&self) {
        *self.state.borrow_mut() = FaultState::default();
    }

    /// Deterministic uniform draw in [0, 1) for `(plan.seed, lane, n)`.
    fn draw(&self, lane: u64, n: u64) -> f64 {
        let mut z = splitmix64(self.plan.seed ^ 0xFA_u64.wrapping_mul(0x9E3779B97F4A7C15));
        z = splitmix64(z ^ lane.wrapping_mul(0xD1342543DE82EF95));
        z = splitmix64(z ^ n);
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Raw bits for value scrambling.
    fn bits(&self, lane: u64, n: u64) -> u64 {
        let mut z = splitmix64(self.plan.seed ^ lane.wrapping_mul(0xBF58476D1CE4E5B9));
        z = splitmix64(z ^ n);
        z
    }

    /// Scramble the counter readings: each field is scaled by a large
    /// deterministic factor (up or down three decades), staying positive
    /// and finite so downstream feature math never sees NaN — just garbage.
    fn corrupt_counters(&self, run: &mut KernelRun, n: u64) {
        let bits = self.bits(lane::SCRAMBLE, n);
        let fields: [&mut f64; 12] = [
            &mut run.counters.instructions,
            &mut run.counters.core_cycles,
            &mut run.counters.ref_cycles,
            &mut run.counters.l1d_misses,
            &mut run.counters.l2d_misses,
            &mut run.counters.tlb_misses,
            &mut run.counters.branches,
            &mut run.counters.vector_instructions,
            &mut run.counters.stalled_cycles,
            &mut run.counters.fpu_idle_cycles,
            &mut run.counters.interrupts,
            &mut run.counters.dram_accesses,
        ];
        for (i, f) in fields.into_iter().enumerate() {
            *f *= if bits >> i & 1 == 1 { 1e3 } else { 1e-3 };
        }
    }
}

impl Executor for FaultyMachine {
    fn execute(
        &self,
        kernel: &KernelCharacteristics,
        config: &Configuration,
        iteration: u64,
    ) -> Result<KernelRun, ExecutionFault> {
        let mut st = self.state.borrow_mut();
        st.invocation += 1;
        st.stats.invocations += 1;
        let n = st.invocation;

        // Transient run failure: nothing executes, hardware state unchanged.
        if self.draw(lane::RUN_FAIL, n) < self.plan.run_fail_p {
            st.stats.run_failures += 1;
            return Err(ExecutionFault { kind: FaultKind::KernelRunFailure, invocation: n });
        }

        // P-state transition: a *change* of configuration may silently
        // fail, leaving the hardware where it was. The very first
        // transition (from the unknown boot state) always lands.
        let target = match st.applied {
            Some(current)
                if current != *config && self.draw(lane::PSTATE, n) < self.plan.pstate_fail_p =>
            {
                st.stats.pstate_clamps += 1;
                current
            }
            _ => {
                st.applied = Some(*config);
                *config
            }
        };

        // `run.config` reports the configuration that actually executed,
        // so a scheduler can detect the clamp by comparing to its request.
        let mut run = self.machine.run_iter(kernel, &target, iteration);

        if self.draw(lane::COUNTER, n) < self.plan.counter_corrupt_p {
            st.stats.counter_corruptions += 1;
            self.corrupt_counters(&mut run, n);
        }

        // Sensor path. Fault precedence per invocation: an active freeze
        // window wins, then a new freeze, then dropout, then bias.
        // Ground truth (`run.true_power`) is never touched.
        if let Some((latched, remaining)) = st.frozen {
            run.power = latched;
            st.stats.sensor_freezes += 1;
            st.frozen = if remaining > 1 { Some((latched, remaining - 1)) } else { None };
        } else if self.plan.sensor_freeze_window > 0
            && self.draw(lane::FREEZE, n) < self.plan.sensor_freeze_p
        {
            // Latch this (genuine) reading; the *next* `window` invocations
            // will repeat it, so at least two consecutive identical
            // readings are observable.
            st.frozen = Some((run.power, self.plan.sensor_freeze_window));
        } else if self.draw(lane::DROPOUT, n) < self.plan.sensor_dropout_p {
            st.stats.sensor_dropouts += 1;
            run.power = PowerBreakdown { cpu_plane_w: 0.0, gpu_nb_plane_w: 0.0 };
        } else {
            if st.bias_remaining == 0 && self.draw(lane::BIAS, n) < self.plan.sensor_bias_p {
                st.bias_remaining = self.plan.sensor_bias_window;
            }
            if st.bias_remaining > 0 {
                st.bias_remaining -= 1;
                st.stats.sensor_biases += 1;
                let scale = 1.0 + self.plan.sensor_bias_frac;
                run.power.cpu_plane_w *= scale;
                run.power.gpu_nb_plane_w *= scale;
            }
        }

        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pstate::{CpuPState, GpuPState};

    fn kernel() -> KernelCharacteristics {
        KernelCharacteristics::default()
    }

    fn cpu_cfg() -> Configuration {
        Configuration::cpu(4, CpuPState::MAX)
    }

    fn gpu_cfg() -> Configuration {
        Configuration::gpu(GpuPState::MAX, CpuPState::MIN)
    }

    fn chaotic_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            sensor_dropout_p: 0.3,
            sensor_freeze_p: 0.1,
            sensor_bias_p: 0.1,
            counter_corrupt_p: 0.2,
            pstate_fail_p: 0.3,
            run_fail_p: 0.2,
            ..FaultPlan::default()
        }
    }

    #[test]
    fn zero_plan_is_transparent() {
        let m = Machine::new(7);
        let fm = FaultyMachine::new(m.clone(), FaultPlan::none(99));
        for i in 0..10 {
            let cfg = if i % 2 == 0 { cpu_cfg() } else { gpu_cfg() };
            let faulty = fm.execute(&kernel(), &cfg, i).unwrap();
            assert_eq!(faulty, m.run_iter(&kernel(), &cfg, i));
        }
        assert_eq!(fm.stats().total(), 0);
        assert_eq!(fm.stats().invocations, 10);
    }

    #[test]
    fn same_plan_same_fault_sequence() {
        let a = FaultyMachine::new(Machine::new(7), chaotic_plan(42));
        let b = FaultyMachine::new(Machine::new(7), chaotic_plan(42));
        for i in 0..200 {
            let cfg = if i % 3 == 0 { gpu_cfg() } else { cpu_cfg() };
            assert_eq!(a.execute(&kernel(), &cfg, i), b.execute(&kernel(), &cfg, i));
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0, "a chaotic plan must inject something");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultyMachine::new(Machine::new(7), chaotic_plan(1));
        let b = FaultyMachine::new(Machine::new(7), chaotic_plan(2));
        for i in 0..200 {
            let _ = a.execute(&kernel(), &cpu_cfg(), i);
            let _ = b.execute(&kernel(), &cpu_cfg(), i);
        }
        assert_ne!(a.stats(), b.stats());
    }

    #[test]
    fn dropout_zeroes_measured_but_not_true_power() {
        let plan = FaultPlan { sensor_dropout_p: 1.0, ..FaultPlan::none(5) };
        let fm = FaultyMachine::new(Machine::new(7), plan);
        let run = fm.execute(&kernel(), &cpu_cfg(), 0).unwrap();
        assert_eq!(run.power_w(), 0.0);
        assert!(run.true_power_w() > 0.0);
        assert_eq!(fm.stats().sensor_dropouts, 1);
    }

    #[test]
    fn freeze_repeats_the_latched_reading() {
        let plan =
            FaultPlan { sensor_freeze_p: 1.0, sensor_freeze_window: 3, ..FaultPlan::none(5) };
        let fm = FaultyMachine::new(Machine::new(7), plan);
        let first = fm.execute(&kernel(), &cpu_cfg(), 0).unwrap();
        // The next three readings repeat the latch exactly, despite
        // run-to-run sensor noise; then a fresh window latches again.
        for i in 1..=3 {
            let r = fm.execute(&kernel(), &cpu_cfg(), i).unwrap();
            assert_eq!(r.power, first.power, "iteration {i}");
        }
        assert_eq!(fm.stats().sensor_freezes, 3);
    }

    #[test]
    fn bias_scales_measured_power() {
        let plan = FaultPlan {
            sensor_bias_p: 1.0,
            sensor_bias_frac: -0.2,
            sensor_bias_window: 2,
            ..FaultPlan::none(5)
        };
        let fm = FaultyMachine::new(Machine::new(7), plan);
        let honest = Machine::new(7).run_iter(&kernel(), &cpu_cfg(), 0);
        let biased = fm.execute(&kernel(), &cpu_cfg(), 0).unwrap();
        assert!((biased.power_w() - honest.power_w() * 0.8).abs() < 1e-9);
    }

    #[test]
    fn pstate_clamp_reports_the_actual_configuration() {
        let plan = FaultPlan { pstate_fail_p: 1.0, ..FaultPlan::none(5) };
        let fm = FaultyMachine::new(Machine::new(7), plan);
        // First transition from boot always lands.
        let r0 = fm.execute(&kernel(), &cpu_cfg(), 0).unwrap();
        assert_eq!(r0.config, cpu_cfg());
        // Every later change is rejected: hardware stays at cpu_cfg.
        let r1 = fm.execute(&kernel(), &gpu_cfg(), 1).unwrap();
        assert_eq!(r1.config, cpu_cfg());
        assert_ne!(r1.config, gpu_cfg());
        assert_eq!(fm.applied_config(), Some(cpu_cfg()));
        assert_eq!(fm.stats().pstate_clamps, 1);
        // Re-requesting the applied configuration is not a transition.
        let r2 = fm.execute(&kernel(), &cpu_cfg(), 2).unwrap();
        assert_eq!(r2.config, cpu_cfg());
        assert_eq!(fm.stats().pstate_clamps, 1);
    }

    #[test]
    fn run_failures_carry_kind_and_invocation() {
        let plan = FaultPlan { run_fail_p: 1.0, ..FaultPlan::none(5) };
        let fm = FaultyMachine::new(Machine::new(7), plan);
        let err = fm.execute(&kernel(), &cpu_cfg(), 0).unwrap_err();
        assert_eq!(err.kind, FaultKind::KernelRunFailure);
        assert_eq!(err.invocation, 1);
        assert!(err.to_string().contains("kernel run failure"));
        assert_eq!(fm.stats().run_failures, 1);
        // A failed run does not change the applied configuration.
        assert_eq!(fm.applied_config(), None);
    }

    #[test]
    fn counter_corruption_stays_finite() {
        let plan = FaultPlan { counter_corrupt_p: 1.0, ..FaultPlan::none(5) };
        let fm = FaultyMachine::new(Machine::new(7), plan);
        let honest = Machine::new(7).run_iter(&kernel(), &cpu_cfg(), 0);
        let r = fm.execute(&kernel(), &cpu_cfg(), 0).unwrap();
        assert_ne!(r.counters, honest.counters);
        for v in [
            r.counters.instructions,
            r.counters.core_cycles,
            r.counters.l1d_misses,
            r.counters.dram_accesses,
        ] {
            assert!(v.is_finite() && v >= 0.0);
        }
    }

    #[test]
    fn fault_rates_track_probabilities() {
        let plan = FaultPlan { sensor_dropout_p: 0.25, run_fail_p: 0.1, ..FaultPlan::none(123) };
        let fm = FaultyMachine::new(Machine::new(7), plan);
        let n = 2000;
        for i in 0..n {
            let _ = fm.execute(&kernel(), &cpu_cfg(), i);
        }
        let s = fm.stats();
        assert_eq!(s.invocations, n);
        let drop_rate = s.sensor_dropouts as f64 / (n - s.run_failures) as f64;
        let fail_rate = s.run_failures as f64 / n as f64;
        assert!((drop_rate - 0.25).abs() < 0.05, "dropout rate {drop_rate}");
        assert!((fail_rate - 0.1).abs() < 0.03, "run failure rate {fail_rate}");
    }

    #[test]
    fn reset_clears_state_and_reproduces() {
        let fm = FaultyMachine::new(Machine::new(7), chaotic_plan(42));
        let first: Vec<_> = (0..50).map(|i| fm.execute(&kernel(), &cpu_cfg(), i)).collect();
        fm.reset();
        let second: Vec<_> = (0..50).map(|i| fm.execute(&kernel(), &cpu_cfg(), i)).collect();
        assert_eq!(first, second);
    }
}
