//! Latent kernel characteristics that drive the analytic timing, power, and
//! counter models.
//!
//! The real system profiles opaque OpenMP/OpenCL kernels; the model only ever
//! sees `(time, power, counters)` tuples. Our substitute generates those
//! tuples from a small set of latent characteristics per kernel. The latents
//! are *not* visible to the model — they are the simulator's ground truth.

use serde::{Deserialize, Serialize};

/// Latent description of one computational kernel at one input size.
///
/// All time-like quantities are expressed at the reference operating point
/// (one CPU thread at 3.7 GHz; GPU at 819 MHz) and scaled by the timing
/// models in [`crate::cpu`] and [`crate::gpu`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelCharacteristics {
    /// Kernel name, e.g. `CalcFBHourglassForce`.
    pub name: String,
    /// Benchmark the kernel belongs to (`LULESH`, `CoMD`, `SMC`, `LU`).
    pub benchmark: String,
    /// Input-size label (`Small`, `Medium`, `Large`).
    pub input: String,

    /// Single-thread compute time at the CPU reference frequency, seconds.
    /// This is the frequency-scalable portion of execution.
    pub compute_time_s: f64,
    /// DRAM-bound time with one thread, seconds. Per the leading-loads model
    /// this portion does not scale with core frequency.
    pub memory_time_s: f64,
    /// Fraction of compute work that parallelizes across CPU threads
    /// (Amdahl). The remainder is serial and also runs on the CPU when the
    /// kernel is offloaded to the GPU.
    pub parallel_fraction: f64,
    /// Thread count at which DRAM bandwidth saturates; memory time stops
    /// improving beyond this many threads.
    pub bw_saturation_threads: f64,
    /// Throughput lost by a core when it shares a module's front-end/FPU
    /// with its sibling (0 = none, 1 = total). FP-heavy kernels suffer more.
    pub module_sharing_penalty: f64,
    /// Per-extra-thread synchronization overhead fraction.
    pub sync_overhead: f64,

    /// Effective GPU compute speedup over one CPU core at reference
    /// frequencies, after occupancy and coalescing effects.
    pub gpu_speedup: f64,
    /// Branch-divergence factor in 0..1; reduces effective GPU throughput.
    pub branch_divergence: f64,
    /// GPU memory-bandwidth advantage over a single CPU thread's achievable
    /// bandwidth (the APU shares one memory controller, so this is modest).
    pub gpu_bw_advantage: f64,
    /// OpenCL kernel-launch plus driver time at the CPU reference frequency,
    /// seconds. Runs on the host CPU, hence scales with CPU frequency.
    pub launch_overhead_s: f64,

    /// Fraction of CPU instructions that are vector (packed SIMD) ops.
    pub vector_fraction: f64,
    /// Resident working set in MiB; drives cache and TLB miss rates.
    pub working_set_mb: f64,
    /// CPU switching-activity factor in roughly 0.2..0.6.
    pub cpu_activity: f64,
    /// GPU switching-activity factor in roughly 0.3..0.9.
    pub gpu_activity: f64,

    /// Fraction of whole-application time spent in this kernel, used for
    /// the iteration-weighted aggregation of Section V-D.
    pub weight: f64,
}

impl KernelCharacteristics {
    /// Total single-thread time at the reference operating point.
    pub fn reference_time_s(&self) -> f64 {
        self.compute_time_s + self.memory_time_s
    }

    /// Memory-boundedness in [0, 1]: fraction of reference time that is
    /// DRAM-bound.
    pub fn memory_boundedness(&self) -> f64 {
        let total = self.reference_time_s();
        if total <= 0.0 {
            return 0.0;
        }
        self.memory_time_s / total
    }

    /// A stable identifier combining benchmark, input, and kernel name.
    pub fn id(&self) -> String {
        format!("{}/{}/{}", self.benchmark, self.input, self.name)
    }

    /// Validate that every latent lies in its physically meaningful range.
    /// Returns a list of violations (empty when the kernel is well-formed).
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        let mut check = |ok: bool, msg: &str| {
            if !ok {
                errs.push(format!("{}: {msg}", self.id()));
            }
        };
        check(self.compute_time_s > 0.0, "compute_time_s must be positive");
        check(self.memory_time_s >= 0.0, "memory_time_s must be non-negative");
        check((0.0..=1.0).contains(&self.parallel_fraction), "parallel_fraction must be in [0,1]");
        check(self.bw_saturation_threads >= 1.0, "bw_saturation_threads must be >= 1");
        check(
            (0.0..=1.0).contains(&self.module_sharing_penalty),
            "module_sharing_penalty must be in [0,1]",
        );
        check(self.sync_overhead >= 0.0, "sync_overhead must be non-negative");
        check(self.gpu_speedup > 0.0, "gpu_speedup must be positive");
        check((0.0..=1.0).contains(&self.branch_divergence), "branch_divergence must be in [0,1]");
        check(self.gpu_bw_advantage > 0.0, "gpu_bw_advantage must be positive");
        check(self.launch_overhead_s >= 0.0, "launch_overhead_s must be non-negative");
        check((0.0..=1.0).contains(&self.vector_fraction), "vector_fraction must be in [0,1]");
        check(self.working_set_mb > 0.0, "working_set_mb must be positive");
        check((0.05..=1.0).contains(&self.cpu_activity), "cpu_activity must be in [0.05,1]");
        check((0.05..=1.0).contains(&self.gpu_activity), "gpu_activity must be in [0.05,1]");
        check(self.weight > 0.0, "weight must be positive");
        errs
    }
}

/// A convenient builder-style default for tests and examples: a balanced
/// kernel with moderate parallelism and GPU affinity.
impl Default for KernelCharacteristics {
    fn default() -> Self {
        Self {
            name: "synthetic".into(),
            benchmark: "Synthetic".into(),
            input: "Default".into(),
            compute_time_s: 0.010,
            memory_time_s: 0.004,
            parallel_fraction: 0.95,
            bw_saturation_threads: 3.0,
            module_sharing_penalty: 0.15,
            sync_overhead: 0.03,
            gpu_speedup: 8.0,
            branch_divergence: 0.1,
            gpu_bw_advantage: 1.3,
            launch_overhead_s: 0.000_4,
            vector_fraction: 0.3,
            working_set_mb: 24.0,
            cpu_activity: 0.40,
            gpu_activity: 0.65,
            weight: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_kernel_is_valid() {
        assert!(KernelCharacteristics::default().validate().is_empty());
    }

    #[test]
    fn memory_boundedness_is_fractional() {
        let k = KernelCharacteristics {
            compute_time_s: 0.006,
            memory_time_s: 0.002,
            ..Default::default()
        };
        assert!((k.memory_boundedness() - 0.25).abs() < 1e-12);
        assert!((k.reference_time_s() - 0.008).abs() < 1e-12);
    }

    #[test]
    fn memory_boundedness_handles_zero_time() {
        let k = KernelCharacteristics {
            compute_time_s: 1e-300,
            memory_time_s: 0.0,
            ..Default::default()
        };
        assert_eq!(k.memory_boundedness(), 0.0);
    }

    #[test]
    fn validate_flags_bad_fields() {
        let k = KernelCharacteristics {
            parallel_fraction: 1.5,
            gpu_speedup: -1.0,
            ..Default::default()
        };
        let errs = k.validate();
        assert_eq!(errs.len(), 2);
        assert!(errs.iter().any(|e| e.contains("parallel_fraction")));
        assert!(errs.iter().any(|e| e.contains("gpu_speedup")));
    }

    #[test]
    fn id_is_hierarchical() {
        let k = KernelCharacteristics::default();
        assert_eq!(k.id(), "Synthetic/Default/synthetic");
    }
}
