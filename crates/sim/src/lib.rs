//! # acs-sim — analytic APU simulator
//!
//! A deterministic, calibrated stand-in for the AMD Trinity A10-5800K APU
//! the paper measures: two dual-core CPU modules sharing a voltage plane, an
//! integrated GPU on a second power plane, a shared memory controller, six
//! CPU P-states (1.4–3.7 GHz), three GPU P-states (311/649/819 MHz), eleven
//! PMU events, and a 1 kHz on-chip power estimator.
//!
//! The simulator's contract with the rest of the workspace is a single call:
//!
//! ```
//! use acs_sim::{Machine, Configuration, CpuPState, KernelCharacteristics};
//!
//! let machine = Machine::new(42);
//! let kernel = KernelCharacteristics::default();
//! let run = machine.run(&kernel, &Configuration::cpu(4, CpuPState::MAX));
//! assert!(run.time_s > 0.0 && run.power_w() > 0.0);
//! ```
//!
//! Everything downstream (profiling, model training, scheduling,
//! evaluation) consumes only `(time, power, counters)` tuples — exactly the
//! information the paper's profiling library records on real hardware.

#![warn(missing_docs)]

pub mod asymmetric;
pub mod boost;
pub mod config;
pub mod counters;
pub mod cpu;
pub mod drift;
pub mod family;
pub mod faults;
pub mod governor;
pub mod gpu;
pub mod kernel;
pub mod machine;
pub mod noise;
pub mod power;
pub mod pstate;
pub mod sensor;
pub mod trace;

pub use asymmetric::{asymmetric_cpu_power, asymmetric_cpu_time, AsymmetricCpuConfig};
pub use boost::{boosted_cpu_run, BoostedRun, ThermalModel, BOOST_STATES};
pub use config::{Configuration, Device, NUM_CPU_CORES, NUM_CPU_MODULES};
pub use counters::{CounterSet, FEATURE_NAMES};
pub use drift::{DriftFactors, DriftKind, DriftPlan, DriftedMachine};
pub use family::{Accelerator, FamilyId, MachineFamily};
pub use faults::{ExecutionFault, Executor, FaultKind, FaultPlan, FaultStats, FaultyMachine};
pub use governor::{GovernorAction, OndemandGovernor, TransitionModel};
pub use kernel::KernelCharacteristics;
pub use machine::{KernelRun, Machine};
pub use noise::NoiseSource;
pub use power::{PowerBreakdown, PowerCalibration};
pub use pstate::{CpuPState, GpuPState, CPU_REF_FREQ_GHZ, GPU_REF_FREQ_GHZ};
pub use sensor::PowerSensor;
pub use trace::{trace_for, trace_for_on, PowerTrace, TraceSegment};
