//! GPU timing model.
//!
//! A GPU execution consists of host-side work (the kernel's serial portion
//! plus OpenCL launch/driver overhead, both of which run on the CPU and
//! scale with the *CPU* frequency — this is why the paper's Pareto frontiers
//! contain GPU configurations at several CPU frequencies) and device-side
//! work. Device time is the max of a compute phase (scales with GPU
//! frequency, derated by branch divergence) and a memory phase (bound by the
//! shared memory controller, insensitive to GPU DVFS). The max models the
//! paper's observed plateau: memory-bound kernels gain nothing from the top
//! GPU P-state.

use crate::config::Configuration;
use crate::family::{FamilyId, MachineFamily};
use crate::kernel::KernelCharacteristics;

/// Breakdown of a GPU execution.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GpuTiming {
    /// Total wall time, seconds.
    pub total_s: f64,
    /// Host (CPU) time: serial portion + launch/driver overhead, seconds.
    pub host_s: f64,
    /// Device compute-limited time, seconds.
    pub device_compute_s: f64,
    /// Device memory-limited time, seconds.
    pub device_memory_s: f64,
    /// Device time actually accounted (max of compute/memory with overlap).
    pub device_s: f64,
}

/// Fraction of the shorter device phase that is *not* hidden under the
/// longer one. A small non-overlap keeps the plateau soft, as on real
/// hardware where compute and memory phases interleave imperfectly.
const NON_OVERLAP: f64 = 0.12;

/// Effective GPU compute speedup over one reference-frequency CPU core,
/// after branch-divergence derating.
pub fn effective_gpu_speedup(kernel: &KernelCharacteristics) -> f64 {
    kernel.gpu_speedup * (1.0 - 0.75 * kernel.branch_divergence)
}

/// Wall time of one kernel iteration at a GPU configuration, without noise.
pub fn gpu_time(kernel: &KernelCharacteristics, config: &Configuration) -> GpuTiming {
    gpu_time_on(FamilyId::Trinity.descriptor(), kernel, config)
}

/// [`gpu_time`] on an explicit machine family. The family reshapes the
/// device through its GPU array width and memory bandwidth; an attached
/// [`crate::family::Accelerator`] further scales regular-kernel speedup,
/// punishes divergence, and adds a fixed offload cost to the host phase.
/// With the Trinity descriptor every hook is a bitwise-neutral `× 1.0`.
pub fn gpu_time_on(
    family: &MachineFamily,
    kernel: &KernelCharacteristics,
    config: &Configuration,
) -> GpuTiming {
    let fc_rel = (family.cpu_point(config.cpu_pstate).freq_ghz / family.cpu_ref_freq_ghz())
        * family.ipc_scale;
    let fg_rel = family.gpu_point(config.gpu_pstate).freq_ghz / family.gpu_ref_freq_ghz();

    // Host work: the Amdahl-serial part cannot be offloaded, and launching
    // the kernel costs driver time; both run on the CPU.
    let serial = kernel.compute_time_s * (1.0 - kernel.parallel_fraction) / fc_rel;
    let mut launch = kernel.launch_overhead_s / fc_rel;

    // Device compute: parallel work accelerated by the (derated) GPU
    // speedup at the reference GPU frequency, scaled by GPU DVFS and the
    // family's array width.
    let mut raw_speedup = effective_gpu_speedup(kernel) * family.gpu_width_scale;
    if let Some(acc) = family.accelerator {
        raw_speedup *=
            acc.speedup_scale * (1.0 - acc.divergence_penalty * kernel.branch_divergence).max(0.05);
        launch += acc.offload_overhead_s / fc_rel;
    }
    let host = serial + launch;
    let speedup = raw_speedup.max(1e-3);
    let compute = kernel.compute_time_s * kernel.parallel_fraction / (speedup * fg_rel);

    // Device memory: shares the APU memory controller with the CPU; GPU
    // coalescing gives a modest bandwidth advantage. Insensitive to GPU
    // core DVFS.
    let memory = kernel.memory_time_s / (kernel.gpu_bw_advantage.max(1e-3) * family.mem_bw_scale);

    let device = compute.max(memory) + NON_OVERLAP * compute.min(memory);

    GpuTiming {
        total_s: host + device,
        host_s: host,
        device_compute_s: compute,
        device_memory_s: memory,
        device_s: device,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pstate::{CpuPState, GpuPState};

    fn kernel() -> KernelCharacteristics {
        KernelCharacteristics::default()
    }

    #[test]
    fn time_decreases_with_gpu_frequency_for_compute_bound() {
        let k = KernelCharacteristics { memory_time_s: 0.0, ..kernel() };
        let mut prev = f64::INFINITY;
        for gp in GpuPState::all() {
            let t = gpu_time(&k, &Configuration::gpu(gp, CpuPState::MAX)).total_s;
            assert!(t < prev);
            prev = t;
        }
    }

    #[test]
    fn memory_bound_kernel_plateaus_with_gpu_frequency() {
        let k = KernelCharacteristics { compute_time_s: 0.001, memory_time_s: 0.020, ..kernel() };
        let mid = gpu_time(&k, &Configuration::gpu(GpuPState(1), CpuPState::MAX)).total_s;
        let max = gpu_time(&k, &Configuration::gpu(GpuPState(2), CpuPState::MAX)).total_s;
        // Nearly no benefit from the top P-state once memory-bound.
        assert!((mid - max) / mid < 0.02, "mid={mid} max={max}");
    }

    #[test]
    fn host_time_scales_with_cpu_frequency() {
        let k = kernel();
        let slow = gpu_time(&k, &Configuration::gpu(GpuPState::MAX, CpuPState::MIN));
        let fast = gpu_time(&k, &Configuration::gpu(GpuPState::MAX, CpuPState::MAX));
        let ratio = slow.host_s / fast.host_s;
        let f_ratio = CpuPState::MAX.freq_ghz() / CpuPState::MIN.freq_ghz();
        assert!((ratio - f_ratio).abs() < 1e-9, "host time scales inversely with CPU f");
        assert!(slow.total_s > fast.total_s);
    }

    #[test]
    fn device_time_unaffected_by_cpu_frequency() {
        let k = kernel();
        let a = gpu_time(&k, &Configuration::gpu(GpuPState(1), CpuPState::MIN));
        let b = gpu_time(&k, &Configuration::gpu(GpuPState(1), CpuPState::MAX));
        assert!((a.device_s - b.device_s).abs() < 1e-15);
    }

    #[test]
    fn branch_divergence_slows_gpu() {
        let smooth = KernelCharacteristics { branch_divergence: 0.0, ..kernel() };
        let divergent = KernelCharacteristics { branch_divergence: 0.8, ..kernel() };
        let cfg = Configuration::gpu(GpuPState::MAX, CpuPState::MAX);
        assert!(gpu_time(&divergent, &cfg).total_s > gpu_time(&smooth, &cfg).total_s);
    }

    #[test]
    fn gpu_beats_cpu_for_friendly_kernel() {
        let k = KernelCharacteristics {
            gpu_speedup: 12.0,
            branch_divergence: 0.0,
            parallel_fraction: 0.99,
            ..kernel()
        };
        let g = gpu_time(&k, &Configuration::gpu(GpuPState::MAX, CpuPState::MAX)).total_s;
        let c = crate::cpu::cpu_time(&k, &Configuration::cpu(4, CpuPState::MAX)).total_s;
        assert!(g < c, "GPU ({g}) should beat 4-thread CPU ({c}) on a friendly kernel");
    }

    #[test]
    fn cpu_beats_gpu_for_hostile_kernel() {
        let k = KernelCharacteristics {
            gpu_speedup: 2.0,
            branch_divergence: 0.9,
            parallel_fraction: 0.7,
            launch_overhead_s: 0.002,
            ..kernel()
        };
        let g = gpu_time(&k, &Configuration::gpu(GpuPState::MAX, CpuPState::MAX)).total_s;
        let c = crate::cpu::cpu_time(&k, &Configuration::cpu(4, CpuPState::MAX)).total_s;
        assert!(c < g, "CPU ({c}) should beat GPU ({g}) on a divergent kernel");
    }

    #[test]
    fn timing_breakdown_is_consistent() {
        let k = kernel();
        let t = gpu_time(&k, &Configuration::gpu(GpuPState(1), CpuPState(2)));
        assert!((t.host_s + t.device_s - t.total_s).abs() < 1e-15);
        assert!(t.device_s >= t.device_compute_s.max(t.device_memory_s));
    }

    #[test]
    fn effective_speedup_deration() {
        let k = KernelCharacteristics { gpu_speedup: 10.0, branch_divergence: 1.0, ..kernel() };
        assert!((effective_gpu_speedup(&k) - 2.5).abs() < 1e-12);
    }
}
