//! P-state management: ACPI-style transitions and a utilization-driven
//! governor.
//!
//! "Software-visible P-states are managed either by the OS through the
//! Advanced Configuration and Power Interface (ACPI) specification or by
//! the hardware" (Section IV-A). Real transitions are not free: the
//! voltage regulator slews at a finite rate and the PLL relocks, during
//! which the core stalls or runs at the lower of the two frequencies.
//! This module models those costs so frequency-limiting policies can be
//! charged for every step they take, and provides the classic
//! `ondemand`-style governor as the OS baseline the paper's methods
//! replace.

use crate::pstate::{CpuPState, GpuPState};
use serde::{Deserialize, Serialize};

/// Transition-cost model for P-state changes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionModel {
    /// Voltage regulator slew rate, volts per second.
    pub slew_v_per_s: f64,
    /// Fixed PLL relock / microcode latency per transition, seconds.
    pub relock_s: f64,
}

impl Default for TransitionModel {
    fn default() -> Self {
        // ~6.25 mV/µs slew and 5 µs relock — typical of the era's VRMs.
        Self { slew_v_per_s: 6250.0, relock_s: 5e-6 }
    }
}

impl TransitionModel {
    /// Latency of one CPU P-state transition, seconds.
    pub fn cpu_latency_s(&self, from: CpuPState, to: CpuPState) -> f64 {
        if from == to {
            return 0.0;
        }
        let dv = (from.voltage_v() - to.voltage_v()).abs();
        dv / self.slew_v_per_s + self.relock_s
    }

    /// Latency of one GPU P-state transition, seconds.
    pub fn gpu_latency_s(&self, from: GpuPState, to: GpuPState) -> f64 {
        if from == to {
            return 0.0;
        }
        let dv = (from.voltage_v() - to.voltage_v()).abs();
        dv / self.slew_v_per_s + self.relock_s
    }

    /// Total latency of walking the CPU P-state ladder one step at a time
    /// (how a stepping limiter actually moves), seconds.
    pub fn cpu_walk_latency_s(&self, from: CpuPState, to: CpuPState) -> f64 {
        let (lo, hi) = if from.0 <= to.0 { (from.0, to.0) } else { (to.0, from.0) };
        (lo..hi).map(|i| self.cpu_latency_s(CpuPState(i), CpuPState(i + 1))).sum()
    }
}

/// Decision of a governor evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GovernorAction {
    /// Stay at the current P-state.
    Hold,
    /// Move to the given P-state.
    Move(CpuPState),
}

/// The classic `ondemand` CPU governor: jump to the top state when
/// utilization exceeds `up_threshold`, otherwise settle at the lowest
/// state whose capacity covers current demand with headroom.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OndemandGovernor {
    /// Utilization above which the governor jumps straight to maximum.
    pub up_threshold: f64,
    /// Target utilization when scaling down (capacity headroom).
    pub target_util: f64,
}

impl Default for OndemandGovernor {
    fn default() -> Self {
        Self { up_threshold: 0.80, target_util: 0.70 }
    }
}

impl OndemandGovernor {
    /// Evaluate the governor at `current` P-state under the observed core
    /// utilization in [0, 1].
    pub fn evaluate(&self, current: CpuPState, utilization: f64) -> GovernorAction {
        let util = utilization.clamp(0.0, 1.0);
        if util > self.up_threshold {
            return if current == CpuPState::MAX {
                GovernorAction::Hold
            } else {
                GovernorAction::Move(CpuPState::MAX)
            };
        }
        // Demand in units of max-frequency capacity.
        let demand = util * current.freq_ghz() / CpuPState::MAX.freq_ghz();
        let target = CpuPState::all()
            .find(|p| demand <= self.target_util * p.freq_ghz() / CpuPState::MAX.freq_ghz())
            .unwrap_or(CpuPState::MAX);
        if target == current {
            GovernorAction::Hold
        } else {
            GovernorAction::Move(target)
        }
    }

    /// Run the governor to its fixed point from `start` under constant
    /// utilization-of-capacity `busy_fraction_at_max` (the fraction of a
    /// max-frequency core the workload needs). Returns the settled state
    /// and the number of transitions taken.
    pub fn settle(&self, start: CpuPState, busy_fraction_at_max: f64) -> (CpuPState, u32) {
        let mut state = start;
        let mut moves = 0;
        // The observed utilization at a state is demand/capacity.
        for _ in 0..16 {
            let capacity = state.freq_ghz() / CpuPState::MAX.freq_ghz();
            let util = (busy_fraction_at_max / capacity).min(1.0);
            match self.evaluate(state, util) {
                GovernorAction::Hold => return (state, moves),
                GovernorAction::Move(next) => {
                    state = next;
                    moves += 1;
                }
            }
        }
        (state, moves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_latency_scales_with_voltage_delta() {
        let t = TransitionModel::default();
        let small = t.cpu_latency_s(CpuPState(0), CpuPState(1));
        let large = t.cpu_latency_s(CpuPState(0), CpuPState(5));
        assert!(large > small);
        assert_eq!(t.cpu_latency_s(CpuPState(2), CpuPState(2)), 0.0);
        // Symmetric.
        assert_eq!(
            t.cpu_latency_s(CpuPState(1), CpuPState(4)),
            t.cpu_latency_s(CpuPState(4), CpuPState(1))
        );
    }

    #[test]
    fn transitions_are_microseconds_scale() {
        let t = TransitionModel::default();
        let full_swing = t.cpu_latency_s(CpuPState::MIN, CpuPState::MAX);
        assert!(full_swing > 1e-6 && full_swing < 200e-6, "{full_swing}");
    }

    #[test]
    fn walk_latency_sums_steps() {
        let t = TransitionModel::default();
        let direct: f64 = (0..5).map(|i| t.cpu_latency_s(CpuPState(i), CpuPState(i + 1))).sum();
        assert!((t.cpu_walk_latency_s(CpuPState::MIN, CpuPState::MAX) - direct).abs() < 1e-15);
        assert_eq!(t.cpu_walk_latency_s(CpuPState(3), CpuPState(3)), 0.0);
        // Direction-independent.
        assert_eq!(
            t.cpu_walk_latency_s(CpuPState::MAX, CpuPState::MIN),
            t.cpu_walk_latency_s(CpuPState::MIN, CpuPState::MAX)
        );
    }

    #[test]
    fn gpu_latency_behaves_like_cpu() {
        let t = TransitionModel::default();
        assert_eq!(t.gpu_latency_s(GpuPState(1), GpuPState(1)), 0.0);
        assert!(t.gpu_latency_s(GpuPState(0), GpuPState(2)) > t.relock_s);
    }

    #[test]
    fn ondemand_jumps_to_max_when_busy() {
        let g = OndemandGovernor::default();
        assert_eq!(g.evaluate(CpuPState(2), 0.95), GovernorAction::Move(CpuPState::MAX));
        assert_eq!(g.evaluate(CpuPState::MAX, 0.95), GovernorAction::Hold);
    }

    #[test]
    fn ondemand_scales_down_when_idle() {
        let g = OndemandGovernor::default();
        match g.evaluate(CpuPState::MAX, 0.10) {
            GovernorAction::Move(p) => assert!(p < CpuPState::MAX),
            GovernorAction::Hold => panic!("10% utilization should scale down"),
        }
    }

    #[test]
    fn settle_reaches_a_fixed_point() {
        let g = OndemandGovernor::default();
        for demand in [0.05, 0.3, 0.6, 0.95] {
            for start in CpuPState::all() {
                let (state, moves) = g.settle(start, demand);
                // Fixed point: evaluating again holds.
                let capacity = state.freq_ghz() / CpuPState::MAX.freq_ghz();
                let util = (demand / capacity).min(1.0);
                assert_eq!(
                    g.evaluate(state, util),
                    GovernorAction::Hold,
                    "demand {demand}, start {start:?} → {state:?} after {moves} moves"
                );
            }
        }
    }

    #[test]
    fn heavy_demand_settles_at_max() {
        let g = OndemandGovernor::default();
        let (state, _) = g.settle(CpuPState::MIN, 0.9);
        assert_eq!(state, CpuPState::MAX);
    }

    #[test]
    fn light_demand_settles_low() {
        let g = OndemandGovernor::default();
        let (state, _) = g.settle(CpuPState::MAX, 0.15);
        assert!(state <= CpuPState(1), "light demand should sit near the floor, got {state:?}");
    }
}
