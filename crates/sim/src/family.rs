//! Machine families: parametric descriptors the simulator instantiates.
//!
//! The paper measures one machine — a Trinity A10-5800K — but a fleet is
//! heterogeneous, and *Cross Architectural Power Modelling* shows model
//! accuracy degrades non-trivially across architectures. A
//! [`MachineFamily`] captures the physical response of one architecture
//! class — P-state tables, core/module topology, relative IPC, GPU array
//! width, memory bandwidth, power calibration, and an optional Lumos-style
//! offload accelerator — while the *software control interface* stays the
//! paper's fixed 42-configuration knob space. That keeps models trained on
//! one family mechanically servable on another, which is exactly the
//! transfer gap the verify crate's transfer harness measures.
//!
//! The Trinity descriptor is arithmetically neutral: every family hook it
//! passes through (`ipc_scale`, `gpu_width_scale`, `mem_bw_scale` at 1.0,
//! the global P-state tables, 2-core modules) reproduces the original
//! hard-coded model bit-for-bit, so blessed golden traces stay valid.

use crate::config::{NUM_CPU_CORES, NUM_CPU_MODULES};
use crate::power::PowerCalibration;
use crate::pstate::{CpuPState, GpuPState, OperatingPoint, CPU_PSTATES, GPU_PSTATES};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Identifier of a canonical machine family. Serialized as a unit variant,
/// so it is cheap to embed in cache keys, configs, and wire messages.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum FamilyId {
    /// The paper's AMD Trinity A10-5800K: 2 dual-core modules + iGPU.
    #[default]
    Trinity,
    /// A big desktop APU: 8 cores in 4 modules, faster clocks, wide GPU.
    BigCore,
    /// A low-power embedded APU: 2 cores, one module, narrow GPU.
    LowPower,
    /// A Lumos-style asymmetric part: one 4-wide CPU cluster plus a wide
    /// offload accelerator on the GPU plane.
    AccelHybrid,
}

impl FamilyId {
    /// Every canonical family, Trinity first.
    pub const ALL: [FamilyId; 4] =
        [FamilyId::Trinity, FamilyId::BigCore, FamilyId::LowPower, FamilyId::AccelHybrid];

    /// Stable lowercase name (used in cache file names, CLI flags, and
    /// reports).
    pub fn as_str(self) -> &'static str {
        match self {
            FamilyId::Trinity => "trinity",
            FamilyId::BigCore => "bigcore",
            FamilyId::LowPower => "lowpower",
            FamilyId::AccelHybrid => "accel",
        }
    }

    /// Parse a [`FamilyId::as_str`] name (case-insensitive).
    pub fn parse(s: &str) -> Option<FamilyId> {
        FamilyId::ALL.into_iter().find(|f| f.as_str().eq_ignore_ascii_case(s.trim()))
    }

    /// The family's full descriptor (lazily built, process-wide).
    pub fn descriptor(self) -> &'static MachineFamily {
        static TABLE: OnceLock<[MachineFamily; 4]> = OnceLock::new();
        let table = TABLE.get_or_init(|| [trinity(), bigcore(), lowpower(), accel_hybrid()]);
        match self {
            FamilyId::Trinity => &table[0],
            FamilyId::BigCore => &table[1],
            FamilyId::LowPower => &table[2],
            FamilyId::AccelHybrid => &table[3],
        }
    }
}

impl std::fmt::Display for FamilyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A Lumos-style offload accelerator attached to the GPU power plane: very
/// wide for regular data-parallel work, brutally derated by control-flow
/// divergence, and paying a fixed per-launch offload cost. Its power curve
/// lives in the owning family's [`PowerCalibration`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Accelerator {
    /// Extra compute speedup multiplier on top of the kernel's (already
    /// divergence-derated) GPU speedup.
    pub speedup_scale: f64,
    /// Divergence derating strength: throughput is further multiplied by
    /// `(1 − penalty · branch_divergence)`, floored at 5%. Accelerator
    /// lanes stall far harder on divergent control flow than GPU SIMDs.
    pub divergence_penalty: f64,
    /// Fixed offload/reconfiguration overhead per launch, seconds (at the
    /// reference host frequency; scales with host DVFS like launch cost).
    pub offload_overhead_s: f64,
}

/// Parametric description of one machine architecture class.
///
/// The knob space (6 CPU P-state indices × 4 threads, 3 GPU P-state
/// indices) is fixed across families — it is the *software interface* the
/// paper's selector manipulates — while this struct defines what the
/// hardware underneath does with each knob.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineFamily {
    /// Which canonical family this is.
    pub id: FamilyId,
    /// CPU voltage/frequency table, slowest first (always 6 entries — the
    /// knob space is shared; the *values* are per-family).
    pub cpu_pstates: [OperatingPoint; CpuPState::COUNT],
    /// GPU voltage/frequency table, slowest first (always 3 entries).
    pub gpu_pstates: [OperatingPoint; GpuPState::COUNT],
    /// Physical core count. The thread knob still spans 1..=4; a family
    /// with fewer cores oversubscribes (extra software threads add sync
    /// overhead but no compute or memory parallelism), one with more
    /// leaves cores dark.
    pub cpu_cores: u8,
    /// Cores per shared-front-end module (Piledriver: 2). `1` disables
    /// module sharing entirely.
    pub cores_per_module: u8,
    /// Single-core compute throughput relative to a Trinity core at equal
    /// frequency (multiplies the effective frequency).
    pub ipc_scale: f64,
    /// GPU array width relative to Trinity's (multiplies the kernel's
    /// effective GPU speedup).
    pub gpu_width_scale: f64,
    /// Memory subsystem bandwidth relative to Trinity's (divides DRAM
    /// time on both devices).
    pub mem_bw_scale: f64,
    /// The family's power-model calibration.
    pub power_cal: PowerCalibration,
    /// Offload accelerator in place of a conventional GPU, if any.
    pub accelerator: Option<Accelerator>,
}

impl MachineFamily {
    /// Operating point behind a CPU P-state knob on this family.
    #[inline]
    pub fn cpu_point(&self, p: CpuPState) -> OperatingPoint {
        self.cpu_pstates[p.0 as usize]
    }

    /// Operating point behind a GPU P-state knob on this family.
    #[inline]
    pub fn gpu_point(&self, p: GpuPState) -> OperatingPoint {
        self.gpu_pstates[p.0 as usize]
    }

    /// Reference (fastest) CPU frequency, GHz — the family's counter
    /// normalization and leading-loads anchor.
    #[inline]
    pub fn cpu_ref_freq_ghz(&self) -> f64 {
        self.cpu_pstates[CpuPState::COUNT - 1].freq_ghz
    }

    /// Reference (fastest) GPU frequency, GHz.
    #[inline]
    pub fn gpu_ref_freq_ghz(&self) -> f64 {
        self.gpu_pstates[GpuPState::COUNT - 1].freq_ghz
    }

    /// Total module count (`cpu_cores / cores_per_module`, rounded up).
    #[inline]
    pub fn total_modules(&self) -> u8 {
        self.cpu_cores.div_ceil(self.cores_per_module.max(1))
    }

    /// Threads actually backed by physical cores (oversubscribed software
    /// threads share cores and contribute no extra parallelism).
    #[inline]
    pub fn physical_threads(&self, threads: u8) -> u8 {
        threads.min(self.cpu_cores)
    }

    /// Fraction of physically-placed threads that share a module with a
    /// sibling, under compact packing. Generalizes the Trinity table
    /// (0, 1, 2/3, 1 for 1..=4 threads on 2-core modules) to any module
    /// width.
    pub fn shared_core_fraction(&self, threads: u8) -> f64 {
        let m = self.cores_per_module;
        let active = self.physical_threads(threads);
        if m <= 1 || active <= 1 {
            return 0.0;
        }
        let full = (active / m) * m;
        let rem = active % m;
        let shared = full + if rem >= 2 { rem } else { 0 };
        f64::from(shared) / f64::from(active)
    }
}

/// The paper's Trinity A10-5800K — the neutral element of the family
/// abstraction: every scale factor is 1.0 and the tables are the global
/// constants, so the generalized model reproduces the original bit-for-bit.
fn trinity() -> MachineFamily {
    MachineFamily {
        id: FamilyId::Trinity,
        cpu_pstates: CPU_PSTATES,
        gpu_pstates: GPU_PSTATES,
        cpu_cores: NUM_CPU_CORES,
        cores_per_module: NUM_CPU_CORES / NUM_CPU_MODULES,
        ipc_scale: 1.0,
        gpu_width_scale: 1.0,
        mem_bw_scale: 1.0,
        power_cal: PowerCalibration::default(),
        accelerator: None,
    }
}

/// A big desktop APU: 8 cores in 4 dual-core modules, higher clocks and
/// IPC, a much wider GPU, and half again the memory bandwidth — with the
/// power bill to match. The 4-thread knob ceiling leaves half the machine
/// dark, so idle/gated overheads weigh more than on Trinity.
fn bigcore() -> MachineFamily {
    MachineFamily {
        id: FamilyId::BigCore,
        cpu_pstates: [
            OperatingPoint::new(1.6, 0.800),
            OperatingPoint::new(2.1, 0.875),
            OperatingPoint::new(2.6, 0.950),
            OperatingPoint::new(3.1, 1.025),
            OperatingPoint::new(3.6, 1.100),
            OperatingPoint::new(4.2, 1.200),
        ],
        gpu_pstates: [
            OperatingPoint::new(0.400, 0.850),
            OperatingPoint::new(0.800, 1.000),
            OperatingPoint::new(1.100, 1.150),
        ],
        cpu_cores: 8,
        cores_per_module: 2,
        ipc_scale: 1.15,
        gpu_width_scale: 1.6,
        mem_bw_scale: 1.5,
        power_cal: PowerCalibration {
            k_cpu_dyn: 4.6,
            k_cpu_leak_module: 1.9,
            cpu_idle_core_w: 0.25,
            cpu_gated_module_w: 0.35,
            cpu_uncore_w: 3.2,
            k_gpu_dyn: 30.0,
            k_gpu_leak: 2.4,
            gpu_active_base_w: 10.0,
            nb_base_w: 4.0,
            nb_dram_w: 8.0,
            ..PowerCalibration::default()
        },
        accelerator: None,
    }
}

/// A low-power embedded APU: two cores on one module, sub-GHz floor,
/// narrow GPU, and ~70% of Trinity's memory bandwidth. Thread knobs 3 and
/// 4 oversubscribe — they pay synchronization overhead without adding
/// compute, producing the inverted thread-scaling curve transfer models
/// trained on Trinity never saw.
fn lowpower() -> MachineFamily {
    MachineFamily {
        id: FamilyId::LowPower,
        cpu_pstates: [
            OperatingPoint::new(0.8, 0.750),
            OperatingPoint::new(1.0, 0.800),
            OperatingPoint::new(1.2, 0.850),
            OperatingPoint::new(1.5, 0.900),
            OperatingPoint::new(1.8, 0.975),
            OperatingPoint::new(2.2, 1.050),
        ],
        gpu_pstates: [
            OperatingPoint::new(0.200, 0.800),
            OperatingPoint::new(0.450, 0.900),
            OperatingPoint::new(0.600, 1.000),
        ],
        cpu_cores: 2,
        cores_per_module: 2,
        ipc_scale: 0.8,
        gpu_width_scale: 0.5,
        mem_bw_scale: 0.7,
        power_cal: PowerCalibration {
            k_cpu_dyn: 2.2,
            k_cpu_leak_module: 0.8,
            cpu_idle_core_w: 0.1,
            cpu_gated_module_w: 0.15,
            cpu_uncore_w: 0.9,
            k_gpu_dyn: 12.0,
            k_gpu_leak: 0.9,
            gpu_active_base_w: 3.0,
            nb_base_w: 1.5,
            nb_dram_w: 3.0,
            ..PowerCalibration::default()
        },
        accelerator: None,
    }
}

/// A Lumos-style asymmetric part: four cores sharing one wide front-end
/// cluster (all threads contend once two are active), and a wide offload
/// accelerator on the GPU plane — 3× the effective speedup on regular
/// kernels, savage divergence derating, and a fixed offload cost per
/// launch.
fn accel_hybrid() -> MachineFamily {
    MachineFamily {
        id: FamilyId::AccelHybrid,
        cpu_pstates: [
            OperatingPoint::new(1.2, 0.825),
            OperatingPoint::new(1.7, 0.900),
            OperatingPoint::new(2.2, 0.975),
            OperatingPoint::new(2.7, 1.050),
            OperatingPoint::new(3.1, 1.125),
            OperatingPoint::new(3.5, 1.200),
        ],
        gpu_pstates: [
            OperatingPoint::new(0.250, 0.850),
            OperatingPoint::new(0.500, 1.000),
            OperatingPoint::new(0.700, 1.125),
        ],
        cpu_cores: 4,
        cores_per_module: 4,
        ipc_scale: 0.9,
        gpu_width_scale: 2.0,
        mem_bw_scale: 1.2,
        power_cal: PowerCalibration {
            k_cpu_dyn: 3.4,
            k_cpu_leak_module: 2.4,
            cpu_idle_core_w: 0.2,
            cpu_gated_module_w: 0.3,
            cpu_uncore_w: 1.5,
            k_gpu_dyn: 20.0,
            k_gpu_leak: 1.4,
            gpu_active_base_w: 9.0,
            nb_base_w: 3.5,
            nb_dram_w: 7.0,
            ..PowerCalibration::default()
        },
        accelerator: Some(Accelerator {
            speedup_scale: 3.0,
            divergence_penalty: 0.9,
            offload_overhead_s: 0.0008,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trinity_descriptor_is_neutral() {
        let t = FamilyId::Trinity.descriptor();
        assert_eq!(t.cpu_pstates, CPU_PSTATES);
        assert_eq!(t.gpu_pstates, GPU_PSTATES);
        assert_eq!(t.cpu_cores, NUM_CPU_CORES);
        assert_eq!(t.cores_per_module, 2);
        assert_eq!(t.total_modules(), NUM_CPU_MODULES);
        assert_eq!(t.ipc_scale, 1.0);
        assert_eq!(t.gpu_width_scale, 1.0);
        assert_eq!(t.mem_bw_scale, 1.0);
        assert_eq!(t.power_cal, PowerCalibration::default());
        assert!(t.accelerator.is_none());
        assert_eq!(t.cpu_ref_freq_ghz(), crate::pstate::CPU_REF_FREQ_GHZ);
        assert_eq!(t.gpu_ref_freq_ghz(), crate::pstate::GPU_REF_FREQ_GHZ);
    }

    #[test]
    fn trinity_shared_core_fraction_matches_the_legacy_table() {
        let t = FamilyId::Trinity.descriptor();
        for threads in 0..=5u8 {
            assert_eq!(
                t.shared_core_fraction(threads).to_bits(),
                crate::cpu::shared_core_fraction(threads).to_bits(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn family_names_roundtrip() {
        for f in FamilyId::ALL {
            assert_eq!(FamilyId::parse(f.as_str()), Some(f));
            assert_eq!(FamilyId::parse(&f.as_str().to_uppercase()), Some(f));
        }
        assert_eq!(FamilyId::parse("no-such-family"), None);
    }

    #[test]
    fn descriptors_are_stable_references() {
        for f in FamilyId::ALL {
            assert!(std::ptr::eq(f.descriptor(), f.descriptor()));
            assert_eq!(f.descriptor().id, f);
        }
    }

    #[test]
    fn every_family_has_monotone_pstate_tables() {
        for f in FamilyId::ALL {
            let d = f.descriptor();
            for w in d.cpu_pstates.windows(2) {
                assert!(w[0].freq_ghz < w[1].freq_ghz, "{f}: cpu freqs must rise");
                assert!(w[0].voltage_v < w[1].voltage_v, "{f}: cpu volts must rise");
            }
            for w in d.gpu_pstates.windows(2) {
                assert!(w[0].freq_ghz < w[1].freq_ghz, "{f}: gpu freqs must rise");
                assert!(w[0].voltage_v < w[1].voltage_v, "{f}: gpu volts must rise");
            }
        }
    }

    #[test]
    fn lowpower_oversubscribes_above_its_core_count() {
        let d = FamilyId::LowPower.descriptor();
        assert_eq!(d.physical_threads(1), 1);
        assert_eq!(d.physical_threads(2), 2);
        assert_eq!(d.physical_threads(3), 2);
        assert_eq!(d.physical_threads(4), 2);
    }

    #[test]
    fn accel_family_shares_one_wide_module() {
        let d = FamilyId::AccelHybrid.descriptor();
        assert_eq!(d.total_modules(), 1);
        assert_eq!(d.shared_core_fraction(1), 0.0);
        // Any two or more threads all contend on the single cluster.
        assert_eq!(d.shared_core_fraction(2), 1.0);
        assert_eq!(d.shared_core_fraction(3), 1.0);
        assert_eq!(d.shared_core_fraction(4), 1.0);
        assert!(d.accelerator.is_some());
    }

    #[test]
    fn family_id_serializes_as_its_variant() {
        let json = serde_json::to_string(&FamilyId::BigCore).unwrap();
        let back: FamilyId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, FamilyId::BigCore);
    }
}
