//! Hardware configurations: the unit the model ranks and the scheduler picks.
//!
//! A configuration is a device selection plus the DVFS and concurrency knobs
//! of Section I: device (CPU or GPU), CPU thread count, CPU P-state, and GPU
//! P-state. CPU-device configurations park the GPU at its minimum P-state;
//! GPU-device configurations use one host thread (the OpenCL driver thread),
//! whose CPU P-state still matters because kernel-launch overhead runs on it.

use crate::pstate::{CpuPState, GpuPState};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which device executes the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Device {
    /// OpenMP implementation on the CPU compute units.
    Cpu,
    /// OpenCL implementation on the integrated GPU.
    Gpu,
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Device::Cpu => write!(f, "CPU"),
            Device::Gpu => write!(f, "GPU"),
        }
    }
}

/// Number of CPU cores on the simulated APU (two dual-core modules).
pub const NUM_CPU_CORES: u8 = 4;

/// Number of CPU compute units (dual-core "Piledriver" modules).
pub const NUM_CPU_MODULES: u8 = 2;

/// A full hardware configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Configuration {
    /// Executing device.
    pub device: Device,
    /// Active CPU threads (1..=4 for CPU device; always 1 for GPU device).
    pub threads: u8,
    /// P-state of the CPU compute units.
    pub cpu_pstate: CpuPState,
    /// P-state of the GPU (minimum when the CPU executes the kernel).
    pub gpu_pstate: GpuPState,
}

impl Configuration {
    /// A CPU-device configuration. The GPU is parked at its minimum P-state.
    pub fn cpu(threads: u8, cpu_pstate: CpuPState) -> Self {
        assert!(
            (1..=NUM_CPU_CORES).contains(&threads),
            "CPU thread count must be in 1..={NUM_CPU_CORES}, got {threads}"
        );
        Self { device: Device::Cpu, threads, cpu_pstate, gpu_pstate: GpuPState::MIN }
    }

    /// A GPU-device configuration with one host thread.
    pub fn gpu(gpu_pstate: GpuPState, cpu_pstate: CpuPState) -> Self {
        Self { device: Device::Gpu, threads: 1, cpu_pstate, gpu_pstate }
    }

    /// Number of CPU modules with at least one active core.
    ///
    /// Threads are packed onto modules in core order (cores 0,1 are module 0;
    /// cores 2,3 are module 1), matching a compact OpenMP affinity.
    pub fn active_modules(&self) -> u8 {
        match self.device {
            Device::Cpu => self.threads.div_ceil(2),
            Device::Gpu => 1,
        }
    }

    /// True when both cores of at least one module are active, sharing the
    /// module's front-end and FPU.
    pub fn has_shared_module(&self) -> bool {
        self.device == Device::Cpu && self.threads >= 2
    }

    /// The full configuration space of the simulated machine:
    /// 6 CPU P-states × 4 thread counts (CPU device) plus
    /// 6 CPU P-states × 3 GPU P-states (GPU device) = 42 configurations.
    ///
    /// The space is enumerated once and cached for the life of the
    /// process — it sits on the sub-millisecond online selection path, so
    /// use [`Configuration::all`] to borrow it allocation-free; this
    /// signature survives as a thin cloning wrapper for callers that want
    /// ownership.
    pub fn enumerate() -> Vec<Configuration> {
        Self::all().to_vec()
    }

    /// The cached configuration space, in [`enumerate`]'s order.
    ///
    /// [`enumerate`]: Configuration::enumerate
    pub fn all() -> &'static [Configuration] {
        static SPACE: std::sync::OnceLock<Vec<Configuration>> = std::sync::OnceLock::new();
        SPACE.get_or_init(|| {
            let mut out = Vec::with_capacity(Self::space_size());
            for cp in CpuPState::all() {
                for threads in 1..=NUM_CPU_CORES {
                    out.push(Configuration::cpu(threads, cp));
                }
            }
            for cp in CpuPState::all() {
                for gp in GpuPState::all() {
                    out.push(Configuration::gpu(gp, cp));
                }
            }
            out
        })
    }

    /// A stable dense index of this configuration within [`enumerate`]'s
    /// ordering. Useful as a compact key for per-configuration tables.
    ///
    /// [`enumerate`]: Configuration::enumerate
    pub fn index(&self) -> usize {
        match self.device {
            Device::Cpu => {
                self.cpu_pstate.0 as usize * NUM_CPU_CORES as usize + (self.threads as usize - 1)
            }
            Device::Gpu => {
                CpuPState::COUNT * NUM_CPU_CORES as usize
                    + self.cpu_pstate.0 as usize * GpuPState::COUNT
                    + self.gpu_pstate.0 as usize
            }
        }
    }

    /// Total number of configurations in the space.
    pub fn space_size() -> usize {
        CpuPState::COUNT * NUM_CPU_CORES as usize + CpuPState::COUNT * GpuPState::COUNT
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.device {
            Device::Cpu => write!(
                f,
                "CPU {}T @ {:.1} GHz (GPU parked {:.3} GHz)",
                self.threads,
                self.cpu_pstate.freq_ghz(),
                self.gpu_pstate.freq_ghz()
            ),
            Device::Gpu => write!(
                f,
                "GPU @ {:.3} GHz (host CPU {:.1} GHz)",
                self.gpu_pstate.freq_ghz(),
                self.cpu_pstate.freq_ghz()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_has_42_configurations() {
        let all = Configuration::enumerate();
        assert_eq!(all.len(), 42);
        assert_eq!(all.len(), Configuration::space_size());
    }

    #[test]
    fn all_is_cached_and_matches_enumerate() {
        // Same static slice on every call (one enumeration per process)…
        assert!(std::ptr::eq(Configuration::all(), Configuration::all()));
        // …and the owning wrapper sees exactly the same space.
        assert_eq!(Configuration::enumerate(), Configuration::all());
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        let all = Configuration::enumerate();
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn index_matches_enumeration_order() {
        for (i, c) in Configuration::enumerate().iter().enumerate() {
            assert_eq!(c.index(), i, "config {c} has wrong index");
        }
    }

    #[test]
    fn cpu_configs_park_gpu() {
        for c in Configuration::enumerate() {
            if c.device == Device::Cpu {
                assert_eq!(c.gpu_pstate, GpuPState::MIN);
            } else {
                assert_eq!(c.threads, 1);
            }
        }
    }

    #[test]
    fn active_modules_packs_compactly() {
        assert_eq!(Configuration::cpu(1, CpuPState::MIN).active_modules(), 1);
        assert_eq!(Configuration::cpu(2, CpuPState::MIN).active_modules(), 1);
        assert_eq!(Configuration::cpu(3, CpuPState::MIN).active_modules(), 2);
        assert_eq!(Configuration::cpu(4, CpuPState::MIN).active_modules(), 2);
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn zero_threads_rejected() {
        let _ = Configuration::cpu(0, CpuPState::MIN);
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn too_many_threads_rejected() {
        let _ = Configuration::cpu(5, CpuPState::MIN);
    }

    #[test]
    fn display_is_stable() {
        let c = Configuration::cpu(4, CpuPState::MAX);
        assert!(c.to_string().contains("CPU 4T @ 3.7 GHz"));
        let g = Configuration::gpu(GpuPState::MAX, CpuPState::MIN);
        assert!(g.to_string().contains("GPU @ 0.819 GHz"));
    }
}
