//! Opportunistic overclocking ("boost"), the Section VI future-work
//! feature: "This feature allows the CPU to increase its frequency beyond
//! user-selectable levels, but only when there is enough thermal headroom;
//! if the chip is too hot, such frequency boosting will not engage."
//!
//! The Trinity A10-5800K turbos from its 3.8/3.7 GHz base up to 4.2 GHz.
//! We model boost residency with a steady-state thermal model: die
//! temperature is ambient plus thermal resistance times package power, and
//! the boost governor duty-cycles the boost state so the die never exceeds
//! its limit. Lightly-threaded workloads (low package power) therefore
//! boost continuously, while all-core workloads get little or nothing —
//! the behavior the real governor exhibits.

use crate::config::{Configuration, Device};
use crate::cpu::{cpu_time_at, CpuTiming};
use crate::kernel::KernelCharacteristics;
use crate::power::{PowerBreakdown, PowerCalibration};
use crate::pstate::{CpuPState, OperatingPoint};
use serde::{Deserialize, Serialize};

/// Boost operating points above the software-visible P-state ceiling.
pub const BOOST_STATES: [OperatingPoint; 2] =
    [OperatingPoint::new(4.0, 1.3250), OperatingPoint::new(4.2, 1.4000)];

/// Steady-state thermal model of the package.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Ambient (inlet) temperature, °C.
    pub t_ambient_c: f64,
    /// Junction-to-ambient thermal resistance, °C/W.
    pub r_th_c_per_w: f64,
    /// Maximum junction temperature the boost governor allows, °C.
    pub t_max_c: f64,
}

impl Default for ThermalModel {
    fn default() -> Self {
        Self { t_ambient_c: 35.0, r_th_c_per_w: 1.10, t_max_c: 95.0 }
    }
}

impl ThermalModel {
    /// Steady-state die temperature at a package power, °C.
    #[inline]
    pub fn temperature_c(&self, power_w: f64) -> f64 {
        self.t_ambient_c + self.r_th_c_per_w * power_w
    }

    /// The package power at which the die reaches its thermal limit, W.
    #[inline]
    pub fn power_budget_w(&self) -> f64 {
        (self.t_max_c - self.t_ambient_c) / self.r_th_c_per_w
    }

    /// Boost residency in [0, 1]: the duty cycle at which the governor can
    /// run the boosted state so the *average* power stays within the
    /// thermal budget. 1 when even sustained boost fits; 0 when the base
    /// state already saturates the budget.
    pub fn residency(&self, base_power_w: f64, boost_power_w: f64) -> f64 {
        let budget = self.power_budget_w();
        if boost_power_w <= budget {
            return 1.0;
        }
        if base_power_w >= budget || boost_power_w <= base_power_w {
            return 0.0;
        }
        ((budget - base_power_w) / (boost_power_w - base_power_w)).clamp(0.0, 1.0)
    }
}

/// Outcome of a boosted CPU execution estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoostedRun {
    /// Fraction of time spent in the boost state.
    pub residency: f64,
    /// Effective average core frequency, GHz.
    pub effective_freq_ghz: f64,
    /// Timing at the effective frequency.
    pub timing: CpuTiming,
    /// Average package power including boost residency, W.
    pub power: PowerBreakdown,
}

/// Estimate a CPU-device execution with opportunistic boost enabled on top
/// of the configuration's P-state. Only meaningful when the configured
/// P-state is the software ceiling (the governor boosts from the top
/// state); lower P-states return the unboosted result.
pub fn boosted_cpu_run(
    kernel: &KernelCharacteristics,
    config: &Configuration,
    cal: &PowerCalibration,
    thermal: &ThermalModel,
    boost: OperatingPoint,
) -> BoostedRun {
    assert_eq!(config.device, Device::Cpu, "boost model applies to CPU executions");

    let base_timing = cpu_time_at(kernel, config.cpu_pstate.freq_ghz(), config.threads);
    let base_power = cal.cpu_run_power(kernel, config, &base_timing);

    // Boost only engages from the top software-visible P-state.
    if config.cpu_pstate != CpuPState::MAX {
        return BoostedRun {
            residency: 0.0,
            effective_freq_ghz: config.cpu_pstate.freq_ghz(),
            timing: base_timing,
            power: base_power,
        };
    }

    // Power in the boost state: same activity structure, boost V/f. Reuse
    // the calibrated model by scaling the CPU plane's dynamic+leakage
    // portion with (V²f) and (V²) ratios respectively — a first-order
    // estimate that matches the plane model's structure.
    let base_pt = config.cpu_pstate.point();
    let vf_ratio = (boost.voltage_v * boost.voltage_v * boost.freq_ghz)
        / (base_pt.voltage_v * base_pt.voltage_v * base_pt.freq_ghz);
    let boost_cpu_plane = base_power.cpu_plane_w * vf_ratio;
    let boost_power_total = boost_cpu_plane + base_power.gpu_nb_plane_w;

    let residency = thermal.residency(base_power.total_w(), boost_power_total);
    let f_eff = base_pt.freq_ghz + residency * (boost.freq_ghz - base_pt.freq_ghz);
    let timing = cpu_time_at(kernel, f_eff, config.threads);

    let power = PowerBreakdown {
        cpu_plane_w: base_power.cpu_plane_w * (1.0 - residency) + boost_cpu_plane * residency,
        gpu_nb_plane_w: base_power.gpu_nb_plane_w,
    };

    BoostedRun { residency, effective_freq_ghz: f_eff, timing, power }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> KernelCharacteristics {
        KernelCharacteristics::default()
    }

    fn run(threads: u8, pstate: CpuPState) -> BoostedRun {
        boosted_cpu_run(
            &kernel(),
            &Configuration::cpu(threads, pstate),
            &PowerCalibration::default(),
            &ThermalModel::default(),
            BOOST_STATES[1],
        )
    }

    #[test]
    fn thermal_model_basics() {
        let t = ThermalModel::default();
        assert!((t.temperature_c(0.0) - t.t_ambient_c).abs() < 1e-12);
        assert!(t.temperature_c(30.0) > t.t_ambient_c);
        assert!(t.power_budget_w() > 40.0 && t.power_budget_w() < 70.0);
    }

    #[test]
    fn residency_extremes() {
        let t = ThermalModel::default();
        let budget = t.power_budget_w();
        assert_eq!(t.residency(10.0, budget - 1.0), 1.0, "boost fits: full residency");
        assert_eq!(t.residency(budget + 1.0, budget + 10.0), 0.0, "already hot: none");
        let partial = t.residency(budget - 10.0, budget + 10.0);
        assert!((partial - 0.5).abs() < 1e-12, "halfway duty cycle, got {partial}");
    }

    #[test]
    fn single_thread_boosts_fully() {
        let r = run(1, CpuPState::MAX);
        assert_eq!(r.residency, 1.0);
        assert!((r.effective_freq_ghz - 4.2).abs() < 1e-12);
    }

    #[test]
    fn all_cores_boost_less_than_one_core() {
        let light = run(1, CpuPState::MAX);
        let heavy = run(4, CpuPState::MAX);
        assert!(
            heavy.residency < light.residency,
            "4T residency {} must trail 1T residency {}",
            heavy.residency,
            light.residency
        );
    }

    #[test]
    fn boost_speeds_up_and_costs_power() {
        let base = cpu_time_at(&kernel(), 3.7, 1);
        let boosted = run(1, CpuPState::MAX);
        assert!(boosted.timing.total_s < base.total_s);
        let unboosted_power = PowerCalibration::default().cpu_run_power(
            &kernel(),
            &Configuration::cpu(1, CpuPState::MAX),
            &base,
        );
        assert!(boosted.power.total_w() > unboosted_power.total_w());
    }

    #[test]
    fn boost_requires_top_pstate() {
        let r = run(2, CpuPState(3));
        assert_eq!(r.residency, 0.0);
        assert_eq!(r.effective_freq_ghz, CpuPState(3).freq_ghz());
    }

    #[test]
    fn boost_never_exceeds_thermal_budget_on_average() {
        let t = ThermalModel::default();
        for threads in 1..=4 {
            let r = run(threads, CpuPState::MAX);
            if r.residency < 1.0 {
                // Partial residency means the governor pinned average
                // power at the budget.
                assert!(
                    r.power.total_w() <= t.power_budget_w() + 1e-9,
                    "threads {threads}: {} W exceeds budget {}",
                    r.power.total_w(),
                    t.power_budget_w()
                );
            }
        }
    }

    #[test]
    fn hot_ambient_disables_boost() {
        let hot = ThermalModel { t_ambient_c: 90.0, ..Default::default() };
        let r = boosted_cpu_run(
            &kernel(),
            &Configuration::cpu(4, CpuPState::MAX),
            &PowerCalibration::default(),
            &hot,
            BOOST_STATES[1],
        );
        assert_eq!(r.residency, 0.0);
    }

    #[test]
    #[should_panic(expected = "CPU executions")]
    fn gpu_config_rejected() {
        let _ = boosted_cpu_run(
            &kernel(),
            &Configuration::gpu(crate::pstate::GpuPState::MAX, CpuPState::MAX),
            &PowerCalibration::default(),
            &ThermalModel::default(),
            BOOST_STATES[0],
        );
    }

    #[test]
    fn boost_states_exceed_software_ceiling() {
        for b in BOOST_STATES {
            assert!(b.freq_ghz > CpuPState::MAX.freq_ghz());
            assert!(b.voltage_v > CpuPState::MAX.voltage_v());
        }
    }
}
