//! Synthetic performance counters.
//!
//! The paper records eleven hardware events per kernel execution via PAPI
//! and the northbridge PMU (Section III-B) and normalizes them to cycles,
//! reference cycles, and instructions. We synthesize the same events from
//! the kernel latents, so the classification tree faces the same learning
//! problem: counter-derived rates that correlate with power/performance
//! scaling behavior, measured only at the two sample configurations.

use crate::config::Device;
use crate::kernel::KernelCharacteristics;
use crate::noise::{NoiseSource, Stream};
use serde::{Deserialize, Serialize};

/// Raw event counts for one kernel execution (floating point: these are
/// large aggregates, not exact integers).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CounterSet {
    /// Retired instructions (host CPU).
    pub instructions: f64,
    /// Aggregate busy core cycles across active cores.
    pub core_cycles: f64,
    /// Reference (fixed-rate) cycles across active cores.
    pub ref_cycles: f64,
    /// L1 data-cache misses.
    pub l1d_misses: f64,
    /// L2 data-cache misses.
    pub l2d_misses: f64,
    /// Data TLB misses.
    pub tlb_misses: f64,
    /// Retired conditional branches.
    pub branches: f64,
    /// Retired vector (packed SIMD) instructions.
    pub vector_instructions: f64,
    /// Cycles stalled on any resource.
    pub stalled_cycles: f64,
    /// Cycles the module FPU was idle.
    pub fpu_idle_cycles: f64,
    /// Timer and device interrupts observed during the execution.
    pub interrupts: f64,
    /// DRAM accesses observed by the northbridge PMU (includes GPU traffic).
    pub dram_accesses: f64,
}

/// Timing facts the counter generator needs about an execution.
#[derive(Debug, Clone, Copy)]
pub struct CounterInputs {
    /// Executing device.
    pub device: Device,
    /// Total wall time, seconds.
    pub total_s: f64,
    /// Host-CPU busy time (all of it for CPU runs; serial + launch for GPU
    /// runs), seconds.
    pub host_busy_s: f64,
    /// Time stalled on DRAM, seconds.
    pub memory_s: f64,
    /// Active CPU threads.
    pub threads: u8,
    /// Host CPU core frequency, GHz.
    pub cpu_freq_ghz: f64,
}

/// Base in-flight IPC of the host cores when not stalled.
const BASE_IPC: f64 = 1.4;
/// Timer interrupt rate, Hz (Linux CONFIG_HZ=250 as in the paper's setup).
const TIMER_HZ: f64 = 250.0;
/// Fixed TSC reference rate, GHz.
const REF_CLOCK_GHZ: f64 = 3.7;
/// Relative noise applied to each raw count.
const COUNT_SIGMA: f64 = 0.02;

/// Generate the counter set for one execution.
pub fn generate(
    kernel: &KernelCharacteristics,
    inputs: &CounterInputs,
    noise: &NoiseSource,
) -> CounterSet {
    let mem_intensity = kernel.memory_boundedness();
    let ws_big = (kernel.working_set_mb / 64.0).clamp(0.0, 1.0);

    // Host instruction stream. GPU runs only retire the serial + driver
    // portion on the CPU.
    let inst = (inputs.host_busy_s * inputs.cpu_freq_ghz * 1e9 * BASE_IPC).max(1.0)
        * noise.jitter(Stream::Instructions, COUNT_SIGMA);

    let threads = f64::from(inputs.threads.max(1));
    let core_cycles = inputs.total_s * inputs.cpu_freq_ghz * 1e9 * threads;
    let ref_cycles = inputs.total_s * REF_CLOCK_GHZ * 1e9 * threads;

    // Cache/TLB miss rates per kilo-instruction, driven by memory intensity
    // and working-set size.
    let l1_mpki = (1.0 + 45.0 * mem_intensity) * noise.jitter(Stream::L1Miss, COUNT_SIGMA);
    let l2_share = 0.15 + 0.75 * ws_big;
    let tlb_mpki = (0.05 + 3.0 * ws_big) * noise.jitter(Stream::TlbMiss, COUNT_SIGMA);

    let l1d = inst / 1000.0 * l1_mpki;
    let l2d = l1d * l2_share * noise.jitter(Stream::L2Miss, COUNT_SIGMA);

    let branches =
        inst * (0.05 + 0.25 * kernel.branch_divergence) * noise.jitter(Stream::Branch, COUNT_SIGMA);
    let vector = inst * kernel.vector_fraction * 0.4 * noise.jitter(Stream::Vector, COUNT_SIGMA);

    let stall_frac =
        if inputs.total_s > 0.0 { (inputs.memory_s / inputs.total_s).clamp(0.0, 1.0) } else { 0.0 };
    let stalled =
        core_cycles * (0.08 + 0.85 * stall_frac) * noise.jitter(Stream::Stall, COUNT_SIGMA);
    let fpu_idle = core_cycles
        * (1.0 - 0.8 * kernel.vector_fraction)
        * 0.6
        * noise.jitter(Stream::FpuIdle, COUNT_SIGMA);

    let interrupts =
        (inputs.total_s * TIMER_HZ).max(1.0) * noise.jitter(Stream::Interrupt, COUNT_SIGMA);

    // NB PMU sees all DRAM traffic, including the GPU's. Approximate total
    // traffic from the kernel's memory time (one cache line per ~4 ns of
    // DRAM-bound time per saturating agent).
    let agents = match inputs.device {
        Device::Cpu => threads.min(kernel.bw_saturation_threads),
        Device::Gpu => kernel.gpu_bw_advantage * kernel.bw_saturation_threads,
    };
    let dram =
        (kernel.memory_time_s * agents * 2.5e8).max(0.0) * noise.jitter(Stream::Dram, COUNT_SIGMA);

    CounterSet {
        instructions: inst,
        core_cycles,
        ref_cycles,
        l1d_misses: l1d,
        l2d_misses: l2d,
        tlb_misses: inst / 1000.0 * tlb_mpki,
        branches,
        vector_instructions: vector,
        stalled_cycles: stalled,
        fpu_idle_cycles: fpu_idle,
        interrupts,
        dram_accesses: dram,
    }
}

/// Names of the normalized counter features, aligned with
/// [`CounterSet::normalized_features`].
pub const FEATURE_NAMES: [&str; 10] = [
    "ipc",
    "l1_mpki",
    "l2_mpki",
    "tlb_mpki",
    "branches_per_inst",
    "vector_per_inst",
    "stall_fraction",
    "fpu_idle_fraction",
    "interrupts_per_ref_gcycle",
    "dram_per_kinst",
];

impl CounterSet {
    /// Normalized rates, matching the paper's normalization of every count
    /// to cycles, reference cycles, or instructions. These are the inputs
    /// to the classification tree (together with sample power draws).
    pub fn normalized_features(&self) -> [f64; 10] {
        let inst = self.instructions.max(1.0);
        let cycles = self.core_cycles.max(1.0);
        let refc = self.ref_cycles.max(1.0);
        [
            self.instructions / cycles,
            self.l1d_misses / inst * 1000.0,
            self.l2d_misses / inst * 1000.0,
            self.tlb_misses / inst * 1000.0,
            self.branches / inst,
            self.vector_instructions / inst,
            self.stalled_cycles / cycles,
            self.fpu_idle_cycles / cycles,
            self.interrupts / refc * 1e9,
            self.dram_accesses / inst * 1000.0,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> CounterInputs {
        CounterInputs {
            device: Device::Cpu,
            total_s: 0.014,
            host_busy_s: 0.010,
            memory_s: 0.004,
            threads: 4,
            cpu_freq_ghz: 3.7,
        }
    }

    fn noise() -> NoiseSource {
        NoiseSource::new(1, "counters-test", 0, 0)
    }

    #[test]
    fn counts_are_positive() {
        let c = generate(&KernelCharacteristics::default(), &inputs(), &noise());
        for (i, v) in [
            c.instructions,
            c.core_cycles,
            c.ref_cycles,
            c.l1d_misses,
            c.l2d_misses,
            c.tlb_misses,
            c.branches,
            c.vector_instructions,
            c.stalled_cycles,
            c.fpu_idle_cycles,
            c.interrupts,
            c.dram_accesses,
        ]
        .iter()
        .enumerate()
        {
            assert!(*v >= 0.0, "count {i} negative: {v}");
        }
    }

    #[test]
    fn l2_misses_do_not_exceed_l1_misses() {
        // L2 misses are a subset of L1 misses (inclusive hierarchy); the
        // jitter band (≤2x) times the max share (0.9) stays below 2.0,
        // but assert the modeled relation directly.
        let k = KernelCharacteristics { working_set_mb: 512.0, ..Default::default() };
        let c = generate(&k, &inputs(), &noise());
        assert!(c.l2d_misses <= c.l1d_misses * 2.0);
    }

    #[test]
    fn memory_bound_kernel_has_high_stall_fraction() {
        let k = KernelCharacteristics::default();
        let membound = CounterInputs { memory_s: 0.012, host_busy_s: 0.002, ..inputs() };
        let c = generate(&k, &membound, &noise());
        let f = c.normalized_features();
        assert!(f[6] > 0.5, "stall fraction {}", f[6]);
    }

    #[test]
    fn vector_kernel_has_more_vector_instructions() {
        let scalar = KernelCharacteristics { vector_fraction: 0.0, ..Default::default() };
        let simd = KernelCharacteristics { vector_fraction: 0.9, ..Default::default() };
        let cs = generate(&scalar, &inputs(), &noise());
        let cv = generate(&simd, &inputs(), &noise());
        assert_eq!(cs.vector_instructions, 0.0);
        assert!(cv.vector_instructions > 0.0);
        assert!(cv.fpu_idle_cycles < cs.fpu_idle_cycles);
    }

    #[test]
    fn gpu_run_retires_fewer_host_instructions() {
        let k = KernelCharacteristics::default();
        let cpu = generate(&k, &inputs(), &noise());
        let gpu_inputs =
            CounterInputs { device: Device::Gpu, host_busy_s: 0.001, threads: 1, ..inputs() };
        let gpu = generate(&k, &gpu_inputs, &noise());
        assert!(gpu.instructions < cpu.instructions / 4.0);
    }

    #[test]
    fn features_are_finite_and_bounded() {
        let c = generate(&KernelCharacteristics::default(), &inputs(), &noise());
        let f = c.normalized_features();
        assert_eq!(f.len(), FEATURE_NAMES.len());
        for (name, v) in FEATURE_NAMES.iter().zip(f) {
            assert!(v.is_finite(), "{name} not finite");
            assert!(v >= 0.0, "{name} negative");
        }
        // IPC below machine width, stall fraction a fraction.
        assert!(f[0] < 4.0);
        assert!(f[6] <= 1.2);
    }

    #[test]
    fn deterministic_given_same_noise_address() {
        let k = KernelCharacteristics::default();
        let a = generate(&k, &inputs(), &noise());
        let b = generate(&k, &inputs(), &noise());
        assert_eq!(a, b);
    }

    #[test]
    fn zero_duration_run_is_safe() {
        let k = KernelCharacteristics::default();
        let zero = CounterInputs { total_s: 0.0, host_busy_s: 0.0, memory_s: 0.0, ..inputs() };
        let c = generate(&k, &zero, &noise());
        let f = c.normalized_features();
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
