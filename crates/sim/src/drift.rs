//! Seeded time-varying drift processes layered over any [`Executor`].
//!
//! The machine model is stationary: iteration `t` of a kernel depends on
//! `(seed, kernel, config, t)` and nothing else. Real hardware is not —
//! thermal throttling, aging, and co-tenant interference move the true
//! power/performance surface over time. This module supplies that movement
//! as **pure functions of the iteration index**: a [`DriftPlan`] maps `t`
//! to a pair of multiplicative factors, and a [`DriftedMachine`] applies
//! them to whatever executor it wraps. Because the factors are stateless,
//! drifted executions stay exactly as replayable as clean ones, and drift
//! composes freely with fault injection (`DriftedMachine<FaultyMachine>`).
//!
//! The zero plan ([`DriftPlan::none`]) returns factors of exactly `1.0`,
//! and [`DriftedMachine`] skips scaling entirely in that case — a
//! zero-drift wrapper is bit-transparent.

use crate::config::Configuration;
use crate::faults::{ExecutionFault, Executor};
use crate::kernel::KernelCharacteristics;
use crate::machine::KernelRun;
use crate::noise::splitmix64;
use serde::{Deserialize, Serialize};

/// Multiplicative drift factors at one iteration. `power` scales both the
/// sensor-visible and true power planes; `perf` divides throughput (so a
/// factor below 1.0 slows the kernel down).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftFactors {
    /// Power multiplier (1.0 = no drift).
    pub power: f64,
    /// Performance multiplier (1.0 = no drift).
    pub perf: f64,
}

impl DriftFactors {
    /// The identity: no drift at all.
    pub const NONE: DriftFactors = DriftFactors { power: 1.0, perf: 1.0 };

    /// True iff both factors are exactly 1.0.
    pub fn is_identity(&self) -> bool {
        self.power == 1.0 && self.perf == 1.0
    }
}

/// The drift process family. Magnitudes are fractional (0.35 = 35%).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DriftKind {
    /// No drift: factors are exactly 1.0 forever.
    None,
    /// Thermal ramp: power rises linearly to `1 + rise` over `horizon`
    /// iterations, then holds (a heat-soaked package leaking more).
    ThermalRamp {
        /// Iterations until the ramp saturates.
        horizon: u64,
        /// Fractional power increase at saturation.
        rise: f64,
    },
    /// Step throttle at iteration `at`: performance drops to `perf` of
    /// nominal and power to `power` of nominal (a firmware P-state clamp).
    StepThrottle {
        /// First affected iteration.
        at: u64,
        /// Post-step performance factor (< 1.0).
        perf: f64,
        /// Post-step power factor.
        power: f64,
    },
    /// Slow aging: power grows and performance decays a small fraction per
    /// iteration, compounding linearly.
    Aging {
        /// Fractional power growth per iteration.
        power_rate: f64,
        /// Fractional performance decay per iteration.
        perf_rate: f64,
    },
    /// Periodic co-tenant interference: every `period` iterations, a burst
    /// of `burst` iterations runs with elevated power and reduced
    /// performance (a noisy neighbour stealing shared bandwidth).
    CoTenant {
        /// Burst cadence in iterations.
        period: u64,
        /// Burst length in iterations.
        burst: u64,
        /// In-burst power factor (> 1.0).
        power: f64,
        /// In-burst performance factor (< 1.0).
        perf: f64,
    },
}

/// A seeded drift scenario: a process shape plus a seed that jitters its
/// phase and magnitude, so different seeds give different-but-reproducible
/// trajectories. [`DriftPlan::factors_at`] is a pure function — no state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftPlan {
    /// Seed for phase/magnitude jitter.
    pub seed: u64,
    /// The process shape.
    pub kind: DriftKind,
}

impl DriftPlan {
    /// The zero plan: exactly no drift, for any seed.
    pub fn none(seed: u64) -> Self {
        Self { seed, kind: DriftKind::None }
    }

    /// A thermal ramp reaching +35% power over `horizon` iterations.
    pub fn thermal_ramp(seed: u64, horizon: u64) -> Self {
        Self { seed, kind: DriftKind::ThermalRamp { horizon: horizon.max(1), rise: 0.35 } }
    }

    /// A step throttle at iteration 16: perf ×0.72, power ×0.80.
    pub fn step_throttle(seed: u64) -> Self {
        Self { seed, kind: DriftKind::StepThrottle { at: 16, perf: 0.72, power: 0.80 } }
    }

    /// Slow aging: +0.5% power and −0.3% performance per iteration.
    pub fn aging(seed: u64) -> Self {
        Self { seed, kind: DriftKind::Aging { power_rate: 0.005, perf_rate: 0.003 } }
    }

    /// Co-tenant bursts: every 12 iterations, 4 iterations at power ×1.25
    /// and perf ×0.85, with a seeded phase offset.
    pub fn co_tenant(seed: u64) -> Self {
        Self { seed, kind: DriftKind::CoTenant { period: 12, burst: 4, power: 1.25, perf: 0.85 } }
    }

    /// A uniform draw in `[0, 1)` on a named lane — same chain-of-splitmix
    /// construction as `FaultPlan::draw`, different domain constant.
    fn draw(&self, lane: u64) -> f64 {
        let z = splitmix64(self.seed ^ 0xD21F_u64.wrapping_mul(0x9E3779B97F4A7C15));
        let z = splitmix64(z ^ lane.wrapping_mul(0xD1342543DE82EF95));
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Seeded magnitude jitter in `[0.9, 1.1]` — different seeds drift by
    /// slightly different amounts, so thresholds can't be tuned to one
    /// exact trajectory.
    fn magnitude_jitter(&self) -> f64 {
        0.9 + 0.2 * self.draw(1)
    }

    /// The drift factors at iteration `iteration`. Pure: same plan + same
    /// iteration always gives bit-identical factors. Factors start at the
    /// identity at `t = 0` for every kind.
    pub fn factors_at(&self, iteration: u64) -> DriftFactors {
        match self.kind {
            DriftKind::None => DriftFactors::NONE,
            DriftKind::ThermalRamp { horizon, rise } => {
                let m = self.magnitude_jitter();
                let frac = (iteration as f64 / horizon as f64).min(1.0);
                DriftFactors { power: 1.0 + rise * m * frac, perf: 1.0 }
            }
            DriftKind::StepThrottle { at, perf, power } => {
                if iteration < at {
                    DriftFactors::NONE
                } else {
                    let m = self.magnitude_jitter();
                    DriftFactors { power: 1.0 - (1.0 - power) * m, perf: 1.0 - (1.0 - perf) * m }
                }
            }
            DriftKind::Aging { power_rate, perf_rate } => {
                let m = self.magnitude_jitter();
                let t = iteration as f64;
                DriftFactors {
                    power: 1.0 + power_rate * m * t,
                    perf: 1.0 / (1.0 + perf_rate * m * t),
                }
            }
            DriftKind::CoTenant { period, burst, power, perf } => {
                let period = period.max(1);
                let phase = (self.draw(2) * period as f64) as u64 % period;
                let in_burst = (iteration + phase) % period < burst;
                if iteration == 0 || !in_burst {
                    DriftFactors::NONE
                } else {
                    let m = self.magnitude_jitter();
                    DriftFactors { power: 1.0 + (power - 1.0) * m, perf: 1.0 - (1.0 - perf) * m }
                }
            }
        }
    }
}

/// An executor wrapper applying a [`DriftPlan`] to every execution. Wraps
/// any [`Executor`] — a clean [`crate::Machine`], or a
/// [`crate::FaultyMachine`] so faults and drift compose.
#[derive(Debug, Clone)]
pub struct DriftedMachine<E> {
    inner: E,
    plan: DriftPlan,
}

impl<E> DriftedMachine<E> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: E, plan: DriftPlan) -> Self {
        Self { inner, plan }
    }

    /// The wrapped executor.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The active drift plan.
    pub fn plan(&self) -> &DriftPlan {
        &self.plan
    }
}

impl<E: Executor> Executor for DriftedMachine<E> {
    fn execute(
        &self,
        kernel: &KernelCharacteristics,
        config: &Configuration,
        iteration: u64,
    ) -> Result<KernelRun, ExecutionFault> {
        let mut run = self.inner.execute(kernel, config, iteration)?;
        let f = self.plan.factors_at(iteration);
        if f.is_identity() {
            // Bit-transparent at zero drift: no float ops at all.
            return Ok(run);
        }
        run.time_s /= f.perf;
        run.power.cpu_plane_w *= f.power;
        run.power.gpu_nb_plane_w *= f.power;
        run.true_power.cpu_plane_w *= f.power;
        run.true_power.gpu_nb_plane_w *= f.power;
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, FaultyMachine};
    use crate::machine::Machine;

    fn kernel() -> KernelCharacteristics {
        KernelCharacteristics::default()
    }

    #[test]
    fn zero_plan_is_bit_transparent() {
        let machine = Machine::new(7);
        let drifted = DriftedMachine::new(Machine::new(7), DriftPlan::none(99));
        let k = kernel();
        for (i, c) in Configuration::all().iter().enumerate().take(6) {
            let clean = machine.execute(&k, c, i as u64).unwrap();
            let wrapped = drifted.execute(&k, c, i as u64).unwrap();
            assert_eq!(clean.time_s.to_bits(), wrapped.time_s.to_bits());
            assert_eq!(clean.power_w().to_bits(), wrapped.power_w().to_bits());
            assert_eq!(clean.true_power_w().to_bits(), wrapped.true_power_w().to_bits());
        }
    }

    #[test]
    fn factors_start_at_identity_and_are_pure() {
        for plan in [
            DriftPlan::none(3),
            DriftPlan::thermal_ramp(3, 32),
            DriftPlan::step_throttle(3),
            DriftPlan::aging(3),
            DriftPlan::co_tenant(3),
        ] {
            assert!(plan.factors_at(0).is_identity(), "{:?} must start clean", plan.kind);
            for t in [1u64, 5, 17, 100] {
                assert_eq!(plan.factors_at(t), plan.factors_at(t), "factors must be pure");
                let f = plan.factors_at(t);
                assert!(f.power.is_finite() && f.power > 0.0);
                assert!(f.perf.is_finite() && f.perf > 0.0);
            }
        }
    }

    #[test]
    fn thermal_ramp_raises_power_monotonically() {
        let plan = DriftPlan::thermal_ramp(11, 32);
        let mut last = 1.0;
        for t in 1..48u64 {
            let f = plan.factors_at(t);
            assert!(f.power >= last, "ramp must be monotone at t={t}");
            assert_eq!(f.perf, 1.0, "a thermal ramp moves power only");
            last = f.power;
        }
        assert!(last > 1.25, "ramp should saturate near +35%, got ×{last}");
    }

    #[test]
    fn step_throttle_cuts_perf_after_the_step() {
        let plan = DriftPlan::step_throttle(5);
        assert!(plan.factors_at(15).is_identity());
        let after = plan.factors_at(16);
        assert!(after.perf < 0.80, "post-step perf factor {}", after.perf);
        assert_eq!(plan.factors_at(16), plan.factors_at(400), "a step holds forever");
    }

    #[test]
    fn co_tenant_bursts_recur_and_idle_gaps_are_clean() {
        let plan = DriftPlan::co_tenant(21);
        let flags: Vec<bool> = (0..48).map(|t| !plan.factors_at(t).is_identity()).collect();
        let bursts = flags.iter().filter(|b| **b).count();
        assert!(bursts >= 8, "expected recurring bursts, saw {bursts}/48");
        assert!(bursts <= 20, "bursts must be intermittent, saw {bursts}/48");
    }

    #[test]
    fn drifted_execution_scales_time_and_both_power_planes() {
        let plan = DriftPlan::aging(9);
        let machine = Machine::new(9);
        let drifted = DriftedMachine::new(Machine::new(9), plan);
        let k = kernel();
        let c = &Configuration::all()[10];
        let t = 40u64;
        let clean = machine.execute(&k, c, t).unwrap();
        let run = drifted.execute(&k, c, t).unwrap();
        let f = plan.factors_at(t);
        assert_eq!(run.time_s.to_bits(), (clean.time_s / f.perf).to_bits());
        assert_eq!(run.power.cpu_plane_w.to_bits(), (clean.power.cpu_plane_w * f.power).to_bits());
        assert_eq!(
            run.true_power.gpu_nb_plane_w.to_bits(),
            (clean.true_power.gpu_nb_plane_w * f.power).to_bits()
        );
    }

    #[test]
    fn drift_composes_with_fault_injection() {
        let faulty = FaultyMachine::new(Machine::new(4), FaultPlan::none(4));
        let composed = DriftedMachine::new(faulty, DriftPlan::step_throttle(4));
        let k = kernel();
        let c = &Configuration::all()[3];
        let run = composed.execute(&k, c, 20).unwrap();
        let clean = Machine::new(4).execute(&k, c, 20).unwrap();
        assert!(run.time_s > clean.time_s, "throttled composition must be slower");
    }

    #[test]
    fn different_seeds_give_different_trajectories() {
        let a = DriftPlan::thermal_ramp(1, 32).factors_at(20);
        let b = DriftPlan::thermal_ramp(2, 32).factors_at(20);
        assert_ne!(a.power.to_bits(), b.power.to_bits(), "seed must jitter the magnitude");
    }
}
