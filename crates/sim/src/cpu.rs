//! CPU timing model.
//!
//! Execution time is split into a frequency-scalable compute portion and a
//! DRAM-bound portion that is invariant under core DVFS (the leading-loads
//! observation the paper cites \[21\]–\[23\]). Thread scaling follows Amdahl's
//! law with three realistic corrections: per-thread synchronization
//! overhead, module sharing (two cores of a Piledriver module share the
//! front-end and FPU), and memory-bandwidth saturation.

use crate::config::Configuration;
use crate::family::{FamilyId, MachineFamily};
use crate::kernel::KernelCharacteristics;

/// Breakdown of a CPU execution, useful for counters and power activity.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CpuTiming {
    /// Total wall time, seconds.
    pub total_s: f64,
    /// Time the cores spend executing instructions (busy), seconds.
    pub busy_s: f64,
    /// Time stalled on DRAM, seconds.
    pub memory_s: f64,
    /// Effective parallel speedup achieved by the thread count.
    pub speedup: f64,
}

/// Fraction of active threads that share a module with a sibling thread,
/// assuming compact packing (cores 0,1 on module 0; 2,3 on module 1).
pub fn shared_core_fraction(threads: u8) -> f64 {
    match threads {
        0 | 1 => 0.0,
        2 => 1.0,
        3 => 2.0 / 3.0,
        _ => 1.0,
    }
}

/// Effective compute throughput (in units of single cores) of `threads`
/// threads for a given kernel: Amdahl-style scaling damped by module
/// sharing and synchronization overhead.
pub fn effective_compute_threads(kernel: &KernelCharacteristics, threads: u8) -> f64 {
    effective_compute_threads_on(FamilyId::Trinity.descriptor(), kernel, threads)
}

/// Family-parameterized [`effective_compute_threads`]: only physically
/// backed threads contribute throughput (oversubscription adds nothing),
/// module-sharing loss follows the family's topology, and synchronization
/// overhead follows the *software* thread count — oversubscribed threads
/// still synchronize.
pub fn effective_compute_threads_on(
    family: &MachineFamily,
    kernel: &KernelCharacteristics,
    threads: u8,
) -> f64 {
    let t = f64::from(threads);
    let phys = f64::from(family.physical_threads(threads));
    let sharing_loss = kernel.module_sharing_penalty * family.shared_core_fraction(threads);
    let sync = 1.0 + kernel.sync_overhead * (t - 1.0);
    (phys * (1.0 - sharing_loss)) / sync
}

/// Wall time of one kernel iteration at a CPU configuration, without noise.
pub fn cpu_time(kernel: &KernelCharacteristics, config: &Configuration) -> CpuTiming {
    cpu_time_on(FamilyId::Trinity.descriptor(), kernel, config)
}

/// [`cpu_time`] on an explicit machine family.
pub fn cpu_time_on(
    family: &MachineFamily,
    kernel: &KernelCharacteristics,
    config: &Configuration,
) -> CpuTiming {
    cpu_time_at_on(family, kernel, family.cpu_point(config.cpu_pstate).freq_ghz, config.threads)
}

/// Wall time at an arbitrary core frequency (GHz) — the P-state table does
/// not constrain this entry point, which the opportunistic-overclocking
/// model uses for boost-blended effective frequencies.
pub fn cpu_time_at(kernel: &KernelCharacteristics, freq_ghz: f64, threads: u8) -> CpuTiming {
    cpu_time_at_on(FamilyId::Trinity.descriptor(), kernel, freq_ghz, threads)
}

/// [`cpu_time_at`] on an explicit machine family. Kernel latents stay
/// anchored at the *Trinity* single-thread reference; the family reshapes
/// the response through its frequency anchor, IPC, core topology, and
/// memory bandwidth. With the Trinity descriptor every scale factor is a
/// bitwise-neutral `× 1.0` in unchanged operation order.
pub fn cpu_time_at_on(
    family: &MachineFamily,
    kernel: &KernelCharacteristics,
    freq_ghz: f64,
    threads: u8,
) -> CpuTiming {
    let f_rel = (freq_ghz / family.cpu_ref_freq_ghz()) * family.ipc_scale;

    let serial = kernel.compute_time_s * (1.0 - kernel.parallel_fraction) / f_rel;

    let eff = effective_compute_threads_on(family, kernel, threads)
        .max(1.0 / f64::from(threads).max(1.0));
    let parallel = kernel.compute_time_s * kernel.parallel_fraction / (f_rel * eff.max(1e-9));

    // DRAM time: parallelizes until bandwidth saturates (only physical
    // threads issue memory streams), unaffected by DVFS.
    let mem_speedup = f64::from(family.physical_threads(threads)).min(kernel.bw_saturation_threads)
        * family.mem_bw_scale;
    let memory = kernel.memory_time_s / mem_speedup;

    let busy = serial + parallel;
    let total = busy + memory;
    let single_thread_ref =
        kernel.compute_time_s / f_rel + kernel.memory_time_s / family.mem_bw_scale;

    CpuTiming { total_s: total, busy_s: busy, memory_s: memory, speedup: single_thread_ref / total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pstate::CpuPState;

    fn kernel() -> KernelCharacteristics {
        KernelCharacteristics::default()
    }

    #[test]
    fn reference_config_matches_reference_time() {
        let k = kernel();
        let t = cpu_time(&k, &Configuration::cpu(1, CpuPState::MAX));
        assert!((t.total_s - k.reference_time_s()).abs() < 1e-12);
        assert!((t.speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_decreases_with_frequency() {
        let k = kernel();
        let mut prev = f64::INFINITY;
        for p in CpuPState::all() {
            let t = cpu_time(&k, &Configuration::cpu(2, p)).total_s;
            assert!(t < prev, "time must strictly decrease with frequency");
            prev = t;
        }
    }

    #[test]
    fn time_decreases_with_threads_for_parallel_kernel() {
        let k = kernel();
        let mut prev = f64::INFINITY;
        for threads in 1..=4 {
            let t = cpu_time(&k, &Configuration::cpu(threads, CpuPState::MAX)).total_s;
            assert!(t < prev, "parallel kernel must speed up with threads");
            prev = t;
        }
    }

    #[test]
    fn serial_kernel_does_not_benefit_from_threads() {
        let k = KernelCharacteristics { parallel_fraction: 0.0, memory_time_s: 0.0, ..kernel() };
        let t1 = cpu_time(&k, &Configuration::cpu(1, CpuPState::MAX)).total_s;
        let t4 = cpu_time(&k, &Configuration::cpu(4, CpuPState::MAX)).total_s;
        assert!((t1 - t4).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_kernel_is_dvfs_insensitive() {
        let k = KernelCharacteristics { compute_time_s: 1e-6, memory_time_s: 0.010, ..kernel() };
        let slow = cpu_time(&k, &Configuration::cpu(4, CpuPState::MIN)).total_s;
        let fast = cpu_time(&k, &Configuration::cpu(4, CpuPState::MAX)).total_s;
        // Less than 1% improvement from a 2.6x frequency increase.
        assert!((slow - fast) / slow < 0.01);
    }

    #[test]
    fn bandwidth_saturation_caps_memory_scaling() {
        let k = KernelCharacteristics {
            compute_time_s: 1e-9,
            memory_time_s: 0.010,
            bw_saturation_threads: 2.0,
            ..kernel()
        };
        let t2 = cpu_time(&k, &Configuration::cpu(2, CpuPState::MAX)).total_s;
        let t4 = cpu_time(&k, &Configuration::cpu(4, CpuPState::MAX)).total_s;
        assert!((t2 - t4).abs() / t2 < 1e-6, "no benefit beyond saturation");
    }

    #[test]
    fn module_sharing_hurts_two_threads() {
        let fp_heavy = KernelCharacteristics {
            module_sharing_penalty: 0.4,
            sync_overhead: 0.0,
            memory_time_s: 0.0,
            parallel_fraction: 1.0,
            ..kernel()
        };
        let t1 = cpu_time(&fp_heavy, &Configuration::cpu(1, CpuPState::MAX)).total_s;
        let t2 = cpu_time(&fp_heavy, &Configuration::cpu(2, CpuPState::MAX)).total_s;
        let speedup = t1 / t2;
        assert!(speedup < 1.5, "sharing-penalized speedup {speedup} should be well below 2");
        assert!(speedup > 1.0, "two threads still beat one");
    }

    #[test]
    fn shared_core_fraction_is_correct() {
        assert_eq!(shared_core_fraction(1), 0.0);
        assert_eq!(shared_core_fraction(2), 1.0);
        assert!((shared_core_fraction(3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(shared_core_fraction(4), 1.0);
    }

    #[test]
    fn busy_plus_memory_equals_total() {
        let k = kernel();
        for threads in 1..=4 {
            let t = cpu_time(&k, &Configuration::cpu(threads, CpuPState(2)));
            assert!((t.busy_s + t.memory_s - t.total_s).abs() < 1e-15);
        }
    }

    #[test]
    fn speedup_is_relative_to_one_thread_same_frequency() {
        let k = kernel();
        let cfg = Configuration::cpu(4, CpuPState(1));
        let t4 = cpu_time(&k, &cfg);
        let t1 = cpu_time(&k, &Configuration::cpu(1, CpuPState(1)));
        assert!((t4.speedup - t1.total_s / t4.total_s).abs() < 1e-12);
    }
}
