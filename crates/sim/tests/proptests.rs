//! Property-based tests for the APU simulator: physical invariants that
//! must hold for *every* valid kernel, not just the shipped suite.

use acs_sim::{
    Configuration, CpuPState, Device, FamilyId, GpuPState, KernelCharacteristics, Machine,
    NoiseSource,
};
use proptest::prelude::*;

/// Strategy drawing one of the four machine families.
fn family_strategy() -> impl Strategy<Value = FamilyId> {
    (0usize..FamilyId::ALL.len()).prop_map(|i| FamilyId::ALL[i])
}

/// The sibling `.proptest-regressions` file must resolve from the test
/// harness's working directory and parse both entry formats — otherwise
/// persisted seeds would silently stop replaying in CI.
#[test]
fn persisted_regressions_resolve_and_parse() {
    let seeds = proptest::persisted_seeds(file!());
    assert_eq!(seeds.len(), 2, "expected both regression entries, got {seeds:?}");
    assert!(seeds.contains(&0x134), "native 16-hex entry must parse: {seeds:?}");
}

/// Strategy producing arbitrary valid kernels across the latent space.
fn kernel_strategy() -> impl Strategy<Value = KernelCharacteristics> {
    (
        0.0005..0.2f64, // compute_time_s
        0.0..0.05f64,   // memory_time_s
        0.3..1.0f64,    // parallel_fraction
        1.0..4.0f64,    // bw_saturation_threads
        0.0..0.5f64,    // module_sharing_penalty
        0.0..0.1f64,    // sync_overhead
        0.1..50.0f64,   // gpu_speedup
        0.0..1.0f64,    // branch_divergence
        (0.5..3.0f64, 0.0..0.002f64, 0.0..1.0f64, 1.0..100.0f64, 0.1..0.6f64, 0.1..0.9f64),
    )
        .prop_map(|(ct, mt, pf, bw, msp, sync, gs, bd, (gbw, lo, vf, ws, ca, ga))| {
            KernelCharacteristics {
                name: "prop".into(),
                benchmark: "Prop".into(),
                input: "P".into(),
                compute_time_s: ct,
                memory_time_s: mt,
                parallel_fraction: pf,
                bw_saturation_threads: bw,
                module_sharing_penalty: msp,
                sync_overhead: sync,
                gpu_speedup: gs,
                branch_divergence: bd,
                gpu_bw_advantage: gbw,
                launch_overhead_s: lo,
                vector_fraction: vf,
                working_set_mb: ws,
                cpu_activity: ca,
                gpu_activity: ga,
                weight: 1.0,
            }
        })
}

proptest! {
    // `PROPTEST_CASES` (CI) overrides the local 64-case budget.
    #![proptest_config(ProptestConfig::with_cases_env(64))]

    #[test]
    fn generated_kernels_validate(k in kernel_strategy()) {
        prop_assert!(k.validate().is_empty(), "{:?}", k.validate());
    }

    #[test]
    fn every_run_is_physical(k in kernel_strategy(), seed in 0u64..100) {
        let m = Machine::new(seed);
        for cfg in Configuration::enumerate() {
            let r = m.run(&k, &cfg);
            prop_assert!(r.time_s > 0.0 && r.time_s.is_finite());
            prop_assert!(r.power_w() > 0.0 && r.power_w() < 200.0, "{}", r.power_w());
            prop_assert!(r.true_power.cpu_plane_w > 0.0);
            prop_assert!(r.true_power.gpu_nb_plane_w > 0.0);
        }
    }

    #[test]
    fn cpu_time_monotone_in_frequency(k in kernel_strategy(), threads in 1u8..=4) {
        let m = Machine::noiseless(0);
        let mut prev = f64::INFINITY;
        for p in CpuPState::all() {
            let t = m.run(&k, &Configuration::cpu(threads, p)).time_s;
            prop_assert!(t <= prev + 1e-15, "time must not rise with frequency");
            prev = t;
        }
    }

    #[test]
    fn cpu_thread_speedup_is_bounded(k in kernel_strategy(), ps in 0u8..6) {
        // Threads are NOT guaranteed to help: a high module-sharing
        // penalty can make a second FP-heavy thread a net loss, exactly
        // as on real shared-FPU modules. What must hold: speedup never
        // exceeds the thread count, and the slowdown never exceeds what
        // the sharing penalty + sync overhead can explain (~10%).
        let m = Machine::noiseless(0);
        let t1 = m.run(&k, &Configuration::cpu(1, CpuPState(ps))).time_s;
        for threads in 2..=4u8 {
            let t = m.run(&k, &Configuration::cpu(threads, CpuPState(ps))).time_s;
            let speedup = t1 / t;
            prop_assert!(speedup <= f64::from(threads) + 1e-9, "superlinear speedup {speedup}");
            prop_assert!(speedup >= 0.85, "threads {threads} slowdown too deep: {speedup}");
        }
    }

    #[test]
    fn cpu_power_monotone_in_frequency_and_threads(k in kernel_strategy()) {
        let m = Machine::noiseless(0);
        for threads in 1..=4u8 {
            let mut prev = 0.0;
            for p in CpuPState::all() {
                let w = m.run(&k, &Configuration::cpu(threads, p)).true_power_w();
                prop_assert!(w >= prev, "power must not fall with frequency");
                prev = w;
            }
        }
        for p in CpuPState::all() {
            let mut prev = 0.0;
            for threads in 1..=4u8 {
                let w = m.run(&k, &Configuration::cpu(threads, p)).true_power_w();
                prop_assert!(w >= prev, "power must not fall with threads");
                prev = w;
            }
        }
    }

    #[test]
    fn gpu_time_monotone_in_gpu_frequency(k in kernel_strategy(), cps in 0u8..6) {
        let m = Machine::noiseless(0);
        let mut prev = f64::INFINITY;
        for gp in GpuPState::all() {
            let t = m.run(&k, &Configuration::gpu(gp, CpuPState(cps))).time_s;
            prop_assert!(t <= prev + 1e-15);
            prev = t;
        }
    }

    #[test]
    fn energy_is_power_times_time(k in kernel_strategy(), seed in 0u64..50) {
        let m = Machine::new(seed);
        let cfg = Configuration::gpu(GpuPState::MAX, CpuPState::MAX);
        let r = m.run(&k, &cfg);
        let e = r.power_w() * r.time_s;
        prop_assert!(e > 0.0 && e.is_finite());
    }

    #[test]
    fn determinism_across_sweep_order(k in kernel_strategy(), seed in 0u64..50) {
        let m = Machine::new(seed);
        let forward = m.sweep(&k);
        // Re-run in reverse order; every observation must be identical.
        for cfg in Configuration::enumerate().iter().rev() {
            let r = m.run(&k, cfg);
            prop_assert_eq!(&r, &forward[cfg.index()]);
        }
    }

    #[test]
    fn counters_scale_with_work(k in kernel_strategy()) {
        let m = Machine::noiseless(0);
        let mut big = k.clone();
        big.compute_time_s *= 8.0;
        big.memory_time_s *= 8.0;
        let cfg = Configuration::cpu(4, CpuPState::MAX);
        let small_run = m.run(&k, &cfg);
        let big_run = m.run(&big, &cfg);
        prop_assert!(big_run.counters.instructions > small_run.counters.instructions);
        prop_assert!(big_run.counters.core_cycles > small_run.counters.core_cycles);
    }

    #[test]
    fn sensor_error_shrinks_with_duration(power in 5.0..60.0f64, seed in 0u64..100) {
        let sensor = acs_sim::PowerSensor::default();
        let noise = NoiseSource::new(seed, "sensor-prop", 0, 0);
        let short = (sensor.estimate(power, 0.002, &noise) - power).abs();
        let long = (sensor.estimate(power, 2.0, &noise) - power).abs();
        // The long estimate averages 2000 samples; allow a generous
        // margin but require it not be wildly worse than the short one.
        prop_assert!(long <= short.max(power * 0.02) + 0.2);
        prop_assert!(long < power * 0.05, "long-kernel sensor error {long}");
    }

    #[test]
    fn normalized_counter_features_are_finite(k in kernel_strategy(), seed in 0u64..50) {
        let m = Machine::new(seed);
        for cfg in [Configuration::cpu(4, CpuPState::MAX), Configuration::gpu(GpuPState::MAX, CpuPState::MAX)] {
            let r = m.run(&k, &cfg);
            for v in r.counters.normalized_features() {
                prop_assert!(v.is_finite() && v >= 0.0);
            }
        }
    }

    #[test]
    fn device_dispatch_matches_config(k in kernel_strategy()) {
        let m = Machine::noiseless(0);
        for cfg in Configuration::enumerate() {
            let r = m.run(&k, &cfg);
            match cfg.device {
                Device::Cpu => prop_assert_eq!(r.config.device, Device::Cpu),
                Device::Gpu => prop_assert_eq!(r.config.device, Device::Gpu),
            }
        }
    }

    #[test]
    fn family_instantiation_is_seed_deterministic(
        k in kernel_strategy(),
        family in family_strategy(),
        seed in 0u64..100,
    ) {
        let a = Machine::from_family(family, seed);
        let b = Machine::from_family(family, seed);
        prop_assert_eq!(&a, &b);
        for cfg in Configuration::enumerate() {
            prop_assert_eq!(a.run(&k, &cfg), b.run(&k, &cfg));
        }
    }

    #[test]
    fn every_family_run_is_physical(
        k in kernel_strategy(),
        family in family_strategy(),
        seed in 0u64..50,
    ) {
        let m = Machine::from_family(family, seed);
        for cfg in Configuration::enumerate() {
            let r = m.run(&k, &cfg);
            prop_assert!(r.time_s > 0.0 && r.time_s.is_finite(), "{family} time {}", r.time_s);
            prop_assert!(
                r.power_w() > 0.0 && r.power_w() < 400.0,
                "{family} power {}", r.power_w()
            );
            prop_assert!(r.true_power.cpu_plane_w > 0.0);
            prop_assert!(r.true_power.gpu_nb_plane_w > 0.0);
        }
    }

    #[test]
    fn trinity_family_is_bit_identical_to_legacy_machine(
        k in kernel_strategy(),
        seed in 0u64..50,
    ) {
        // The family layer must be a pure generalization: routing Trinity
        // through the descriptor reproduces the pre-family machine
        // bit-for-bit (goldens depend on this).
        let legacy = Machine::new(seed);
        let fam = Machine::from_family(FamilyId::Trinity, seed);
        for cfg in Configuration::enumerate() {
            let a = legacy.run(&k, &cfg);
            let b = fam.run(&k, &cfg);
            prop_assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
            prop_assert_eq!(
                a.true_power.cpu_plane_w.to_bits(),
                b.true_power.cpu_plane_w.to_bits()
            );
            prop_assert_eq!(
                a.true_power.gpu_nb_plane_w.to_bits(),
                b.true_power.gpu_nb_plane_w.to_bits()
            );
        }
    }

    #[test]
    fn family_cpu_time_monotone_in_frequency(
        k in kernel_strategy(),
        family in family_strategy(),
        threads in 1u8..=4,
    ) {
        let m = Machine::noiseless_from_family(family, 0);
        let mut prev = f64::INFINITY;
        for p in CpuPState::all() {
            let t = m.run(&k, &Configuration::cpu(threads, p)).time_s;
            prop_assert!(t <= prev + 1e-15, "{family}: time must not rise with frequency");
            prev = t;
        }
    }
}
