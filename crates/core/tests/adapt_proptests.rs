//! Property-based tests for the adaptation layer (ISSUE 9 satellite):
//! the scalar Kalman filters keep positive finite covariance under any
//! finite measurement stream, reject non-finite input with typed errors
//! without poisoning state, converge on constant signals, and the
//! predictor's state digest is independent of the rayon thread count.

use acs_core::adapt::Innovation;
use acs_core::{AdaptError, AdaptParams, AdaptivePredictor, KalmanFilter, Signal};
use proptest::prelude::*;

/// Local splitmix64 so the observation streams are seed-stable forever.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Feed a seeded 64-observation ratio stream through a fresh predictor
/// and return its exact state digest.
fn digest_for(seed: u64) -> u64 {
    let mut predictor = AdaptivePredictor::default();
    let mut rng = seed;
    for index in 0..64u64 {
        let kernel = format!("k{}", index % 3);
        let power_ratio = 0.5 + (splitmix64(&mut rng) % 1000) as f64 / 500.0;
        let perf_ratio = 0.5 + (splitmix64(&mut rng) % 1000) as f64 / 500.0;
        predictor
            .observe_ratios(&kernel, power_ratio, perf_ratio)
            .expect("in-range ratios are always accepted");
    }
    predictor.state_digest()
}

proptest! {
    #[test]
    fn covariance_stays_positive_and_finite(
        x0 in 0.25..4.0f64,
        zs in prop::collection::vec(-10.0..10.0f64, 1..200),
    ) {
        let params = AdaptParams::default();
        let mut filter = KalmanFilter::new(x0, &params);
        for z in zs {
            let Innovation { residual, variance } =
                filter.update(Signal::Power, z).expect("finite measurements are accepted");
            prop_assert!(variance.is_finite() && variance > 0.0, "S = {variance}");
            prop_assert!(residual.is_finite());
            prop_assert!(filter.p.is_finite() && filter.p > 0.0, "P = {}", filter.p);
            prop_assert!(filter.q >= params.q_floor, "Q fell through its floor");
            prop_assert!(filter.x.is_finite());
        }
    }

    #[test]
    fn non_finite_measurements_never_poison_the_filter(
        zs in prop::collection::vec(-10.0..10.0f64, 0..50),
        bad_index in 0usize..3,
    ) {
        let bad = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][bad_index];
        let params = AdaptParams::default();
        let mut filter = KalmanFilter::new(1.0, &params);
        for z in zs {
            filter.update(Signal::Perf, z).expect("finite measurements are accepted");
        }
        let before = filter;
        let err = filter.update(Signal::Perf, bad).expect_err("non-finite must be rejected");
        let typed = matches!(err, AdaptError::NonFinite { signal: Signal::Perf, .. });
        prop_assert!(typed, "unexpected error {err:?}");
        prop_assert_eq!(filter, before, "a rejected measurement mutated the filter");
        prop_assert!(filter.x.is_finite() && filter.p.is_finite());
    }

    #[test]
    fn filter_converges_on_a_constant_signal(target in 0.5..2.0f64) {
        let params = AdaptParams::default();
        let mut filter = KalmanFilter::new(1.0, &params);
        for _ in 0..200 {
            filter.update(Signal::Power, target).expect("finite");
        }
        prop_assert!(
            (filter.x - target).abs() < 1e-3,
            "posterior {} did not converge to {target}",
            filter.x
        );
    }

    #[test]
    fn predictor_rejects_bad_feedback_without_state_change(
        measured in 0.01..100.0f64,
        bad_index in 0usize..3,
    ) {
        let bad_predicted = [0.0f64, -3.0, f64::NAN][bad_index];
        let mut predictor = AdaptivePredictor::default();
        predictor.observe("k", measured, measured, 10.0, 5.0).expect("valid observation");
        let before = predictor.state_digest();
        let err = predictor
            .observe("k", measured, measured, bad_predicted, 5.0)
            .expect_err("bad predicted power must be rejected");
        let typed = matches!(
            err,
            AdaptError::NonPositive { signal: Signal::Power, .. }
                | AdaptError::NonFinite { signal: Signal::Power, .. }
        );
        prop_assert!(typed, "unexpected error {err:?}");
        prop_assert_eq!(predictor.state_digest(), before, "rejection mutated the predictor");
    }

    #[test]
    fn predictor_digest_is_independent_of_rayon_thread_count(seed in 0u64..4096) {
        let baseline = digest_for(seed);
        for threads in [1usize, 2, 8] {
            let digest = rayon::with_num_threads(threads, || digest_for(seed));
            prop_assert_eq!(
                digest, baseline,
                "state digest changed under a {}-thread pool", threads
            );
        }
    }
}
