//! Property-based tests for frontiers, dissimilarity, and selection.

use acs_core::dissimilarity::frontier_dissimilarity;
use acs_core::{Frontier, PowerPerfPoint};
use acs_sim::{Configuration, CpuPState, GpuPState};
use proptest::prelude::*;

/// Arbitrary (power, perf) points over distinct configurations.
fn points_strategy() -> impl Strategy<Value = Vec<PowerPerfPoint>> {
    prop::collection::vec((0usize..42, 5.0..60.0f64, 0.1..100.0f64), 1..42).prop_map(|raw| {
        let space = Configuration::enumerate();
        raw.into_iter()
            .map(|(ci, power_w, perf)| PowerPerfPoint { config: space[ci], power_w, perf })
            .collect()
    })
}

/// A frontier built from a random subset of configurations with generated
/// monotone power/perf (so the frontier keeps them all in a random order
/// of configuration identity).
fn frontier_strategy() -> impl Strategy<Value = Frontier> {
    prop::collection::btree_set(0usize..42, 2..20).prop_flat_map(|set| {
        let n = set.len();
        (Just(set), prop::collection::vec(0.1..2.0f64, n)).prop_map(|(set, steps)| {
            let space = Configuration::enumerate();
            let mut power = 5.0;
            let mut perf = 1.0;
            let pts = set
                .into_iter()
                .zip(steps)
                .map(|(ci, step)| {
                    power += step;
                    perf += step;
                    PowerPerfPoint { config: space[ci], power_w: power, perf }
                })
                .collect();
            Frontier::from_points(pts)
        })
    })
}

proptest! {
    #[test]
    fn frontier_points_are_mutually_nondominated(points in points_strategy()) {
        let f = Frontier::from_points(points.clone());
        let pts = f.points();
        for a in pts {
            for b in pts {
                if a.config != b.config {
                    let dominates = a.power_w <= b.power_w && a.perf >= b.perf;
                    prop_assert!(!dominates, "{a:?} dominates {b:?}");
                }
            }
        }
    }

    #[test]
    fn frontier_dominates_every_input_point(points in points_strategy()) {
        let f = Frontier::from_points(points.clone());
        for p in &points {
            let covered = f.points().iter().any(|q| q.power_w <= p.power_w && q.perf >= p.perf);
            prop_assert!(covered, "input point {p:?} not covered by the frontier");
        }
    }

    #[test]
    fn frontier_is_strictly_monotone(points in points_strategy()) {
        let f = Frontier::from_points(points);
        for w in f.points().windows(2) {
            prop_assert!(w[0].power_w < w[1].power_w);
            prop_assert!(w[0].perf < w[1].perf);
        }
    }

    #[test]
    fn frontier_is_idempotent(points in points_strategy()) {
        let f = Frontier::from_points(points);
        let again = Frontier::from_points(f.points().to_vec());
        prop_assert_eq!(f, again);
    }

    #[test]
    fn best_under_is_optimal_feasible(points in points_strategy(), cap in 5.0..60.0f64) {
        let f = Frontier::from_points(points.clone());
        match f.best_under(cap) {
            Some(best) => {
                prop_assert!(best.power_w <= cap);
                for p in f.points() {
                    if p.power_w <= cap {
                        prop_assert!(p.perf <= best.perf);
                    }
                }
            }
            None => {
                for p in f.points() {
                    prop_assert!(p.power_w > cap);
                }
            }
        }
    }

    #[test]
    fn best_under_binary_search_matches_linear_scan(
        points in points_strategy(),
        caps in prop::collection::vec((0usize..4, 0.0..80.0f64), 1..8).prop_map(|raw| {
            raw.into_iter()
                .map(|(kind, cap)| match kind {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => -1.0,
                    _ => cap,
                })
                .collect::<Vec<f64>>()
        }),
    ) {
        // `best_under` is a partition_point binary search over the
        // power-sorted invariant; it must pick exactly what the scalar
        // reverse scan it replaced picked, for any frontier and cap
        // (including NaN and out-of-range caps).
        let f = Frontier::from_points(points);
        for cap in caps {
            let linear = f.points().iter().rev().find(|p| p.power_w <= cap);
            let binary = f.best_under(cap);
            match (linear, binary) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.config, b.config, "cap {}", cap);
                    prop_assert_eq!(a.power_w.to_bits(), b.power_w.to_bits());
                    prop_assert_eq!(a.perf.to_bits(), b.perf.to_bits());
                }
                (a, b) => prop_assert!(false, "cap {}: linear {:?} vs binary {:?}", cap, a, b),
            }
        }
    }

    #[test]
    fn normalization_preserves_order_and_caps_at_one(points in points_strategy()) {
        let f = Frontier::from_points(points);
        let n = f.normalized();
        prop_assert_eq!(n.len(), f.len());
        if let Some(top) = n.max_perf() {
            prop_assert!((top.perf - 1.0).abs() < 1e-12);
        }
        for p in n.points() {
            prop_assert!(p.perf <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn dissimilarity_is_a_bounded_symmetric_semimetric(a in frontier_strategy(), b in frontier_strategy()) {
        let dab = frontier_dissimilarity(&a, &b);
        let dba = frontier_dissimilarity(&b, &a);
        prop_assert!((0.0..=1.0).contains(&dab), "d = {dab}");
        prop_assert!((dab - dba).abs() < 1e-12, "asymmetric: {dab} vs {dba}");
        prop_assert_eq!(frontier_dissimilarity(&a, &a), 0.0);
    }

    #[test]
    fn equal_power_duplicate_configs_resolve_deterministically(
        perf_a in 0.1..10.0f64,
        perf_b in 0.1..10.0f64,
    ) {
        let cfg = Configuration::cpu(1, CpuPState::MIN);
        let other = Configuration::gpu(GpuPState::MIN, CpuPState::MIN);
        let pts = vec![
            PowerPerfPoint { config: cfg, power_w: 10.0, perf: perf_a },
            PowerPerfPoint { config: other, power_w: 10.0, perf: perf_b },
        ];
        let f = Frontier::from_points(pts);
        prop_assert_eq!(f.len(), 1);
        prop_assert_eq!(f.points()[0].perf, perf_a.max(perf_b));
    }
}
