//! Feature construction: regression design rows for configurations and
//! classification features for kernels.
//!
//! The regression models of Section III-B take "the configuration variables
//! (frequency, number of cores, etc.) and their first-order interactions"
//! as inputs. Because power is physically `∝ V²·f`, the voltage implied by
//! each P-state is part of the configuration variables; including the
//! `V²·f` product term keeps the *linear* model family while letting it
//! rank DVFS states correctly.
//!
//! Configurations on the two devices have different knobs, so each cluster
//! trains separate CPU and GPU models; these builders produce the
//! per-device design rows.

use acs_sim::{Configuration, CpuPState, Device, GpuPState, KernelRun};
use serde::{Deserialize, Serialize};

/// The two sample configurations of Table II: the configurations a new
/// kernel runs at (one iteration each) before any prediction is made.
pub fn sample_config(device: Device) -> Configuration {
    match device {
        // CPU: 3.7 GHz, 4 threads, GPU parked at 311 MHz.
        Device::Cpu => Configuration::cpu(4, CpuPState::MAX),
        // GPU: 819 MHz, host CPU at 3.7 GHz.
        Device::Gpu => Configuration::gpu(GpuPState::MAX, CpuPState::MAX),
    }
}

/// Number of raw regression features per device row.
pub const CONFIG_FEATURES: usize = 6;

/// Design row for one configuration on its own device: configuration
/// variables plus first-order interactions, normalized to the reference
/// operating point so coefficients are comparable across devices.
pub fn config_features(config: &Configuration) -> [f64; CONFIG_FEATURES] {
    match config.device {
        Device::Cpu => {
            let f = config.cpu_pstate.freq_ghz() / acs_sim::CPU_REF_FREQ_GHZ;
            let v = config.cpu_pstate.voltage_v();
            let t = f64::from(config.threads) / 4.0;
            [f, t, f * t, v * v * f, v * v * f * t, v * v]
        }
        Device::Gpu => {
            let fg = config.gpu_pstate.freq_ghz() / acs_sim::GPU_REF_FREQ_GHZ;
            let vg = config.gpu_pstate.voltage_v();
            let fc = config.cpu_pstate.freq_ghz() / acs_sim::CPU_REF_FREQ_GHZ;
            [fg, fc, fg * fc, vg * vg * fg, vg * vg * fc, vg * vg]
        }
    }
}

/// Number of classification-tree features.
pub const TREE_FEATURES: usize = 16;

/// Names of the classification features, aligned with [`tree_features`].
pub const TREE_FEATURE_NAMES: [&str; TREE_FEATURES] = [
    "ipc",
    "l1_mpki",
    "l2_mpki",
    "tlb_mpki",
    "branches_per_inst",
    "vector_per_inst",
    "stall_fraction",
    "fpu_idle_fraction",
    "interrupts_per_ref_gcycle",
    "dram_per_kinst",
    "cpu_sample_power_w",
    "gpu_sample_power_w",
    "cpu_sample_plane_ratio",
    "gpu_sample_plane_ratio",
    "log_gpu_speedup",
    "gpu_dram_per_kinst",
];

/// Classification features for a kernel from its two sample-configuration
/// runs (Section III-B: "performance counter and power data from training
/// kernels on the sample configurations").
pub fn tree_features(cpu_sample: &KernelRun, gpu_sample: &KernelRun) -> [f64; TREE_FEATURES] {
    debug_assert_eq!(cpu_sample.config.device, Device::Cpu);
    debug_assert_eq!(gpu_sample.config.device, Device::Gpu);

    let c = cpu_sample.counters.normalized_features();
    let gpu_inst = gpu_sample.counters.instructions.max(1.0);

    [
        c[0],
        c[1],
        c[2],
        c[3],
        c[4],
        c[5],
        c[6],
        c[7],
        c[8],
        c[9],
        cpu_sample.power_w(),
        gpu_sample.power_w(),
        cpu_sample.power.cpu_plane_w / cpu_sample.power_w().max(1e-300),
        gpu_sample.power.gpu_nb_plane_w / gpu_sample.power_w().max(1e-300),
        (cpu_sample.time_s / gpu_sample.time_s.max(1e-300)).max(1e-12).ln(),
        gpu_sample.counters.dram_accesses / gpu_inst * 1000.0,
    ]
}

/// A reusable pair of sample observations for one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplePair {
    /// The CPU sample run (Table II row 1).
    pub cpu: KernelRun,
    /// The GPU sample run (Table II row 2).
    pub gpu: KernelRun,
}

impl SamplePair {
    /// Build from two runs, checking devices.
    pub fn new(cpu: KernelRun, gpu: KernelRun) -> Self {
        assert_eq!(cpu.config.device, Device::Cpu, "first sample must be the CPU config");
        assert_eq!(gpu.config.device, Device::Gpu, "second sample must be the GPU config");
        Self { cpu, gpu }
    }

    /// The sample performance on a device (the `S_perf` of the paper's
    /// performance model).
    pub fn perf_on(&self, device: Device) -> f64 {
        match device {
            Device::Cpu => 1.0 / self.cpu.time_s,
            Device::Gpu => 1.0 / self.gpu.time_s,
        }
    }

    /// Classification features for this kernel.
    pub fn tree_features(&self) -> [f64; TREE_FEATURES] {
        tree_features(&self.cpu, &self.gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_sim::{KernelCharacteristics, Machine};

    fn samples() -> SamplePair {
        let m = Machine::new(1);
        let k = KernelCharacteristics::default();
        SamplePair::new(
            m.run(&k, &sample_config(Device::Cpu)),
            m.run(&k, &sample_config(Device::Gpu)),
        )
    }

    #[test]
    fn sample_configs_match_table_ii() {
        let c = sample_config(Device::Cpu);
        assert_eq!(c.threads, 4);
        assert_eq!(c.cpu_pstate.freq_ghz(), 3.7);
        assert_eq!(c.gpu_pstate.freq_ghz(), 0.311);
        let g = sample_config(Device::Gpu);
        assert_eq!(g.gpu_pstate.freq_ghz(), 0.819);
        assert_eq!(g.cpu_pstate.freq_ghz(), 3.7);
        assert_eq!(g.threads, 1);
    }

    #[test]
    fn cpu_features_at_reference_are_normalized() {
        let x = config_features(&sample_config(Device::Cpu));
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert!((x[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gpu_features_at_reference_are_normalized() {
        let x = config_features(&sample_config(Device::Gpu));
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn features_vary_across_space() {
        // No two configurations on the same device share a feature row.
        let mut rows: Vec<(usize, Vec<f64>)> = Configuration::enumerate()
            .iter()
            .map(|c| (c.index(), config_features(c).to_vec()))
            .collect();
        rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        for w in rows.windows(2) {
            assert_ne!(w[0].1, w[1].1, "configs {} and {} collide", w[0].0, w[1].0);
        }
    }

    #[test]
    fn tree_features_are_finite() {
        let s = samples();
        let f = s.tree_features();
        assert_eq!(f.len(), TREE_FEATURE_NAMES.len());
        for (name, v) in TREE_FEATURE_NAMES.iter().zip(f) {
            assert!(v.is_finite(), "{name} = {v}");
        }
    }

    #[test]
    fn log_speedup_separates_gpu_affinity() {
        let m = Machine::noiseless(0);
        let friendly = KernelCharacteristics { gpu_speedup: 20.0, ..Default::default() };
        let hostile = KernelCharacteristics { gpu_speedup: 0.5, ..Default::default() };
        let feat = |k: &KernelCharacteristics| {
            SamplePair::new(
                m.run(k, &sample_config(Device::Cpu)),
                m.run(k, &sample_config(Device::Gpu)),
            )
            .tree_features()[14]
        };
        assert!(feat(&friendly) > feat(&hostile));
    }

    #[test]
    fn perf_on_is_inverse_sample_time() {
        let s = samples();
        assert!((s.perf_on(Device::Cpu) * s.cpu.time_s - 1.0).abs() < 1e-12);
        assert!((s.perf_on(Device::Gpu) * s.gpu.time_s - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "first sample")]
    fn sample_pair_checks_devices() {
        let m = Machine::new(1);
        let k = KernelCharacteristics::default();
        let gpu = m.run(&k, &sample_config(Device::Gpu));
        let _ = SamplePair::new(gpu.clone(), gpu);
    }
}
