//! Flattened, allocation-free online selection (DESIGN.md §15).
//!
//! The scalar online path ([`crate::online::Predictor::predict_scalar`])
//! walks the CART by pointer, rebuilds each configuration's feature row,
//! evaluates four regressions per device, clones the 42 predicted points,
//! and fully sorts them to extract the frontier — every select. This module
//! restructures that work for the machine:
//!
//! * [`ConfigSpace`] — a struct-of-arrays view of the 42-configuration
//!   space, feature columns precomputed once per process;
//! * [`FastModel`] — per-model precomputation: the CART flattened into a
//!   branchless [`acs_mlstat::FlatTree`], and per-cluster power/ratio
//!   columns (regression inputs are static per configuration, so the whole
//!   regression collapses to tables at build time) plus a power-sorted
//!   frontier skeleton (permutation + equal-power tie-group ranges);
//! * [`SelectScratch`] — a caller-owned arena so steady-state selection
//!   allocates nothing.
//!
//! A warm select is then: one fixed-depth tree descent, 42 multiplies
//! (`perf = ratio · S_perf`, one fused pass per device block), a
//! non-domination sweep over the precomputed permutation, and a binary
//! search. The fast path is **bit-for-bit float-identical** to the scalar
//! path — same IEEE operations in the same order (the §10/§14 discipline)
//! — gated by `tests/fastpath_identity.rs` and the golden suites.

use crate::features::{config_features, SamplePair, CONFIG_FEATURES};
use crate::frontier::{Frontier, PowerPerfPoint};
use crate::offline::{unstabilize, ClusterModels, TrainedModel};
use crate::online::PredictedProfile;
use acs_mlstat::{ClassificationTree, FlatTree, LinearModel};
use acs_sim::{Configuration, Device};
use std::sync::OnceLock;

/// Struct-of-arrays view of the configuration space: parallel feature
/// columns over [`Configuration::all`]'s order, with the two device blocks
/// contiguous (`[0, cpu_end)` CPU, `[cpu_end, len)` GPU).
#[derive(Debug)]
pub struct ConfigSpace {
    configs: &'static [Configuration],
    /// `cols[k][i]` = feature `k` of configuration `i`
    /// ([`config_features`] laid out column-major).
    cols: [Vec<f64>; CONFIG_FEATURES],
    /// Index of the first GPU-device configuration.
    cpu_end: usize,
}

impl ConfigSpace {
    /// The process-wide space, built once.
    pub fn get() -> &'static ConfigSpace {
        static SPACE: OnceLock<ConfigSpace> = OnceLock::new();
        SPACE.get_or_init(|| {
            let configs = Configuration::all();
            let cpu_end = configs.iter().filter(|c| c.device == Device::Cpu).count();
            // The fused per-device passes assume the enumerate order is
            // index order with contiguous device blocks; assert it once
            // here rather than trusting it silently everywhere below.
            for (i, c) in configs.iter().enumerate() {
                assert_eq!(c.index(), i, "enumerate order must be index order");
                assert_eq!(
                    c.device == Device::Cpu,
                    i < cpu_end,
                    "device blocks must be contiguous"
                );
            }
            let mut cols: [Vec<f64>; CONFIG_FEATURES] =
                std::array::from_fn(|_| Vec::with_capacity(configs.len()));
            for c in configs {
                let x = config_features(c);
                for (col, v) in cols.iter_mut().zip(x) {
                    col.push(v);
                }
            }
            ConfigSpace { configs, cols, cpu_end }
        })
    }

    /// Number of configurations (42).
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Always false — the space is never empty.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Index of the first GPU-device configuration.
    pub fn cpu_end(&self) -> usize {
        self.cpu_end
    }

    /// The configurations, in index order.
    pub fn configs(&self) -> &'static [Configuration] {
        self.configs
    }
}

/// Per-cluster precomputed tables: everything about a cluster's predictions
/// that does not depend on the incoming kernel's samples.
#[derive(Debug, Clone)]
struct ClusterTables {
    /// Predicted performance ratio per configuration (unstabilized,
    /// clamped) — runtime perf is `ratio[i] · S_perf(device)`.
    ratio: Vec<f64>,
    /// Predicted absolute power per configuration (W, clamped).
    power: Vec<f64>,
    /// Frontier skeleton: configuration indices sorted by
    /// `(power asc, index asc)`.
    order: Vec<u32>,
    /// Half-open ranges *within `order`* sharing exactly equal power; only
    /// these need their `(perf desc, index asc)` tie-break refined at
    /// select time (power ties are rare — usually this is empty).
    ties: Vec<(u32, u32)>,
}

impl ClusterTables {
    fn build(space: &ConfigSpace, models: &ClusterModels, stab: bool) -> Self {
        let n = space.len();
        let mut ratio = vec![0.0; n];
        let mut power = vec![0.0; n];
        eval_columns(space, &models.perf_cpu, 0, space.cpu_end, &mut ratio);
        eval_columns(space, &models.perf_gpu, space.cpu_end, n, &mut ratio);
        eval_columns(space, &models.power_cpu, 0, space.cpu_end, &mut power);
        eval_columns(space, &models.power_gpu, space.cpu_end, n, &mut power);
        for i in 0..n {
            ratio[i] = unstabilize(ratio[i], stab).max(1e-9);
            power[i] = unstabilize(power[i], stab).max(0.1);
        }

        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            power[a as usize].partial_cmp(&power[b as usize]).unwrap().then(a.cmp(&b))
        });
        let mut ties = Vec::new();
        let mut start = 0usize;
        for i in 1..=n {
            if i == n || power[order[i] as usize] != power[order[start] as usize] {
                if i - start > 1 {
                    ties.push((start as u32, i as u32));
                }
                start = i;
            }
        }
        Self { ratio, power, order, ties }
    }
}

/// Evaluate `model` over configurations `[from, to)` into `out`, one fused
/// pass per coefficient column. The accumulation replicates
/// [`LinearModel::predict`]'s left fold exactly: start at `0.0`, add
/// `cₖ·xₖ` in column order, then add the intercept in front — the same
/// IEEE operations in the same order, so the tables are bit-identical to
/// per-config scalar evaluation.
fn eval_columns(space: &ConfigSpace, model: &LinearModel, from: usize, to: usize, out: &mut [f64]) {
    let coeffs = if model.intercept { &model.coeffs[1..] } else { &model.coeffs[..] };
    for v in out[from..to].iter_mut() {
        *v = 0.0;
    }
    // `predict` zips coefficients with features, truncating to the shorter.
    for (col, &c) in space.cols.iter().zip(coeffs) {
        for (v, &x) in out[from..to].iter_mut().zip(&col[from..to]) {
            *v += c * x;
        }
    }
    if model.intercept {
        let b0 = model.coeffs[0];
        // Kept as `b0 + acc` (not `+=`): `predict` computes the intercept
        // on the left, and the bitwise-identity gate pins that op order.
        #[allow(clippy::assign_op_pattern)]
        for v in out[from..to].iter_mut() {
            *v = b0 + *v;
        }
    }
}

/// Caller-owned scratch arena for [`FastModel`] selection: reuse one per
/// worker/request loop and steady-state selects allocate nothing. The
/// contents are dead between calls — any scratch works with any
/// [`FastModel`].
#[derive(Debug, Clone)]
pub struct SelectScratch {
    perf: Vec<f64>,
    order: Vec<u32>,
    frontier: Vec<PowerPerfPoint>,
}

impl SelectScratch {
    /// A scratch sized for the configuration space.
    pub fn new() -> Self {
        let n = Configuration::space_size();
        Self {
            perf: Vec::with_capacity(n),
            order: Vec::with_capacity(n),
            frontier: Vec::with_capacity(n),
        }
    }
}

impl Default for SelectScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// A [`TrainedModel`] precompiled for flat evaluation. Build once per
/// model (microseconds), select many times. Owns everything it needs —
/// no lifetime ties back to the model.
#[derive(Debug, Clone)]
pub struct FastModel {
    /// Branchless CART, when the tree fits the complete-binary encoding.
    flat: Option<FlatTree>,
    /// Pointer-walk fallback for trees deeper than
    /// [`FlatTree::MAX_DEPTH`] (identical decisions either way).
    tree: ClassificationTree,
    clusters: Vec<ClusterTables>,
}

impl FastModel {
    /// Precompile a trained model.
    pub fn new(model: &TrainedModel) -> Self {
        let space = ConfigSpace::get();
        let stab = model.params.stabilize_variance;
        Self {
            flat: model.tree.flatten(),
            tree: model.tree.clone(),
            clusters: model.clusters.iter().map(|m| ClusterTables::build(space, m, stab)).collect(),
        }
    }

    /// Assign the kernel to a cluster (identical decisions to the scalar
    /// tree walk; see [`FlatTree`]).
    pub fn classify(&self, samples: &SamplePair) -> usize {
        let x = samples.tree_features();
        match &self.flat {
            Some(flat) => flat.predict(&x),
            None => self.tree.predict(&x),
        }
    }

    /// Whether classification runs through the flattened tree (false
    /// only for the pointer-walk fallback: empty trees or depth beyond
    /// [`FlatTree::MAX_DEPTH`]).
    pub fn uses_flat_tree(&self) -> bool {
        self.flat.is_some()
    }

    /// Fill `scratch` with this kernel's predictions for `cluster`: the
    /// fused perf pass, the tie-refined frontier permutation, and the
    /// non-domination sweep (same semantics as [`Frontier::from_points`]).
    fn prepare(&self, cluster: usize, samples: &SamplePair, scratch: &mut SelectScratch) {
        let space = ConfigSpace::get();
        let t = &self.clusters[cluster];
        let s_cpu = samples.perf_on(Device::Cpu);
        let s_gpu = samples.perf_on(Device::Gpu);

        let SelectScratch { perf, order, frontier } = scratch;
        perf.clear();
        perf.extend(t.ratio[..space.cpu_end].iter().map(|r| r * s_cpu));
        perf.extend(t.ratio[space.cpu_end..].iter().map(|r| r * s_gpu));

        order.clear();
        order.extend_from_slice(&t.order);
        // Only equal-power runs depend on runtime perf for their relative
        // order; refine them to `(perf desc, index asc)` so the full
        // permutation matches `from_points`' `(power asc, perf desc,
        // index asc)` sort exactly.
        for &(a, b) in &t.ties {
            order[a as usize..b as usize].sort_by(|&x, &y| {
                perf[y as usize].partial_cmp(&perf[x as usize]).unwrap().then(x.cmp(&y))
            });
        }

        frontier.clear();
        for &i in order.iter() {
            let i = i as usize;
            let (pw, pf) = (t.power[i], perf[i]);
            match frontier.last() {
                Some(last) if pf <= last.perf => {}
                Some(last) if pw == last.power_w => {}
                _ => frontier.push(PowerPerfPoint {
                    config: space.configs[i],
                    power_w: pw,
                    perf: pf,
                }),
            }
        }
    }

    /// Select the best predicted configuration under `cap_w` (minimum-
    /// predicted-power fallback when nothing meets the cap), without
    /// allocating: bit-identical to
    /// `predict(samples).select(cap_w)` on the scalar path.
    pub fn select_with(
        &self,
        samples: &SamplePair,
        cap_w: f64,
        scratch: &mut SelectScratch,
    ) -> Configuration {
        let cluster = self.classify(samples);
        self.prepare(cluster, samples, scratch);
        // Frontier power is strictly increasing, so `power ≤ cap` is a
        // true-prefix predicate; index 0 means nothing fits → min-power
        // fallback (the sweep always keeps at least one point).
        let f = &scratch.frontier;
        let idx = f.partition_point(|p| p.power_w <= cap_w);
        f[idx.saturating_sub(1)].config
    }

    /// Full predicted profile, bit-identical to the scalar
    /// [`crate::online::Predictor::predict_scalar`].
    pub fn predict(&self, samples: &SamplePair) -> PredictedProfile {
        self.predict_with(samples, &mut SelectScratch::new())
    }

    /// [`FastModel::predict`] writing through a caller-owned scratch (the
    /// returned profile still owns its points/frontier; the scratch only
    /// absorbs the intermediate sort/sweep allocations).
    pub fn predict_with(
        &self,
        samples: &SamplePair,
        scratch: &mut SelectScratch,
    ) -> PredictedProfile {
        let space = ConfigSpace::get();
        let cluster = self.classify(samples);
        self.prepare(cluster, samples, scratch);
        let t = &self.clusters[cluster];
        let points: Vec<PowerPerfPoint> = space
            .configs
            .iter()
            .enumerate()
            .map(|(i, c)| PowerPerfPoint { config: *c, power_w: t.power[i], perf: scratch.perf[i] })
            .collect();
        let frontier = Frontier::from_sorted(scratch.frontier.clone());
        PredictedProfile { cluster, points, frontier }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{train, TrainingParams};
    use crate::online::Predictor;
    use crate::profile::{collect_suite, KernelProfile};
    use acs_sim::{KernelCharacteristics, Machine};

    fn archetypes() -> Vec<KernelCharacteristics> {
        let mut kernels = Vec::new();
        for i in 0..4u32 {
            let s = 1.0 + f64::from(i) * 0.2;
            kernels.push(KernelCharacteristics {
                name: format!("gpu-friendly-{i}"),
                gpu_speedup: 12.0 * s,
                compute_time_s: 0.012 * s,
                ..Default::default()
            });
            kernels.push(KernelCharacteristics {
                name: format!("membound-{i}"),
                compute_time_s: 0.001 * s,
                memory_time_s: 0.012 * s,
                gpu_speedup: 3.0,
                ..Default::default()
            });
            kernels.push(KernelCharacteristics {
                name: format!("divergent-{i}"),
                gpu_speedup: 1.2,
                branch_divergence: 0.7,
                parallel_fraction: 0.85,
                ..Default::default()
            });
        }
        kernels
    }

    fn trained() -> (TrainedModel, Vec<KernelProfile>) {
        let profiles = collect_suite(&Machine::new(7), &archetypes());
        let model =
            train(&profiles, TrainingParams { n_clusters: 3, ..Default::default() }).unwrap();
        (model, profiles)
    }

    #[test]
    fn config_space_is_index_ordered_with_contiguous_blocks() {
        let space = ConfigSpace::get();
        assert_eq!(space.len(), Configuration::space_size());
        assert!(!space.is_empty());
        assert!(space.cpu_end() > 0 && space.cpu_end() < space.len());
        for (i, c) in space.configs().iter().enumerate() {
            let x = config_features(c);
            for (k, col) in space.cols.iter().enumerate() {
                assert_eq!(col[i].to_bits(), x[k].to_bits());
            }
        }
    }

    #[test]
    fn cluster_tables_match_scalar_regression_bitwise() {
        let (model, _) = trained();
        let space = ConfigSpace::get();
        let fast = FastModel::new(&model);
        let stab = model.params.stabilize_variance;
        for (cluster, tables) in fast.clusters.iter().enumerate() {
            let models = &model.clusters[cluster];
            for (i, config) in space.configs().iter().enumerate() {
                let x = config_features(config);
                let (perf_model, power_model) = match config.device {
                    Device::Cpu => (&models.perf_cpu, &models.power_cpu),
                    Device::Gpu => (&models.perf_gpu, &models.power_gpu),
                };
                let ratio = unstabilize(perf_model.predict(&x), stab).max(1e-9);
                let power = unstabilize(power_model.predict(&x), stab).max(0.1);
                assert_eq!(tables.ratio[i].to_bits(), ratio.to_bits(), "ratio c{cluster} i{i}");
                assert_eq!(tables.power[i].to_bits(), power.to_bits(), "power c{cluster} i{i}");
            }
        }
    }

    #[test]
    fn fast_predict_is_bit_identical_to_scalar() {
        let (model, profiles) = trained();
        let fast = FastModel::new(&model);
        let predictor = Predictor::new(&model);
        for p in &profiles {
            let samples = p.sample_pair();
            let scalar = predictor.predict_scalar(&samples);
            let flat = fast.predict(&samples);
            assert_eq!(flat.cluster, scalar.cluster);
            assert_eq!(flat.points.len(), scalar.points.len());
            for (a, b) in flat.points.iter().zip(&scalar.points) {
                assert_eq!(a.config, b.config);
                assert_eq!(a.power_w.to_bits(), b.power_w.to_bits());
                assert_eq!(a.perf.to_bits(), b.perf.to_bits());
            }
            assert_eq!(flat.frontier, scalar.frontier);
        }
    }

    #[test]
    fn select_with_matches_profile_select_across_caps() {
        let (model, profiles) = trained();
        let fast = FastModel::new(&model);
        let predictor = Predictor::new(&model);
        let mut scratch = SelectScratch::new();
        for p in &profiles {
            let samples = p.sample_pair();
            let scalar = predictor.predict_scalar(&samples);
            for cap in [0.0, 5.0, 12.5, 20.0, 33.3, 60.0, 1e9, f64::NAN] {
                assert_eq!(
                    fast.select_with(&samples, cap, &mut scratch),
                    scalar.select(cap),
                    "kernel {} cap {cap}",
                    p.kernel.id()
                );
            }
        }
    }

    #[test]
    fn scratch_is_reusable_across_models_and_kernels() {
        let (model, profiles) = trained();
        let profiles2 = collect_suite(&Machine::new(11), &archetypes());
        let model2 =
            train(&profiles2, TrainingParams { n_clusters: 4, ..Default::default() }).unwrap();
        let (fast, fast2) = (FastModel::new(&model), FastModel::new(&model2));
        let mut scratch = SelectScratch::new();
        // Interleave models/kernels through one scratch; results must not
        // depend on what the scratch held before.
        for (p, q) in profiles.iter().zip(&profiles2) {
            let a1 = fast.select_with(&p.sample_pair(), 20.0, &mut scratch);
            let b1 = fast2.select_with(&q.sample_pair(), 20.0, &mut scratch);
            let a2 = fast.select_with(&p.sample_pair(), 20.0, &mut SelectScratch::new());
            let b2 = fast2.select_with(&q.sample_pair(), 20.0, &mut SelectScratch::new());
            assert_eq!(a1, a2);
            assert_eq!(b1, b2);
        }
    }
}
