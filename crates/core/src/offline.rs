//! The offline stage (Section III-B): characterize training kernels, group
//! them into clusters by frontier similarity, fit per-cluster regression
//! models, and train the classification tree that will route new kernels to
//! clusters online.

use crate::dissimilarity::dissimilarity_matrix;
use crate::features::{config_features, TREE_FEATURE_NAMES};
use crate::profile::KernelProfile;
use acs_mlstat::{
    pam, silhouette, ClassificationTree, Clustering, FitError, LinearModel, TreeError, TreeParams,
};
use acs_sim::Device;
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingParams {
    /// Number of kernel clusters. The paper found five optimal: "using
    /// fewer clusters resulted in over-generalized models, and using more
    /// clusters resulted in over-specialized models".
    pub n_clusters: usize,
    /// Classification-tree controls.
    pub tree: TreeParams,
    /// Apply a square-root variance-stabilizing transform to regression
    /// responses (the Section VI future-work idea; exposed for ablation
    /// A2 and off by default).
    pub stabilize_variance: bool,
    /// Reduced-error-prune the classification tree against a held-out
    /// fifth of the training kernels (CART's standard overfitting
    /// control; off by default to match the paper's small fixed-depth
    /// tree).
    pub prune_tree: bool,
}

impl Default for TrainingParams {
    fn default() -> Self {
        Self {
            n_clusters: 5,
            tree: TreeParams::default(),
            stabilize_variance: false,
            prune_tree: false,
        }
    }
}

/// The four regression models of one kernel cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterModels {
    /// Performance-scaling model for CPU configurations (no intercept;
    /// predicts `perf(config) / perf(CPU sample)`).
    pub perf_cpu: LinearModel,
    /// Performance-scaling model for GPU configurations.
    pub perf_gpu: LinearModel,
    /// Absolute power model for CPU configurations (with intercept, W).
    pub power_cpu: LinearModel,
    /// Absolute power model for GPU configurations.
    pub power_gpu: LinearModel,
}

/// Errors from offline training.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// Not enough training kernels for the requested cluster count.
    TooFewKernels {
        /// Kernels available for training.
        kernels: usize,
        /// Clusters requested.
        clusters: usize,
    },
    /// A cluster regression failed to fit.
    Regression(FitError),
    /// The classification tree failed to fit.
    Tree(TreeError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::TooFewKernels { kernels, clusters } => {
                write!(f, "{kernels} kernels cannot form {clusters} clusters")
            }
            TrainError::Regression(e) => write!(f, "cluster regression: {e}"),
            TrainError::Tree(e) => write!(f, "classification tree: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// The product of the offline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedModel {
    /// Hyperparameters used.
    pub params: TrainingParams,
    /// Training-kernel ids, aligned with `clustering.assignment`.
    pub kernel_ids: Vec<String>,
    /// The kernel clustering over the training set.
    pub clustering: Clustering,
    /// Mean silhouette width of the clustering (model-quality diagnostic).
    pub silhouette: f64,
    /// Per-cluster regression models, indexed by cluster id.
    pub clusters: Vec<ClusterModels>,
    /// The classifier that assigns new kernels to clusters.
    pub tree: ClassificationTree,
}

/// Response transform (and its inverse) for the optional variance
/// stabilization ablation. Responses here are non-negative (performance
/// ratios and watts), so a square root is the classic choice.
fn stabilize(y: f64, on: bool) -> f64 {
    if on {
        y.max(0.0).sqrt()
    } else {
        y
    }
}

/// Invert [`stabilize`].
pub(crate) fn unstabilize(y: f64, on: bool) -> f64 {
    if on {
        y.max(0.0) * y.max(0.0)
    } else {
        y
    }
}

fn fit_cluster(
    members: &[&KernelProfile],
    stabilize_variance: bool,
) -> Result<ClusterModels, TrainError> {
    let mut rows_cpu: Vec<Vec<f64>> = Vec::new();
    let mut perf_cpu_y: Vec<f64> = Vec::new();
    let mut power_cpu_y: Vec<f64> = Vec::new();
    let mut rows_gpu: Vec<Vec<f64>> = Vec::new();
    let mut perf_gpu_y: Vec<f64> = Vec::new();
    let mut power_gpu_y: Vec<f64> = Vec::new();

    for profile in members {
        let samples = profile.sample_pair();
        for run in &profile.runs {
            let x = config_features(&run.config).to_vec();
            let s_perf = samples.perf_on(run.config.device);
            let ratio = (1.0 / run.time_s) / s_perf;
            match run.config.device {
                Device::Cpu => {
                    rows_cpu.push(x);
                    perf_cpu_y.push(stabilize(ratio, stabilize_variance));
                    power_cpu_y.push(stabilize(run.power_w(), stabilize_variance));
                }
                Device::Gpu => {
                    rows_gpu.push(x);
                    perf_gpu_y.push(stabilize(ratio, stabilize_variance));
                    power_gpu_y.push(stabilize(run.power_w(), stabilize_variance));
                }
            }
        }
    }

    Ok(ClusterModels {
        perf_cpu: LinearModel::fit(&rows_cpu, &perf_cpu_y, false)
            .map_err(TrainError::Regression)?,
        perf_gpu: LinearModel::fit(&rows_gpu, &perf_gpu_y, false)
            .map_err(TrainError::Regression)?,
        power_cpu: LinearModel::fit(&rows_cpu, &power_cpu_y, true)
            .map_err(TrainError::Regression)?,
        power_gpu: LinearModel::fit(&rows_gpu, &power_gpu_y, true)
            .map_err(TrainError::Regression)?,
    })
}

/// Run the complete offline stage on a training set of characterized
/// kernels.
pub fn train(
    profiles: &[KernelProfile],
    params: TrainingParams,
) -> Result<TrainedModel, TrainError> {
    if profiles.len() < params.n_clusters || params.n_clusters == 0 {
        return Err(TrainError::TooFewKernels {
            kernels: profiles.len(),
            clusters: params.n_clusters,
        });
    }

    // 1. Pareto frontiers → dissimilarity matrix → PAM clustering.
    let frontiers: Vec<_> = profiles.iter().map(KernelProfile::frontier).collect();
    let matrix = dissimilarity_matrix(&frontiers);
    let clustering = pam(&matrix, params.n_clusters);
    let sil = silhouette(&matrix, &clustering);

    // 2. Per-cluster regression models.
    let mut clusters = Vec::with_capacity(params.n_clusters);
    for c in 0..params.n_clusters {
        let members: Vec<&KernelProfile> =
            clustering.members(c).into_iter().map(|i| &profiles[i]).collect();
        clusters.push(fit_cluster(&members, params.stabilize_variance)?);
    }

    // 3. Classification tree on sample-configuration features. With
    // pruning enabled, every fifth kernel is held out of tree *growth*
    // and used to prune it instead.
    let rows: Vec<Vec<f64>> =
        profiles.iter().map(|p| p.sample_pair().tree_features().to_vec()).collect();
    let tree = if params.prune_tree && profiles.len() >= 10 {
        let grow: Vec<usize> = (0..rows.len()).filter(|i| i % 5 != 4).collect();
        let hold: Vec<usize> = (0..rows.len()).filter(|i| i % 5 == 4).collect();
        let grow_rows: Vec<Vec<f64>> = grow.iter().map(|&i| rows[i].clone()).collect();
        let grow_labels: Vec<usize> = grow.iter().map(|&i| clustering.assignment[i]).collect();
        let mut t =
            ClassificationTree::fit(&grow_rows, &grow_labels, params.n_clusters, params.tree)
                .map_err(TrainError::Tree)?;
        let hold_rows: Vec<Vec<f64>> = hold.iter().map(|&i| rows[i].clone()).collect();
        let hold_labels: Vec<usize> = hold.iter().map(|&i| clustering.assignment[i]).collect();
        t.prune(&hold_rows, &hold_labels);
        t
    } else {
        ClassificationTree::fit(&rows, &clustering.assignment, params.n_clusters, params.tree)
            .map_err(TrainError::Tree)?
    };

    Ok(TrainedModel {
        params,
        kernel_ids: profiles.iter().map(|p| p.kernel.id()).collect(),
        clustering,
        silhouette: sil,
        clusters,
        tree,
    })
}

impl TrainedModel {
    /// Render the classification tree with feature names (Figure 3).
    pub fn render_tree(&self) -> String {
        self.tree.render(&TREE_FEATURE_NAMES)
    }

    /// Training accuracy of the tree on its own training kernels.
    pub fn tree_training_accuracy(&self, profiles: &[KernelProfile]) -> f64 {
        let rows: Vec<Vec<f64>> =
            profiles.iter().map(|p| p.sample_pair().tree_features().to_vec()).collect();
        self.tree.accuracy(&rows, &self.clustering.assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::collect_suite;
    use acs_sim::{KernelCharacteristics, Machine};

    /// A small but diverse training set: three archetypes × variations.
    fn training_profiles() -> Vec<KernelProfile> {
        let m = Machine::new(7);
        let mut kernels = Vec::new();
        for i in 0..4u32 {
            let s = 1.0 + i as f64 * 0.2;
            kernels.push(KernelCharacteristics {
                name: format!("gpu-friendly-{i}"),
                gpu_speedup: 12.0 * s,
                compute_time_s: 0.012 * s,
                ..Default::default()
            });
            kernels.push(KernelCharacteristics {
                name: format!("membound-{i}"),
                compute_time_s: 0.001 * s,
                memory_time_s: 0.012 * s,
                gpu_speedup: 3.0,
                ..Default::default()
            });
            kernels.push(KernelCharacteristics {
                name: format!("divergent-{i}"),
                gpu_speedup: 1.2,
                branch_divergence: 0.7,
                parallel_fraction: 0.85,
                ..Default::default()
            });
        }
        collect_suite(&m, &kernels)
    }

    #[test]
    fn training_succeeds_on_diverse_suite() {
        let profiles = training_profiles();
        let model = train(&profiles, TrainingParams { n_clusters: 3, ..Default::default() })
            .expect("training succeeds");
        assert_eq!(model.clusters.len(), 3);
        assert_eq!(model.kernel_ids.len(), profiles.len());
        assert_eq!(model.clustering.assignment.len(), profiles.len());
    }

    #[test]
    fn clustering_recovers_archetypes() {
        let profiles = training_profiles();
        let model =
            train(&profiles, TrainingParams { n_clusters: 3, ..Default::default() }).unwrap();
        // Kernels of the same archetype should mostly share a cluster.
        let cluster_of = |name: &str| {
            let i = profiles.iter().position(|p| p.kernel.name == name).unwrap();
            model.clustering.assignment[i]
        };
        assert_eq!(cluster_of("gpu-friendly-0"), cluster_of("gpu-friendly-3"));
        assert_ne!(cluster_of("gpu-friendly-0"), cluster_of("divergent-0"));
        // The CPU-leaning archetypes are closer to each other than to the
        // GPU cluster; require majority cohesion rather than purity.
        let membound: Vec<usize> = (0..4).map(|i| cluster_of(&format!("membound-{i}"))).collect();
        let modal = *membound
            .iter()
            .max_by_key(|&&c| membound.iter().filter(|&&x| x == c).count())
            .unwrap();
        let cohesion = membound.iter().filter(|&&c| c == modal).count();
        assert!(cohesion >= 3, "membound assignments {membound:?}");
    }

    #[test]
    fn regressions_fit_training_data_well() {
        let profiles = training_profiles();
        let model =
            train(&profiles, TrainingParams { n_clusters: 3, ..Default::default() }).unwrap();
        for (i, c) in model.clusters.iter().enumerate() {
            assert!(c.perf_cpu.r_squared > 0.7, "cluster {i} perf_cpu r² {}", c.perf_cpu.r_squared);
            assert!(
                c.power_cpu.r_squared > 0.7,
                "cluster {i} power_cpu r² {}",
                c.power_cpu.r_squared
            );
            assert!(c.perf_gpu.r_squared > 0.5, "cluster {i} perf_gpu r² {}", c.perf_gpu.r_squared);
            assert!(
                c.power_gpu.r_squared > 0.5,
                "cluster {i} power_gpu r² {}",
                c.power_gpu.r_squared
            );
        }
    }

    #[test]
    fn tree_classifies_training_kernels_well() {
        let profiles = training_profiles();
        let model =
            train(&profiles, TrainingParams { n_clusters: 3, ..Default::default() }).unwrap();
        let acc = model.tree_training_accuracy(&profiles);
        assert!(acc > 0.8, "tree training accuracy {acc}");
    }

    #[test]
    fn too_few_kernels_is_an_error() {
        let profiles = training_profiles();
        let err = train(&profiles[..2], TrainingParams { n_clusters: 5, ..Default::default() });
        assert!(matches!(err, Err(TrainError::TooFewKernels { .. })));
        let err0 = train(&profiles, TrainingParams { n_clusters: 0, ..Default::default() });
        assert!(matches!(err0, Err(TrainError::TooFewKernels { .. })));
    }

    #[test]
    fn training_is_deterministic() {
        let profiles = training_profiles();
        let p = TrainingParams { n_clusters: 3, ..Default::default() };
        assert_eq!(train(&profiles, p).unwrap(), train(&profiles, p).unwrap());
    }

    #[test]
    fn render_tree_mentions_features() {
        let profiles = training_profiles();
        let model =
            train(&profiles, TrainingParams { n_clusters: 3, ..Default::default() }).unwrap();
        let txt = model.render_tree();
        assert!(txt.contains("cluster"), "rendered tree:\n{txt}");
    }

    #[test]
    fn pruned_tree_training_still_classifies() {
        let profiles = training_profiles();
        let params = TrainingParams { n_clusters: 3, prune_tree: true, ..Default::default() };
        let model = train(&profiles, params).unwrap();
        // The pruned tree is at most as large as the unpruned one and
        // still routes training kernels decently.
        let unpruned =
            train(&profiles, TrainingParams { n_clusters: 3, ..Default::default() }).unwrap();
        assert!(model.tree.node_count() <= unpruned.tree.node_count());
        assert!(model.tree_training_accuracy(&profiles) > 0.6);
    }

    #[test]
    fn variance_stabilization_roundtrip() {
        assert_eq!(unstabilize(stabilize(4.0, true), true), 4.0);
        assert_eq!(unstabilize(stabilize(4.0, false), false), 4.0);
        let profiles = training_profiles();
        let model = train(
            &profiles,
            TrainingParams { n_clusters: 3, stabilize_variance: true, ..Default::default() },
        )
        .unwrap();
        assert_eq!(model.clusters.len(), 3);
    }
}
