//! # acs-core — adaptive configuration selection
//!
//! The paper's primary contribution: an offline-trained, online-applied
//! power/performance model that selects hardware configurations (device,
//! thread count, CPU/GPU P-states) maximizing performance under a power
//! constraint on a heterogeneous processor.
//!
//! Pipeline (Figure 1):
//!
//! 1. **Offline** ([`offline::train`]): characterize training kernels over
//!    the full configuration space ([`profile`]), extract power–performance
//!    Pareto frontiers ([`frontier`]), compare frontier orderings with
//!    Kendall's τ into a dissimilarity matrix ([`dissimilarity`]), cluster
//!    kernels with PAM, fit per-cluster linear regression models for power
//!    and performance, and train a classification tree over
//!    sample-configuration features ([`features`]).
//! 2. **Online** ([`online::Predictor`]): run a new kernel once per device
//!    at the Table II sample configurations, classify it into a cluster,
//!    predict the whole configuration space, derive the predicted frontier,
//!    and select the best predicted configuration under the active cap —
//!    in well under a millisecond.
//!
//! [`methods`] implements the paper's comparison policies (Oracle, Model,
//! Model+FL, CPU+FL, GPU+FL) on top of the simulated RAPL-style frequency
//! [`limiter`], and [`eval`] reproduces the leave-one-benchmark-out
//! evaluation protocol behind Table III and Figures 4–9.
//!
//! ```
//! use acs_core::{train, sample_config, KernelProfile, Predictor, SamplePair, TrainingParams};
//! use acs_sim::{Device, KernelCharacteristics, Machine};
//!
//! // Offline: characterize a (tiny, for the doctest) training set.
//! let machine = Machine::new(42);
//! let training: Vec<KernelProfile> = (0..6)
//!     .map(|i| {
//!         let k = KernelCharacteristics {
//!             name: format!("k{i}"),
//!             gpu_speedup: 2.0 + 3.0 * f64::from(i),
//!             ..Default::default()
//!         };
//!         KernelProfile::collect(&machine, &k)
//!     })
//!     .collect();
//! let model = train(&training, TrainingParams { n_clusters: 3, ..Default::default() }).unwrap();
//!
//! // Online: two sample iterations of a new kernel → configuration.
//! let new_kernel = KernelCharacteristics { name: "new".into(), ..Default::default() };
//! let samples = SamplePair::new(
//!     machine.run(&new_kernel, &sample_config(Device::Cpu)),
//!     machine.run(&new_kernel, &sample_config(Device::Gpu)),
//! );
//! let config = Predictor::new(&model).predict(&samples).select(20.0);
//! assert!(config.index() < acs_sim::Configuration::space_size());
//! ```

#![warn(missing_docs)]

pub mod adapt;
pub mod bootstrap;
pub mod confidence;
pub mod dissimilarity;
pub mod eval;
pub mod fastpath;
pub mod features;
pub mod frontier;
pub mod health;
pub mod limiter;
pub mod methods;
pub mod objective;
pub mod offline;
pub mod online;
pub mod partition;
pub mod persist;
pub mod profile;
pub mod runtime;

pub use adapt::{
    AdaptCorrection, AdaptError, AdaptOutcome, AdaptParams, AdaptSelection, AdaptivePredictor,
    DriftEvent, KalmanFilter, Signal,
};
pub use bootstrap::{bootstrap_table3, Interval, MethodIntervals};
pub use confidence::{predict_with_confidence, BoundedPoint, BoundedProfile};
pub use eval::{characterize_apps, evaluate, AppProfiles, CaseResult, Evaluation, MethodSummary};
pub use fastpath::{ConfigSpace, FastModel, SelectScratch};
pub use features::{sample_config, SamplePair, TREE_FEATURE_NAMES};
pub use frontier::{Frontier, PowerPerfPoint};
pub use health::{
    safe_min_config, DegradationTier, GuardPolicy, KernelHealth, RuntimeError, TierState,
};
pub use methods::Method;
pub use objective::Objective;
pub use offline::{train, ClusterModels, TrainedModel, TrainingParams};
pub use online::{prediction_error, PredictedProfile, Predictor};
pub use partition::{
    partition_budget, partition_budget_with, DemandCurve, Partition, PartitionObjective,
};
pub use persist::{
    crc32, quarantine_path, read_artifact, write_artifact, PersistError, ARTIFACT_VERSION,
};
pub use profile::{collect_suite, KernelProfile};
pub use runtime::{AppRunReport, CappedRuntime};
