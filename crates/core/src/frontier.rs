//! Power–performance Pareto frontiers (Section III-B, Figure 2).
//!
//! A configuration is on the frontier when no other configuration delivers
//! at least its performance for no more power. Frontiers are stored sorted
//! by increasing power (equivalently increasing performance), which defines
//! the *ordering* that the kernel-dissimilarity computation compares.

use acs_sim::Configuration;
use serde::{Deserialize, Serialize};

/// One (configuration, power, performance) observation or prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerPerfPoint {
    /// The configuration.
    pub config: Configuration,
    /// Average package power, W.
    pub power_w: f64,
    /// Performance (inverse time; any fixed positive scale works).
    pub perf: f64,
}

/// A Pareto frontier: points sorted by increasing power, strictly
/// increasing performance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frontier {
    points: Vec<PowerPerfPoint>,
}

impl Frontier {
    /// Extract the Pareto frontier from arbitrary points.
    ///
    /// Dominated points (another point has `power ≤` and `perf ≥`, with at
    /// least one strict) are discarded. Among points with identical power,
    /// only the best-performing survives.
    pub fn from_points(mut points: Vec<PowerPerfPoint>) -> Self {
        // Sort by power ascending; among equal power, best perf first so
        // the scan keeps it and drops the rest.
        points.sort_by(|a, b| {
            a.power_w
                .partial_cmp(&b.power_w)
                .unwrap()
                .then(b.perf.partial_cmp(&a.perf).unwrap())
                // Stable, deterministic order for exact duplicates.
                .then(a.config.index().cmp(&b.config.index()))
        });
        let mut frontier: Vec<PowerPerfPoint> = Vec::new();
        for p in points {
            match frontier.last() {
                Some(last) if p.perf <= last.perf => {} // dominated
                Some(last) if p.power_w == last.power_w => {
                    // Same power, better perf cannot happen after the sort
                    // (best perf came first), so this branch is dominated
                    // too; kept for clarity.
                }
                _ => frontier.push(p),
            }
        }
        Self { points: frontier }
    }

    /// Wrap points that already satisfy the frontier invariant (strictly
    /// increasing power and performance) — the fast path's non-domination
    /// sweep produces exactly [`Frontier::from_points`]' output, so
    /// re-sorting it would be wasted work.
    pub(crate) fn from_sorted(points: Vec<PowerPerfPoint>) -> Self {
        debug_assert!(points
            .windows(2)
            .all(|w| w[0].power_w < w[1].power_w && w[0].perf < w[1].perf));
        Self { points }
    }

    /// The frontier points, sorted by increasing power.
    pub fn points(&self) -> &[PowerPerfPoint] {
        &self.points
    }

    /// Number of frontier configurations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the frontier is empty (no input points).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The best-performing point whose power does not exceed `cap_w`.
    ///
    /// Power is strictly increasing, so `power ≤ cap` holds on a prefix
    /// and binary search finds its end — O(log n) on the hot re-selection
    /// path. A NaN cap makes the predicate false everywhere, i.e. `None`,
    /// exactly like the linear scan this replaces (proptest-gated in
    /// `tests/proptests.rs`).
    pub fn best_under(&self, cap_w: f64) -> Option<&PowerPerfPoint> {
        let idx = self.points.partition_point(|p| p.power_w <= cap_w);
        if idx == 0 {
            None
        } else {
            Some(&self.points[idx - 1])
        }
    }

    /// The minimum-power point (the fallback when no point meets a cap).
    pub fn min_power(&self) -> Option<&PowerPerfPoint> {
        self.points.first()
    }

    /// The maximum-performance point.
    pub fn max_perf(&self) -> Option<&PowerPerfPoint> {
        self.points.last()
    }

    /// The rank (position in increasing-power order) of each of `configs`
    /// within this frontier; `None` for configurations not on the frontier.
    pub fn rank_of(&self, config: &Configuration) -> Option<usize> {
        self.points.iter().position(|p| &p.config == config)
    }

    /// Configuration indices present on this frontier, in frontier order.
    pub fn config_indices(&self) -> Vec<usize> {
        self.points.iter().map(|p| p.config.index()).collect()
    }

    /// A copy with performance normalized so the best point is 1.0
    /// (the per-kernel normalization of Figure 2).
    pub fn normalized(&self) -> Frontier {
        let max = self.max_perf().map_or(1.0, |p| p.perf).max(1e-300);
        Frontier {
            points: self
                .points
                .iter()
                .map(|p| PowerPerfPoint { perf: p.perf / max, ..*p })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_sim::CpuPState;

    fn cfg(i: u8) -> Configuration {
        Configuration::cpu(1 + (i % 4), CpuPState(i % 6))
    }

    fn pt(i: u8, power: f64, perf: f64) -> PowerPerfPoint {
        PowerPerfPoint { config: cfg(i), power_w: power, perf }
    }

    #[test]
    fn extracts_simple_frontier() {
        let f = Frontier::from_points(vec![
            pt(0, 10.0, 1.0),
            pt(1, 20.0, 2.0),
            pt(2, 15.0, 0.5), // dominated by pt(0)
            pt(3, 30.0, 3.0),
        ]);
        assert_eq!(f.len(), 3);
        let powers: Vec<f64> = f.points().iter().map(|p| p.power_w).collect();
        assert_eq!(powers, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn frontier_is_strictly_monotone() {
        let f = Frontier::from_points(vec![
            pt(0, 10.0, 1.0),
            pt(1, 12.0, 1.0), // equal perf at higher power: dominated
            pt(2, 14.0, 2.0),
        ]);
        assert_eq!(f.len(), 2);
        for w in f.points().windows(2) {
            assert!(w[0].power_w < w[1].power_w);
            assert!(w[0].perf < w[1].perf);
        }
    }

    #[test]
    fn equal_power_keeps_best_perf() {
        let f = Frontier::from_points(vec![pt(0, 10.0, 1.0), pt(1, 10.0, 2.0)]);
        assert_eq!(f.len(), 1);
        assert_eq!(f.points()[0].perf, 2.0);
    }

    #[test]
    fn best_under_cap() {
        let f = Frontier::from_points(vec![pt(0, 10.0, 1.0), pt(1, 20.0, 2.0), pt(2, 30.0, 3.0)]);
        assert_eq!(f.best_under(25.0).unwrap().perf, 2.0);
        assert_eq!(f.best_under(30.0).unwrap().perf, 3.0);
        assert_eq!(f.best_under(10.0).unwrap().perf, 1.0);
        assert!(f.best_under(5.0).is_none());
    }

    #[test]
    fn endpoints() {
        let f = Frontier::from_points(vec![pt(0, 10.0, 1.0), pt(1, 20.0, 2.0)]);
        assert_eq!(f.min_power().unwrap().power_w, 10.0);
        assert_eq!(f.max_perf().unwrap().perf, 2.0);
    }

    #[test]
    fn empty_input_is_empty_frontier() {
        let f = Frontier::from_points(vec![]);
        assert!(f.is_empty());
        assert!(f.best_under(100.0).is_none());
        assert!(f.min_power().is_none());
        assert!(f.max_perf().is_none());
    }

    #[test]
    fn rank_of_configs() {
        let f = Frontier::from_points(vec![pt(0, 10.0, 1.0), pt(1, 20.0, 2.0)]);
        assert_eq!(f.rank_of(&cfg(0)), Some(0));
        assert_eq!(f.rank_of(&cfg(1)), Some(1));
        assert_eq!(f.rank_of(&cfg(3)), None);
        assert_eq!(f.config_indices(), vec![cfg(0).index(), cfg(1).index()]);
    }

    #[test]
    fn normalization_sets_best_to_one() {
        let f = Frontier::from_points(vec![pt(0, 10.0, 1.0), pt(1, 20.0, 4.0)]);
        let n = f.normalized();
        assert_eq!(n.max_perf().unwrap().perf, 1.0);
        assert_eq!(n.min_power().unwrap().perf, 0.25);
        // Power untouched.
        assert_eq!(n.min_power().unwrap().power_w, 10.0);
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        let f = Frontier::from_points(vec![pt(0, 10.0, 1.0)]);
        assert_eq!(f.len(), 1);
        assert_eq!(f.normalized().points()[0].perf, 1.0);
    }
}
