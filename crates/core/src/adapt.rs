//! Online adaptation: Kalman-tracked drift estimation over the static model.
//!
//! The offline model (Sections III-B/III-C) is trained once and never looks
//! back — but real machines drift: thermal throttling, component aging, and
//! co-tenant interference move the true power/performance surface away from
//! the cluster-regression prior. This module closes the loop in the style of
//! ALERT-Online (SNIPPETS.md snippet 3): per-(session, kernel) **scalar
//! Kalman filters** track the ratio of measured to predicted power and
//! throughput, a **drift detector** compares innovation-normalized residuals
//! against fixed thresholds, and an [`AdaptivePredictor`] blends the Kalman
//! posterior with the static prior to re-select configurations when the
//! prior has gone stale.
//!
//! Determinism policy for stateful estimators (DESIGN.md §16):
//!
//! - Every update is a fixed sequence of `f64` operations in source order —
//!   no fastmath, no reductions whose order depends on thread count — so
//!   the same observation sequence always produces bit-identical state.
//! - Measurements are fed as **ratios** (measured / predicted) normalized by
//!   a per-kernel baseline learned from the first few observations. The
//!   baseline cancels static-model error (power MAPE can reach 35%), so at
//!   zero drift the tracked signal sits at 1.0 ± sensor noise and the
//!   detector stays silent: the adaptive path answers **bit-for-bit the
//!   static answer** until drift is confirmed.
//! - Non-finite measurements are rejected with a typed [`AdaptError`]
//!   *before* any state is touched — a NaN can never enter a filter.
//! - The exact ratio bits are journaled (serve crate), so crash recovery
//!   replays the identical observation sequence and lands on the identical
//!   posterior; [`AdaptivePredictor::state_digest`] makes that checkable.

use crate::online::PredictedProfile;
use acs_sim::noise::{fnv1a, splitmix64};
use acs_sim::Configuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which measured signal an error or event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Signal {
    /// Package power draw (watts).
    Power,
    /// Throughput (iterations per second).
    Perf,
}

impl std::fmt::Display for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Signal::Power => write!(f, "power"),
            Signal::Perf => write!(f, "perf"),
        }
    }
}

/// Typed adaptation failures. Every rejection leaves all estimator state
/// exactly as it was — a bad measurement can never poison a filter.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptError {
    /// A measurement or prediction was NaN or infinite.
    NonFinite {
        /// Which signal carried the bad value.
        signal: Signal,
        /// The offending value.
        value: f64,
    },
    /// A predicted quantity was zero or negative, so no measured/predicted
    /// ratio exists.
    NonPositive {
        /// Which signal carried the bad prediction.
        signal: Signal,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for AdaptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptError::NonFinite { signal, value } => {
                write!(f, "non-finite {signal} measurement {value}")
            }
            AdaptError::NonPositive { signal, value } => {
                write!(f, "non-positive predicted {signal} {value}")
            }
        }
    }
}

impl std::error::Error for AdaptError {}

/// Parameters of the adaptation layer. Defaults are tuned for the
/// simulator's 1% multiplicative sensor noise: the bias tolerance (4%) is
/// four sigma away from the zero-drift signal, so false re-selections are
/// effectively impossible, while a 20%+ drift confirms within
/// [`AdaptParams::confirm`] observations of the baseline closing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptParams {
    /// Initial process-noise covariance (adapted online, ALERT-style).
    pub q: f64,
    /// Measurement-noise covariance.
    pub r: f64,
    /// Initial error covariance.
    pub p0: f64,
    /// Floor under the adaptive process noise.
    pub q_floor: f64,
    /// Observations averaged into the per-kernel baseline before any
    /// detection begins.
    pub baseline_window: u32,
    /// Ring size for innovation-normalized residuals (variance detector).
    pub detect_window: usize,
    /// Posterior distance from 1.0 that counts as bias.
    pub bias_tol: f64,
    /// Normalized-innovation variance that counts as a blow-up.
    pub var_blowup: f64,
    /// Consecutive biased observations required to confirm drift.
    pub confirm: u32,
    /// Baseline-relative ratio beyond which the cluster assignment itself
    /// is considered wrong (triggers re-classification, once per kernel).
    pub reclassify_ratio: f64,
    /// Lower clamp on measured/predicted ratios.
    pub ratio_min: f64,
    /// Upper clamp on measured/predicted ratios.
    pub ratio_max: f64,
}

impl Default for AdaptParams {
    fn default() -> Self {
        Self {
            q: 1e-4,
            r: 4e-4,
            p0: 1.0,
            q_floor: 1e-5,
            baseline_window: 4,
            detect_window: 8,
            bias_tol: 0.04,
            var_blowup: 9.0,
            confirm: 3,
            reclassify_ratio: 1.5,
            ratio_min: 0.25,
            ratio_max: 4.0,
        }
    }
}

/// One filter step's innovation: the residual and its predicted variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Innovation {
    /// Measurement minus prior estimate.
    pub residual: f64,
    /// Innovation covariance `S = P + R`.
    pub variance: f64,
}

/// A scalar Kalman filter with ALERT-Online's adaptive process noise
/// (`A = H = 1`). The update is a fixed `f64` sequence in source order —
/// identical inputs always produce bit-identical state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KalmanFilter {
    /// Posterior state estimate.
    pub x: f64,
    /// Posterior error covariance.
    pub p: f64,
    /// Adaptive process-noise covariance.
    pub q: f64,
    /// Measurement-noise covariance.
    pub r: f64,
    /// Floor under the adaptive process noise.
    pub q_floor: f64,
    /// Previous Kalman gain (feeds the adaptive Q update).
    k: f64,
    /// Previous innovation residual.
    y: f64,
}

impl KalmanFilter {
    /// A filter starting at estimate `x0` with the given covariances.
    pub fn new(x0: f64, params: &AdaptParams) -> Self {
        Self {
            x: x0,
            p: params.p0,
            q: params.q,
            r: params.r,
            q_floor: params.q_floor,
            k: 0.0,
            y: 0.0,
        }
    }

    /// One measurement update. Non-finite measurements are rejected with a
    /// typed error and the state is left untouched. The operation order is
    /// exactly ALERT-Online's published sequence.
    #[allow(clippy::assign_op_pattern)] // the textbook update equations, verbatim
    pub fn update(&mut self, signal: Signal, z: f64) -> Result<Innovation, AdaptError> {
        if !z.is_finite() {
            return Err(AdaptError::NonFinite { signal, value: z });
        }
        // x = A·x with A = 1 is a no-op; kept implicit.
        self.q = (0.3 * self.q + 0.7 * self.k * self.k * self.y * self.y).max(self.q_floor);
        self.p = self.p + self.q;
        self.y = z - self.x;
        let s = self.p + self.r;
        self.k = self.p / s;
        self.x = self.x + self.k * self.y;
        self.p = (1.0 - self.k) * self.p;
        Ok(Innovation { residual: self.y, variance: s })
    }

    /// Fold this filter's exact state bits into a digest accumulator.
    fn digest_into(&self, mut h: u64) -> u64 {
        for bits in [
            self.x.to_bits(),
            self.p.to_bits(),
            self.q.to_bits(),
            self.k.to_bits(),
            self.y.to_bits(),
        ] {
            h = splitmix64(h ^ bits);
        }
        h
    }
}

/// A typed drift detection, emitted at most once per (kernel, kind, signal).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DriftEvent {
    /// The Kalman posterior moved persistently away from 1.0: the static
    /// model is biased for this kernel. Latches the correction on.
    Bias {
        /// The drifting kernel.
        kernel_id: String,
        /// Which signal drifted.
        signal: Signal,
        /// The posterior ratio estimate at confirmation.
        posterior: f64,
    },
    /// The innovation-normalized residual variance blew past the threshold:
    /// the process became much noisier than the model assumes.
    VarianceBlowup {
        /// The affected kernel.
        kernel_id: String,
        /// Which signal blew up.
        signal: Signal,
        /// Observed normalized-innovation variance.
        ratio: f64,
    },
    /// The baseline-relative ratio left the band the cluster assignment can
    /// explain: the kernel should be re-classified.
    ClusterMismatch {
        /// The mismatched kernel.
        kernel_id: String,
        /// Baseline-relative power ratio at detection.
        power_ratio: f64,
        /// Baseline-relative perf ratio at detection.
        perf_ratio: f64,
    },
}

/// Per-signal estimator state: one Kalman filter plus detector scratch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SignalTracker {
    filter: KalmanFilter,
    /// Ring buffer of innovation-normalized residuals.
    window: Vec<f64>,
    next: usize,
    consecutive: u32,
    bias_confirmed: bool,
    blowup_emitted: bool,
}

impl SignalTracker {
    fn new(params: &AdaptParams) -> Self {
        Self {
            filter: KalmanFilter::new(1.0, params),
            window: Vec::new(),
            next: 0,
            consecutive: 0,
            bias_confirmed: false,
            blowup_emitted: false,
        }
    }

    /// Feed one baseline-normalized measurement; append any detections.
    fn update(
        &mut self,
        signal: Signal,
        z: f64,
        kernel_id: &str,
        params: &AdaptParams,
        events: &mut Vec<DriftEvent>,
    ) -> Result<(), AdaptError> {
        let innovation = self.filter.update(signal, z)?;
        let normalized = innovation.residual / innovation.variance.sqrt();
        if self.window.len() < params.detect_window {
            self.window.push(normalized);
        } else {
            self.window[self.next] = normalized;
        }
        self.next = (self.next + 1) % params.detect_window.max(1);
        if (self.filter.x - 1.0).abs() > params.bias_tol {
            self.consecutive += 1;
            if self.consecutive >= params.confirm && !self.bias_confirmed {
                self.bias_confirmed = true;
                events.push(DriftEvent::Bias {
                    kernel_id: kernel_id.to_string(),
                    signal,
                    posterior: self.filter.x,
                });
            }
        } else {
            self.consecutive = 0;
        }
        if self.window.len() == params.detect_window && !self.blowup_emitted {
            let n = params.detect_window as f64;
            let mean = self.window.iter().sum::<f64>() / n;
            let var = self.window.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            if var > params.var_blowup {
                self.blowup_emitted = true;
                events.push(DriftEvent::VarianceBlowup {
                    kernel_id: kernel_id.to_string(),
                    signal,
                    ratio: var,
                });
            }
        }
        Ok(())
    }

    fn digest_into(&self, mut h: u64) -> u64 {
        h = self.filter.digest_into(h);
        for v in &self.window {
            h = splitmix64(h ^ v.to_bits());
        }
        h = splitmix64(h ^ self.next as u64);
        h = splitmix64(h ^ self.consecutive as u64);
        h = splitmix64(h ^ (self.bias_confirmed as u64) ^ ((self.blowup_emitted as u64) << 1));
        h
    }
}

/// Per-kernel adaptation state: a learned baseline plus two signal trackers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct KernelTracker {
    baseline_power_sum: f64,
    baseline_perf_sum: f64,
    baseline_count: u32,
    power: SignalTracker,
    perf: SignalTracker,
    mismatch_emitted: bool,
}

impl KernelTracker {
    fn new(params: &AdaptParams) -> Self {
        Self {
            baseline_power_sum: 0.0,
            baseline_perf_sum: 0.0,
            baseline_count: 0,
            power: SignalTracker::new(params),
            perf: SignalTracker::new(params),
            mismatch_emitted: false,
        }
    }

    fn baseline_power_mean(&self) -> f64 {
        self.baseline_power_sum / self.baseline_count as f64
    }

    fn baseline_perf_mean(&self) -> f64 {
        self.baseline_perf_sum / self.baseline_count as f64
    }

    fn digest_into(&self, mut h: u64) -> u64 {
        h = splitmix64(h ^ self.baseline_power_sum.to_bits());
        h = splitmix64(h ^ self.baseline_perf_sum.to_bits());
        h = splitmix64(h ^ self.baseline_count as u64);
        h = self.power.digest_into(h);
        h = self.perf.digest_into(h);
        splitmix64(h ^ self.mismatch_emitted as u64)
    }
}

/// The measured/predicted correction factors for a kernel with confirmed
/// drift: multiply a predicted quantity by its ratio to estimate the truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptCorrection {
    /// Estimated true power / predicted power.
    pub power_ratio: f64,
    /// Estimated true perf / predicted perf.
    pub perf_ratio: f64,
}

/// The result of feeding one measurement pair through [`AdaptivePredictor::observe`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptOutcome {
    /// The clamped measured/predicted power ratio that was tracked. These
    /// exact bits are what a recovery journal must replay.
    pub power_ratio: f64,
    /// The clamped measured/predicted perf ratio that was tracked.
    pub perf_ratio: f64,
    /// Drift detections triggered by this observation (usually empty).
    pub events: Vec<DriftEvent>,
}

/// An adaptive selection: the chosen configuration plus whether the
/// drift-corrected path changed the answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptSelection {
    /// The selected configuration.
    pub config: Configuration,
    /// True iff a confirmed drift correction moved the selection away from
    /// the static answer.
    pub corrected: bool,
}

/// Blends the static cluster-regression prior with per-kernel Kalman
/// posteriors. Until drift is *confirmed* for a kernel, selection falls
/// through to the bit-identical static path — a predictor that never sees
/// feedback is observationally indistinguishable from no predictor at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePredictor {
    params: AdaptParams,
    kernels: BTreeMap<String, KernelTracker>,
    observations: u64,
    drift_events: u64,
    reselections: u64,
    reclassifications: u64,
}

impl Default for AdaptivePredictor {
    fn default() -> Self {
        Self::new(AdaptParams::default())
    }
}

impl AdaptivePredictor {
    /// A predictor with no observations and the given thresholds.
    pub fn new(params: AdaptParams) -> Self {
        Self {
            params,
            kernels: BTreeMap::new(),
            observations: 0,
            drift_events: 0,
            reselections: 0,
            reclassifications: 0,
        }
    }

    /// The configured thresholds.
    pub fn params(&self) -> &AdaptParams {
        &self.params
    }

    /// Total measurements accepted.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Total [`DriftEvent`]s emitted.
    pub fn drift_events(&self) -> u64 {
        self.drift_events
    }

    /// Selections the corrected path moved away from the static answer.
    pub fn reselections(&self) -> u64 {
        self.reselections
    }

    /// Kernels flagged for cluster re-classification.
    pub fn reclassifications(&self) -> u64 {
        self.reclassifications
    }

    /// Feed one measured (power, perf) pair against its prediction.
    /// Validation happens before any state is touched: on error the
    /// predictor is exactly as it was.
    pub fn observe(
        &mut self,
        kernel_id: &str,
        measured_power_w: f64,
        measured_perf: f64,
        predicted_power_w: f64,
        predicted_perf: f64,
    ) -> Result<AdaptOutcome, AdaptError> {
        for (signal, value) in [(Signal::Power, measured_power_w), (Signal::Perf, measured_perf)] {
            if !value.is_finite() {
                return Err(AdaptError::NonFinite { signal, value });
            }
        }
        for (signal, value) in [(Signal::Power, predicted_power_w), (Signal::Perf, predicted_perf)]
        {
            if !value.is_finite() {
                return Err(AdaptError::NonFinite { signal, value });
            }
            if value <= 0.0 {
                return Err(AdaptError::NonPositive { signal, value });
            }
        }
        let power_ratio = (measured_power_w / predicted_power_w)
            .clamp(self.params.ratio_min, self.params.ratio_max);
        let perf_ratio =
            (measured_perf / predicted_perf).clamp(self.params.ratio_min, self.params.ratio_max);
        let events = self.observe_ratios(kernel_id, power_ratio, perf_ratio)?;
        Ok(AdaptOutcome { power_ratio, perf_ratio, events })
    }

    /// The canonical state transition: feed exact (already clamped) ratio
    /// values. Crash recovery replays journaled ratio *bits* through this
    /// entry point, so replayed state is bit-identical to the lost state.
    pub fn observe_ratios(
        &mut self,
        kernel_id: &str,
        power_ratio: f64,
        perf_ratio: f64,
    ) -> Result<Vec<DriftEvent>, AdaptError> {
        if !power_ratio.is_finite() {
            return Err(AdaptError::NonFinite { signal: Signal::Power, value: power_ratio });
        }
        if !perf_ratio.is_finite() {
            return Err(AdaptError::NonFinite { signal: Signal::Perf, value: perf_ratio });
        }
        let params = self.params;
        let power_ratio = power_ratio.clamp(params.ratio_min, params.ratio_max);
        let perf_ratio = perf_ratio.clamp(params.ratio_min, params.ratio_max);
        let tracker = self
            .kernels
            .entry(kernel_id.to_string())
            .or_insert_with(|| KernelTracker::new(&params));
        self.observations += 1;
        let mut events = Vec::new();
        if tracker.baseline_count < params.baseline_window {
            // Baseline phase: learn what "no drift" looks like for this
            // kernel (absorbs static-model error), detect nothing yet.
            tracker.baseline_power_sum += power_ratio;
            tracker.baseline_perf_sum += perf_ratio;
            tracker.baseline_count += 1;
            return Ok(events);
        }
        let z_power = power_ratio / tracker.baseline_power_mean();
        let z_perf = perf_ratio / tracker.baseline_perf_mean();
        tracker.power.update(Signal::Power, z_power, kernel_id, &params, &mut events)?;
        tracker.perf.update(Signal::Perf, z_perf, kernel_id, &params, &mut events)?;
        if !tracker.mismatch_emitted {
            let hi = params.reclassify_ratio;
            let lo = 1.0 / params.reclassify_ratio;
            if z_power > hi || z_power < lo || z_perf > hi || z_perf < lo {
                tracker.mismatch_emitted = true;
                self.reclassifications += 1;
                events.push(DriftEvent::ClusterMismatch {
                    kernel_id: kernel_id.to_string(),
                    power_ratio: z_power,
                    perf_ratio: z_perf,
                });
            }
        }
        self.drift_events += events.len() as u64;
        Ok(events)
    }

    /// The confirmed drift correction for a kernel, if any. `None` until a
    /// bias detection latched — which is exactly when the adaptive path
    /// starts answering differently from the static path.
    pub fn correction(&self, kernel_id: &str) -> Option<AdaptCorrection> {
        let tracker = self.kernels.get(kernel_id)?;
        if tracker.baseline_count < self.params.baseline_window {
            return None;
        }
        if !(tracker.power.bias_confirmed || tracker.perf.bias_confirmed) {
            return None;
        }
        let power_ratio = (tracker.baseline_power_mean() * tracker.power.filter.x)
            .clamp(self.params.ratio_min, self.params.ratio_max);
        let perf_ratio = (tracker.baseline_perf_mean() * tracker.perf.filter.x)
            .clamp(self.params.ratio_min, self.params.ratio_max);
        Some(AdaptCorrection { power_ratio, perf_ratio })
    }

    /// Select a configuration for `kernel_id` under `cap_w`. Without a
    /// confirmed correction this is exactly [`PredictedProfile::select`] —
    /// bit-identical to the static path. With one, the cap is deflated by
    /// the estimated power ratio (a positive scaling preserves frontier
    /// ordering, so correcting the cap is equivalent to correcting every
    /// predicted power and re-walking the frontier).
    pub fn select(
        &mut self,
        kernel_id: &str,
        profile: &PredictedProfile,
        cap_w: f64,
    ) -> AdaptSelection {
        let selection = self.selection(kernel_id, profile, cap_w);
        if selection.corrected {
            self.reselections += 1;
        }
        selection
    }

    /// The selection [`select`](Self::select) would make, without counting
    /// it. The serve path uses this so predictor state stays a pure
    /// function of the observation stream — exactly what the recovery
    /// journal replays — and tallies re-selections in its own metrics.
    pub fn selection(
        &self,
        kernel_id: &str,
        profile: &PredictedProfile,
        cap_w: f64,
    ) -> AdaptSelection {
        let static_config = profile.select(cap_w);
        if let Some(correction) = self.correction(kernel_id) {
            let corrected_cap = cap_w / correction.power_ratio;
            let config = profile
                .frontier
                .best_under(corrected_cap)
                .or_else(|| profile.frontier.min_power())
                .map(|point| point.config)
                .unwrap_or(static_config);
            if config != static_config {
                return AdaptSelection { config, corrected: true };
            }
        }
        AdaptSelection { config: static_config, corrected: false }
    }

    /// A deterministic digest over the exact bits of all estimator state.
    /// Two predictors that saw the same observation sequence — live or via
    /// journal replay — produce equal digests.
    pub fn state_digest(&self) -> u64 {
        let mut h = splitmix64(0xADA7_5EED ^ self.observations);
        h = splitmix64(h ^ self.drift_events);
        h = splitmix64(h ^ self.reselections);
        h = splitmix64(h ^ self.reclassifications);
        for (kernel_id, tracker) in &self.kernels {
            h = splitmix64(h ^ fnv1a(kernel_id.as_bytes()));
            h = tracker.digest_into(h);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::{Frontier, PowerPerfPoint};

    /// A synthetic profile whose frontier spans 10–50 W monotonically.
    fn profile() -> PredictedProfile {
        let space = Configuration::enumerate();
        let points: Vec<PowerPerfPoint> = space
            .iter()
            .enumerate()
            .map(|(i, c)| PowerPerfPoint {
                config: *c,
                power_w: 10.0 + i as f64,
                perf: 1.0 + i as f64 * 0.5,
            })
            .collect();
        PredictedProfile {
            cluster: 0,
            points: points.clone(),
            frontier: Frontier::from_points(points),
        }
    }

    #[test]
    fn filter_converges_to_constant_signal() {
        let mut f = KalmanFilter::new(1.0, &AdaptParams::default());
        for _ in 0..64 {
            f.update(Signal::Power, 1.3).unwrap();
        }
        assert!((f.x - 1.3).abs() < 1e-3, "posterior {} should approach 1.3", f.x);
        assert!(f.p > 0.0 && f.p.is_finite());
    }

    #[test]
    fn non_finite_measurement_is_rejected_and_state_untouched() {
        let mut f = KalmanFilter::new(1.0, &AdaptParams::default());
        f.update(Signal::Perf, 1.05).unwrap();
        let before = f;
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = f.update(Signal::Perf, bad).unwrap_err();
            match err {
                AdaptError::NonFinite { signal, .. } => assert_eq!(signal, Signal::Perf),
                other => panic!("expected NonFinite, got {other:?}"),
            }
            assert_eq!(f, before, "rejected measurement must not move the filter");
        }
    }

    #[test]
    fn zero_drift_selects_bit_identical_to_static() {
        let mut predictor = AdaptivePredictor::default();
        let profile = profile();
        let cap = 30.0;
        let static_config = profile.select(cap);
        // 1%-noise observations around a constant (mis)prediction ratio:
        // static error is absorbed by the baseline, so nothing confirms.
        for i in 0..32u64 {
            let jitter = 1.0 + 0.01 * ((i % 5) as f64 - 2.0) / 2.0;
            let out =
                predictor.observe("k", 24.0 * 1.2 * jitter, 3.0 * 0.9 * jitter, 24.0, 3.0).unwrap();
            assert!(out.events.is_empty(), "zero drift emitted {:?}", out.events);
            let sel = predictor.select("k", &profile, cap);
            assert!(!sel.corrected);
            assert_eq!(sel.config, static_config);
        }
        assert!(predictor.correction("k").is_none());
        assert_eq!(predictor.reselections(), 0);
        assert_eq!(predictor.drift_events(), 0);
    }

    #[test]
    fn sustained_power_drift_confirms_and_corrects_the_cap() {
        let mut predictor = AdaptivePredictor::default();
        let profile = profile();
        let cap = 30.0;
        // Baseline at ratio 1.0, then power runs 30% hot.
        for _ in 0..4 {
            predictor.observe("k", 20.0, 2.0, 20.0, 2.0).unwrap();
        }
        let mut saw_bias = false;
        for _ in 0..24 {
            let out = predictor.observe("k", 26.0, 2.0, 20.0, 2.0).unwrap();
            saw_bias |= out
                .events
                .iter()
                .any(|e| matches!(e, DriftEvent::Bias { signal: Signal::Power, .. }));
        }
        assert!(saw_bias, "a 30% sustained power drift must confirm");
        let correction = predictor.correction("k").expect("confirmed drift has a correction");
        assert!((correction.power_ratio - 1.3).abs() < 0.05, "ratio {}", correction.power_ratio);
        let sel = predictor.select("k", &profile, cap);
        assert!(sel.corrected, "a hot machine under a cap must re-select");
        let corrected_point = profile.point_for(&sel.config);
        let static_point = profile.point_for(&profile.select(cap));
        assert!(
            corrected_point.power_w < static_point.power_w,
            "correction must move the selection down the frontier"
        );
        assert!(corrected_point.power_w * correction.power_ratio <= cap + 1e-9);
        assert_eq!(predictor.reselections(), 1);
    }

    #[test]
    fn gross_mismatch_triggers_reclassification_once() {
        let mut predictor = AdaptivePredictor::default();
        for _ in 0..4 {
            predictor.observe("k", 20.0, 2.0, 20.0, 2.0).unwrap();
        }
        for _ in 0..8 {
            predictor.observe("k", 40.0, 2.0, 20.0, 2.0).unwrap();
        }
        assert_eq!(predictor.reclassifications(), 1, "mismatch latches once per kernel");
    }

    #[test]
    fn replaying_exact_ratio_bits_rebuilds_identical_state() {
        let mut live = AdaptivePredictor::default();
        let mut journal: Vec<(u64, u64)> = Vec::new();
        for i in 0..20u64 {
            let drift = 1.0 + 0.02 * i as f64;
            let out = live.observe("a", 20.0 * drift, 2.0, 20.0, 2.0).unwrap();
            journal.push((out.power_ratio.to_bits(), out.perf_ratio.to_bits()));
        }
        // Selection bumps a counter; replay must reproduce that too.
        let profile = profile();
        let sel = live.select("a", &profile, 30.0);

        let mut replayed = AdaptivePredictor::default();
        for (p, s) in &journal {
            replayed.observe_ratios("a", f64::from_bits(*p), f64::from_bits(*s)).unwrap();
        }
        let sel2 = replayed.select("a", &profile, 30.0);
        assert_eq!(sel, sel2);
        assert_eq!(live.state_digest(), replayed.state_digest());
        assert_eq!(live, replayed);
    }

    #[test]
    fn non_positive_prediction_is_typed() {
        let mut predictor = AdaptivePredictor::default();
        match predictor.observe("k", 20.0, 2.0, 0.0, 2.0) {
            Err(AdaptError::NonPositive { signal: Signal::Power, .. }) => {}
            other => panic!("expected NonPositive power, got {other:?}"),
        }
        assert_eq!(predictor.observations(), 0, "rejected observation must not count");
    }

    #[test]
    fn serde_round_trip_preserves_exact_state() {
        let mut predictor = AdaptivePredictor::default();
        for i in 0..12u64 {
            predictor.observe("k", 20.0 + i as f64, 2.0, 20.0, 2.0).unwrap();
        }
        let json = serde_json::to_string(&predictor).unwrap();
        let back: AdaptivePredictor = serde_json::from_str(&json).unwrap();
        assert_eq!(back.state_digest(), predictor.state_digest());
        assert_eq!(back, predictor);
    }
}
