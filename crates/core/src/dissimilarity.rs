//! Kernel dissimilarity from Pareto-frontier orderings (Section III-B).
//!
//! "We first create a kernel dissimilarity matrix by performing pair-wise
//! comparisons of all kernels' frontiers. For each frontier comparison, we
//! first select only the configurations that are present in both frontiers.
//! Then, we compute the Kendall rank correlation coefficient between the
//! orders of the shared configurations within each frontier."
//!
//! The paper's key insight is that similar kernels "will generally have the
//! same configurations on their respective frontiers, arranged in the same
//! order" — two conditions. The dissimilarity therefore blends frontier
//! *membership* (Jaccard distance over the configuration sets) with
//! frontier *ordering* (Kendall's τ over the shared configurations, with
//! τ = +1 mapping to 0 and τ = −1 mapping to 1). Pairs sharing fewer than
//! two configurations carry no ordering information and take the maximum
//! ordering term.

use crate::frontier::Frontier;
use acs_mlstat::{kendall, Dissimilarity};

/// Weight of the ordering (Kendall) term; the remainder weights frontier
/// membership.
const ORDER_WEIGHT: f64 = 0.5;

/// Dissimilarity between two frontiers in [0, 1]: a blend of Jaccard
/// set distance over frontier membership and `(1 − τ)/2` over the
/// orderings of shared configurations.
pub fn frontier_dissimilarity(a: &Frontier, b: &Frontier) -> f64 {
    let idx_a = a.config_indices();
    let idx_b = b.config_indices();

    // Ranks within each frontier for the shared configurations, in a
    // canonical (frontier-a) traversal order.
    let mut ranks_a = Vec::new();
    let mut ranks_b = Vec::new();
    for (rank_a, ci) in idx_a.iter().enumerate() {
        if let Some(rank_b) = idx_b.iter().position(|cj| cj == ci) {
            ranks_a.push(rank_a as f64);
            ranks_b.push(rank_b as f64);
        }
    }

    let shared = ranks_a.len();
    let union = idx_a.len() + idx_b.len() - shared;
    let membership = if union == 0 { 1.0 } else { 1.0 - shared as f64 / union as f64 };

    let order = match kendall::tau_a(&ranks_a, &ranks_b) {
        Some(tau) => (1.0 - tau) / 2.0,
        None => 1.0,
    };

    ORDER_WEIGHT * order + (1.0 - ORDER_WEIGHT) * membership
}

/// Build the full pairwise dissimilarity matrix for a set of frontiers.
///
/// The O(K²) pairwise comparisons are independent, so they run on the
/// rayon pool; values land at `(i, j)` positions fixed by the flattened
/// pair list, making the matrix bit-identical at any thread count.
pub fn dissimilarity_matrix(frontiers: &[Frontier]) -> Dissimilarity {
    use rayon::prelude::*;
    let n = frontiers.len();
    let pairs: Vec<(usize, usize)> = (0..n).flat_map(|i| (0..i).map(move |j| (i, j))).collect();
    let values: Vec<f64> = pairs
        .par_iter()
        .map(|&(i, j)| frontier_dissimilarity(&frontiers[i], &frontiers[j]))
        .collect();
    let mut d = Dissimilarity::zeros(n);
    for (&(i, j), v) in pairs.iter().zip(values) {
        d.set(i, j, v);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::PowerPerfPoint;
    use acs_sim::{Configuration, CpuPState};

    fn cfg(i: u8) -> Configuration {
        Configuration::cpu(1 + (i % 4), CpuPState(i / 4))
    }

    /// A frontier over configs 0..n with the given power ordering.
    fn frontier_with_order(order: &[u8]) -> Frontier {
        let points = order
            .iter()
            .enumerate()
            .map(|(rank, &c)| PowerPerfPoint {
                config: cfg(c),
                power_w: 10.0 + rank as f64,
                perf: 1.0 + rank as f64,
            })
            .collect();
        Frontier::from_points(points)
    }

    #[test]
    fn identical_frontiers_have_zero_dissimilarity() {
        let f = frontier_with_order(&[0, 1, 2, 3]);
        assert_eq!(frontier_dissimilarity(&f, &f), 0.0);
    }

    #[test]
    fn reversed_order_has_max_order_term() {
        // Same membership (Jaccard term 0) but fully reversed order: the
        // ordering term saturates at its weight.
        let a = frontier_with_order(&[0, 1, 2, 3]);
        let b = frontier_with_order(&[3, 2, 1, 0]);
        assert_eq!(frontier_dissimilarity(&a, &b), 0.5);
    }

    #[test]
    fn partial_agreement_is_intermediate() {
        let a = frontier_with_order(&[0, 1, 2, 3]);
        let b = frontier_with_order(&[1, 0, 3, 2]);
        let d = frontier_dissimilarity(&a, &b);
        assert!(d > 0.0 && d < 1.0, "d = {d}");
    }

    #[test]
    fn only_shared_configs_feed_the_order_term() {
        // a: 0,1,2,3 — b: 9,1,8,3 (shares 1 and 3, in the same order):
        // zero ordering disagreement, membership distance 1 − 2/6.
        let a = frontier_with_order(&[0, 1, 2, 3]);
        let b = frontier_with_order(&[9, 1, 8, 3]);
        let expected = 0.5 * (1.0 - 2.0 / 6.0);
        assert!((frontier_dissimilarity(&a, &b) - expected).abs() < 1e-12);
    }

    #[test]
    fn disjoint_frontiers_are_max_dissimilar() {
        let a = frontier_with_order(&[0, 1]);
        let b = frontier_with_order(&[2, 3]);
        assert_eq!(frontier_dissimilarity(&a, &b), 1.0);
    }

    #[test]
    fn single_shared_config_maxes_order_term() {
        // One shared config: no ordering information (order term 1) plus
        // membership distance 1 − 1/3.
        let a = frontier_with_order(&[0, 1]);
        let b = frontier_with_order(&[1, 2]);
        let expected = 0.5 + 0.5 * (1.0 - 1.0 / 3.0);
        assert!((frontier_dissimilarity(&a, &b) - expected).abs() < 1e-12);
    }

    #[test]
    fn dissimilarity_is_symmetric() {
        let a = frontier_with_order(&[0, 2, 1, 3]);
        let b = frontier_with_order(&[2, 0, 3, 1]);
        assert_eq!(frontier_dissimilarity(&a, &b), frontier_dissimilarity(&b, &a));
    }

    #[test]
    fn matrix_is_valid_and_matches_pairwise() {
        let fs = vec![
            frontier_with_order(&[0, 1, 2, 3]),
            frontier_with_order(&[3, 2, 1, 0]),
            frontier_with_order(&[0, 2, 1, 3]),
        ];
        let d = dissimilarity_matrix(&fs);
        assert!(d.validate().is_ok());
        assert_eq!(d.get(0, 1), 0.5);
        assert_eq!(d.get(0, 2), frontier_dissimilarity(&fs[0], &fs[2]));
        assert_eq!(d.get(2, 1), frontier_dissimilarity(&fs[1], &fs[2]));
    }

    #[test]
    fn real_kernels_with_similar_scaling_are_close() {
        use crate::profile::KernelProfile;
        use acs_sim::{KernelCharacteristics, Machine};
        let m = Machine::noiseless(0);
        let base = KernelCharacteristics::default();
        let twin = KernelCharacteristics {
            name: "twin".into(),
            compute_time_s: base.compute_time_s * 1.3, // same shape, different scale
            memory_time_s: base.memory_time_s * 1.3,
            ..base.clone()
        };
        let opposite = KernelCharacteristics {
            name: "opposite".into(),
            gpu_speedup: 0.3,
            parallel_fraction: 0.5,
            memory_time_s: base.memory_time_s * 6.0,
            ..base.clone()
        };
        let f = |k: &KernelCharacteristics| KernelProfile::collect(&m, k).frontier();
        let d_twin = frontier_dissimilarity(&f(&base), &f(&twin));
        let d_opp = frontier_dissimilarity(&f(&base), &f(&opposite));
        assert!(
            d_twin < d_opp,
            "similar-scaling kernels ({d_twin}) must be closer than opposites ({d_opp})"
        );
    }
}
