//! Simulated RAPL-style frequency limiting (Section V-A).
//!
//! "RAPL dynamically adjusts CPU core frequency to meet an imposed power
//! constraint. Our test system is not equipped with RAPL, so we simulate
//! its behavior" — exactly what this module does, for both the CPU and the
//! GPU. The limiter only observes *measured* power (the on-chip estimate)
//! for the configuration it is currently running; it never sees the model
//! or the true power.

use acs_sim::{Configuration, CpuPState, Device, GpuPState};

/// Outcome of a frequency-limiting walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LimitResult {
    /// The configuration the limiter settled on.
    pub config: Configuration,
    /// Number of P-state changes performed.
    pub steps: u32,
    /// Whether the final measured power met the cap.
    pub met: bool,
    /// Measured power still above the cap at the settled configuration,
    /// W. Zero when `met`; positive when the cap is below the minimum
    /// achievable power (the walk terminates at the floor and reports the
    /// shortfall instead of looping).
    pub residual_w: f64,
}

/// Walk the *CPU* P-state of `config` down from its current state until
/// measured power meets `cap_w` or the floor is reached.
pub fn limit_cpu_freq(
    mut config: Configuration,
    cap_w: f64,
    mut measure: impl FnMut(&Configuration) -> f64,
) -> LimitResult {
    let mut steps = 0;
    loop {
        let power = measure(&config);
        if power <= cap_w {
            return LimitResult { config, steps, met: true, residual_w: 0.0 };
        }
        match config.cpu_pstate.step_down() {
            Some(lower) => {
                config.cpu_pstate = lower;
                steps += 1;
            }
            None => return LimitResult { config, steps, met: false, residual_w: power - cap_w },
        }
    }
}

/// Walk the *GPU* P-state down until measured power meets `cap_w` or the
/// floor is reached. Only meaningful for GPU-device configurations.
pub fn limit_gpu_freq(
    mut config: Configuration,
    cap_w: f64,
    mut measure: impl FnMut(&Configuration) -> f64,
) -> LimitResult {
    debug_assert_eq!(config.device, Device::Gpu);
    let mut steps = 0;
    loop {
        let power = measure(&config);
        if power <= cap_w {
            return LimitResult { config, steps, met: true, residual_w: 0.0 };
        }
        match config.gpu_pstate.step_down() {
            Some(lower) => {
                config.gpu_pstate = lower;
                steps += 1;
            }
            None => return LimitResult { config, steps, met: false, residual_w: power - cap_w },
        }
    }
}

/// Raise the CPU P-state as far as possible while measured power stays
/// within `cap_w` (the "power headroom" step of the GPU+FL baseline).
pub fn raise_cpu_freq_within(
    mut config: Configuration,
    cap_w: f64,
    mut measure: impl FnMut(&Configuration) -> f64,
) -> LimitResult {
    let mut steps = 0;
    let start_power = measure(&config);
    let met = start_power <= cap_w;
    while let Some(higher) = config.cpu_pstate.step_up() {
        let candidate = Configuration { cpu_pstate: higher, ..config };
        if measure(&candidate) <= cap_w {
            config = candidate;
            steps += 1;
        } else {
            break;
        }
    }
    LimitResult { config, steps, met, residual_w: (start_power - cap_w).max(0.0) }
}

/// Frequency-limit whichever device executes `config`: CPU-device configs
/// walk the CPU P-state; GPU-device configs walk the GPU P-state first and
/// then, if still over, the host CPU P-state (the launch overhead draws
/// CPU power too).
pub fn limit_active_device(
    config: Configuration,
    cap_w: f64,
    mut measure: impl FnMut(&Configuration) -> f64,
) -> LimitResult {
    match config.device {
        Device::Cpu => limit_cpu_freq(config, cap_w, measure),
        Device::Gpu => {
            let first = limit_gpu_freq(config, cap_w, &mut measure);
            if first.met {
                return first;
            }
            let second = limit_cpu_freq(first.config, cap_w, measure);
            LimitResult { steps: first.steps + second.steps, ..second }
        }
    }
}

/// DVFS-transition time cost of moving between two configurations,
/// walking each device's P-state ladder one step at a time (how the
/// limiter actually moves). The paper's <1 ms online-overhead budget must
/// absorb these; with realistic slew rates the whole ladder costs tens of
/// microseconds.
pub fn transition_cost_s(
    from: &Configuration,
    to: &Configuration,
    model: &acs_sim::TransitionModel,
) -> f64 {
    let cpu = model.cpu_walk_latency_s(from.cpu_pstate, to.cpu_pstate);
    let gpu_steps = (i32::from(from.gpu_pstate.0) - i32::from(to.gpu_pstate.0)).unsigned_abs();
    // GPU ladder: sum pairwise transitions along the walk.
    let (lo, hi) = if from.gpu_pstate.0 <= to.gpu_pstate.0 {
        (from.gpu_pstate.0, to.gpu_pstate.0)
    } else {
        (to.gpu_pstate.0, from.gpu_pstate.0)
    };
    let gpu: f64 = (lo..hi).map(|i| model.gpu_latency_s(GpuPState(i), GpuPState(i + 1))).sum();
    debug_assert_eq!(gpu_steps, u32::from(hi - lo));
    cpu + gpu
}

/// Convenience constructors for the baselines' starting configurations.
pub mod start {
    use super::*;

    /// CPU+FL starting point: all cores, fastest CPU P-state, GPU parked.
    pub fn cpu_fl() -> Configuration {
        Configuration::cpu(acs_sim::NUM_CPU_CORES, CpuPState::MAX)
    }

    /// GPU+FL starting point: GPU at maximum frequency, host CPU at
    /// minimum.
    pub fn gpu_fl() -> Configuration {
        Configuration::gpu(GpuPState::MAX, CpuPState::MIN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy power function: monotone in both frequencies.
    fn toy_power(c: &Configuration) -> f64 {
        let cpu = c.cpu_pstate.freq_ghz() * f64::from(c.threads) * 2.0;
        let gpu = match c.device {
            Device::Gpu => c.gpu_pstate.freq_ghz() * 20.0,
            Device::Cpu => 1.0,
        };
        5.0 + cpu + gpu
    }

    #[test]
    fn cpu_walk_stops_at_first_fit() {
        let start = start::cpu_fl();
        let full = toy_power(&start);
        let r = limit_cpu_freq(start, full - 1.0, toy_power);
        assert!(r.met);
        assert_eq!(r.steps, 1, "one step down suffices");
        assert!(toy_power(&r.config) <= full - 1.0);
    }

    #[test]
    fn cpu_walk_hits_floor_when_cap_unreachable() {
        let r = limit_cpu_freq(start::cpu_fl(), 0.0, toy_power);
        assert!(!r.met);
        assert_eq!(r.config.cpu_pstate, CpuPState::MIN);
        assert_eq!(r.steps, (CpuPState::COUNT - 1) as u32);
        // The shortfall at the floor is reported, not looped on.
        let floor = Configuration::cpu(acs_sim::NUM_CPU_CORES, CpuPState::MIN);
        assert!((r.residual_w - toy_power(&floor)).abs() < 1e-12);
    }

    #[test]
    fn unreachable_cap_settles_on_min_power_with_residual() {
        // Regression: a cap below the minimum achievable power must
        // terminate at the min-power config with the residual violation
        // reported — bounded measurements, no panic, no infinite walk.
        let mut calls = 0u32;
        let cap = 1.0; // toy_power floor is > 6 W
        let r = limit_active_device(start::gpu_fl(), cap, |c| {
            calls += 1;
            assert!(calls < 64, "limiter must terminate");
            toy_power(c)
        });
        assert!(!r.met);
        assert_eq!(r.config.gpu_pstate, GpuPState::MIN);
        assert_eq!(r.config.cpu_pstate, CpuPState::MIN);
        let floor_power = toy_power(&r.config);
        assert!((r.residual_w - (floor_power - cap)).abs() < 1e-12);
        assert!(r.residual_w > 0.0);
        // A met walk reports zero residual.
        let ok = limit_cpu_freq(start::cpu_fl(), 1e9, toy_power);
        assert!(ok.met);
        assert_eq!(ok.residual_w, 0.0);
    }

    #[test]
    fn no_walk_when_already_under() {
        let r = limit_cpu_freq(start::cpu_fl(), 1e9, toy_power);
        assert!(r.met);
        assert_eq!(r.steps, 0);
        assert_eq!(r.config, start::cpu_fl());
    }

    #[test]
    fn gpu_walk_reduces_gpu_state() {
        let start = start::gpu_fl();
        let cap = toy_power(&Configuration::gpu(GpuPState(0), CpuPState::MIN)) + 0.1;
        let r = limit_gpu_freq(start, cap, toy_power);
        assert!(r.met);
        assert_eq!(r.config.gpu_pstate, GpuPState(0));
        assert_eq!(r.steps, 2);
    }

    #[test]
    fn raise_cpu_uses_headroom() {
        let base = Configuration::gpu(GpuPState::MIN, CpuPState::MIN);
        // Cap allows exactly two CPU steps up.
        let two_up = Configuration::gpu(GpuPState::MIN, CpuPState(2));
        let cap = toy_power(&two_up);
        let r = raise_cpu_freq_within(base, cap, toy_power);
        assert!(r.met);
        assert_eq!(r.config.cpu_pstate, CpuPState(2));
        assert_eq!(r.steps, 2);
        assert!(toy_power(&r.config) <= cap);
    }

    #[test]
    fn raise_cpu_never_violates_cap() {
        let base = Configuration::gpu(GpuPState::MIN, CpuPState::MIN);
        let cap = toy_power(&base); // zero headroom
        let r = raise_cpu_freq_within(base, cap, toy_power);
        assert_eq!(r.config, base);
        assert_eq!(r.steps, 0);
    }

    #[test]
    fn active_device_limits_gpu_then_cpu() {
        let start = Configuration::gpu(GpuPState::MAX, CpuPState::MAX);
        // Cap reachable only with GPU at min AND CPU lowered.
        let target = Configuration::gpu(GpuPState::MIN, CpuPState(1));
        let cap = toy_power(&target) + 0.1;
        let r = limit_active_device(start, cap, toy_power);
        assert!(r.met);
        assert_eq!(r.config.gpu_pstate, GpuPState::MIN);
        assert!(r.config.cpu_pstate <= CpuPState(1));
    }

    #[test]
    fn active_device_reports_unreachable_cap() {
        let r = limit_active_device(start::gpu_fl(), 0.0, toy_power);
        assert!(!r.met);
        assert_eq!(r.config.gpu_pstate, GpuPState::MIN);
        assert_eq!(r.config.cpu_pstate, CpuPState::MIN);
    }

    #[test]
    fn transition_cost_accumulates_both_devices() {
        let model = acs_sim::TransitionModel::default();
        let a = Configuration::gpu(GpuPState::MIN, CpuPState::MIN);
        let b = Configuration::gpu(GpuPState::MAX, CpuPState::MAX);
        let cost = transition_cost_s(&a, &b, &model);
        assert!(cost > 0.0);
        // Symmetric, zero for identity, and well under the paper's 1 ms
        // online budget even for the full double ladder.
        assert_eq!(cost, transition_cost_s(&b, &a, &model));
        assert_eq!(transition_cost_s(&a, &a, &model), 0.0);
        assert!(cost < 1e-3, "{cost}");
    }

    #[test]
    fn limiter_converges_in_few_measurements() {
        // Section IV-C-style overhead concern: the walk is bounded by the
        // P-state count.
        let mut calls = 0;
        let _ = limit_cpu_freq(start::cpu_fl(), 0.0, |c| {
            calls += 1;
            toy_power(c)
        });
        assert!(calls <= CpuPState::COUNT as u32);
    }
}
