//! Per-kernel characterization data: the full-configuration-space sweep the
//! offline stage trains on, plus views of it (Pareto frontier, sample pair,
//! per-device observations).

use crate::features::{sample_config, SamplePair};
use crate::frontier::{Frontier, PowerPerfPoint};
use acs_sim::{Configuration, Device, KernelCharacteristics, KernelRun, Machine};
use serde::{Deserialize, Serialize};

/// A kernel plus its observations at every configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// The kernel's identity (and, for the simulator, its latents — the
    /// model code only reads `id`, `benchmark`, `input`, and `weight`).
    pub kernel: KernelCharacteristics,
    /// One run per configuration, aligned with `Configuration::enumerate()`
    /// order (`runs[c.index()]` is configuration `c`).
    pub runs: Vec<KernelRun>,
}

impl KernelProfile {
    /// Characterize a kernel by sweeping the full configuration space.
    pub fn collect(machine: &Machine, kernel: &KernelCharacteristics) -> Self {
        Self { kernel: kernel.clone(), runs: machine.sweep(kernel) }
    }

    /// The run at a specific configuration.
    pub fn run_at(&self, config: &Configuration) -> &KernelRun {
        &self.runs[config.index()]
    }

    /// Measured (sensor) power/performance points for every configuration.
    pub fn measured_points(&self) -> Vec<PowerPerfPoint> {
        self.runs
            .iter()
            .map(|r| PowerPerfPoint {
                config: r.config,
                power_w: r.power_w(),
                perf: 1.0 / r.time_s,
            })
            .collect()
    }

    /// Ground-truth power/performance points (true power, not the sensor
    /// estimate) — what a perfect-knowledge oracle sees.
    pub fn true_points(&self) -> Vec<PowerPerfPoint> {
        self.runs
            .iter()
            .map(|r| PowerPerfPoint {
                config: r.config,
                power_w: r.true_power_w(),
                perf: 1.0 / r.time_s,
            })
            .collect()
    }

    /// The measured Pareto frontier (what the offline stage clusters on).
    pub fn frontier(&self) -> Frontier {
        Frontier::from_points(self.measured_points())
    }

    /// The oracle's Pareto frontier (true power).
    pub fn oracle_frontier(&self) -> Frontier {
        Frontier::from_points(self.true_points())
    }

    /// The two sample-configuration observations (Table II).
    pub fn sample_pair(&self) -> SamplePair {
        SamplePair::new(
            self.run_at(&sample_config(Device::Cpu)).clone(),
            self.run_at(&sample_config(Device::Gpu)).clone(),
        )
    }

    /// Runs on one device only.
    pub fn runs_on(&self, device: Device) -> impl Iterator<Item = &KernelRun> {
        self.runs.iter().filter(move |r| r.config.device == device)
    }

    /// The best-performing run regardless of power (for normalization).
    pub fn best_run(&self) -> &KernelRun {
        self.runs
            .iter()
            .min_by(|a, b| a.time_s.partial_cmp(&b.time_s).unwrap())
            .expect("profiles contain at least one run")
    }
}

/// Characterize a whole suite in parallel.
pub fn collect_suite(machine: &Machine, kernels: &[KernelCharacteristics]) -> Vec<KernelProfile> {
    use rayon::prelude::*;
    kernels.par_iter().map(|k| KernelProfile::collect(machine, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_sim::CpuPState;

    fn profile() -> KernelProfile {
        KernelProfile::collect(&Machine::noiseless(0), &KernelCharacteristics::default())
    }

    #[test]
    fn collect_covers_space_in_index_order() {
        let p = profile();
        assert_eq!(p.runs.len(), Configuration::space_size());
        for (i, r) in p.runs.iter().enumerate() {
            assert_eq!(r.config.index(), i);
        }
    }

    #[test]
    fn run_at_returns_matching_config() {
        let p = profile();
        let c = Configuration::cpu(3, CpuPState(2));
        assert_eq!(p.run_at(&c).config, c);
    }

    #[test]
    fn frontier_is_nonempty_and_within_space() {
        let p = profile();
        let f = p.frontier();
        assert!(!f.is_empty());
        assert!(f.len() <= Configuration::space_size());
    }

    #[test]
    fn noiseless_measured_equals_true_frontier() {
        // The ideal sensor reads the trace's time-average, which equals
        // the closed-form average power up to floating-point association.
        let p = profile();
        let measured = p.frontier();
        let oracle = p.oracle_frontier();
        assert_eq!(measured.len(), oracle.len());
        for (m, o) in measured.points().iter().zip(oracle.points()) {
            assert_eq!(m.config, o.config);
            assert!((m.power_w - o.power_w).abs() < 1e-9);
            assert_eq!(m.perf, o.perf);
        }
    }

    #[test]
    fn best_run_matches_frontier_top() {
        let p = profile();
        let f = p.oracle_frontier();
        assert_eq!(f.max_perf().unwrap().config, p.best_run().config);
    }

    #[test]
    fn sample_pair_devices() {
        let p = profile();
        let s = p.sample_pair();
        assert_eq!(s.cpu.config.device, Device::Cpu);
        assert_eq!(s.gpu.config.device, Device::Gpu);
    }

    #[test]
    fn runs_on_partitions_space() {
        let p = profile();
        let cpu = p.runs_on(Device::Cpu).count();
        let gpu = p.runs_on(Device::Gpu).count();
        assert_eq!(cpu + gpu, Configuration::space_size());
        assert_eq!(cpu, 24);
        assert_eq!(gpu, 18);
    }

    #[test]
    fn parallel_suite_collection_is_deterministic() {
        let m = Machine::new(9);
        let ks = vec![
            KernelCharacteristics::default(),
            KernelCharacteristics { name: "b".into(), ..Default::default() },
        ];
        let a = collect_suite(&m, &ks);
        let b = collect_suite(&m, &ks);
        assert_eq!(a, b);
        assert_eq!(a[0], KernelProfile::collect(&m, &ks[0]));
    }
}
