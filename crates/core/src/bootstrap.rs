//! Bootstrap confidence intervals for evaluation metrics.
//!
//! The paper reports point estimates (Table III); a reproduction should
//! also say how stable those numbers are under resampling of the kernel
//! population. This module bootstraps the per-method summaries by
//! resampling *kernels* (the exchangeable unit — constraints within a
//! kernel are correlated) with replacement.

use crate::eval::{summarize, CaseResult};
use crate::methods::Method;
use serde::{Deserialize, Serialize};

/// A percentile interval for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Point estimate from the full sample.
    pub point: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
}

/// Bootstrap intervals for one method's headline metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MethodIntervals {
    /// The method.
    pub method: Method,
    /// Percent of constraints met.
    pub pct_under: Interval,
    /// Percent of oracle performance in under-limit cases.
    pub under_perf_pct: Interval,
}

/// Deterministic SplitMix64 for resampling indices.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Bootstrap the `(pct_under, under_perf_pct)` pair for every compared
/// method by resampling kernels with replacement.
///
/// `confidence` is the two-sided coverage (e.g. 0.95); `replicates`
/// controls resolution (hundreds suffice for percentile intervals).
pub fn bootstrap_table3(
    cases: &[CaseResult],
    replicates: usize,
    confidence: f64,
    seed: u64,
) -> Vec<MethodIntervals> {
    assert!((0.0..1.0).contains(&confidence), "confidence must be in (0,1)");
    assert!(replicates >= 10, "need at least 10 replicates");

    // Group case indices by kernel.
    let mut kernel_ids: Vec<&str> = cases.iter().map(|c| c.kernel_id.as_str()).collect();
    kernel_ids.sort();
    kernel_ids.dedup();
    let groups: Vec<Vec<usize>> = kernel_ids
        .iter()
        .map(|id| {
            cases
                .iter()
                .enumerate()
                .filter_map(|(i, c)| (c.kernel_id == *id).then_some(i))
                .collect()
        })
        .collect();

    let alpha = (1.0 - confidence) / 2.0;
    let mut state = seed;

    Method::COMPARED
        .iter()
        .map(|&method| {
            let point = summarize(cases, method);
            let mut under_samples = Vec::with_capacity(replicates);
            let mut perf_samples = Vec::with_capacity(replicates);
            for _ in 0..replicates {
                let mut resampled: Vec<CaseResult> = Vec::with_capacity(cases.len());
                for _ in 0..groups.len() {
                    let pick = (splitmix(&mut state) as usize) % groups.len();
                    resampled.extend(groups[pick].iter().map(|&i| cases[i].clone()));
                }
                let s = summarize(&resampled, method);
                under_samples.push(s.pct_under);
                if let Some(p) = s.under_perf_pct {
                    perf_samples.push(p);
                }
            }
            under_samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            perf_samples.sort_by(|a, b| a.partial_cmp(b).unwrap());

            MethodIntervals {
                method,
                pct_under: Interval {
                    point: point.pct_under,
                    lo: percentile(&under_samples, alpha),
                    hi: percentile(&under_samples, 1.0 - alpha),
                },
                under_perf_pct: Interval {
                    point: point.under_perf_pct.unwrap_or(f64::NAN),
                    lo: percentile(&perf_samples, alpha),
                    hi: percentile(&perf_samples, 1.0 - alpha),
                },
            }
        })
        .collect()
}

/// Convenience: intervals from a full summary's cases and the matching
/// point summaries rendered side by side.
pub fn render_intervals(intervals: &[MethodIntervals]) -> String {
    let mut out = String::from(
        "Method    | %Under [95% CI]          | Under %Perf [95% CI]\n\
         ----------+--------------------------+----------------------------\n",
    );
    for mi in intervals {
        out.push_str(&format!(
            "{:<9} | {:>5.1} [{:>5.1}, {:>5.1}]     | {:>5.1} [{:>5.1}, {:>5.1}]\n",
            mi.method.name(),
            mi.pct_under.point,
            mi.pct_under.lo,
            mi.pct_under.hi,
            mi.under_perf_pct.point,
            mi.under_perf_pct.lo,
            mi.under_perf_pct.hi,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{characterize_apps, evaluate};
    use crate::offline::TrainingParams;
    use acs_kernels::{AppInstance, InputSize};
    use acs_sim::Machine;

    fn cases() -> Vec<CaseResult> {
        let machine = Machine::new(5);
        let apps = vec![
            AppInstance {
                benchmark: "CoMD".into(),
                input: "Default".into(),
                kernels: acs_kernels::comd::kernels(InputSize::Default),
            },
            AppInstance {
                benchmark: "SMC".into(),
                input: "Small".into(),
                kernels: acs_kernels::smc::kernels(InputSize::Small),
            },
        ];
        let apps = characterize_apps(&machine, &apps);
        evaluate(&apps, TrainingParams { n_clusters: 3, ..Default::default() }).unwrap().cases
    }

    #[test]
    fn intervals_bracket_point_estimates() {
        let cases = cases();
        let intervals = bootstrap_table3(&cases, 100, 0.95, 7);
        assert_eq!(intervals.len(), Method::COMPARED.len());
        for mi in &intervals {
            assert!(mi.pct_under.lo <= mi.pct_under.hi);
            // Percentile bootstrap brackets the point estimate in all but
            // pathological cases; allow a whisker of slack.
            assert!(
                mi.pct_under.lo <= mi.pct_under.point + 5.0
                    && mi.pct_under.point - 5.0 <= mi.pct_under.hi,
                "{mi:?}"
            );
            assert!((0.0..=100.0).contains(&mi.pct_under.lo));
            assert!((0.0..=100.0).contains(&mi.pct_under.hi));
        }
    }

    #[test]
    fn wider_confidence_widens_intervals() {
        let cases = cases();
        let narrow = bootstrap_table3(&cases, 200, 0.50, 7);
        let wide = bootstrap_table3(&cases, 200, 0.99, 7);
        let width = |iv: &Interval| iv.hi - iv.lo;
        let mut wider = 0;
        for (n, w) in narrow.iter().zip(&wide) {
            if width(&w.pct_under) >= width(&n.pct_under) {
                wider += 1;
            }
        }
        assert!(wider >= 3, "99% CI should not be narrower than 50% CI (wider={wider}/4)");
    }

    #[test]
    fn deterministic_in_seed() {
        let cases = cases();
        assert_eq!(bootstrap_table3(&cases, 50, 0.95, 11), bootstrap_table3(&cases, 50, 0.95, 11));
        assert_ne!(bootstrap_table3(&cases, 50, 0.95, 11), bootstrap_table3(&cases, 50, 0.95, 12));
    }

    #[test]
    fn render_mentions_every_method() {
        let cases = cases();
        let txt = render_intervals(&bootstrap_table3(&cases, 50, 0.95, 1));
        for m in Method::COMPARED {
            assert!(txt.contains(m.name()));
        }
    }

    #[test]
    #[should_panic(expected = "replicates")]
    fn too_few_replicates_rejected() {
        let cases = cases();
        let _ = bootstrap_table3(&cases, 1, 0.95, 0);
    }
}
