//! Model persistence.
//!
//! The offline stage runs "only once to characterize a new system"
//! (Section III); its product must therefore outlive the process. A
//! [`TrainedModel`] serializes to a self-contained JSON document that a
//! runtime can load at job launch.

use crate::offline::TrainedModel;
use std::path::Path;

/// Errors from persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Serialization/deserialization failure.
    Format(serde_json::Error),
    /// A model file exists but its contents are not a valid trained
    /// model (corrupt, truncated, or not a model document at all).
    Corrupt {
        /// The offending file.
        path: String,
        /// What the parser rejected (with line/column when available).
        detail: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io: {e}"),
            PersistError::Format(e) => write!(f, "format: {e}"),
            PersistError::Corrupt { path, detail } => write!(
                f,
                "model file '{path}' is corrupt or truncated: {detail} \
                 (re-run the offline training stage to regenerate it)"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

impl TrainedModel {
    /// Serialize to a JSON string.
    pub fn to_json(&self) -> Result<String, PersistError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Deserialize from a JSON string.
    pub fn from_json(json: &str) -> Result<Self, PersistError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Write the model to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Load a model from a file. A missing file is an [`PersistError::Io`]
    /// error; an unreadable document is reported as
    /// [`PersistError::Corrupt`] with the path and the parser's position.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| match e {
            PersistError::Format(err) => {
                PersistError::Corrupt { path: path.display().to_string(), detail: err.to_string() }
            }
            other => other,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{train, TrainingParams};
    use crate::online::Predictor;
    use crate::profile::collect_suite;
    use acs_sim::{KernelCharacteristics, Machine};

    fn model() -> (TrainedModel, Vec<crate::profile::KernelProfile>) {
        let m = Machine::new(7);
        let kernels: Vec<KernelCharacteristics> = (0..6)
            .map(|i| KernelCharacteristics {
                name: format!("k{i}"),
                gpu_speedup: 2.0 + i as f64 * 3.0,
                memory_time_s: 0.001 * (1 + i % 3) as f64,
                ..Default::default()
            })
            .collect();
        let profiles = collect_suite(&m, &kernels);
        (
            train(&profiles, TrainingParams { n_clusters: 3, ..Default::default() }).unwrap(),
            profiles,
        )
    }

    #[test]
    fn json_roundtrip_preserves_model() {
        let (m, _) = model();
        let json = m.to_json().unwrap();
        let back = TrainedModel::from_json(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn roundtripped_model_predicts_identically() {
        let (m, profiles) = model();
        let back = TrainedModel::from_json(&m.to_json().unwrap()).unwrap();
        for p in &profiles {
            let samples = p.sample_pair();
            let a = Predictor::new(&m).predict(&samples);
            let b = Predictor::new(&back).predict(&samples);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn file_roundtrip() {
        let (m, _) = model();
        let dir = std::env::temp_dir().join("acs-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        m.save(&path).unwrap();
        let back = TrainedModel::load(&path).unwrap();
        assert_eq!(m, back);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(matches!(TrainedModel::from_json("{not json"), Err(PersistError::Format(_))));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(matches!(
            TrainedModel::load("/nonexistent/acs/model.json"),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn truncated_model_file_names_the_file_and_position() {
        let (m, _) = model();
        let dir = std::env::temp_dir().join("acs-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.json");
        let json = m.to_json().unwrap();
        std::fs::write(&path, &json[..json.len() / 2]).unwrap();

        let err = TrainedModel::load(&path).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt { .. }), "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("truncated.json"), "{msg}");
        assert!(msg.contains("line"), "parser position missing: {msg}");
        assert!(msg.contains("re-run the offline training"), "{msg}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn garbage_model_file_is_reported_corrupt() {
        let dir = std::env::temp_dir().join("acs-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "{\"clusters\": \"not an array\"}").unwrap();
        let err = TrainedModel::load(&path).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt { .. }), "{err:?}");
        std::fs::remove_file(path).unwrap();
    }
}
