//! Crash-safe model persistence.
//!
//! The offline stage runs "only once to characterize a new system"
//! (Section III); its product must therefore outlive the process — and
//! outlive it *intact*. Artifacts are written with an atomic
//! write-then-rename (a reader sees either the old file or the complete
//! new one, never a torn mix), wrapped in a CRC32-checksummed,
//! version-stamped envelope:
//!
//! ```text
//! acs-artifact v1 kind=trained-model crc32=0a1b2c3d len=12345\n
//! <exactly `len` payload bytes>
//! ```
//!
//! Reads validate the envelope before the payload is parsed. Integrity
//! failures (torn tail, bit rot, length mismatch) quarantine the file by
//! renaming it to `<path>.corrupt` — the broken artifact is preserved for
//! forensics but can never be half-loaded again — and surface as a typed
//! [`PersistError::Corrupt`]. A file stamped with a *newer* format
//! version than this binary understands is rejected up front with
//! [`PersistError::VersionMismatch`] and left untouched: it is probably a
//! perfectly good artifact for a newer binary, not corruption.
//!
//! Files that predate the envelope (bare JSON) still load: an artifact
//! that does not start with the magic string is treated as a version-0
//! legacy document.

use crate::offline::TrainedModel;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The artifact format version this binary reads and writes.
pub const ARTIFACT_VERSION: u32 = 1;

/// Magic prefix of an enveloped artifact; anything else is legacy JSON.
const MAGIC: &str = "acs-artifact ";

/// The `kind=` tag for trained-model artifacts.
pub const MODEL_KIND: &str = "trained-model";

/// Errors from persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Serialization/deserialization failure.
    Format(serde_json::Error),
    /// An artifact exists but fails its integrity checks (bad checksum,
    /// torn tail, wrong kind, or unparseable contents).
    Corrupt {
        /// The offending file.
        path: String,
        /// What the check rejected.
        detail: String,
        /// Where the broken file was quarantined (`<path>.corrupt`),
        /// when the rename succeeded.
        quarantined: Option<String>,
    },
    /// The artifact declares a format version newer than this binary
    /// supports. The file is left in place: upgrade the binary instead.
    VersionMismatch {
        /// The offending file.
        path: String,
        /// The version the file declares.
        found: u32,
        /// The newest version this binary reads.
        supported: u32,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io: {e}"),
            PersistError::Format(e) => write!(f, "format: {e}"),
            PersistError::Corrupt { path, detail, quarantined } => {
                write!(f, "artifact '{path}' is corrupt or truncated: {detail}")?;
                if let Some(q) = quarantined {
                    write!(f, " (quarantined to '{q}')")?;
                }
                write!(f, " (re-run the offline training stage to regenerate it)")
            }
            PersistError::VersionMismatch { path, found, supported } => write!(
                f,
                "artifact '{path}' declares format version {found}, newer than the \
                 supported v{supported}: upgrade this binary, or re-train with this one"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Matches the
/// ubiquitous zlib/`cksum -o 3` variant: `crc32(b"123456789") ==
/// 0xCBF43926`. Shared by the artifact envelope here and the serve
/// recovery journal.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Where a corrupt artifact at `path` gets quarantined.
pub fn quarantine_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".corrupt");
    PathBuf::from(os)
}

/// Move a failed artifact aside (best effort) so it can never be
/// half-loaded again; returns the quarantine path when the rename stuck.
fn quarantine(path: &Path) -> Option<String> {
    let q = quarantine_path(path);
    std::fs::rename(path, &q).ok().map(|_| q.display().to_string())
}

/// A quarantining integrity failure.
fn corrupt(path: &Path, detail: impl Into<String>) -> PersistError {
    PersistError::Corrupt {
        path: path.display().to_string(),
        detail: detail.into(),
        quarantined: quarantine(path),
    }
}

/// Write `payload` to `path` inside a checksummed envelope, atomically:
/// the bytes land in a same-directory temporary file which is synced and
/// then renamed over `path`. A crash at any point leaves either the old
/// artifact or the new one — never a torn hybrid (the leftover temp file
/// never matches the artifact path, so loads ignore it).
pub fn write_artifact(
    path: impl AsRef<Path>,
    kind: &str,
    payload: &[u8],
) -> Result<(), PersistError> {
    debug_assert!(
        !kind.contains(|c: char| c.is_whitespace()),
        "artifact kind must be a single token"
    );
    let path = path.as_ref();
    let header = format!(
        "{MAGIC}v{ARTIFACT_VERSION} kind={kind} crc32={:08x} len={}\n",
        crc32(payload),
        payload.len()
    );
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    let write = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(header.as_bytes())?;
        f.write_all(payload)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if let Err(e) = write {
        let _ = std::fs::remove_file(&tmp);
        return Err(PersistError::Io(e));
    }
    // Best-effort directory sync so the rename itself is durable.
    if let Some(dir) = path.parent() {
        if let Ok(d) =
            std::fs::File::open(if dir.as_os_str().is_empty() { Path::new(".") } else { dir })
        {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Parsed fields of an envelope header line (after the magic).
fn parse_header(line: &str) -> Option<(u32, &str, u32, usize)> {
    let rest = line.strip_prefix(MAGIC)?;
    let mut parts = rest.split(' ');
    let version = parts.next()?.strip_prefix('v')?.parse().ok()?;
    let kind = parts.next()?.strip_prefix("kind=")?;
    let crc = u32::from_str_radix(parts.next()?.strip_prefix("crc32=")?, 16).ok()?;
    let len = parts.next()?.strip_prefix("len=")?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((version, kind, crc, len))
}

/// Read and verify an artifact's payload bytes.
///
/// - Not enveloped at all → returned as-is (legacy version-0 document).
/// - Declared version newer than [`ARTIFACT_VERSION`] →
///   [`PersistError::VersionMismatch`]; the file is **not** quarantined.
/// - Wrong `kind` → [`PersistError::Corrupt`] without quarantine (the
///   file may be a healthy artifact of another kind, crossed by the
///   caller).
/// - Unparseable header, length mismatch, or checksum mismatch →
///   quarantine to `<path>.corrupt` + [`PersistError::Corrupt`].
pub fn read_artifact(path: impl AsRef<Path>, expected_kind: &str) -> Result<Vec<u8>, PersistError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    if !bytes.starts_with(MAGIC.as_bytes()) {
        return Ok(bytes);
    }
    let Some(nl) = bytes.iter().position(|&b| b == b'\n') else {
        return Err(corrupt(path, "envelope header has no terminating newline"));
    };
    let Some(header) = std::str::from_utf8(&bytes[..nl]).ok() else {
        return Err(corrupt(path, "envelope header is not valid UTF-8"));
    };
    let Some((version, kind, crc, len)) = parse_header(header) else {
        return Err(corrupt(path, format!("unparseable envelope header '{header}'")));
    };
    if version > ARTIFACT_VERSION {
        return Err(PersistError::VersionMismatch {
            path: path.display().to_string(),
            found: version,
            supported: ARTIFACT_VERSION,
        });
    }
    if kind != expected_kind {
        return Err(PersistError::Corrupt {
            path: path.display().to_string(),
            detail: format!("artifact kind '{kind}' where '{expected_kind}' was expected"),
            quarantined: None,
        });
    }
    let payload = &bytes[nl + 1..];
    if payload.len() != len {
        return Err(corrupt(
            path,
            format!("payload is {} bytes where the header declares {len}", payload.len()),
        ));
    }
    let got = crc32(payload);
    if got != crc {
        return Err(corrupt(path, format!("checksum {got:08x} does not match declared {crc:08x}")));
    }
    Ok(payload.to_vec())
}

impl TrainedModel {
    /// Serialize to a JSON string.
    pub fn to_json(&self) -> Result<String, PersistError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Deserialize from a JSON string.
    pub fn from_json(json: &str) -> Result<Self, PersistError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Write the model to a file atomically inside a checksummed,
    /// version-stamped envelope (see the module docs).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        write_artifact(path, MODEL_KIND, self.to_json()?.as_bytes())
    }

    /// Load a model from a file. A missing file is a [`PersistError::Io`];
    /// an artifact from a newer binary is a
    /// [`PersistError::VersionMismatch`]; a file that fails its checksum
    /// or does not parse is quarantined to `<path>.corrupt` and reported
    /// as [`PersistError::Corrupt`]. Pre-envelope bare-JSON files load as
    /// legacy documents.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let path = path.as_ref();
        let payload = read_artifact(path, MODEL_KIND)?;
        let text = match std::str::from_utf8(&payload) {
            Ok(t) => t,
            Err(_) => return Err(corrupt(path, "model payload is not valid UTF-8")),
        };
        Self::from_json(text).map_err(|e| match e {
            PersistError::Format(err) => corrupt(path, err.to_string()),
            other => other,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{train, TrainingParams};
    use crate::online::Predictor;
    use crate::profile::collect_suite;
    use acs_sim::{KernelCharacteristics, Machine};

    fn model() -> (TrainedModel, Vec<crate::profile::KernelProfile>) {
        let m = Machine::new(7);
        let kernels: Vec<KernelCharacteristics> = (0..6)
            .map(|i| KernelCharacteristics {
                name: format!("k{i}"),
                gpu_speedup: 2.0 + i as f64 * 3.0,
                memory_time_s: 0.001 * (1 + i % 3) as f64,
                ..Default::default()
            })
            .collect();
        let profiles = collect_suite(&m, &kernels);
        (
            train(&profiles, TrainingParams { n_clusters: 3, ..Default::default() }).unwrap(),
            profiles,
        )
    }

    /// A fresh scratch directory per test so quarantine renames in one
    /// test cannot race file checks in another.
    fn scratch(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("acs-persist-{test}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn json_roundtrip_preserves_model() {
        let (m, _) = model();
        let json = m.to_json().unwrap();
        let back = TrainedModel::from_json(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn roundtripped_model_predicts_identically() {
        let (m, profiles) = model();
        let back = TrainedModel::from_json(&m.to_json().unwrap()).unwrap();
        for p in &profiles {
            let samples = p.sample_pair();
            let a = Predictor::new(&m).predict(&samples);
            let b = Predictor::new(&back).predict(&samples);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn file_roundtrip_through_the_envelope() {
        let (m, _) = model();
        let dir = scratch("roundtrip");
        let path = dir.join("model.json");
        m.save(&path).unwrap();

        // The on-disk form is enveloped and leaves no temp file behind.
        let raw = std::fs::read_to_string(&path).unwrap();
        assert!(raw.starts_with("acs-artifact v1 kind=trained-model crc32="), "{raw:.60}");
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1, "temp file left behind");

        let back = TrainedModel::load(&path).unwrap();
        assert_eq!(m, back);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn legacy_bare_json_still_loads() {
        let (m, _) = model();
        let dir = scratch("legacy");
        let path = dir.join("legacy.json");
        std::fs::write(&path, m.to_json().unwrap()).unwrap();
        let back = TrainedModel::load(&path).unwrap();
        assert_eq!(m, back);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(matches!(TrainedModel::from_json("{not json"), Err(PersistError::Format(_))));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(matches!(
            TrainedModel::load("/nonexistent/acs/model.json"),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn truncated_artifact_is_quarantined() {
        let (m, _) = model();
        let dir = scratch("truncated");
        let path = dir.join("truncated.json");
        m.save(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();

        let err = TrainedModel::load(&path).unwrap_err();
        match &err {
            PersistError::Corrupt { path: p, quarantined, .. } => {
                assert!(p.contains("truncated.json"), "{p}");
                assert!(quarantined.is_some(), "truncation must quarantine");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("re-run the offline training"), "{msg}");
        // The broken file moved aside; the original path is gone.
        assert!(!path.exists());
        assert!(quarantine_path(&path).exists());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn bit_rot_fails_the_checksum_and_quarantines() {
        let (m, _) = model();
        let dir = scratch("bitrot");
        let path = dir.join("model.json");
        m.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // payload flip: same length, wrong checksum
        std::fs::write(&path, &bytes).unwrap();

        let err = TrainedModel::load(&path).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt { .. }), "{err:?}");
        assert!(err.to_string().contains("checksum"), "{err}");
        assert!(quarantine_path(&path).exists());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn newer_version_is_rejected_and_left_in_place() {
        let dir = scratch("version");
        let path = dir.join("future.json");
        let payload = b"{}";
        let header =
            format!("acs-artifact v999 kind=trained-model crc32={:08x} len=2\n", crc32(payload));
        std::fs::write(&path, format!("{header}{{}}")).unwrap();

        match TrainedModel::load(&path).unwrap_err() {
            PersistError::VersionMismatch { found, supported, .. } => {
                assert_eq!(found, 999);
                assert_eq!(supported, ARTIFACT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        assert!(path.exists(), "a future-version artifact must not be quarantined");
        assert!(!quarantine_path(&path).exists());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn wrong_kind_is_corrupt_but_not_quarantined() {
        let dir = scratch("kind");
        let path = dir.join("other.json");
        write_artifact(&path, "recovery-journal", b"{}").unwrap();
        match TrainedModel::load(&path).unwrap_err() {
            PersistError::Corrupt { detail, quarantined, .. } => {
                assert!(detail.contains("recovery-journal"), "{detail}");
                assert!(quarantined.is_none(), "crossed kinds must not destroy the file");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert!(path.exists());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn garbage_model_file_is_reported_corrupt() {
        let dir = scratch("garbage");
        let path = dir.join("garbage.json");
        std::fs::write(&path, "{\"clusters\": \"not an array\"}").unwrap();
        let err = TrainedModel::load(&path).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt { .. }), "{err:?}");
        assert!(quarantine_path(&path).exists(), "undecodable legacy files quarantine too");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn save_replaces_an_existing_artifact_atomically() {
        let (m, _) = model();
        let dir = scratch("replace");
        let path = dir.join("model.json");
        m.save(&path).unwrap();
        m.save(&path).unwrap(); // overwrite goes through rename, not truncate
        assert_eq!(TrainedModel::load(&path).unwrap(), m);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
