//! Multi-application power partitioning.
//!
//! Section II: "accurate single-application models are a necessary
//! ingredient in multi-application optimization systems". This module
//! builds that system on top of the single-kernel model: given one node
//! power budget and several co-scheduled applications (each represented by
//! its kernels' predicted Pareto frontiers), split the budget so that the
//! node-level objective is maximized.
//!
//! The partitioner exploits the predicted frontiers' key property: for any
//! per-app budget, the app's attainable performance is a known
//! non-decreasing step function. Budget splitting is then a small discrete
//! optimization, solved exactly by dynamic programming over wattage steps.

use crate::frontier::Frontier;
use serde::{Deserialize, Serialize};

/// An application's demand curve: attainable (predicted) performance as a
/// function of its power budget, derived from a per-kernel weighted blend
/// of predicted frontiers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandCurve {
    /// Application label.
    pub app: String,
    /// `(budget_w, relative_perf)` steps, sorted by budget, strictly
    /// increasing in both coordinates.
    pub steps: Vec<(f64, f64)>,
}

impl DemandCurve {
    /// Build a demand curve from per-kernel predicted frontiers with
    /// iteration weights. Relative performance is the weighted harmonic
    /// blend of per-kernel normalized performance: kernels execute
    /// sequentially, so app slowdown is the weighted sum of per-kernel
    /// slowdowns (Amdahl over kernels).
    pub fn from_frontiers(app: &str, frontiers: &[(f64, Frontier)]) -> Self {
        assert!(!frontiers.is_empty(), "an app needs at least one kernel");
        // Candidate budgets: every distinct per-kernel frontier power.
        let mut budgets: Vec<f64> =
            frontiers.iter().flat_map(|(_, f)| f.points().iter().map(|p| p.power_w)).collect();
        budgets.sort_by(|a, b| a.partial_cmp(b).unwrap());
        budgets.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut steps = Vec::new();
        let mut last_perf = -1.0;
        for &budget in &budgets {
            // Every kernel independently picks its best point under the
            // budget (the cap applies to the node at any instant; kernels
            // run sequentially, so each kernel gets the full app budget).
            let mut slowdown = 0.0;
            let mut feasible = true;
            for (weight, frontier) in frontiers {
                let best = frontier.best_under(budget);
                let max = frontier.max_perf().expect("non-empty frontier").perf;
                match best {
                    Some(p) => slowdown += weight * max / p.perf,
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if !feasible {
                continue;
            }
            let perf = 1.0 / slowdown;
            if perf > last_perf + 1e-12 {
                steps.push((budget, perf));
                last_perf = perf;
            }
        }
        Self { app: app.to_string(), steps }
    }

    /// Attainable relative performance at a budget (0 when even the
    /// cheapest configurations don't fit).
    pub fn perf_at(&self, budget_w: f64) -> f64 {
        self.steps
            .iter()
            .rev()
            .find(|(b, _)| *b <= budget_w + 1e-12)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    }

    /// The minimum budget at which the app can run at all.
    pub fn min_budget_w(&self) -> Option<f64> {
        self.steps.first().map(|(b, _)| *b)
    }
}

/// Result of partitioning a node budget across applications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Per-app budgets, aligned with the input curves.
    pub budgets_w: Vec<f64>,
    /// Per-app attained relative performance.
    pub perfs: Vec<f64>,
    /// The node objective value (sum of relative performances).
    pub objective: f64,
}

/// Node-level goal a partition optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PartitionObjective {
    /// Maximize total relative performance (throughput). Can starve an
    /// application whose marginal watts are better spent elsewhere.
    SumPerf,
    /// Maximize the minimum relative performance across applications
    /// (egalitarian fairness). Never parks an app that could run.
    MaxMin,
}

/// Split `total_w` across the demand curves under the given objective, by
/// dynamic programming over `resolution_w`-sized wattage quanta. Exact up
/// to the quantization.
pub fn partition_budget_with(
    curves: &[DemandCurve],
    total_w: f64,
    resolution_w: f64,
    objective: PartitionObjective,
) -> Partition {
    assert!(!curves.is_empty(), "need at least one application");
    assert!(resolution_w > 0.0, "resolution must be positive");
    let quanta = (total_w / resolution_w).floor() as usize;

    // Objective combiner: sum for throughput, min for fairness. The DP
    // over a monotone combiner stays optimal because each app's perf is
    // non-decreasing in its own budget.
    let combine = |acc: f64, perf: f64| -> f64 {
        match objective {
            PartitionObjective::SumPerf => acc + perf,
            PartitionObjective::MaxMin => acc.min(perf),
        }
    };
    let identity = match objective {
        PartitionObjective::SumPerf => 0.0,
        PartitionObjective::MaxMin => f64::INFINITY,
    };

    // dp[q] = best objective using q quanta over the first i apps;
    // choice[i][q] = quanta given to app i in that optimum.
    let mut dp = vec![identity; quanta + 1];
    let mut choice = vec![vec![0usize; quanta + 1]; curves.len()];

    for (i, curve) in curves.iter().enumerate() {
        let mut next = vec![f64::NEG_INFINITY; quanta + 1];
        for q in 0..=quanta {
            for give in 0..=q {
                let perf = curve.perf_at(give as f64 * resolution_w);
                let value = combine(dp[q - give], perf);
                if value > next[q] {
                    next[q] = value;
                    choice[i][q] = give;
                }
            }
        }
        dp = next;
    }

    // Recover the allocation.
    let mut budgets = vec![0.0; curves.len()];
    let mut q = quanta;
    for i in (0..curves.len()).rev() {
        let give = choice[i][q];
        budgets[i] = give as f64 * resolution_w;
        q -= give;
    }
    let perfs: Vec<f64> = curves.iter().zip(&budgets).map(|(c, &b)| c.perf_at(b)).collect();
    let objective_value = match objective {
        PartitionObjective::SumPerf => perfs.iter().sum(),
        PartitionObjective::MaxMin => perfs.iter().cloned().fold(f64::INFINITY, f64::min),
    };

    Partition { budgets_w: budgets, perfs, objective: objective_value }
}

/// Split `total_w` to maximize total relative performance (the default
/// throughput objective).
pub fn partition_budget(curves: &[DemandCurve], total_w: f64, resolution_w: f64) -> Partition {
    partition_budget_with(curves, total_w, resolution_w, PartitionObjective::SumPerf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::PowerPerfPoint;
    use acs_sim::Configuration;

    fn frontier(points: &[(f64, f64)]) -> Frontier {
        let space = Configuration::enumerate();
        Frontier::from_points(
            points
                .iter()
                .enumerate()
                .map(|(i, &(w, p))| PowerPerfPoint { config: space[i], power_w: w, perf: p })
                .collect(),
        )
    }

    fn linear_curve(app: &str) -> DemandCurve {
        DemandCurve::from_frontiers(
            app,
            &[(1.0, frontier(&[(10.0, 1.0), (20.0, 2.0), (30.0, 3.0)]))],
        )
    }

    #[test]
    fn demand_curve_is_monotone() {
        let c = linear_curve("a");
        assert_eq!(c.min_budget_w(), Some(10.0));
        for w in c.steps.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(c.perf_at(5.0), 0.0);
        assert!(c.perf_at(30.0) > c.perf_at(10.0));
        assert_eq!(c.perf_at(1e9), c.steps.last().unwrap().1);
    }

    #[test]
    fn sequential_kernel_blend_is_weighted_harmonic() {
        // Two equally-weighted kernels, one scalable, one flat: app perf
        // at a low budget is dominated by the slow one.
        let scalable = frontier(&[(10.0, 1.0), (30.0, 10.0)]);
        let flat = frontier(&[(10.0, 1.0), (30.0, 1.2)]);
        let c = DemandCurve::from_frontiers("x", &[(0.5, scalable), (0.5, flat)]);
        let full = c.perf_at(30.0);
        // slowdown = 0.5·(10/10) wait: at 30 W both run at max → perf 1.0.
        assert!((full - 1.0).abs() < 1e-9);
        let low = c.perf_at(10.0);
        // At 10 W: scalable at 1/10 of max, flat at 1/1.2 of max →
        // slowdown = 0.5·10 + 0.5·1.2 = 5.6 → perf ≈ 0.1786.
        assert!((low - 1.0 / 5.6).abs() < 1e-9, "{low}");
    }

    #[test]
    fn partition_of_identical_linear_apps_is_optimal() {
        // Relative performance is normalized to 1 at each app's max, so a
        // linear curve yields perf 1/3, 2/3, 1 at 10/20/30 W. Any split of
        // 40 W scores the optimal 4/3, with both apps running.
        let curves = vec![linear_curve("a"), linear_curve("b")];
        let p = partition_budget(&curves, 40.0, 1.0);
        assert!(p.budgets_w.iter().sum::<f64>() <= 40.0 + 1e-9);
        assert!((p.objective - 4.0 / 3.0).abs() < 1e-9, "{p:?}");
        assert!(p.perfs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn partition_favors_the_scalable_app() {
        // App a gains a lot from extra watts; app b plateaus early.
        let a = DemandCurve::from_frontiers(
            "a",
            &[(1.0, frontier(&[(10.0, 1.0), (20.0, 4.0), (30.0, 9.0)]))],
        );
        let b = DemandCurve::from_frontiers(
            "b",
            &[(1.0, frontier(&[(10.0, 1.0), (20.0, 1.1), (30.0, 1.2)]))],
        );
        let p = partition_budget(&[a, b], 40.0, 1.0);
        assert!(p.budgets_w[0] > p.budgets_w[1], "{:?}", p.budgets_w);
        assert_eq!(p.budgets_w[0], 30.0);
        assert_eq!(p.budgets_w[1], 10.0);
    }

    #[test]
    fn partition_respects_total_budget() {
        let curves = vec![linear_curve("a"), linear_curve("b"), linear_curve("c")];
        for total in [25.0, 47.0, 90.0] {
            let p = partition_budget(&curves, total, 0.5);
            assert!(p.budgets_w.iter().sum::<f64>() <= total + 1e-9);
        }
    }

    #[test]
    fn starved_partition_zeroes_an_app() {
        // 15 W cannot run two apps that each need 10 W minimum: one app
        // gets the watts, the other gets parked.
        let curves = vec![linear_curve("a"), linear_curve("b")];
        let p = partition_budget(&curves, 15.0, 1.0);
        let running = p.perfs.iter().filter(|&&x| x > 0.0).count();
        assert_eq!(running, 1);
    }

    #[test]
    fn finer_resolution_never_hurts() {
        let a = DemandCurve::from_frontiers("a", &[(1.0, frontier(&[(9.5, 1.0), (19.5, 2.5)]))]);
        let b = linear_curve("b");
        let coarse = partition_budget(&[a.clone(), b.clone()], 29.5, 2.0);
        let fine = partition_budget(&[a, b], 29.5, 0.25);
        assert!(fine.objective >= coarse.objective - 1e-9);
    }

    #[test]
    fn maxmin_never_starves_when_both_fit() {
        // 20 W: both apps *can* run at 10 W each. Throughput prefers
        // giving everything to one app only when that scores higher; the
        // fair objective must keep both alive.
        let curves = vec![linear_curve("a"), linear_curve("b")];
        let fair = partition_budget_with(&curves, 20.0, 1.0, PartitionObjective::MaxMin);
        assert!(fair.perfs.iter().all(|&p| p > 0.0), "{fair:?}");
        // And with 15 W (only one can run), fairness still picks the best
        // of the bad options — objective value 0.
        let starved = partition_budget_with(&curves, 15.0, 1.0, PartitionObjective::MaxMin);
        assert_eq!(starved.objective, 0.0);
    }

    #[test]
    fn maxmin_equalizes_identical_apps() {
        let curves = vec![linear_curve("a"), linear_curve("b")];
        let fair = partition_budget_with(&curves, 60.0, 1.0, PartitionObjective::MaxMin);
        assert!((fair.perfs[0] - fair.perfs[1]).abs() < 1e-9, "{fair:?}");
        assert!((fair.objective - 1.0).abs() < 1e-9, "both reach max at 30 W each");
    }

    #[test]
    fn throughput_beats_or_ties_fairness_on_sum() {
        let a = DemandCurve::from_frontiers(
            "a",
            &[(1.0, frontier(&[(10.0, 1.0), (20.0, 4.0), (30.0, 9.0)]))],
        );
        let b = linear_curve("b");
        let sum =
            partition_budget_with(&[a.clone(), b.clone()], 40.0, 1.0, PartitionObjective::SumPerf);
        let fair = partition_budget_with(&[a, b], 40.0, 1.0, PartitionObjective::MaxMin);
        let total = |p: &Partition| p.perfs.iter().sum::<f64>();
        assert!(total(&sum) >= total(&fair) - 1e-9);
        // And fairness's minimum is at least throughput's minimum.
        let min = |p: &Partition| p.perfs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min(&fair) >= min(&sum) - 1e-9);
    }

    #[test]
    fn end_to_end_with_real_predictions() {
        use crate::offline::{train, TrainingParams};
        use crate::online::Predictor;
        use crate::profile::collect_suite;
        use acs_sim::{KernelCharacteristics, Machine};

        let m = Machine::new(7);
        let mut kernels = Vec::new();
        for i in 0..6u32 {
            kernels.push(KernelCharacteristics {
                name: format!("k{i}"),
                gpu_speedup: 2.0 + i as f64 * 2.5,
                ..Default::default()
            });
        }
        let profiles = collect_suite(&m, &kernels);
        let model =
            train(&profiles, TrainingParams { n_clusters: 3, ..Default::default() }).unwrap();
        let predictor = Predictor::new(&model);

        // Two "apps" of three kernels each, using predicted frontiers.
        let mut curves = Vec::new();
        for (label, chunk) in [("app-a", &profiles[..3]), ("app-b", &profiles[3..])] {
            let frontiers: Vec<(f64, Frontier)> = chunk
                .iter()
                .map(|p| (1.0 / 3.0, predictor.predict(&p.sample_pair()).frontier))
                .collect();
            curves.push(DemandCurve::from_frontiers(label, &frontiers));
        }

        let p = partition_budget(&curves, 50.0, 1.0);
        assert!(p.budgets_w.iter().sum::<f64>() <= 50.0 + 1e-9);
        assert!(p.perfs.iter().all(|&x| x > 0.0), "both apps run at 50 W: {:?}", p);
    }
}
