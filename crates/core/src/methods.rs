//! The power-limiting methods compared in Section V: `Oracle`, `Model`,
//! `Model+FL`, `CPU+FL`, and `GPU+FL`. Each maps a power cap to a
//! configuration for one kernel; they differ in what information they may
//! consult:
//!
//! * **Oracle** — perfect knowledge: the true power/performance of every
//!   configuration.
//! * **Model** — predictions only, from two sample iterations.
//! * **Model+FL** — the model's pick, corrected by a frequency limiter
//!   that observes measured power.
//! * **CPU+FL / GPU+FL** — state-of-the-practice RAPL-style limiting with
//!   a fixed device policy; no model at all.

use crate::fastpath::SelectScratch;
use crate::features::SamplePair;
use crate::limiter::{
    limit_active_device, limit_cpu_freq, limit_gpu_freq, raise_cpu_freq_within, start,
};
use crate::online::Predictor;
use crate::profile::KernelProfile;
use acs_sim::Configuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a power-limiting method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Perfect-knowledge oracle.
    Oracle,
    /// Model predictions alone.
    Model,
    /// Model predictions plus frequency limiting.
    ModelFL,
    /// CPU-focused frequency limiting (all cores, GPU parked).
    CpuFL,
    /// GPU-focused frequency limiting (GPU max, host CPU raised into
    /// remaining headroom).
    GpuFL,
}

impl Method {
    /// The four non-oracle methods, in the paper's Table III order.
    pub const COMPARED: [Method; 4] =
        [Method::Model, Method::ModelFL, Method::GpuFL, Method::CpuFL];

    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Oracle => "Oracle",
            Method::Model => "Model",
            Method::ModelFL => "Model+FL",
            Method::CpuFL => "CPU+FL",
            Method::GpuFL => "GPU+FL",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Select the oracle configuration for a cap: the best-performing
/// configuration whose *true* power meets the cap, or the minimum-power
/// configuration if none does.
pub fn oracle_select(profile: &KernelProfile, cap_w: f64) -> Configuration {
    let frontier = profile.oracle_frontier();
    frontier
        .best_under(cap_w)
        .or_else(|| frontier.min_power())
        .expect("non-empty configuration space")
        .config
}

/// Select a configuration with the model alone (flat path; bit-identical
/// to `predictor.predict(samples).select(cap_w)`).
pub fn model_select(predictor: &Predictor<'_>, samples: &SamplePair, cap_w: f64) -> Configuration {
    model_select_with(predictor, samples, cap_w, &mut SelectScratch::new())
}

/// [`model_select`] through a caller-owned scratch arena — the form hot
/// loops (the differential runner, serve workers) use so steady-state
/// selection allocates nothing.
pub fn model_select_with(
    predictor: &Predictor<'_>,
    samples: &SamplePair,
    cap_w: f64,
    scratch: &mut SelectScratch,
) -> Configuration {
    predictor.select_with(samples, cap_w, scratch)
}

/// Select with the model, then let the frequency limiter pull the active
/// device's P-state down if measured power exceeds the cap.
pub fn model_fl_select(
    predictor: &Predictor<'_>,
    samples: &SamplePair,
    cap_w: f64,
    measure: impl FnMut(&Configuration) -> f64,
) -> Configuration {
    model_fl_select_with(predictor, samples, cap_w, measure, &mut SelectScratch::new())
}

/// [`model_fl_select`] through a caller-owned scratch arena.
pub fn model_fl_select_with(
    predictor: &Predictor<'_>,
    samples: &SamplePair,
    cap_w: f64,
    measure: impl FnMut(&Configuration) -> f64,
    scratch: &mut SelectScratch,
) -> Configuration {
    let picked = model_select_with(predictor, samples, cap_w, scratch);
    limit_active_device(picked, cap_w, measure).config
}

/// The CPU+FL baseline: all cores enabled, GPU at minimum frequency, CPU
/// P-state walked down to meet the cap.
pub fn cpu_fl_select(cap_w: f64, measure: impl FnMut(&Configuration) -> f64) -> Configuration {
    limit_cpu_freq(start::cpu_fl(), cap_w, measure).config
}

/// The GPU+FL baseline: GPU frequency walked down from maximum with the
/// host CPU at minimum; any remaining headroom is spent raising the host
/// CPU frequency.
pub fn gpu_fl_select(cap_w: f64, mut measure: impl FnMut(&Configuration) -> f64) -> Configuration {
    let limited = limit_gpu_freq(start::gpu_fl(), cap_w, &mut measure);
    if !limited.met {
        return limited.config;
    }
    raise_cpu_freq_within(limited.config, cap_w, measure).config
}

/// Dispatch a method. `predictor` is required for the model methods;
/// measurement-driven methods read sensor power from the kernel's profile
/// (equivalent to running the kernel at each probed configuration).
pub fn select(
    method: Method,
    profile: &KernelProfile,
    predictor: Option<&Predictor<'_>>,
    cap_w: f64,
) -> Configuration {
    select_with_scratch(method, profile, predictor, cap_w, &mut SelectScratch::new())
}

/// [`select`] through a caller-owned scratch arena, for replay loops that
/// dispatch many `(cap, method)` cases per profile.
pub fn select_with_scratch(
    method: Method,
    profile: &KernelProfile,
    predictor: Option<&Predictor<'_>>,
    cap_w: f64,
    scratch: &mut SelectScratch,
) -> Configuration {
    let measure = |c: &Configuration| profile.run_at(c).power_w();
    match method {
        Method::Oracle => oracle_select(profile, cap_w),
        Method::Model => model_select_with(
            predictor.expect("Model needs a predictor"),
            &profile.sample_pair(),
            cap_w,
            scratch,
        ),
        Method::ModelFL => model_fl_select_with(
            predictor.expect("Model+FL needs a predictor"),
            &profile.sample_pair(),
            cap_w,
            measure,
            scratch,
        ),
        Method::CpuFL => cpu_fl_select(cap_w, measure),
        Method::GpuFL => gpu_fl_select(cap_w, measure),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{train, TrainingParams};
    use crate::profile::collect_suite;
    use acs_sim::{CpuPState, Device, KernelCharacteristics, Machine};

    fn kernels() -> Vec<KernelCharacteristics> {
        let mut ks = Vec::new();
        for i in 0..4u32 {
            let s = 1.0 + i as f64 * 0.2;
            ks.push(KernelCharacteristics {
                name: format!("gpu-friendly-{i}"),
                gpu_speedup: 12.0 * s,
                compute_time_s: 0.012 * s,
                ..Default::default()
            });
            ks.push(KernelCharacteristics {
                name: format!("membound-{i}"),
                compute_time_s: 0.001 * s,
                memory_time_s: 0.012 * s,
                gpu_speedup: 3.0,
                ..Default::default()
            });
            ks.push(KernelCharacteristics {
                name: format!("divergent-{i}"),
                gpu_speedup: 1.2,
                branch_divergence: 0.7,
                parallel_fraction: 0.85,
                ..Default::default()
            });
        }
        ks
    }

    #[test]
    fn oracle_is_optimal_under_cap() {
        let profiles = collect_suite(&Machine::new(3), &kernels());
        for profile in &profiles {
            for cap in [12.0, 18.0, 25.0, 40.0, 1e9] {
                let cfg = oracle_select(profile, cap);
                let picked = profile.run_at(&cfg);
                if picked.true_power_w() <= cap {
                    // No configuration under the cap may beat it.
                    for r in &profile.runs {
                        if r.true_power_w() <= cap {
                            assert!(
                                r.time_s >= picked.time_s - 1e-12,
                                "{}: {} beats oracle {} at cap {cap}",
                                profile.kernel.id(),
                                r.config,
                                cfg
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn oracle_falls_back_to_min_power() {
        let profiles = collect_suite(&Machine::new(3), &kernels()[..1]);
        let cfg = oracle_select(&profiles[0], 0.0);
        let picked = profiles[0].run_at(&cfg).true_power_w();
        for r in &profiles[0].runs {
            assert!(picked <= r.true_power_w() + 1e-9);
        }
    }

    #[test]
    fn cpu_fl_always_uses_all_cores_and_cpu() {
        let profiles = collect_suite(&Machine::new(3), &kernels()[..2]);
        let measure = |c: &Configuration| profiles[0].run_at(c).power_w();
        for cap in [5.0, 15.0, 25.0, 1e9] {
            let cfg = cpu_fl_select(cap, measure);
            assert_eq!(cfg.device, Device::Cpu);
            assert_eq!(cfg.threads, 4, "CPU+FL always runs on four threads");
        }
    }

    #[test]
    fn gpu_fl_always_uses_gpu() {
        let profiles = collect_suite(&Machine::new(3), &kernels()[..2]);
        let measure = |c: &Configuration| profiles[0].run_at(c).power_w();
        for cap in [5.0, 15.0, 25.0, 1e9] {
            let cfg = gpu_fl_select(cap, measure);
            assert_eq!(cfg.device, Device::Gpu);
        }
    }

    #[test]
    fn gpu_fl_spends_headroom_on_cpu() {
        let profiles = collect_suite(&Machine::new(3), &kernels()[..1]);
        let measure = |c: &Configuration| profiles[0].run_at(c).power_w();
        let generous = gpu_fl_select(1e9, measure);
        assert_eq!(generous.cpu_pstate, CpuPState::MAX, "unlimited cap: host CPU raised fully");
        assert_eq!(generous.gpu_pstate.freq_ghz(), 0.819);
    }

    #[test]
    fn model_methods_respect_predicted_caps() {
        let profiles = collect_suite(&Machine::new(3), &kernels());
        let model =
            train(&profiles, TrainingParams { n_clusters: 3, ..Default::default() }).unwrap();
        let predictor = Predictor::new(&model);
        let p = &profiles[0];
        for cap in [12.0, 20.0, 30.0] {
            let plain = select(Method::Model, p, Some(&predictor), cap);
            let fl = select(Method::ModelFL, p, Some(&predictor), cap);
            // With FL, measured power can only be <= the plain pick's
            // measured power (FL only steps down).
            assert!(
                p.run_at(&fl).power_w() <= p.run_at(&plain).power_w() + 1e-9,
                "FL must not raise power"
            );
        }
    }

    #[test]
    fn method_names_match_paper() {
        assert_eq!(Method::ModelFL.to_string(), "Model+FL");
        assert_eq!(Method::CpuFL.to_string(), "CPU+FL");
        assert_eq!(Method::GpuFL.to_string(), "GPU+FL");
        assert_eq!(Method::COMPARED.len(), 4);
    }

    #[test]
    #[should_panic(expected = "needs a predictor")]
    fn model_without_predictor_panics() {
        let profiles = collect_suite(&Machine::new(3), &kernels()[..1]);
        let _ = select(Method::Model, &profiles[0], None, 20.0);
    }
}
