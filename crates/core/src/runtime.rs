//! An application-level power-capped runtime.
//!
//! This is the "foundation for dynamic scheduling" the profiling library
//! promises (Section III-D), assembled into a usable scheduler: kernels
//! execute sequentially (Section III-A); a kernel's first two iterations
//! run at the Table II sample configurations; from the third iteration on,
//! its configuration is fixed to the model's selection ("after the second
//! iteration of a kernel, its configuration is fixed", Section IV-C) —
//! unless the node's power budget changes, in which case the cached
//! predicted frontier is re-consulted without any re-profiling
//! (Section III-C).

use crate::features::{sample_config, SamplePair};
use crate::offline::TrainedModel;
use crate::online::{PredictedProfile, Predictor};
use acs_kernels::AppInstance;
use acs_profiling::{Event, History, ProfileSample, Timeline};
use acs_sim::{Configuration, Device, KernelCharacteristics, KernelRun, Machine};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-kernel scheduling state.
#[derive(Debug, Clone)]
struct KernelState {
    iterations: u64,
    cpu_sample: Option<KernelRun>,
    gpu_sample: Option<KernelRun>,
    predicted: Option<PredictedProfile>,
    fixed_config: Option<Configuration>,
}

impl KernelState {
    fn new() -> Self {
        Self {
            iterations: 0,
            cpu_sample: None,
            gpu_sample: None,
            predicted: None,
            fixed_config: None,
        }
    }
}

/// Summary of an application run under the runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRunReport {
    /// Application label.
    pub app: String,
    /// Power cap in force at the end of the run, W.
    pub cap_w: f64,
    /// Total wall time across all executed iterations, seconds.
    pub total_time_s: f64,
    /// Time-weighted average package power, W.
    pub avg_power_w: f64,
    /// Fraction of iterations whose true power met the cap.
    pub cap_compliance: f64,
    /// Final configuration per kernel id.
    pub final_configs: Vec<(String, Configuration)>,
}

/// The power-capped runtime scheduler.
#[derive(Debug, Clone)]
pub struct CappedRuntime {
    machine: Machine,
    model: Arc<TrainedModel>,
    history: Arc<History>,
    timeline: Arc<Timeline>,
    cap_w: f64,
    kernels: HashMap<String, KernelState>,
}

impl CappedRuntime {
    /// A runtime on `machine` using a trained model, starting with the
    /// given node power cap.
    pub fn new(machine: Machine, model: TrainedModel, cap_w: f64) -> Self {
        assert!(cap_w > 0.0, "power cap must be positive");
        Self {
            machine,
            model: Arc::new(model),
            history: Arc::new(History::new()),
            timeline: Arc::new(Timeline::new()),
            cap_w,
            kernels: HashMap::new(),
        }
    }

    /// The current power cap, W.
    pub fn cap_w(&self) -> f64 {
        self.cap_w
    }

    /// The shared run history.
    pub fn history(&self) -> &Arc<History> {
        &self.history
    }

    /// The scheduling timeline: every run, selection, and cap change.
    pub fn timeline(&self) -> &Arc<Timeline> {
        &self.timeline
    }

    /// Change the node power budget. Already-classified kernels re-select
    /// from their cached predicted frontiers — no re-profiling, no
    /// re-classification (the Section III-C dynamic-constraint property).
    pub fn set_cap(&mut self, cap_w: f64) {
        assert!(cap_w > 0.0, "power cap must be positive");
        self.cap_w = cap_w;
        self.timeline.record(Event::CapChanged { cap_w });
        for (id, state) in self.kernels.iter_mut() {
            if let Some(predicted) = &state.predicted {
                let config = predicted.select(cap_w);
                if state.fixed_config != Some(config) {
                    self.timeline.record(Event::ConfigSelected {
                        kernel_id: id.clone(),
                        config,
                        reason: "cap change".into(),
                    });
                }
                state.fixed_config = Some(config);
            }
        }
    }

    /// The configuration a kernel will run at on its *next* iteration.
    pub fn planned_config(&self, kernel_id: &str) -> Option<Configuration> {
        let state = self.kernels.get(kernel_id)?;
        match state.iterations {
            0 => Some(sample_config(Device::Cpu)),
            1 => Some(sample_config(Device::Gpu)),
            _ => state.fixed_config,
        }
    }

    /// Execute one iteration of `kernel`, choosing the configuration per
    /// the paper's protocol, and record it in the history.
    pub fn run_kernel(&mut self, kernel: &KernelCharacteristics) -> KernelRun {
        let id = kernel.id();
        self.run_keyed(kernel, id)
    }

    /// Execute one iteration of `kernel` under an invocation context
    /// (Section VI: distinguish "invocations of the same kernel from
    /// distinct points in the application" or with distinct input sizes).
    /// Each context gets its own sample pair, classification, and fixed
    /// configuration.
    pub fn run_kernel_in_context(
        &mut self,
        kernel: &KernelCharacteristics,
        context: &acs_profiling::ContextKey,
    ) -> KernelRun {
        self.run_keyed(kernel, context.history_id())
    }

    fn run_keyed(&mut self, kernel: &KernelCharacteristics, id: String) -> KernelRun {
        let state = self.kernels.entry(id.clone()).or_insert_with(KernelState::new);
        let iteration = state.iterations;

        let config = match iteration {
            0 => sample_config(Device::Cpu),
            1 => sample_config(Device::Gpu),
            _ => state.fixed_config.expect("config fixed after two sample iterations"),
        };

        let run = self.machine.run_iter(kernel, &config, iteration);
        self.history.record(ProfileSample::from_run(&id, iteration, &run));
        self.timeline.record(Event::KernelRun {
            kernel_id: id.clone(),
            iteration,
            config,
            time_s: run.time_s,
            power_w: run.power_w(),
        });

        let state = self.kernels.get_mut(&id).expect("state just inserted");
        state.iterations += 1;
        match iteration {
            0 => state.cpu_sample = Some(run.clone()),
            1 => {
                state.gpu_sample = Some(run.clone());
                // Both samples in hand: classify, predict, fix the config.
                let samples = SamplePair::new(
                    state.cpu_sample.clone().expect("cpu sample first"),
                    run.clone(),
                );
                let predicted = Predictor::new(&self.model).predict(&samples);
                let config = predicted.select(self.cap_w);
                self.timeline.record(Event::ConfigSelected {
                    kernel_id: id.clone(),
                    config,
                    reason: format!("model (cluster {})", predicted.cluster),
                });
                state.fixed_config = Some(config);
                state.predicted = Some(predicted);
            }
            _ => {}
        }
        run
    }

    /// Execute `iterations` iterations of every kernel of an application
    /// (kernels run sequentially within each iteration, per Section
    /// III-A) and summarize.
    pub fn run_app(&mut self, app: &AppInstance, iterations: u64) -> AppRunReport {
        let mut total_time = 0.0;
        let mut energy = 0.0;
        let mut met = 0u64;
        let mut total = 0u64;

        for _ in 0..iterations {
            for kernel in &app.kernels {
                let run = self.run_kernel(kernel);
                total_time += run.time_s;
                energy += run.true_power_w() * run.time_s;
                total += 1;
                if run.true_power_w() <= self.cap_w * (1.0 + 1e-9) {
                    met += 1;
                }
            }
        }

        let final_configs = app
            .kernels
            .iter()
            .map(|k| {
                let id = k.id();
                let cfg = self
                    .planned_config(&id)
                    .expect("kernel has run at least once");
                (id, cfg)
            })
            .collect();

        AppRunReport {
            app: app.label(),
            cap_w: self.cap_w,
            total_time_s: total_time,
            avg_power_w: if total_time > 0.0 { energy / total_time } else { 0.0 },
            cap_compliance: if total > 0 { met as f64 / total as f64 } else { 0.0 },
            final_configs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{train, TrainingParams};
    use crate::profile::collect_suite;
    use acs_kernels::InputSize;

    fn runtime(cap: f64) -> (CappedRuntime, AppInstance) {
        let machine = Machine::new(2014);
        // Train on CoMD + SMC, schedule LULESH Small.
        let training_kernels: Vec<KernelCharacteristics> = acs_kernels::comd::kernels(InputSize::Default)
            .into_iter()
            .chain(acs_kernels::smc::kernels(InputSize::Small))
            .collect();
        let profiles = collect_suite(&machine, &training_kernels);
        let model = train(&profiles, TrainingParams::default()).unwrap();
        let app = acs_kernels::app_instances()
            .into_iter()
            .find(|a| a.label() == "LULESH Small")
            .unwrap();
        (CappedRuntime::new(machine, model, cap), app)
    }

    #[test]
    fn first_two_iterations_are_samples() {
        let (mut rt, app) = runtime(25.0);
        let k = &app.kernels[0];
        let r0 = rt.run_kernel(k);
        assert_eq!(r0.config, sample_config(Device::Cpu));
        let r1 = rt.run_kernel(k);
        assert_eq!(r1.config, sample_config(Device::Gpu));
        // Third iteration: fixed model selection.
        let r2 = rt.run_kernel(k);
        assert_eq!(Some(r2.config), rt.planned_config(&k.id()));
    }

    #[test]
    fn config_is_fixed_after_second_iteration() {
        let (mut rt, app) = runtime(25.0);
        let k = &app.kernels[0];
        rt.run_kernel(k);
        rt.run_kernel(k);
        let fixed = rt.run_kernel(k).config;
        for _ in 0..5 {
            assert_eq!(rt.run_kernel(k).config, fixed);
        }
    }

    #[test]
    fn cap_change_reselects_without_new_samples() {
        let (mut rt, app) = runtime(40.0);
        let k = &app.kernels[0]; // GPU-friendly hourglass kernel
        rt.run_kernel(k);
        rt.run_kernel(k);
        let generous = rt.run_kernel(k).config;
        let samples_before = rt.history().sample_count(&k.id());

        rt.set_cap(11.0); // tight: should force a cheaper configuration
        let tight = rt.run_kernel(k).config;
        assert_ne!(generous, tight, "an 11 W cap must change the selection");

        // No additional sampling iterations happened: only iterations 0
        // and 1 ran the Table II sample configurations by design (a
        // *selected* config may legitimately coincide with a sample one).
        for s in rt.history().samples(&k.id()) {
            match s.iteration {
                0 => assert_eq!(s.config, sample_config(Device::Cpu)),
                1 => assert_eq!(s.config, sample_config(Device::Gpu)),
                _ => {}
            }
        }
        assert_eq!(rt.history().sample_count(&k.id()), samples_before + 1);
    }

    #[test]
    fn run_app_reports_consistent_summary() {
        let (mut rt, app) = runtime(25.0);
        let report = rt.run_app(&app, 3);
        assert_eq!(report.app, "LULESH Small");
        assert!(report.total_time_s > 0.0);
        assert!(report.avg_power_w > 5.0 && report.avg_power_w < 60.0);
        assert!((0.0..=1.0).contains(&report.cap_compliance));
        assert_eq!(report.final_configs.len(), app.kernels.len());
        // After 3 app iterations every kernel is past its sampling phase.
        for (id, _) in &report.final_configs {
            assert!(rt.history().sample_count(id) >= 3, "{id}");
        }
    }

    #[test]
    fn tighter_cap_yields_slower_lower_power_app() {
        let (mut rt_hi, app) = runtime(40.0);
        let hi = rt_hi.run_app(&app, 4);
        let (mut rt_lo, _) = runtime(12.0);
        let lo = rt_lo.run_app(&app, 4);
        assert!(lo.avg_power_w < hi.avg_power_w, "lower cap must lower power");
        assert!(lo.total_time_s > hi.total_time_s, "lower cap must cost time");
    }

    #[test]
    fn compliance_is_high_once_configured() {
        // Skip the sampling iterations (which ignore the cap) by running
        // many iterations: compliance should be dominated by configured
        // runs and stay high at a moderate cap.
        let (mut rt, app) = runtime(30.0);
        let report = rt.run_app(&app, 10);
        assert!(
            report.cap_compliance > 0.7,
            "compliance {} too low at a moderate cap",
            report.cap_compliance
        );
    }

    #[test]
    fn contexts_schedule_independently() {
        use acs_profiling::RegionStack;
        let (mut rt, app) = runtime(25.0);
        let k = &app.kernels[0];

        let mut stack = RegionStack::new();
        let t = stack.enter("hydro");
        let ctx_a = stack.context_key(&k.id(), Some(1 << 20));
        stack.exit(t);
        let t = stack.enter("transport");
        let ctx_b = stack.context_key(&k.id(), Some(1 << 26));
        stack.exit(t);

        // Each context pays its own two sample iterations.
        for ctx in [&ctx_a, &ctx_b] {
            let r0 = rt.run_kernel_in_context(k, ctx);
            assert_eq!(r0.config, sample_config(Device::Cpu), "{ctx}");
            let r1 = rt.run_kernel_in_context(k, ctx);
            assert_eq!(r1.config, sample_config(Device::Gpu), "{ctx}");
        }
        // Histories are separate.
        assert_eq!(rt.history().sample_count(&ctx_a.history_id()), 2);
        assert_eq!(rt.history().sample_count(&ctx_b.history_id()), 2);
        assert_eq!(rt.history().sample_count(&k.id()), 0);
        // Both contexts have fixed configs now.
        assert!(rt.planned_config(&ctx_a.history_id()).is_some());
        assert!(rt.planned_config(&ctx_b.history_id()).is_some());
    }

    #[test]
    fn timeline_records_the_decision_trail() {
        let (mut rt, app) = runtime(30.0);
        let k = &app.kernels[0];
        rt.run_kernel(k);
        rt.run_kernel(k);
        rt.run_kernel(k);
        rt.set_cap(12.0);
        rt.run_kernel(k);

        let events = rt.timeline().entries();
        let runs = events
            .iter()
            .filter(|e| matches!(e.event, acs_profiling::Event::KernelRun { .. }))
            .count();
        let picks = events
            .iter()
            .filter(|e| matches!(e.event, acs_profiling::Event::ConfigSelected { .. }))
            .count();
        let caps = events
            .iter()
            .filter(|e| matches!(e.event, acs_profiling::Event::CapChanged { .. }))
            .count();
        assert_eq!(runs, 4);
        assert!(picks >= 1, "model selection must be traced");
        assert_eq!(caps, 1);
        // Virtual time advanced by the runs.
        assert!(rt.timeline().now_s() > 0.0);
        // The render mentions the kernel.
        assert!(rt.timeline().render().contains(&k.id()));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cap_rejected() {
        let (rt, _) = runtime(25.0);
        let mut rt = rt;
        rt.set_cap(0.0);
    }
}
