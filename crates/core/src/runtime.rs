//! An application-level power-capped runtime.
//!
//! This is the "foundation for dynamic scheduling" the profiling library
//! promises (Section III-D), assembled into a usable scheduler: kernels
//! execute sequentially (Section III-A); a kernel's first two iterations
//! run at the Table II sample configurations; from the third iteration on,
//! its configuration is fixed to the model's selection ("after the second
//! iteration of a kernel, its configuration is fixed", Section IV-C) —
//! unless the node's power budget changes, in which case the cached
//! predicted frontier is re-consulted without any re-profiling
//! (Section III-C).
//!
//! The runtime is generic over an [`Executor`], so the same scheduler
//! drives a trustworthy [`Machine`] or a chaos-injecting
//! [`FaultyMachine`](acs_sim::FaultyMachine). Constructed via
//! [`CappedRuntime::guarded`], it additionally runs a self-healing guard:
//! a post-run watchdog checks measured power against the cap and the
//! sensor's vital signs, retries failed executions with exponential
//! backoff, and steps misbehaving kernels down (and later back up) the
//! [`health`](crate::health) degradation ladder.

use crate::features::{sample_config, SamplePair};
use crate::health::{GuardPolicy, KernelHealth, RuntimeError, TierState};
use crate::offline::TrainedModel;
use crate::online::{PredictedProfile, Predictor};
use acs_kernels::AppInstance;
use acs_profiling::{Event, History, ProfileSample, Timeline};
use acs_sim::{Configuration, Device, Executor, KernelCharacteristics, KernelRun, Machine};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-kernel scheduling state.
#[derive(Debug, Clone)]
struct KernelState {
    iterations: u64,
    cpu_sample: Option<KernelRun>,
    gpu_sample: Option<KernelRun>,
    predicted: Option<PredictedProfile>,
    fixed_config: Option<Configuration>,
}

impl KernelState {
    fn new() -> Self {
        Self {
            iterations: 0,
            cpu_sample: None,
            gpu_sample: None,
            predicted: None,
            fixed_config: None,
        }
    }
}

/// Summary of an application run under the runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRunReport {
    /// Application label.
    pub app: String,
    /// Power cap in force at the end of the run, W.
    pub cap_w: f64,
    /// Total wall time across all executed iterations, seconds.
    pub total_time_s: f64,
    /// Time-weighted average package power, W.
    pub avg_power_w: f64,
    /// Fraction of completed iterations whose true power met the cap.
    pub cap_compliance: f64,
    /// Iterations lost to execution faults after retries (guarded runs
    /// skip and continue; unguarded runs abort instead).
    pub failed_runs: u64,
    /// Final configuration per kernel id.
    pub final_configs: Vec<(String, Configuration)>,
}

/// Self-healing guard state: the policy plus per-kernel health.
#[derive(Debug, Clone)]
struct Guard {
    policy: GuardPolicy,
    kernels: HashMap<String, KernelHealth>,
}

/// The power-capped runtime scheduler.
#[derive(Debug, Clone)]
pub struct CappedRuntime<E: Executor = Machine> {
    executor: E,
    model: Arc<TrainedModel>,
    history: Arc<History>,
    timeline: Arc<Timeline>,
    cap_w: f64,
    kernels: HashMap<String, KernelState>,
    guard: Option<Guard>,
}

impl CappedRuntime<Machine> {
    /// A runtime on `machine` using a trained model, starting with the
    /// given node power cap.
    pub fn new(machine: Machine, model: TrainedModel, cap_w: f64) -> Self {
        Self::with_executor(machine, model, cap_w)
    }
}

impl<E: Executor> CappedRuntime<E> {
    /// A runtime on any [`Executor`] (a [`Machine`], a
    /// [`FaultyMachine`](acs_sim::FaultyMachine), ...) without the guard:
    /// execution faults surface as errors, nothing retries or degrades.
    pub fn with_executor(executor: E, model: TrainedModel, cap_w: f64) -> Self {
        assert!(cap_w > 0.0, "power cap must be positive");
        Self {
            executor,
            model: Arc::new(model),
            history: Arc::new(History::new()),
            timeline: Arc::new(Timeline::new()),
            cap_w,
            kernels: HashMap::new(),
            guard: None,
        }
    }

    /// A self-healing runtime: bounded retries with exponential backoff,
    /// a post-run cap/sensor watchdog, and the degradation ladder of
    /// [`health`](crate::health), tuned by `policy`.
    pub fn guarded(executor: E, model: TrainedModel, cap_w: f64, policy: GuardPolicy) -> Self {
        let mut rt = Self::with_executor(executor, model, cap_w);
        rt.guard = Some(Guard { policy, kernels: HashMap::new() });
        rt
    }

    /// The current power cap, W.
    pub fn cap_w(&self) -> f64 {
        self.cap_w
    }

    /// The executor this runtime schedules onto.
    pub fn executor(&self) -> &E {
        &self.executor
    }

    /// The guard policy, if this runtime is guarded.
    pub fn guard_policy(&self) -> Option<&GuardPolicy> {
        self.guard.as_ref().map(|g| &g.policy)
    }

    /// A kernel's health record, if this runtime is guarded and the
    /// kernel has run at least once.
    pub fn health(&self, kernel_id: &str) -> Option<&KernelHealth> {
        self.guard.as_ref()?.kernels.get(kernel_id)
    }

    /// The shared run history.
    pub fn history(&self) -> &Arc<History> {
        &self.history
    }

    /// The scheduling timeline: every run, selection, and cap change.
    pub fn timeline(&self) -> &Arc<Timeline> {
        &self.timeline
    }

    /// Change the node power budget. Already-classified kernels re-select
    /// from their cached predicted frontiers — no re-profiling, no
    /// re-classification (the Section III-C dynamic-constraint property).
    ///
    /// Panics on a non-positive cap; [`try_set_cap`](Self::try_set_cap)
    /// reports it as an error instead.
    pub fn set_cap(&mut self, cap_w: f64) {
        assert!(cap_w > 0.0, "power cap must be positive");
        self.cap_w = cap_w;
        self.timeline.record(Event::CapChanged { cap_w });
        for (id, state) in self.kernels.iter_mut() {
            if let Some(predicted) = &state.predicted {
                let config = predicted.select(cap_w);
                if state.fixed_config != Some(config) {
                    self.timeline.record(Event::ConfigSelected {
                        kernel_id: id.clone(),
                        config,
                        reason: "cap change".into(),
                    });
                }
                state.fixed_config = Some(config);
            }
        }
    }

    /// Fallible [`set_cap`](Self::set_cap) for callers fed untrusted caps.
    pub fn try_set_cap(&mut self, cap_w: f64) -> Result<(), RuntimeError> {
        if cap_w.is_nan() || cap_w <= 0.0 {
            return Err(RuntimeError::NonPositiveCap { cap_w });
        }
        self.set_cap(cap_w);
        Ok(())
    }

    /// The configuration a kernel will run at on its *next* iteration
    /// (with the guard's tier override applied, when guarded).
    pub fn planned_config(&self, kernel_id: &str) -> Option<Configuration> {
        let state = self.kernels.get(kernel_id)?;
        match state.iterations {
            0 => Some(sample_config(Device::Cpu)),
            1 => Some(sample_config(Device::Gpu)),
            _ => {
                let base = state.fixed_config?;
                Some(self.tier_for(kernel_id).apply(base))
            }
        }
    }

    /// The guard tier for a kernel (Model when unguarded or unseen).
    fn tier_for(&self, kernel_id: &str) -> TierState {
        self.guard
            .as_ref()
            .and_then(|g| g.kernels.get(kernel_id))
            .map(|h| h.tier)
            .unwrap_or_else(TierState::model)
    }

    /// Execute one iteration of `kernel`, choosing the configuration per
    /// the paper's protocol, and record it in the history.
    pub fn run_kernel(
        &mut self,
        kernel: &KernelCharacteristics,
    ) -> Result<KernelRun, RuntimeError> {
        let id = kernel.id();
        self.run_keyed(kernel, id)
    }

    /// Execute one iteration of `kernel` under an invocation context
    /// (Section VI: distinguish "invocations of the same kernel from
    /// distinct points in the application" or with distinct input sizes).
    /// Each context gets its own sample pair, classification, and fixed
    /// configuration.
    pub fn run_kernel_in_context(
        &mut self,
        kernel: &KernelCharacteristics,
        context: &acs_profiling::ContextKey,
    ) -> Result<KernelRun, RuntimeError> {
        self.run_keyed(kernel, context.history_id())
    }

    /// Execute with bounded retries: transient faults and (on sample
    /// iterations) silently clamped transitions are retried up to the
    /// policy's budget, each wait doubling and advancing the virtual
    /// clock. Returns the accepted run, or the final error.
    fn execute_with_retries(
        &mut self,
        kernel: &KernelCharacteristics,
        id: &str,
        target: Configuration,
        iteration: u64,
    ) -> Result<KernelRun, RuntimeError> {
        let (max_retries, backoff_base) = self
            .guard
            .as_ref()
            .map(|g| (g.policy.max_retries, g.policy.backoff_base_s))
            .unwrap_or((0, 0.0));
        let mut attempt: u32 = 0;
        let outcome = loop {
            let retry = |timeline: &Timeline, attempt: u32, fault: String| {
                timeline.record(Event::RetryBackoff {
                    kernel_id: id.to_string(),
                    attempt,
                    wait_s: backoff_base * f64::from(1u32 << (attempt - 1).min(16)),
                    fault,
                });
            };
            match self.executor.execute(kernel, &target, iteration) {
                Ok(run) => {
                    if run.config == target {
                        break Ok(run);
                    }
                    // The hardware silently refused the transition.
                    self.timeline.record(Event::TransitionClamped {
                        kernel_id: id.to_string(),
                        requested: target,
                        actual: run.config,
                    });
                    if attempt < max_retries {
                        attempt += 1;
                        retry(&self.timeline, attempt, "transition clamped".into());
                        continue;
                    }
                    // Retries exhausted. Sampling *must* run the Table II
                    // configuration (the model's features depend on it);
                    // a configured iteration tolerates the clamp — the
                    // run is recorded at its actual configuration and the
                    // watchdog sees its true effect.
                    if iteration < 2 {
                        break Err(RuntimeError::ExecutionFailed {
                            kernel_id: id.to_string(),
                            iteration,
                            attempts: attempt + 1,
                            fault: format!(
                                "transition to sample configuration {target} clamped to {}",
                                run.config
                            ),
                        });
                    }
                    break Ok(run);
                }
                Err(fault) => {
                    if attempt < max_retries {
                        attempt += 1;
                        retry(&self.timeline, attempt, fault.to_string());
                        continue;
                    }
                    break Err(RuntimeError::ExecutionFailed {
                        kernel_id: id.to_string(),
                        iteration,
                        attempts: attempt + 1,
                        fault: fault.to_string(),
                    });
                }
            }
        };
        if attempt > 0 {
            if let Some(guard) = self.guard.as_mut() {
                guard.kernels.entry(id.to_string()).or_default().retries += attempt;
            }
        }
        outcome
    }

    /// Post-run watchdog: validate the sensor reading, track over-cap and
    /// clean streaks, and move the kernel along the degradation ladder.
    fn watchdog(&mut self, id: &str, base: Configuration, iteration: u64, run: &KernelRun) {
        let cap_w = self.cap_w;
        let timeline = Arc::clone(&self.timeline);
        let Some(guard) = self.guard.as_mut() else { return };
        let policy = guard.policy;
        let health = guard.kernels.entry(id.to_string()).or_default();

        let power_w = run.power_w();
        let dropout = !power_w.is_finite() || power_w <= 0.0;
        let frozen = !dropout && health.last_power_w == Some(power_w);
        health.last_power_w = Some(power_w);

        let mut degrade_reason: Option<&str> = None;
        if dropout || frozen {
            health.stale_streak += 1;
            timeline.record(Event::SensorAnomaly {
                kernel_id: id.to_string(),
                kind: (if dropout { "dropout" } else { "frozen" }).into(),
            });
            if policy.stale_sensor_window > 0 && health.stale_streak >= policy.stale_sensor_window {
                // Flying blind: the cap cannot be verified, so assume the
                // worst and step down.
                degrade_reason = Some("stale sensor");
                health.stale_streak = 0;
                health.overcap_streak = 0;
                health.clean_streak = 0;
            }
        } else {
            health.stale_streak = 0;
            // Sample iterations deliberately ignore the cap (they probe
            // the Table II configurations); the watchdog only judges
            // configured iterations.
            if iteration >= 2 {
                if power_w > cap_w * (1.0 + 1e-9) {
                    health.overcap_streak += 1;
                    health.clean_streak = 0;
                    timeline.record(Event::CapViolation {
                        kernel_id: id.to_string(),
                        power_w,
                        cap_w,
                        streak: health.overcap_streak,
                    });
                    if health.overcap_streak >= policy.max_overcap_streak {
                        degrade_reason = Some("cap violations");
                        health.overcap_streak = 0;
                        health.clean_streak = 0;
                    }
                } else {
                    health.overcap_streak = 0;
                    health.clean_streak += 1;
                    if health.clean_streak >= policy.recovery_clean_iters
                        && health.tier != TierState::model()
                    {
                        let from = health.tier;
                        health.tier = health.tier.recovered();
                        health.recoveries += 1;
                        health.clean_streak = 0;
                        timeline.record(Event::TierChanged {
                            kernel_id: id.to_string(),
                            from: from.label(),
                            to: health.tier.label(),
                            reason: "recovered".into(),
                        });
                    }
                }
            }
        }

        if let Some(reason) = degrade_reason {
            let from = health.tier;
            let to = health.tier.degraded(base);
            if to != from {
                health.tier = to;
                health.degradations += 1;
                timeline.record(Event::TierChanged {
                    kernel_id: id.to_string(),
                    from: from.label(),
                    to: to.label(),
                    reason: reason.into(),
                });
            }
        }
    }

    fn run_keyed(
        &mut self,
        kernel: &KernelCharacteristics,
        id: String,
    ) -> Result<KernelRun, RuntimeError> {
        let state = self.kernels.entry(id.clone()).or_insert_with(KernelState::new);
        let iteration = state.iterations;

        let base = match iteration {
            0 => sample_config(Device::Cpu),
            1 => sample_config(Device::Gpu),
            _ => state
                .fixed_config
                .ok_or_else(|| RuntimeError::UnconfiguredKernel { kernel_id: id.clone() })?,
        };
        // The guard's tier override applies only once sampling is done:
        // the two probes are the protocol's measurement instrument.
        let target = if iteration >= 2 { self.tier_for(&id).apply(base) } else { base };

        let run = self.execute_with_retries(kernel, &id, target, iteration)?;

        self.history.record(ProfileSample::from_run(&id, iteration, &run));
        self.timeline.record(Event::KernelRun {
            kernel_id: id.clone(),
            iteration,
            config: run.config,
            time_s: run.time_s,
            power_w: run.power_w(),
        });

        let state = self.kernels.get_mut(&id).ok_or_else(|| RuntimeError::ProtocolViolation {
            kernel_id: id.clone(),
            detail: "kernel state vanished mid-iteration".into(),
        })?;
        state.iterations += 1;
        match iteration {
            0 => state.cpu_sample = Some(run.clone()),
            1 => {
                state.gpu_sample = Some(run.clone());
                // Both samples in hand: classify, predict, fix the config.
                let cpu_sample =
                    state.cpu_sample.clone().ok_or_else(|| RuntimeError::ProtocolViolation {
                        kernel_id: id.clone(),
                        detail: "CPU sample missing at classification time".into(),
                    })?;
                let samples = SamplePair::new(cpu_sample, run.clone());
                let predicted = Predictor::new(&self.model).predict(&samples);
                let config = predicted.select(self.cap_w);
                self.timeline.record(Event::ConfigSelected {
                    kernel_id: id.clone(),
                    config,
                    reason: format!("model (cluster {})", predicted.cluster),
                });
                state.fixed_config = Some(config);
                state.predicted = Some(predicted);
            }
            _ => {}
        }

        self.watchdog(&id, base, iteration, &run);
        Ok(run)
    }

    /// Execute `iterations` iterations of every kernel of an application
    /// (kernels run sequentially within each iteration, per Section
    /// III-A) and summarize. A guarded runtime absorbs execution
    /// failures — the iteration is counted in `failed_runs` and the app
    /// continues; an unguarded runtime aborts on the first failure.
    pub fn run_app(
        &mut self,
        app: &AppInstance,
        iterations: u64,
    ) -> Result<AppRunReport, RuntimeError> {
        let mut total_time = 0.0;
        let mut energy = 0.0;
        let mut met = 0u64;
        let mut total = 0u64;
        let mut failed = 0u64;

        for _ in 0..iterations {
            for kernel in &app.kernels {
                let run = match self.run_kernel(kernel) {
                    Ok(run) => run,
                    Err(RuntimeError::ExecutionFailed { .. }) if self.guard.is_some() => {
                        failed += 1;
                        continue;
                    }
                    Err(e) => return Err(e),
                };
                total_time += run.time_s;
                energy += run.true_power_w() * run.time_s;
                total += 1;
                if run.true_power_w() <= self.cap_w * (1.0 + 1e-9) {
                    met += 1;
                }
            }
        }

        let final_configs = app
            .kernels
            .iter()
            .filter_map(|k| {
                let id = k.id();
                self.planned_config(&id).map(|cfg| (id, cfg))
            })
            .collect();

        Ok(AppRunReport {
            app: app.label(),
            cap_w: self.cap_w,
            total_time_s: total_time,
            avg_power_w: if total_time > 0.0 { energy / total_time } else { 0.0 },
            cap_compliance: if total > 0 { met as f64 / total as f64 } else { 0.0 },
            failed_runs: failed,
            final_configs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{safe_min_config, DegradationTier};
    use crate::offline::{train, TrainingParams};
    use crate::profile::collect_suite;
    use acs_kernels::InputSize;
    use acs_sim::{FaultPlan, FaultyMachine};

    fn trained_model(machine: &Machine) -> TrainedModel {
        // Train on CoMD + SMC, schedule LULESH Small.
        let training_kernels: Vec<KernelCharacteristics> =
            acs_kernels::comd::kernels(InputSize::Default)
                .into_iter()
                .chain(acs_kernels::smc::kernels(InputSize::Small))
                .collect();
        let profiles = collect_suite(machine, &training_kernels);
        train(&profiles, TrainingParams::default()).unwrap()
    }

    fn lulesh() -> AppInstance {
        acs_kernels::app_instances().into_iter().find(|a| a.label() == "LULESH Small").unwrap()
    }

    fn runtime(cap: f64) -> (CappedRuntime, AppInstance) {
        let machine = Machine::new(2014);
        let model = trained_model(&machine);
        (CappedRuntime::new(machine, model, cap), lulesh())
    }

    fn guarded_runtime(
        cap: f64,
        plan: FaultPlan,
        policy: GuardPolicy,
    ) -> (CappedRuntime<FaultyMachine>, AppInstance) {
        let machine = Machine::new(2014);
        let model = trained_model(&machine);
        let executor = FaultyMachine::new(machine, plan);
        (CappedRuntime::guarded(executor, model, cap, policy), lulesh())
    }

    #[test]
    fn first_two_iterations_are_samples() {
        let (mut rt, app) = runtime(25.0);
        let k = &app.kernels[0];
        let r0 = rt.run_kernel(k).unwrap();
        assert_eq!(r0.config, sample_config(Device::Cpu));
        let r1 = rt.run_kernel(k).unwrap();
        assert_eq!(r1.config, sample_config(Device::Gpu));
        // Third iteration: fixed model selection.
        let r2 = rt.run_kernel(k).unwrap();
        assert_eq!(Some(r2.config), rt.planned_config(&k.id()));
    }

    #[test]
    fn config_is_fixed_after_second_iteration() {
        let (mut rt, app) = runtime(25.0);
        let k = &app.kernels[0];
        rt.run_kernel(k).unwrap();
        rt.run_kernel(k).unwrap();
        let fixed = rt.run_kernel(k).unwrap().config;
        for _ in 0..5 {
            assert_eq!(rt.run_kernel(k).unwrap().config, fixed);
        }
    }

    #[test]
    fn cap_change_reselects_without_new_samples() {
        let (mut rt, app) = runtime(40.0);
        let k = &app.kernels[0]; // GPU-friendly hourglass kernel
        rt.run_kernel(k).unwrap();
        rt.run_kernel(k).unwrap();
        let generous = rt.run_kernel(k).unwrap().config;
        let samples_before = rt.history().sample_count(&k.id());

        rt.set_cap(11.0); // tight: should force a cheaper configuration
        let tight = rt.run_kernel(k).unwrap().config;
        assert_ne!(generous, tight, "an 11 W cap must change the selection");

        // No additional sampling iterations happened: only iterations 0
        // and 1 ran the Table II sample configurations by design (a
        // *selected* config may legitimately coincide with a sample one).
        for s in rt.history().samples(&k.id()) {
            match s.iteration {
                0 => assert_eq!(s.config, sample_config(Device::Cpu)),
                1 => assert_eq!(s.config, sample_config(Device::Gpu)),
                _ => {}
            }
        }
        assert_eq!(rt.history().sample_count(&k.id()), samples_before + 1);
    }

    #[test]
    fn run_app_reports_consistent_summary() {
        let (mut rt, app) = runtime(25.0);
        let report = rt.run_app(&app, 3).unwrap();
        assert_eq!(report.app, "LULESH Small");
        assert!(report.total_time_s > 0.0);
        assert!(report.avg_power_w > 5.0 && report.avg_power_w < 60.0);
        assert!((0.0..=1.0).contains(&report.cap_compliance));
        assert_eq!(report.failed_runs, 0);
        assert_eq!(report.final_configs.len(), app.kernels.len());
        // After 3 app iterations every kernel is past its sampling phase.
        for (id, _) in &report.final_configs {
            assert!(rt.history().sample_count(id) >= 3, "{id}");
        }
    }

    #[test]
    fn tighter_cap_yields_slower_lower_power_app() {
        let (mut rt_hi, app) = runtime(40.0);
        let hi = rt_hi.run_app(&app, 4).unwrap();
        let (mut rt_lo, _) = runtime(12.0);
        let lo = rt_lo.run_app(&app, 4).unwrap();
        assert!(lo.avg_power_w < hi.avg_power_w, "lower cap must lower power");
        assert!(lo.total_time_s > hi.total_time_s, "lower cap must cost time");
    }

    #[test]
    fn compliance_is_high_once_configured() {
        // Skip the sampling iterations (which ignore the cap) by running
        // many iterations: compliance should be dominated by configured
        // runs and stay high at a moderate cap.
        let (mut rt, app) = runtime(30.0);
        let report = rt.run_app(&app, 10).unwrap();
        assert!(
            report.cap_compliance > 0.7,
            "compliance {} too low at a moderate cap",
            report.cap_compliance
        );
    }

    #[test]
    fn contexts_schedule_independently() {
        use acs_profiling::RegionStack;
        let (mut rt, app) = runtime(25.0);
        let k = &app.kernels[0];

        let mut stack = RegionStack::new();
        let t = stack.enter("hydro");
        let ctx_a = stack.context_key(&k.id(), Some(1 << 20));
        stack.exit(t);
        let t = stack.enter("transport");
        let ctx_b = stack.context_key(&k.id(), Some(1 << 26));
        stack.exit(t);

        // Each context pays its own two sample iterations.
        for ctx in [&ctx_a, &ctx_b] {
            let r0 = rt.run_kernel_in_context(k, ctx).unwrap();
            assert_eq!(r0.config, sample_config(Device::Cpu), "{ctx}");
            let r1 = rt.run_kernel_in_context(k, ctx).unwrap();
            assert_eq!(r1.config, sample_config(Device::Gpu), "{ctx}");
        }
        // Histories are separate.
        assert_eq!(rt.history().sample_count(&ctx_a.history_id()), 2);
        assert_eq!(rt.history().sample_count(&ctx_b.history_id()), 2);
        assert_eq!(rt.history().sample_count(&k.id()), 0);
        // Both contexts have fixed configs now.
        assert!(rt.planned_config(&ctx_a.history_id()).is_some());
        assert!(rt.planned_config(&ctx_b.history_id()).is_some());
    }

    #[test]
    fn timeline_records_the_decision_trail() {
        let (mut rt, app) = runtime(30.0);
        let k = &app.kernels[0];
        rt.run_kernel(k).unwrap();
        rt.run_kernel(k).unwrap();
        rt.run_kernel(k).unwrap();
        rt.set_cap(12.0);
        rt.run_kernel(k).unwrap();

        let events = rt.timeline().entries();
        let runs = events
            .iter()
            .filter(|e| matches!(e.event, acs_profiling::Event::KernelRun { .. }))
            .count();
        let picks = events
            .iter()
            .filter(|e| matches!(e.event, acs_profiling::Event::ConfigSelected { .. }))
            .count();
        let caps = events
            .iter()
            .filter(|e| matches!(e.event, acs_profiling::Event::CapChanged { .. }))
            .count();
        assert_eq!(runs, 4);
        assert!(picks >= 1, "model selection must be traced");
        assert_eq!(caps, 1);
        // Virtual time advanced by the runs.
        assert!(rt.timeline().now_s() > 0.0);
        // The render mentions the kernel.
        assert!(rt.timeline().render().contains(&k.id()));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cap_rejected() {
        let (rt, _) = runtime(25.0);
        let mut rt = rt;
        rt.set_cap(0.0);
    }

    #[test]
    fn try_set_cap_reports_instead_of_panicking() {
        let (mut rt, _) = runtime(25.0);
        assert_eq!(rt.try_set_cap(-3.0), Err(RuntimeError::NonPositiveCap { cap_w: -3.0 }));
        assert!(matches!(
            rt.try_set_cap(f64::NAN),
            Err(RuntimeError::NonPositiveCap { cap_w }) if cap_w.is_nan()
        ));
        assert!(rt.try_set_cap(20.0).is_ok());
        assert_eq!(rt.cap_w(), 20.0);
    }

    #[test]
    fn unguarded_faulty_machine_surfaces_typed_errors() {
        let plan = FaultPlan { run_fail_p: 1.0, ..FaultPlan::none(9) };
        let machine = Machine::new(2014);
        let model = trained_model(&machine);
        let mut rt = CappedRuntime::with_executor(FaultyMachine::new(machine, plan), model, 25.0);
        let app = lulesh();
        let err = rt.run_kernel(&app.kernels[0]).unwrap_err();
        assert!(matches!(err, RuntimeError::ExecutionFailed { attempts: 1, .. }), "{err}");
        // run_app propagates the failure when unguarded.
        assert!(rt.run_app(&app, 1).is_err());
    }

    #[test]
    fn guarded_runtime_retries_transient_failures() {
        // ~30% run failures: with 3 retries the app should almost always
        // complete every iteration, charging backoff time to the clock.
        let plan = FaultPlan { run_fail_p: 0.3, ..FaultPlan::none(11) };
        let (mut rt, app) = guarded_runtime(25.0, plan, GuardPolicy::default());
        let report = rt.run_app(&app, 3).unwrap();
        assert!(report.total_time_s > 0.0);
        let retries = rt
            .timeline()
            .entries()
            .iter()
            .filter(|e| matches!(e.event, Event::RetryBackoff { .. }))
            .count();
        assert!(retries > 0, "a 30% failure rate must trigger retries");
        assert!(report.failed_runs <= 2, "retries should absorb most failures");
    }

    #[test]
    fn guard_degrades_on_persistent_cap_violations() {
        // An unreachably tight cap guarantees persistent measured
        // violations. The guard must walk the ladder down to safe-min
        // rather than loop or panic.
        let (mut rt, app) = guarded_runtime(
            6.0, // below the minimum achievable package power
            FaultPlan::none(1),
            GuardPolicy { recovery_clean_iters: 1000, ..GuardPolicy::default() },
        );
        let k = &app.kernels[0];
        for _ in 0..60 {
            let _ = rt.run_kernel(k).unwrap();
        }
        let health = rt.health(&k.id()).expect("guarded kernels have health");
        assert_eq!(health.tier.tier, DegradationTier::SafeMin);
        assert!(health.degradations >= 3);
        assert_eq!(rt.planned_config(&k.id()), Some(safe_min_config()));
        // The trail explains each step down.
        let tiers = rt
            .timeline()
            .entries()
            .iter()
            .filter(|e| matches!(e.event, Event::TierChanged { .. }))
            .count();
        assert_eq!(tiers as u32, health.degradations);
    }

    #[test]
    fn guard_recovers_after_clean_iterations() {
        let (mut rt, app) = guarded_runtime(
            30.0,
            FaultPlan::none(1),
            GuardPolicy { recovery_clean_iters: 4, ..GuardPolicy::default() },
        );
        let k = &app.kernels[0];
        rt.run_kernel(k).unwrap();
        rt.run_kernel(k).unwrap();
        // Manufacture a degradation, then run clean iterations.
        rt.guard.as_mut().unwrap().kernels.get_mut(&k.id()).unwrap().tier =
            TierState { tier: DegradationTier::CpuFl, fl_steps: 1 };
        for _ in 0..30 {
            rt.run_kernel(k).unwrap();
        }
        let health = rt.health(&k.id()).unwrap();
        assert_eq!(health.tier, TierState::model(), "clean runs must climb back to model");
        assert!(health.recoveries >= 2);
    }

    #[test]
    fn guard_degrades_on_frozen_sensor() {
        let plan =
            FaultPlan { sensor_freeze_p: 0.8, sensor_freeze_window: 8, ..FaultPlan::none(3) };
        let (mut rt, app) = guarded_runtime(
            30.0,
            plan,
            GuardPolicy { stale_sensor_window: 3, ..GuardPolicy::default() },
        );
        let k = &app.kernels[0];
        for _ in 0..20 {
            let _ = rt.run_kernel(k);
        }
        let health = rt.health(&k.id()).unwrap();
        assert!(health.degradations > 0, "a latched sensor must trigger degradation");
        let anomalies = rt
            .timeline()
            .entries()
            .iter()
            .filter(|e| matches!(&e.event, Event::SensorAnomaly { kind, .. } if kind == "frozen"))
            .count();
        assert!(anomalies > 0);
    }

    #[test]
    fn guarded_zero_fault_run_matches_protocol() {
        // With a no-op plan and a sane cap the guard must stay out of the
        // way: no failures, no retries, compliance as good as unguarded.
        let (mut rt, app) = guarded_runtime(30.0, FaultPlan::none(5), GuardPolicy::default());
        let report = rt.run_app(&app, 10).unwrap();
        assert_eq!(report.failed_runs, 0);
        let retries = rt
            .timeline()
            .entries()
            .iter()
            .filter(|e| matches!(e.event, Event::RetryBackoff { .. }))
            .count();
        assert_eq!(retries, 0, "nothing to retry without faults");
        assert!(report.cap_compliance > 0.7);
        // Kernels whose model pick is genuinely clean never leave Model;
        // the guard may legitimately step down a kernel the model
        // mispredicts, but most of the app must stay on the top rung.
        let on_model = app
            .kernels
            .iter()
            .filter(|k| rt.health(&k.id()).is_some_and(|h| h.tier == TierState::model()))
            .count();
        assert!(on_model * 2 > app.kernels.len(), "{on_model}/{}", app.kernels.len());
    }
}
