//! Runtime health: typed errors, the degradation ladder, and the guard
//! policy for the self-healing capped runtime.
//!
//! The paper's protocol assumes trustworthy sensors and obedient DVFS
//! hardware. The guarded [`CappedRuntime`](crate::CappedRuntime) drops
//! that assumption: a post-run watchdog tracks measured power against the
//! cap and the sensor's vital signs, and on repeated violations steps the
//! kernel *down* a ladder of ever-more-conservative strategies —
//!
//! 1. **Model** — trust the predicted frontier (the paper's method),
//! 2. **Model + FL** — the model's pick, frequency-limited some P-states
//!    below the prediction,
//! 3. **CPU + FL** — abandon the model: all cores, walked down from the
//!    top CPU P-state (the paper's model-free baseline),
//! 4. **Safe minimum** — one core at the lowest P-state, the least power
//!    the machine can draw while making progress —
//!
//! and back *up* one rung after enough consecutive clean iterations.

use crate::limiter::start;
use acs_sim::{Configuration, CpuPState, Device};
use serde::{Deserialize, Serialize};

/// Typed failures from the capped runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RuntimeError {
    /// A power cap must be a positive number of watts.
    NonPositiveCap {
        /// The rejected cap, W.
        cap_w: f64,
    },
    /// A kernel reached its post-sample phase without a fixed
    /// configuration (protocol state corrupted or never classified).
    UnconfiguredKernel {
        /// Kernel identifier.
        kernel_id: String,
    },
    /// The scheduling protocol's internal state is inconsistent.
    ProtocolViolation {
        /// Kernel identifier.
        kernel_id: String,
        /// What was expected but missing.
        detail: String,
    },
    /// A kernel execution failed and retries were exhausted.
    ExecutionFailed {
        /// Kernel identifier.
        kernel_id: String,
        /// Iteration that failed.
        iteration: u64,
        /// Number of attempts made (including the first).
        attempts: u32,
        /// The underlying fault, rendered.
        fault: String,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::NonPositiveCap { cap_w } => {
                write!(f, "power cap must be positive, got {cap_w} W")
            }
            RuntimeError::UnconfiguredKernel { kernel_id } => {
                write!(f, "kernel '{kernel_id}' has no fixed configuration after sampling")
            }
            RuntimeError::ProtocolViolation { kernel_id, detail } => {
                write!(f, "scheduling state for kernel '{kernel_id}' is inconsistent: {detail}")
            }
            RuntimeError::ExecutionFailed { kernel_id, iteration, attempts, fault } => {
                write!(
                    f,
                    "kernel '{kernel_id}' iteration {iteration} failed after {attempts} \
                     attempt(s): {fault}"
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The rungs of the degradation ladder, most-trusting first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationTier {
    /// Trust the model's frontier selection unmodified.
    Model,
    /// The model's selection, frequency-limited below the prediction.
    ModelFl,
    /// Model-free: all cores, frequency-limited from the top CPU P-state.
    CpuFl,
    /// Pinned to the machine's minimum-power configuration.
    SafeMin,
}

/// A position on the ladder: the tier plus how many frequency-limiting
/// steps are applied within it (0 for `Model` and `SafeMin`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierState {
    /// Current rung.
    pub tier: DegradationTier,
    /// P-state step-downs applied from the rung's base configuration.
    pub fl_steps: u8,
}

/// Walk `config`'s active device down `n` P-states, saturating at the
/// floor (GPU configurations drain the GPU ladder first, then the host
/// CPU's — the same order the RAPL-style limiter walks).
fn step_down(mut config: Configuration, n: u8) -> Configuration {
    for _ in 0..n {
        let stepped = match config.device {
            Device::Gpu => {
                if let Some(lower) = config.gpu_pstate.step_down() {
                    config.gpu_pstate = lower;
                    true
                } else if let Some(lower) = config.cpu_pstate.step_down() {
                    config.cpu_pstate = lower;
                    true
                } else {
                    false
                }
            }
            Device::Cpu => {
                if let Some(lower) = config.cpu_pstate.step_down() {
                    config.cpu_pstate = lower;
                    true
                } else {
                    false
                }
            }
        };
        if !stepped {
            break;
        }
    }
    config
}

/// The machine's minimum-power configuration that still makes progress.
pub fn safe_min_config() -> Configuration {
    Configuration::cpu(1, CpuPState::MIN)
}

impl TierState {
    /// The healthiest state: trust the model.
    pub fn model() -> Self {
        Self { tier: DegradationTier::Model, fl_steps: 0 }
    }

    /// The configuration this rung runs, given the model's selection.
    pub fn apply(&self, model_choice: Configuration) -> Configuration {
        match self.tier {
            DegradationTier::Model => model_choice,
            DegradationTier::ModelFl => step_down(model_choice, self.fl_steps),
            DegradationTier::CpuFl => step_down(start::cpu_fl(), self.fl_steps),
            DegradationTier::SafeMin => safe_min_config(),
        }
    }

    /// One rung down. Within the FL tiers this adds a frequency-limiting
    /// step; once a tier's ladder is exhausted it falls to the next tier.
    /// `SafeMin` is absorbing.
    pub fn degraded(&self, model_choice: Configuration) -> Self {
        match self.tier {
            DegradationTier::Model => Self { tier: DegradationTier::ModelFl, fl_steps: 1 },
            DegradationTier::ModelFl => {
                let deeper = self.fl_steps + 1;
                if step_down(model_choice, deeper) != step_down(model_choice, self.fl_steps) {
                    Self { tier: DegradationTier::ModelFl, fl_steps: deeper }
                } else {
                    Self { tier: DegradationTier::CpuFl, fl_steps: 0 }
                }
            }
            DegradationTier::CpuFl => {
                let deeper = self.fl_steps + 1;
                if step_down(start::cpu_fl(), deeper) != step_down(start::cpu_fl(), self.fl_steps) {
                    Self { tier: DegradationTier::CpuFl, fl_steps: deeper }
                } else {
                    Self { tier: DegradationTier::SafeMin, fl_steps: 0 }
                }
            }
            DegradationTier::SafeMin => *self,
        }
    }

    /// One rung up (toward trusting the model again).
    pub fn recovered(&self) -> Self {
        match self.tier {
            DegradationTier::Model => *self,
            DegradationTier::ModelFl => {
                if self.fl_steps <= 1 {
                    Self::model()
                } else {
                    Self { tier: DegradationTier::ModelFl, fl_steps: self.fl_steps - 1 }
                }
            }
            // Re-trust the cap-aware model (one notch of margin) rather
            // than climbing back through CPU+FL's upper rungs: those sit
            // near 4-cores-at-max power, so a kernel that degraded past
            // them would re-violate there and oscillate forever.
            DegradationTier::CpuFl => Self { tier: DegradationTier::ModelFl, fl_steps: 1 },
            // Re-entry from the pinned floor starts at CPU+FL's own floor.
            DegradationTier::SafeMin => {
                Self { tier: DegradationTier::CpuFl, fl_steps: (CpuPState::COUNT - 1) as u8 }
            }
        }
    }

    /// Human-readable rung label (used in timeline events).
    pub fn label(&self) -> String {
        match self.tier {
            DegradationTier::Model => "model".into(),
            DegradationTier::ModelFl => format!("model+fl({})", self.fl_steps),
            DegradationTier::CpuFl => format!("cpu+fl({})", self.fl_steps),
            DegradationTier::SafeMin => "safe-min".into(),
        }
    }

    /// Maximum number of `degraded` calls from `model()` to `SafeMin`,
    /// regardless of the model's choice (bounds watchdog convergence).
    pub fn max_rungs() -> u32 {
        // Model → up to COUNT-1 ModelFl steps (+ GPU ladder on GPU picks)
        // → CpuFl{0..COUNT-1} → SafeMin, with one transition rung each.
        let cpu = CpuPState::COUNT as u32;
        let gpu = acs_sim::GpuPState::COUNT as u32;
        1 + (cpu - 1 + gpu - 1) + cpu + 1
    }
}

/// Tunables for the guarded runtime's watchdog and retry logic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuardPolicy {
    /// Consecutive measured-over-cap iterations before stepping down a
    /// rung (the ISSUE's `K`).
    pub max_overcap_streak: u32,
    /// Consecutive clean (valid-sensor, under-cap) iterations before
    /// stepping back up a rung (the ISSUE's `N`).
    pub recovery_clean_iters: u32,
    /// Retries for a failed execution or clamped transition, per
    /// iteration.
    pub max_retries: u32,
    /// First retry waits this long; each further retry doubles it.
    pub backoff_base_s: f64,
    /// Consecutive invalid sensor readings (dropouts or exact repeats)
    /// before degrading on suspicion of a stale sensor. `0` disables
    /// stale detection (needed for noiseless machines, whose genuine
    /// readings repeat exactly).
    pub stale_sensor_window: u32,
}

impl Default for GuardPolicy {
    fn default() -> Self {
        Self {
            max_overcap_streak: 3,
            recovery_clean_iters: 8,
            max_retries: 3,
            backoff_base_s: 1e-3,
            stale_sensor_window: 4,
        }
    }
}

/// Per-kernel health bookkeeping maintained by the guard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelHealth {
    /// Current ladder position.
    pub tier: TierState,
    /// Consecutive measured-over-cap iterations.
    pub overcap_streak: u32,
    /// Consecutive clean iterations (toward recovery).
    pub clean_streak: u32,
    /// Consecutive invalid sensor readings (dropout or frozen).
    pub stale_streak: u32,
    /// Last measured package power, W (for frozen-reading detection).
    pub last_power_w: Option<f64>,
    /// Total rung step-downs.
    pub degradations: u32,
    /// Total rung step-ups.
    pub recoveries: u32,
    /// Total execution retries.
    pub retries: u32,
}

impl Default for KernelHealth {
    fn default() -> Self {
        Self {
            tier: TierState::model(),
            overcap_streak: 0,
            clean_streak: 0,
            stale_streak: 0,
            last_power_w: None,
            degradations: 0,
            recoveries: 0,
            retries: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_sim::GpuPState;

    #[test]
    fn ladder_reaches_safe_min_from_any_choice() {
        for choice in Configuration::enumerate() {
            let mut state = TierState::model();
            let mut rungs = 0;
            while state.tier != DegradationTier::SafeMin {
                let next = state.degraded(choice);
                assert_ne!(next, state, "ladder stalled at {state:?} for {choice}");
                state = next;
                rungs += 1;
                assert!(rungs <= TierState::max_rungs(), "too many rungs for {choice}");
            }
            assert_eq!(state.apply(choice), safe_min_config());
            // SafeMin is absorbing.
            assert_eq!(state.degraded(choice), state);
        }
    }

    #[test]
    fn recovery_climbs_back_to_model() {
        let choice = Configuration::cpu(4, CpuPState::MAX);
        let mut state = TierState::model();
        while state.tier != DegradationTier::SafeMin {
            state = state.degraded(choice);
        }
        let mut climbs = 0;
        while state != TierState::model() {
            let next = state.recovered();
            assert_ne!(next, state, "recovery stalled at {state:?}");
            state = next;
            climbs += 1;
            assert!(climbs <= TierState::max_rungs() + 2);
        }
        assert_eq!(state.recovered(), state, "model is the top rung");
    }

    #[test]
    fn each_rung_draws_no_more_power_shaped_config() {
        // Stepping down never raises a P-state.
        let choice = Configuration::gpu(GpuPState::MAX, CpuPState::MAX);
        let mut state = TierState::model();
        let mut prev = state.apply(choice);
        for _ in 0..3 {
            state = state.degraded(choice);
            if state.tier == DegradationTier::ModelFl {
                let cfg = state.apply(choice);
                assert!(
                    cfg.gpu_pstate <= prev.gpu_pstate && cfg.cpu_pstate <= prev.cpu_pstate,
                    "{prev} → {cfg}"
                );
                prev = cfg;
            }
        }
    }

    #[test]
    fn model_fl_limits_the_model_choice() {
        let choice = Configuration::cpu(4, CpuPState(3));
        let s = TierState { tier: DegradationTier::ModelFl, fl_steps: 2 };
        assert_eq!(s.apply(choice), Configuration::cpu(4, CpuPState(1)));
        // Saturates at the floor instead of wrapping.
        let deep = TierState { tier: DegradationTier::ModelFl, fl_steps: 40 };
        assert_eq!(deep.apply(choice), Configuration::cpu(4, CpuPState::MIN));
    }

    #[test]
    fn cpu_fl_ignores_the_model_choice() {
        let s = TierState { tier: DegradationTier::CpuFl, fl_steps: 1 };
        let a = s.apply(Configuration::gpu(GpuPState::MAX, CpuPState::MAX));
        let b = s.apply(Configuration::cpu(1, CpuPState::MIN));
        assert_eq!(a, b);
        assert_eq!(a.device, Device::Cpu);
        assert_eq!(a.threads, acs_sim::NUM_CPU_CORES);
    }

    #[test]
    fn errors_render_descriptively() {
        let e = RuntimeError::ExecutionFailed {
            kernel_id: "LULESH/Small/K1".into(),
            iteration: 7,
            attempts: 4,
            fault: "kernel run failure at invocation 9".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("LULESH/Small/K1"));
        assert!(msg.contains("iteration 7"));
        assert!(msg.contains("4 attempt(s)"));
        assert!(RuntimeError::NonPositiveCap { cap_w: -1.0 }.to_string().contains("positive"));
    }
}
