//! The paper's evaluation protocol (Sections V-B through V-D).
//!
//! For every kernel, the tested power constraints are exactly the power
//! levels of the configurations on that kernel's *oracle* Pareto frontier.
//! Each method then selects a configuration per constraint; a case is
//! *under-limit* when the selected configuration's true power meets the
//! constraint and *over-limit* otherwise. Metrics compare each method's
//! power and performance to the oracle's at the same constraint, averaged
//! across kernels weighted by the fraction of benchmark time each kernel
//! accounts for (Section V-D), under leave-one-benchmark-out
//! cross-validation (Section V-C).

use crate::methods::{select, Method};
use crate::offline::{train, TrainError, TrainedModel, TrainingParams};
use crate::online::Predictor;
use crate::profile::{collect_suite, KernelProfile};
use acs_kernels::AppInstance;
use acs_mlstat::leave_one_group_out;
use acs_sim::{Configuration, Machine};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Tolerance for "meets the power constraint": measured equality up to
/// floating-point noise counts as meeting it (the oracle's own pick sits
/// exactly at the cap).
const CAP_EPSILON: f64 = 1e-9;

/// One (kernel, power constraint, method) outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseResult {
    /// Which method produced this case.
    pub method: Method,
    /// Kernel identifier.
    pub kernel_id: String,
    /// Application instance label (e.g. `LULESH Small`).
    pub app_label: String,
    /// Case weight: kernel's share of app time, split evenly over the
    /// kernel's constraints so every kernel contributes its weight once.
    pub weight: f64,
    /// The power constraint, W.
    pub cap_w: f64,
    /// The configuration the method selected.
    pub config: Configuration,
    /// True power of the selected configuration, W.
    pub power_w: f64,
    /// Performance (inverse time) of the selected configuration.
    pub perf: f64,
    /// True power of the oracle's selection at the same constraint, W.
    pub oracle_power_w: f64,
    /// Performance of the oracle's selection.
    pub oracle_perf: f64,
}

impl CaseResult {
    /// Whether the method met the power constraint.
    pub fn under_limit(&self) -> bool {
        self.power_w <= self.cap_w * (1.0 + CAP_EPSILON)
    }

    /// Method performance as a fraction of oracle performance.
    pub fn perf_ratio(&self) -> f64 {
        self.perf / self.oracle_perf
    }

    /// Method power as a fraction of oracle power.
    pub fn power_ratio(&self) -> f64 {
        self.power_w / self.oracle_power_w
    }
}

/// Aggregate metrics for one method over a set of cases — one row of
/// Table III (all values in percent).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MethodSummary {
    /// The method.
    pub method: Method,
    /// Percent of cases meeting the power constraint.
    pub pct_under: f64,
    /// Percent of oracle performance achieved in under-limit cases.
    pub under_perf_pct: Option<f64>,
    /// Percent of oracle power used in under-limit cases.
    pub under_power_pct: Option<f64>,
    /// Percent of oracle power used in over-limit cases.
    pub over_power_pct: Option<f64>,
    /// Percent of oracle performance achieved in over-limit cases.
    pub over_perf_pct: Option<f64>,
}

/// A complete evaluation: every case for every compared method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// All cases.
    pub cases: Vec<CaseResult>,
    /// Silhouette widths of the per-fold clusterings (diagnostic).
    pub fold_silhouettes: Vec<(String, f64)>,
}

fn weighted_pct(values: &[(f64, f64)]) -> Option<f64> {
    let total: f64 = values.iter().map(|(_, w)| w).sum();
    if total <= 0.0 {
        return None;
    }
    Some(values.iter().map(|(v, w)| v * w).sum::<f64>() / total * 100.0)
}

/// Summarize one method over a slice of cases.
pub fn summarize(cases: &[CaseResult], method: Method) -> MethodSummary {
    let mine: Vec<&CaseResult> = cases.iter().filter(|c| c.method == method).collect();
    let total_w: f64 = mine.iter().map(|c| c.weight).sum();
    let under: Vec<&&CaseResult> = mine.iter().filter(|c| c.under_limit()).collect();
    let over: Vec<&&CaseResult> = mine.iter().filter(|c| !c.under_limit()).collect();

    let under_w: f64 = under.iter().map(|c| c.weight).sum();
    let pct_under = if total_w > 0.0 { under_w / total_w * 100.0 } else { 0.0 };

    MethodSummary {
        method,
        pct_under,
        under_perf_pct: weighted_pct(
            &under.iter().map(|c| (c.perf_ratio(), c.weight)).collect::<Vec<_>>(),
        ),
        under_power_pct: weighted_pct(
            &under.iter().map(|c| (c.power_ratio(), c.weight)).collect::<Vec<_>>(),
        ),
        over_power_pct: weighted_pct(
            &over.iter().map(|c| (c.power_ratio(), c.weight)).collect::<Vec<_>>(),
        ),
        over_perf_pct: weighted_pct(
            &over.iter().map(|c| (c.perf_ratio(), c.weight)).collect::<Vec<_>>(),
        ),
    }
}

impl Evaluation {
    /// Table III: one summary per compared method over all cases.
    pub fn table3(&self) -> Vec<MethodSummary> {
        Method::COMPARED.iter().map(|&m| summarize(&self.cases, m)).collect()
    }

    /// Application-instance labels present, in first-appearance order.
    pub fn app_labels(&self) -> Vec<String> {
        let mut labels = Vec::new();
        for c in &self.cases {
            if !labels.contains(&c.app_label) {
                labels.push(c.app_label.clone());
            }
        }
        labels
    }

    /// Per-application summaries for one method (Figures 5, 6, 8, 9).
    pub fn by_app(&self, method: Method) -> Vec<(String, MethodSummary)> {
        self.app_labels()
            .into_iter()
            .map(|label| {
                let cases: Vec<CaseResult> =
                    self.cases.iter().filter(|c| c.app_label == label).cloned().collect();
                let summary = summarize(&cases, method);
                (label, summary)
            })
            .collect()
    }

    /// Cases of one method only.
    pub fn cases_of(&self, method: Method) -> Vec<&CaseResult> {
        self.cases.iter().filter(|c| c.method == method).collect()
    }
}

/// Characterized application instance: the app plus its kernels' profiles.
#[derive(Debug, Clone)]
pub struct AppProfiles {
    /// The application instance.
    pub app: AppInstance,
    /// One profile per kernel, aligned with `app.kernels`.
    pub profiles: Vec<KernelProfile>,
}

/// Characterize every kernel of every application instance (in parallel:
/// app instances fan out across the rayon pool, and each instance's suite
/// sweep fans out further inside [`collect_suite`]).
pub fn characterize_apps(machine: &Machine, apps: &[AppInstance]) -> Vec<AppProfiles> {
    apps.par_iter()
        .map(|app| AppProfiles { app: app.clone(), profiles: collect_suite(machine, &app.kernels) })
        .collect()
}

/// Evaluate all methods on characterized applications under
/// leave-one-benchmark-out cross-validation.
pub fn evaluate(apps: &[AppProfiles], params: TrainingParams) -> Result<Evaluation, TrainError> {
    // Fold by *benchmark* (LULESH, CoMD, SMC, LU): holding out a benchmark
    // holds out all of its input sizes, per Section V-C.
    let benchmarks: Vec<&str> = apps.iter().map(|a| a.app.benchmark.as_str()).collect();
    let folds = leave_one_group_out(&benchmarks);

    let mut cases = Vec::new();
    let mut fold_silhouettes = Vec::new();

    for fold in &folds {
        let training: Vec<KernelProfile> =
            fold.train.iter().flat_map(|&ai| apps[ai].profiles.iter().cloned()).collect();
        let model = train(&training, params)?;
        fold_silhouettes.push((fold.label.clone(), model.silhouette));

        // Evaluate every kernel of the held-out benchmark's app instances.
        let fold_cases: Vec<CaseResult> = fold
            .test
            .par_iter()
            .flat_map_iter(|&ai| {
                let app = &apps[ai];
                app.profiles
                    .iter()
                    .flat_map(|profile| evaluate_kernel(profile, &model, &app.app.label()))
            })
            .collect();
        cases.extend(fold_cases);
    }

    Ok(Evaluation { cases, fold_silhouettes })
}

/// Evaluate all compared methods on one kernel at every oracle-frontier
/// power constraint.
pub fn evaluate_kernel(
    profile: &KernelProfile,
    model: &TrainedModel,
    app_label: &str,
) -> Vec<CaseResult> {
    let predictor = Predictor::new(model);
    let oracle_frontier = profile.oracle_frontier();
    let caps: Vec<f64> = oracle_frontier.points().iter().map(|p| p.power_w).collect();
    if caps.is_empty() {
        return Vec::new();
    }
    let case_weight = profile.kernel.weight / caps.len() as f64;

    let mut out = Vec::with_capacity(caps.len() * Method::COMPARED.len());
    for &cap in &caps {
        let oracle_cfg = select(Method::Oracle, profile, None, cap);
        let oracle_run = profile.run_at(&oracle_cfg);
        for &method in &Method::COMPARED {
            let cfg = select(method, profile, Some(&predictor), cap);
            let run = profile.run_at(&cfg);
            out.push(CaseResult {
                method,
                kernel_id: profile.kernel.id(),
                app_label: app_label.to_string(),
                weight: case_weight,
                cap_w: cap,
                config: cfg,
                power_w: run.true_power_w(),
                perf: 1.0 / run.time_s,
                oracle_power_w: oracle_run.true_power_w(),
                oracle_perf: 1.0 / oracle_run.time_s,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_kernels::InputSize;

    /// A reduced two-benchmark suite so the test evaluation stays fast.
    fn mini_apps(machine: &Machine) -> Vec<AppProfiles> {
        let apps = vec![
            AppInstance {
                benchmark: "CoMD".into(),
                input: "Default".into(),
                kernels: acs_kernels::comd::kernels(InputSize::Default)
                    .into_iter()
                    .map(|mut k| {
                        k.weight = 1.0 / 7.0;
                        k
                    })
                    .collect(),
            },
            AppInstance {
                benchmark: "SMC".into(),
                input: "Small".into(),
                kernels: acs_kernels::smc::kernels(InputSize::Small)
                    .into_iter()
                    .map(|mut k| {
                        k.weight = 1.0 / 8.0;
                        k
                    })
                    .collect(),
            },
        ];
        characterize_apps(machine, &apps)
    }

    fn mini_eval() -> Evaluation {
        let machine = Machine::new(42);
        let apps = mini_apps(&machine);
        evaluate(&apps, TrainingParams { n_clusters: 3, ..Default::default() }).unwrap()
    }

    #[test]
    fn evaluation_produces_cases_for_all_methods() {
        let e = mini_eval();
        for &m in &Method::COMPARED {
            assert!(!e.cases_of(m).is_empty(), "{m} has no cases");
        }
        assert_eq!(e.fold_silhouettes.len(), 2, "two benchmarks → two folds");
    }

    #[test]
    fn oracle_reference_is_never_beaten_under_limit() {
        // In an under-limit case a method cannot out-perform the oracle:
        // the oracle is optimal among cap-respecting configurations.
        let e = mini_eval();
        for c in &e.cases {
            if c.under_limit() {
                assert!(
                    c.perf_ratio() <= 1.0 + 1e-9,
                    "{} beat the oracle under-limit on {} (ratio {})",
                    c.method,
                    c.kernel_id,
                    c.perf_ratio()
                );
            }
        }
    }

    #[test]
    fn over_limit_cases_use_more_power_than_cap() {
        let e = mini_eval();
        for c in &e.cases {
            if !c.under_limit() {
                assert!(c.power_w > c.cap_w);
            }
        }
    }

    #[test]
    fn weights_sum_to_app_count_per_method() {
        // Each kernel contributes its weight once; app weights sum to 1.
        let e = mini_eval();
        for &m in &Method::COMPARED {
            let w: f64 = e.cases_of(m).iter().map(|c| c.weight).sum();
            assert!((w - 2.0).abs() < 1e-9, "{m}: weight sum {w} (2 apps)");
        }
    }

    #[test]
    fn summaries_are_within_bounds() {
        let e = mini_eval();
        for s in e.table3() {
            assert!((0.0..=100.0).contains(&s.pct_under), "{:?}", s);
            if let Some(p) = s.under_perf_pct {
                assert!(p <= 100.0 + 1e-6, "{:?}", s);
                assert!(p > 0.0);
            }
            if let Some(p) = s.over_power_pct {
                assert!(p > 100.0 * 0.5, "{:?}", s); // over-limit power near/above oracle
            }
        }
    }

    #[test]
    fn model_fl_meets_caps_at_least_as_often_as_model() {
        let e = mini_eval();
        let t = e.table3();
        let get = |m: Method| t.iter().find(|s| s.method == m).unwrap().pct_under;
        assert!(
            get(Method::ModelFL) >= get(Method::Model) - 1e-9,
            "FL can only help cap compliance: Model {} vs Model+FL {}",
            get(Method::Model),
            get(Method::ModelFL)
        );
    }

    #[test]
    fn by_app_covers_all_labels() {
        let e = mini_eval();
        let labels = e.app_labels();
        assert_eq!(labels.len(), 2);
        let per_app = e.by_app(Method::ModelFL);
        assert_eq!(per_app.len(), 2);
        for (label, s) in per_app {
            assert!(labels.contains(&label));
            assert!((0.0..=100.0).contains(&s.pct_under));
        }
    }

    #[test]
    fn evaluation_is_deterministic() {
        let a = mini_eval();
        let b = mini_eval();
        assert_eq!(a, b);
    }

    #[test]
    fn summarize_empty_set_is_benign() {
        let s = summarize(&[], Method::Model);
        assert_eq!(s.pct_under, 0.0);
        assert!(s.under_perf_pct.is_none());
        assert!(s.over_power_pct.is_none());
    }
}
