//! Scheduling objectives beyond performance-under-a-cap.
//!
//! Section III-C: "the predicted values could be used to select
//! configurations for energy efficiency, energy-delay product, or any
//! other scheduling goal." This module implements those selections over a
//! set of predicted (or measured) power/performance points.
//!
//! For a kernel iteration, with performance `p` (iterations per second)
//! and power `w`:
//! * time per iteration `t = 1/p`,
//! * energy per iteration `E = w·t = w/p`,
//! * energy–delay product `EDP = E·t = w/p²`,
//! * energy–delay² `ED2P = E·t² = w/p³`.

use crate::frontier::PowerPerfPoint;
use acs_sim::Configuration;
use serde::{Deserialize, Serialize};

/// A scheduling goal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Maximize performance subject to a power cap in watts (the paper's
    /// primary goal).
    MaxPerfUnderCap(f64),
    /// Minimize energy per iteration.
    MinEnergy,
    /// Minimize the energy–delay product.
    MinEnergyDelay,
    /// Minimize the energy–delay² product (strongly performance-leaning).
    MinEnergyDelaySquared,
    /// Maximize performance outright (no power consideration).
    MaxPerf,
}

impl Objective {
    /// The scalar cost of a point under this objective (lower is better).
    /// For `MaxPerfUnderCap`, infeasible points cost infinity; feasible
    /// points cost `-perf`.
    pub fn cost(&self, point: &PowerPerfPoint) -> f64 {
        let p = point.perf.max(1e-300);
        match *self {
            Objective::MaxPerfUnderCap(cap_w) => {
                if point.power_w <= cap_w {
                    -point.perf
                } else {
                    f64::INFINITY
                }
            }
            Objective::MinEnergy => point.power_w / p,
            Objective::MinEnergyDelay => point.power_w / (p * p),
            Objective::MinEnergyDelaySquared => point.power_w / (p * p * p),
            Objective::MaxPerf => -point.perf,
        }
    }

    /// Select the best configuration among `points` under this objective.
    ///
    /// For `MaxPerfUnderCap` with no feasible point, falls back to the
    /// minimum-power point (matching [`crate::online::PredictedProfile::select`]).
    /// Returns `None` only for an empty slice.
    pub fn select(&self, points: &[PowerPerfPoint]) -> Option<Configuration> {
        let best = points.iter().min_by(|a, b| self.cost(a).partial_cmp(&self.cost(b)).unwrap())?;
        if self.cost(best).is_infinite() {
            // Cap unreachable: degrade to min power.
            return points
                .iter()
                .min_by(|a, b| a.power_w.partial_cmp(&b.power_w).unwrap())
                .map(|p| p.config);
        }
        Some(best.config)
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::MaxPerfUnderCap(_) => "perf@cap",
            Objective::MinEnergy => "min-E",
            Objective::MinEnergyDelay => "min-EDP",
            Objective::MinEnergyDelaySquared => "min-ED2P",
            Objective::MaxPerf => "max-perf",
        }
    }
}

/// Every objective selects a point on the power–performance Pareto
/// frontier — a useful property: the predicted frontier alone supports
/// any of these goals, as Section III-C claims.
pub fn is_on_frontier(points: &[PowerPerfPoint], config: &Configuration) -> bool {
    let chosen = match points.iter().find(|p| &p.config == config) {
        Some(p) => p,
        None => return false,
    };
    !points.iter().any(|p| {
        (p.power_w < chosen.power_w && p.perf >= chosen.perf)
            || (p.power_w <= chosen.power_w && p.perf > chosen.perf)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::KernelProfile;
    use acs_sim::{CpuPState, Device, KernelCharacteristics, Machine};

    fn pts() -> Vec<PowerPerfPoint> {
        let m = Machine::noiseless(0);
        KernelProfile::collect(&m, &KernelCharacteristics::default()).true_points()
    }

    #[test]
    fn max_perf_picks_fastest() {
        let points = pts();
        let cfg = Objective::MaxPerf.select(&points).unwrap();
        let best = points.iter().max_by(|a, b| a.perf.partial_cmp(&b.perf).unwrap()).unwrap();
        assert_eq!(cfg, best.config);
    }

    #[test]
    fn cap_objective_matches_frontier_selection() {
        let points = pts();
        let frontier = crate::frontier::Frontier::from_points(points.clone());
        for cap in [10.0, 15.0, 22.0, 30.0, 100.0] {
            let via_objective = Objective::MaxPerfUnderCap(cap).select(&points).unwrap();
            let via_frontier =
                frontier.best_under(cap).or_else(|| frontier.min_power()).unwrap().config;
            assert_eq!(via_objective, via_frontier, "cap {cap}");
        }
    }

    #[test]
    fn unreachable_cap_falls_back_to_min_power() {
        let points = pts();
        let cfg = Objective::MaxPerfUnderCap(0.1).select(&points).unwrap();
        let min = points.iter().min_by(|a, b| a.power_w.partial_cmp(&b.power_w).unwrap()).unwrap();
        assert_eq!(cfg, min.config);
    }

    #[test]
    fn energy_objectives_order_sensibly() {
        // min-E leans frugal, ED2P leans fast: perf(min-E) ≤ perf(EDP) ≤
        // perf(ED2P) for a convex frontier.
        let points = pts();
        let perf_of = |o: Objective| {
            let cfg = o.select(&points).unwrap();
            points.iter().find(|p| p.config == cfg).unwrap().perf
        };
        let e = perf_of(Objective::MinEnergy);
        let edp = perf_of(Objective::MinEnergyDelay);
        let ed2p = perf_of(Objective::MinEnergyDelaySquared);
        assert!(e <= edp + 1e-12, "min-E ({e}) should be no faster than min-EDP ({edp})");
        assert!(edp <= ed2p + 1e-12, "min-EDP ({edp}) should be no faster than min-ED2P ({ed2p})");
    }

    #[test]
    fn every_objective_lands_on_the_frontier() {
        let points = pts();
        for o in [
            Objective::MaxPerfUnderCap(20.0),
            Objective::MinEnergy,
            Objective::MinEnergyDelay,
            Objective::MinEnergyDelaySquared,
            Objective::MaxPerf,
        ] {
            let cfg = o.select(&points).unwrap();
            assert!(is_on_frontier(&points, &cfg), "{} picked a dominated point", o.name());
        }
    }

    #[test]
    fn gpu_wins_energy_for_gpu_friendly_kernel() {
        // A strongly GPU-friendly kernel finishes so much faster on the
        // GPU that energy favors it despite higher power.
        let m = Machine::noiseless(0);
        let k = KernelCharacteristics { gpu_speedup: 20.0, ..Default::default() };
        let points = KernelProfile::collect(&m, &k).true_points();
        let cfg = Objective::MinEnergyDelay.select(&points).unwrap();
        assert_eq!(cfg.device, Device::Gpu);
    }

    #[test]
    fn empty_points_yield_none() {
        assert!(Objective::MaxPerf.select(&[]).is_none());
    }

    #[test]
    fn cost_is_monotone_in_power_for_energy_goals() {
        let a = PowerPerfPoint {
            config: Configuration::cpu(1, CpuPState::MIN),
            power_w: 10.0,
            perf: 2.0,
        };
        let b = PowerPerfPoint { power_w: 20.0, ..a };
        for o in [Objective::MinEnergy, Objective::MinEnergyDelay] {
            assert!(o.cost(&a) < o.cost(&b));
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Objective::MaxPerfUnderCap(5.0).name(), "perf@cap");
        assert_eq!(Objective::MinEnergyDelaySquared.name(), "min-ED2P");
    }
}
