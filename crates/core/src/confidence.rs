//! Confidence-aware prediction and risk-averse selection (Section VI).
//!
//! "Taking variance into account when predicting best configurations could
//! also improve model accuracy when applied to new applications. If the
//! confidence interval for a prediction is large, it may be wise to choose
//! another configuration with smaller confidence interval and lower
//! expected performance."
//!
//! Each cluster regression carries its training residual RMSE; a
//! risk-averse selector discounts predicted performance and inflates
//! predicted power by `z` residual standard deviations before applying the
//! usual frontier logic. `z = 0` recovers the paper's baseline selection;
//! larger `z` trades performance for cap-compliance.

use crate::features::{config_features, SamplePair};
use crate::frontier::PowerPerfPoint;
use crate::offline::{unstabilize, TrainedModel};
use crate::online::Predictor;
use acs_sim::{Configuration, Device};
use serde::{Deserialize, Serialize};

/// A prediction with one-sigma uncertainty bands.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundedPoint {
    /// Expected power and performance.
    pub point: PowerPerfPoint,
    /// One-sigma uncertainty of the power prediction, W.
    pub power_sigma: f64,
    /// One-sigma uncertainty of the performance prediction (same units as
    /// `point.perf`).
    pub perf_sigma: f64,
}

/// Predictions with uncertainty for the full configuration space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundedProfile {
    /// Cluster the kernel was classified into.
    pub cluster: usize,
    /// One bounded prediction per configuration, in
    /// `Configuration::enumerate()` order.
    pub points: Vec<BoundedPoint>,
}

impl BoundedProfile {
    /// Risk-averse selection: the best *pessimistic* performance whose
    /// *pessimistic* power (expected + `z`·sigma) meets the cap; falls
    /// back to the minimum-pessimistic-power configuration.
    pub fn select_risk_averse(&self, cap_w: f64, z: f64) -> Configuration {
        let pessim_power = |b: &BoundedPoint| b.point.power_w + z * b.power_sigma;
        let pessim_perf = |b: &BoundedPoint| b.point.perf - z * b.perf_sigma;

        self.points
            .iter()
            .filter(|b| pessim_power(b) <= cap_w)
            .max_by(|a, b| pessim_perf(a).partial_cmp(&pessim_perf(b)).unwrap())
            .or_else(|| {
                self.points
                    .iter()
                    .min_by(|a, b| pessim_power(a).partial_cmp(&pessim_power(b)).unwrap())
            })
            .expect("configuration space is never empty")
            .point
            .config
    }

    /// The plain (z = 0) expected points.
    pub fn expected_points(&self) -> Vec<PowerPerfPoint> {
        self.points.iter().map(|b| b.point).collect()
    }
}

/// Predict the full configuration space with uncertainty bands, from a
/// kernel's two sample runs.
pub fn predict_with_confidence(model: &TrainedModel, samples: &SamplePair) -> BoundedProfile {
    let predictor = Predictor::new(model);
    let cluster = predictor.classify(samples);
    let models = &model.clusters[cluster];
    let stab = model.params.stabilize_variance;

    let points = Configuration::all()
        .iter()
        .map(|config| {
            let x = config_features(config);
            let (perf_model, power_model) = match config.device {
                Device::Cpu => (&models.perf_cpu, &models.power_cpu),
                Device::Gpu => (&models.perf_gpu, &models.power_gpu),
            };
            let s_perf = samples.perf_on(config.device);
            let ratio = unstabilize(perf_model.predict(&x), stab).max(1e-9);
            let perf = ratio * s_perf;
            let power = unstabilize(power_model.predict(&x), stab).max(0.1);

            // Residual RMSEs live in (possibly transformed) response
            // space; first-order error propagation through the inverse
            // transform: d(y²)/dy = 2y.
            let (power_sigma, perf_ratio_sigma) = if stab {
                (
                    2.0 * power.sqrt() * power_model.residual_rmse,
                    2.0 * ratio.sqrt() * perf_model.residual_rmse,
                )
            } else {
                (power_model.residual_rmse, perf_model.residual_rmse)
            };

            BoundedPoint {
                point: PowerPerfPoint { config: *config, power_w: power, perf },
                power_sigma,
                perf_sigma: perf_ratio_sigma * s_perf,
            }
        })
        .collect();

    BoundedProfile { cluster, points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{train, TrainingParams};
    use crate::profile::{collect_suite, KernelProfile};
    use acs_sim::{KernelCharacteristics, Machine};

    fn setup() -> (TrainedModel, Vec<KernelProfile>) {
        let m = Machine::new(7);
        let mut kernels = Vec::new();
        for i in 0..4u32 {
            let s = 1.0 + i as f64 * 0.2;
            kernels.push(KernelCharacteristics {
                name: format!("gpu-friendly-{i}"),
                gpu_speedup: 12.0 * s,
                compute_time_s: 0.012 * s,
                ..Default::default()
            });
            kernels.push(KernelCharacteristics {
                name: format!("membound-{i}"),
                compute_time_s: 0.001 * s,
                memory_time_s: 0.012 * s,
                gpu_speedup: 3.0,
                ..Default::default()
            });
            kernels.push(KernelCharacteristics {
                name: format!("divergent-{i}"),
                gpu_speedup: 1.2,
                branch_divergence: 0.7,
                parallel_fraction: 0.85,
                ..Default::default()
            });
        }
        let profiles = collect_suite(&m, &kernels);
        let model =
            train(&profiles, TrainingParams { n_clusters: 3, ..Default::default() }).unwrap();
        (model, profiles)
    }

    #[test]
    fn bounded_prediction_matches_plain_expectation() {
        let (model, profiles) = setup();
        let samples = profiles[0].sample_pair();
        let bounded = predict_with_confidence(&model, &samples);
        let plain = Predictor::new(&model).predict(&samples);
        assert_eq!(bounded.cluster, plain.cluster);
        assert_eq!(bounded.expected_points(), plain.points);
    }

    #[test]
    fn sigmas_are_positive_and_finite() {
        let (model, profiles) = setup();
        let bounded = predict_with_confidence(&model, &profiles[0].sample_pair());
        for b in &bounded.points {
            assert!(b.power_sigma > 0.0 && b.power_sigma.is_finite());
            assert!(b.perf_sigma > 0.0 && b.perf_sigma.is_finite());
        }
    }

    #[test]
    fn z_zero_matches_plain_selection() {
        let (model, profiles) = setup();
        let samples = profiles[0].sample_pair();
        let bounded = predict_with_confidence(&model, &samples);
        let plain = Predictor::new(&model).predict(&samples);
        for cap in [12.0, 18.0, 25.0, 40.0] {
            let a = bounded.select_risk_averse(cap, 0.0);
            let b = plain.select(cap);
            // Both maximize expected perf under expected power; allow
            // equality of the achieved objective rather than identity
            // (frontier construction breaks perf ties differently).
            let perf_of = |c: Configuration| bounded.points[c.index()].point.perf;
            assert!((perf_of(a) - perf_of(b)).abs() < 1e-12, "cap {cap}: {a} vs {b}");
        }
    }

    #[test]
    fn higher_z_never_picks_higher_predicted_power() {
        let (model, profiles) = setup();
        for p in profiles.iter().take(6) {
            let bounded = predict_with_confidence(&model, &p.sample_pair());
            for cap in [14.0, 20.0, 28.0] {
                let relaxed = bounded.select_risk_averse(cap, 0.0);
                let cautious = bounded.select_risk_averse(cap, 2.0);
                let power_of = |c: Configuration| bounded.points[c.index()].point.power_w;
                assert!(
                    power_of(cautious) <= power_of(relaxed) + 1e-9,
                    "risk aversion must not increase predicted power"
                );
            }
        }
    }

    #[test]
    fn risk_aversion_improves_real_cap_compliance() {
        // Across held-out kernels and caps, z = 1.5 must violate true
        // power caps no more often than z = 0.
        let m = Machine::new(7);
        let (model, profiles) = setup();
        let mut violations = [0usize; 2];
        let mut cases = 0usize;
        for p in &profiles {
            let bounded = predict_with_confidence(&model, &p.sample_pair());
            for cap_point in p.oracle_frontier().points() {
                let cap = cap_point.power_w;
                for (slot, z) in [(0usize, 0.0), (1usize, 1.5)] {
                    let cfg = bounded.select_risk_averse(cap, z);
                    let run = m.run(&p.kernel, &cfg);
                    if run.true_power_w() > cap * (1.0 + 1e-9) {
                        violations[slot] += 1;
                    }
                }
                cases += 1;
            }
        }
        assert!(cases > 50);
        assert!(
            violations[1] <= violations[0],
            "z=1.5 violated {} caps vs {} at z=0 over {cases} cases",
            violations[1],
            violations[0]
        );
    }
}
