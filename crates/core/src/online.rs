//! The online stage (Section III-C): after a new kernel's first two
//! iterations (one per sample configuration), classify it into a trained
//! cluster, predict power and performance for every configuration on both
//! devices, derive the predicted Pareto frontier, and select configurations
//! under power caps from it.
//!
//! The whole pipeline is a tree walk plus a matrix–vector product — the
//! paper reports "less than one millisecond to make each configuration
//! selection" (Section II), which the Criterion bench `online_selection`
//! verifies for this implementation.

use crate::fastpath::{FastModel, SelectScratch};
use crate::features::{config_features, SamplePair};
use crate::frontier::{Frontier, PowerPerfPoint};
use crate::offline::{unstabilize, TrainedModel};
use acs_sim::Configuration;
use serde::{Deserialize, Serialize};

/// Power and performance predictions for the full configuration space of
/// one kernel, plus the predicted Pareto frontier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictedProfile {
    /// Cluster the kernel was classified into.
    pub cluster: usize,
    /// Predicted (power, performance) for every configuration, aligned
    /// with `Configuration::enumerate()` order.
    pub points: Vec<PowerPerfPoint>,
    /// The predicted Pareto frontier.
    pub frontier: Frontier,
}

impl PredictedProfile {
    /// Best predicted configuration whose *predicted* power meets the cap;
    /// falls back to the minimum-predicted-power configuration when none
    /// does (the scheduler must still run the kernel somewhere).
    pub fn select(&self, cap_w: f64) -> Configuration {
        self.frontier
            .best_under(cap_w)
            .or_else(|| self.frontier.min_power())
            .expect("configuration space is never empty")
            .config
    }

    /// Predicted point for a specific configuration.
    pub fn point_for(&self, config: &Configuration) -> &PowerPerfPoint {
        &self.points[config.index()]
    }
}

/// Applies a trained model to new kernels.
///
/// Construction precompiles the model into a [`FastModel`] (flattened
/// CART + per-cluster regression tables, DESIGN.md §15); prediction and
/// selection then run on the flat path, bit-identical to
/// [`Predictor::predict_scalar`].
#[derive(Debug, Clone)]
pub struct Predictor<'m> {
    model: &'m TrainedModel,
    fast: FastModel,
}

impl<'m> Predictor<'m> {
    /// Wrap (and precompile) a trained model.
    pub fn new(model: &'m TrainedModel) -> Self {
        Self { model, fast: FastModel::new(model) }
    }

    /// Assign the kernel to a cluster from its two sample runs.
    pub fn classify(&self, samples: &SamplePair) -> usize {
        self.fast.classify(samples)
    }

    /// The precompiled flat evaluation engine.
    pub fn fast(&self) -> &FastModel {
        &self.fast
    }

    /// Predict power and performance for every configuration.
    ///
    /// Performance predictions are the cluster's scaling model times the
    /// kernel's own sample performance on the relevant device ("once a new
    /// kernel is associated with a cluster, the only new information
    /// required ... is the kernel's performance on the sample
    /// configurations"). Power predictions are absolute.
    pub fn predict(&self, samples: &SamplePair) -> PredictedProfile {
        self.fast.predict(samples)
    }

    /// Select under a cap through a caller-owned scratch arena — the
    /// allocation-free equivalent of `predict(samples).select(cap_w)`.
    pub fn select_with(
        &self,
        samples: &SamplePair,
        cap_w: f64,
        scratch: &mut SelectScratch,
    ) -> Configuration {
        self.fast.select_with(samples, cap_w, scratch)
    }

    /// The scalar reference implementation of [`Predictor::predict`]: one
    /// feature row and four regression evaluations per configuration, then
    /// a full frontier sort. Kept as the ground truth the flat path is
    /// gated against (`tests/fastpath_identity.rs`).
    pub fn predict_scalar(&self, samples: &SamplePair) -> PredictedProfile {
        let cluster = self.model.tree.predict(&samples.tree_features());
        let models = &self.model.clusters[cluster];
        let stab = self.model.params.stabilize_variance;

        let points: Vec<PowerPerfPoint> = Configuration::all()
            .iter()
            .map(|config| {
                let x = config_features(config);
                let (perf_model, power_model) = match config.device {
                    acs_sim::Device::Cpu => (&models.perf_cpu, &models.power_cpu),
                    acs_sim::Device::Gpu => (&models.perf_gpu, &models.power_gpu),
                };
                let ratio = unstabilize(perf_model.predict(&x), stab).max(1e-9);
                let perf = ratio * samples.perf_on(config.device);
                let power = unstabilize(power_model.predict(&x), stab).max(0.1);
                PowerPerfPoint { config: *config, power_w: power, perf }
            })
            .collect();

        let frontier = Frontier::from_points(points.clone());
        PredictedProfile { cluster, points, frontier }
    }
}

/// Relative prediction-error summary of a predicted profile against
/// ground-truth observations (used by EXPERIMENTS.md accuracy reporting).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictionError {
    /// Mean absolute relative error of power predictions.
    pub power_mape: f64,
    /// Mean absolute relative error of performance predictions.
    pub perf_mape: f64,
}

/// Compare predictions with actual measurements, configuration by
/// configuration.
pub fn prediction_error(
    predicted: &PredictedProfile,
    actual: &[PowerPerfPoint],
) -> PredictionError {
    assert_eq!(predicted.points.len(), actual.len(), "point count mismatch");
    let n = actual.len() as f64;
    let mut power = 0.0;
    let mut perf = 0.0;
    for (p, a) in predicted.points.iter().zip(actual) {
        power += ((p.power_w - a.power_w) / a.power_w).abs();
        perf += ((p.perf - a.perf) / a.perf).abs();
    }
    PredictionError { power_mape: power / n, perf_mape: perf / n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{train, TrainingParams};
    use crate::profile::{collect_suite, KernelProfile};
    use acs_sim::{KernelCharacteristics, Machine};

    fn machine() -> Machine {
        Machine::new(7)
    }

    fn archetypes() -> Vec<KernelCharacteristics> {
        let mut kernels = Vec::new();
        for i in 0..4u32 {
            let s = 1.0 + i as f64 * 0.2;
            kernels.push(KernelCharacteristics {
                name: format!("gpu-friendly-{i}"),
                gpu_speedup: 12.0 * s,
                compute_time_s: 0.012 * s,
                ..Default::default()
            });
            kernels.push(KernelCharacteristics {
                name: format!("membound-{i}"),
                compute_time_s: 0.001 * s,
                memory_time_s: 0.012 * s,
                gpu_speedup: 3.0,
                ..Default::default()
            });
            kernels.push(KernelCharacteristics {
                name: format!("divergent-{i}"),
                gpu_speedup: 1.2,
                branch_divergence: 0.7,
                parallel_fraction: 0.85,
                ..Default::default()
            });
        }
        kernels
    }

    fn trained() -> (TrainedModel, Vec<KernelProfile>) {
        let profiles = collect_suite(&machine(), &archetypes());
        let model =
            train(&profiles, TrainingParams { n_clusters: 3, ..Default::default() }).unwrap();
        (model, profiles)
    }

    #[test]
    fn predicts_full_space() {
        let (model, profiles) = trained();
        let p = Predictor::new(&model).predict(&profiles[0].sample_pair());
        assert_eq!(p.points.len(), Configuration::space_size());
        assert!(!p.frontier.is_empty());
        for pt in &p.points {
            assert!(pt.power_w > 0.0 && pt.perf > 0.0);
        }
    }

    #[test]
    fn select_meets_predicted_cap() {
        let (model, profiles) = trained();
        let p = Predictor::new(&model).predict(&profiles[0].sample_pair());
        let cap = 20.0;
        let cfg = p.select(cap);
        // Either the predicted power respects the cap, or the min-power
        // fallback was used.
        let predicted = p.point_for(&cfg).power_w;
        let min_power = p.frontier.min_power().unwrap().power_w;
        assert!(predicted <= cap || (predicted - min_power).abs() < 1e-9);
    }

    #[test]
    fn generous_cap_selects_max_predicted_perf() {
        let (model, profiles) = trained();
        let p = Predictor::new(&model).predict(&profiles[0].sample_pair());
        let cfg = p.select(1e6);
        assert_eq!(cfg, p.frontier.max_perf().unwrap().config);
    }

    #[test]
    fn held_out_kernel_predictions_are_sane() {
        // Train without one kernel, then predict it: errors should be
        // bounded (this is the paper's entire premise).
        let profiles = collect_suite(&machine(), &archetypes());
        let held = profiles[0].clone();
        let rest: Vec<KernelProfile> = profiles[1..].to_vec();
        let model = train(&rest, TrainingParams { n_clusters: 3, ..Default::default() }).unwrap();
        let predicted = Predictor::new(&model).predict(&held.sample_pair());
        let err = prediction_error(&predicted, &held.measured_points());
        assert!(err.power_mape < 0.35, "power MAPE {}", err.power_mape);
        assert!(err.perf_mape < 0.60, "perf MAPE {}", err.perf_mape);
    }

    #[test]
    fn classification_matches_training_cluster_for_training_kernel() {
        let (model, profiles) = trained();
        let predictor = Predictor::new(&model);
        let mut hits = 0;
        for (i, p) in profiles.iter().enumerate() {
            if predictor.classify(&p.sample_pair()) == model.clustering.assignment[i] {
                hits += 1;
            }
        }
        assert!(hits as f64 / profiles.len() as f64 > 0.8);
    }

    #[test]
    fn gpu_friendly_kernel_gets_gpu_at_high_cap() {
        let (model, profiles) = trained();
        let friendly = profiles.iter().find(|p| p.kernel.name == "gpu-friendly-0").unwrap();
        let p = Predictor::new(&model).predict(&friendly.sample_pair());
        let cfg = p.select(100.0);
        assert_eq!(cfg.device, acs_sim::Device::Gpu, "selected {cfg}");
    }

    #[test]
    fn prediction_error_zero_for_identical_points() {
        let (model, profiles) = trained();
        let p = Predictor::new(&model).predict(&profiles[0].sample_pair());
        let err = prediction_error(&p, &p.points);
        assert_eq!(err.power_mape, 0.0);
        assert_eq!(err.perf_mape, 0.0);
    }

    #[test]
    fn selection_is_fast() {
        // The paper's <1 ms online-overhead claim, asserted coarsely here
        // (the Criterion bench measures it precisely).
        let (model, profiles) = trained();
        let samples = profiles[0].sample_pair();
        let predictor = Predictor::new(&model);
        let start = std::time::Instant::now();
        let iters = 100;
        for i in 0..iters {
            let p = predictor.predict(&samples);
            std::hint::black_box(p.select(10.0 + i as f64));
        }
        let per_selection = start.elapsed().as_secs_f64() / f64::from(iters);
        assert!(per_selection < 1e-3, "selection took {per_selection}s");
    }
}
