//! acs-verify — oracle differential testing, metamorphic invariants, and
//! golden-trace regression gates.
//!
//! The paper's central claim (Figures 4–6) is that model-based
//! configuration selection lands within a few percent of an exhaustive
//! oracle while respecting power caps. This crate turns that claim into
//! permanent machinery, in four layers:
//!
//! * [`scenario`] — a deterministic grid of `(machine seed, kernel, cap)`
//!   scenarios with leave-one-benchmark-out training discipline.
//! * [`oracle`] — the exhaustive ground truth: full 42-configuration
//!   sweeps with disk-cached Pareto frontiers.
//! * [`differential`] — every method replayed against the oracle, scored
//!   as per-method regret with pass/fail thresholds from the paper.
//! * [`transfer`] — the cross-architecture differential: models trained
//!   on one machine family scheduling another, gated on transfer regret.
//! * [`metamorphic`] + [`golden`] — first-principles invariants and
//!   byte-exact blessed traces guarding against silent behavior drift.
//!
//! `tests/conformance.rs` at the workspace root wires all four into
//! `cargo test`; the `acs verify` CLI subcommand runs them on demand and
//! re-blesses goldens after intentional behavior changes.

#![warn(missing_docs)]

pub mod differential;
pub mod drift;
pub mod golden;
pub mod metamorphic;
pub mod oracle;
pub mod scenario;
pub mod transfer;

pub use differential::{run_differential, MethodRegret, RegretReport, ScenarioCase, Thresholds};
pub use drift::{
    drift_processes, run_drift, AdaptThresholds, DriftCell, DriftGridParams, DriftReport,
    ScenarioRegret,
};
pub use golden::{bless, compare, render_diff, write_failure_artifacts, GoldenDiff, GoldenStatus};
pub use metamorphic::{
    check_all, check_cap_monotonicity, check_cluster_permutation_invariance,
    check_family_frontiers, check_frontier_non_domination, check_seed_determinism,
    InvariantViolation,
};
pub use oracle::{FrontierRecord, OracleChoice, OracleEngine};
pub use scenario::{GridParams, MachineScenarios, Scenario, ScenarioGrid};
pub use transfer::{
    run_transfer, TransferCell, TransferMatrix, TransferThresholds, TRANSFER_METHODS,
};
