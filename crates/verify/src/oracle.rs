//! The exhaustive oracle engine.
//!
//! Ground truth for every differential check: sweep a kernel over the full
//! 42-configuration space on a seeded [`Machine`], extract the true-power
//! Pareto frontier, and answer "what would a perfect-knowledge scheduler
//! have picked at this cap?". Frontier extraction is cheap but the sweep is
//! not free at grid scale, so frontiers cache to disk as self-describing
//! JSON records keyed by `(machine seed, kernel id)` — a warm cache makes a
//! conformance run mostly I/O.

use acs_core::{Frontier, KernelProfile, PowerPerfPoint};
use acs_sim::{Configuration, FamilyId, KernelCharacteristics, Machine};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// One cached oracle frontier, self-describing so a stale or foreign file
/// is detected instead of silently trusted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierRecord {
    /// Family of the machine the frontier was swept on (absent in
    /// pre-family records, which deserialize as Trinity).
    #[serde(default)]
    pub family: FamilyId,
    /// Seed of the machine the frontier was swept on.
    pub machine_seed: u64,
    /// Kernel identifier.
    pub kernel_id: String,
    /// The true-power Pareto frontier.
    pub frontier: Frontier,
}

/// The oracle engine: exhaustive sweeps with an optional disk cache.
#[derive(Debug, Clone, Default)]
pub struct OracleEngine {
    cache_dir: Option<PathBuf>,
}

/// The oracle's answer at one cap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OracleChoice {
    /// The selected configuration.
    pub config: Configuration,
    /// Its true power, W.
    pub power_w: f64,
    /// Its performance (inverse time).
    pub perf: f64,
    /// Whether the selection meets the cap (false only when no
    /// configuration can: the oracle fell back to minimum power).
    pub feasible: bool,
}

impl OracleEngine {
    /// An engine that always sweeps (no cache).
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine caching frontiers under `dir` (created on demand).
    pub fn with_cache(dir: impl Into<PathBuf>) -> Self {
        Self { cache_dir: Some(dir.into()) }
    }

    fn cache_path(&self, family: FamilyId, machine_seed: u64, kernel_id: &str) -> Option<PathBuf> {
        let dir = self.cache_dir.as_ref()?;
        let safe: String = kernel_id
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '.' { c } else { '_' })
            .collect();
        // The family id namespaces the cache: each `(family, seed)` node
        // owns its own frontier files, so heterogeneous grids never race
        // or alias on a shared slot. (Trinity's files carry the prefix
        // too; pre-family `oracle-{seed}-…` files are simply ignored.)
        Some(dir.join(format!("oracle-{family}-{machine_seed}-{safe}.json")))
    }

    fn load_cached(
        path: &Path,
        family: FamilyId,
        machine_seed: u64,
        kernel_id: &str,
    ) -> Option<Frontier> {
        let json = std::fs::read_to_string(path).ok()?;
        let record: FrontierRecord = serde_json::from_str(&json).ok()?;
        // A hash-collision or hand-edited file must not masquerade as the
        // requested frontier.
        (record.family == family
            && record.machine_seed == machine_seed
            && record.kernel_id == kernel_id)
            .then_some(record.frontier)
    }

    /// The oracle frontier for `kernel` on `machine`, from cache when
    /// possible. Corrupt or mismatched cache entries are recomputed and
    /// overwritten.
    pub fn frontier(&self, machine: &Machine, kernel: &KernelCharacteristics) -> Frontier {
        let id = kernel.id();
        let path = self.cache_path(machine.family, machine.seed, &id);
        if let Some(p) = &path {
            if let Some(frontier) = Self::load_cached(p, machine.family, machine.seed, &id) {
                return frontier;
            }
        }
        let frontier = KernelProfile::collect(machine, kernel).oracle_frontier();
        if let Some(p) = &path {
            let record = FrontierRecord {
                family: machine.family,
                machine_seed: machine.seed,
                kernel_id: id,
                frontier: frontier.clone(),
            };
            // Cache writes are best-effort: a read-only filesystem costs
            // re-sweeps, never correctness.
            if let Some(parent) = p.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            if let Ok(json) = serde_json::to_string(&record) {
                let _ = std::fs::write(p, json);
            }
        }
        frontier
    }

    /// Oracle frontiers for a whole kernel suite on one machine: the
    /// per-(machine, kernel) 42-configuration sweeps are independent, so
    /// they fan out across the rayon pool. Results are index-ordered
    /// (aligned with `kernels`), and the disk cache behaves exactly as in
    /// [`OracleEngine::frontier`] — each kernel writes its own record.
    pub fn frontiers(&self, machine: &Machine, kernels: &[KernelCharacteristics]) -> Vec<Frontier> {
        use rayon::prelude::*;
        kernels.par_iter().map(|k| self.frontier(machine, k)).collect()
    }

    /// The oracle's selection from a frontier at `cap_w`: the
    /// best-performing point meeting the cap, else the minimum-power
    /// fallback.
    pub fn choose(frontier: &Frontier, cap_w: f64) -> OracleChoice {
        let (point, feasible): (&PowerPerfPoint, bool) = match frontier.best_under(cap_w) {
            Some(p) => (p, true),
            None => (frontier.min_power().expect("non-empty frontier"), false),
        };
        OracleChoice { config: point.config, power_w: point.power_w, perf: point.perf, feasible }
    }

    /// Sweep-and-choose in one call (used by the differential runner when
    /// it already has the profile in hand).
    pub fn choose_for(
        &self,
        machine: &Machine,
        kernel: &KernelCharacteristics,
        cap_w: f64,
    ) -> OracleChoice {
        Self::choose(&self.frontier(machine, kernel), cap_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> KernelCharacteristics {
        KernelCharacteristics::default()
    }

    #[test]
    fn uncached_engine_matches_profile_frontier() {
        let machine = Machine::new(3);
        let engine = OracleEngine::new();
        let f = engine.frontier(&machine, &kernel());
        assert_eq!(f, KernelProfile::collect(&machine, &kernel()).oracle_frontier());
    }

    #[test]
    fn cache_roundtrips_and_is_reused() {
        let dir = std::env::temp_dir().join("acs-verify-test-oracle-cache");
        let _ = std::fs::remove_dir_all(&dir);
        let machine = Machine::new(5);
        let engine = OracleEngine::with_cache(&dir);
        let first = engine.frontier(&machine, &kernel());
        let path = engine.cache_path(FamilyId::Trinity, 5, &kernel().id()).unwrap();
        assert!(path.exists(), "sweep must populate the cache");
        let second = engine.frontier(&machine, &kernel());
        assert_eq!(first, second);
    }

    #[test]
    fn corrupt_cache_entry_is_recomputed() {
        let dir = std::env::temp_dir().join("acs-verify-test-oracle-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let machine = Machine::new(5);
        let engine = OracleEngine::with_cache(&dir);
        let good = engine.frontier(&machine, &kernel());
        let path = engine.cache_path(FamilyId::Trinity, 5, &kernel().id()).unwrap();
        std::fs::write(&path, "{ not json").unwrap();
        assert_eq!(engine.frontier(&machine, &kernel()), good);
        // The corrupt file was overwritten with a valid record.
        assert!(OracleEngine::load_cached(&path, FamilyId::Trinity, 5, &kernel().id()).is_some());
    }

    #[test]
    fn mismatched_seed_in_cache_is_ignored() {
        let dir = std::env::temp_dir().join("acs-verify-test-oracle-mismatch");
        let _ = std::fs::remove_dir_all(&dir);
        let engine = OracleEngine::with_cache(&dir);
        let f7 = engine.frontier(&Machine::new(7), &kernel());
        // Forge seed 8's slot with seed 7's record.
        let forged = engine.cache_path(FamilyId::Trinity, 8, &kernel().id()).unwrap();
        std::fs::copy(engine.cache_path(FamilyId::Trinity, 7, &kernel().id()).unwrap(), &forged)
            .unwrap();
        let f8 = engine.frontier(&Machine::new(8), &kernel());
        assert_ne!(f7, f8, "different machines must not share frontiers via the cache");
    }

    #[test]
    fn families_get_disjoint_cache_slots() {
        let dir = std::env::temp_dir().join("acs-verify-test-oracle-family");
        let _ = std::fs::remove_dir_all(&dir);
        let engine = OracleEngine::with_cache(&dir);
        let k = kernel();
        let mut frontiers = Vec::new();
        for family in FamilyId::ALL {
            let machine = Machine::from_family(family, 11);
            frontiers.push(engine.frontier(&machine, &k));
            let path = engine.cache_path(family, 11, &k.id()).unwrap();
            assert!(path.exists(), "{family} must own a cache slot");
            // A warm hit returns the identical frontier.
            assert_eq!(engine.frontier(&machine, &k), *frontiers.last().unwrap());
        }
        // Distinct families produce distinct frontiers at the same seed —
        // aliasing cache slots would have collapsed them.
        for i in 0..frontiers.len() {
            for j in i + 1..frontiers.len() {
                assert_ne!(
                    frontiers[i],
                    frontiers[j],
                    "{} and {} share a frontier",
                    FamilyId::ALL[i],
                    FamilyId::ALL[j]
                );
            }
        }
        // Forging one family's record into another's slot is detected.
        let trinity_path = engine.cache_path(FamilyId::Trinity, 11, &k.id()).unwrap();
        let accel_path = engine.cache_path(FamilyId::AccelHybrid, 11, &k.id()).unwrap();
        std::fs::copy(&trinity_path, &accel_path).unwrap();
        let accel = engine.frontier(&Machine::from_family(FamilyId::AccelHybrid, 11), &k);
        assert_ne!(accel, frontiers[0], "forged family record must not be trusted");
    }

    #[test]
    fn choose_is_optimal_and_flags_feasibility() {
        let machine = Machine::new(3);
        let f = OracleEngine::new().frontier(&machine, &kernel());
        let generous = OracleEngine::choose(&f, 1e9);
        assert!(generous.feasible);
        assert_eq!(generous.perf, f.max_perf().unwrap().perf);
        let impossible = OracleEngine::choose(&f, 0.1);
        assert!(!impossible.feasible);
        assert_eq!(impossible.power_w, f.min_power().unwrap().power_w);
    }
}
