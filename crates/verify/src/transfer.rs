//! Cross-architecture transfer differential: train on family A, serve
//! family B.
//!
//! The paper trains its power/performance model on one Trinity APU and
//! never asks what happens when that model schedules a *different* chip.
//! This runner answers quantitatively: every `(train family, serve
//! family)` pair of a heterogeneous [`ScenarioGrid`] is scored with the
//! foreign model against the serve family's own oracle, and the excess
//! regret over the serve family's native model — the *transfer regret* —
//! becomes a gated, reportable number. Native pairs (A == B) have zero
//! transfer regret by construction, which doubles as an end-to-end
//! determinism check of the whole pipeline.

use crate::differential::{summarize_method, MethodRegret, ScenarioCase};
use crate::oracle::OracleEngine;
use crate::scenario::ScenarioGrid;
use acs_core::methods::{select_with_scratch, Method};
use acs_core::offline::TrainError;
use acs_core::online::Predictor;
use acs_core::{train, TrainingParams};
use acs_sim::FamilyId;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The model-driven methods whose selections depend on training data.
/// The fixed-device baselines ignore the model, so their transfer regret
/// is zero by definition and scoring them would only pad the matrix.
pub const TRANSFER_METHODS: [Method; 2] = [Method::Model, Method::ModelFL];

/// One `(train family, serve family, method)` cell of the matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferCell {
    /// Family the model was trained on.
    pub train_family: FamilyId,
    /// Family the model served.
    pub serve_family: FamilyId,
    /// Which method made the selections.
    pub method: Method,
    /// The foreign-model differential statistics on the serve family.
    pub stats: MethodRegret,
    /// Excess mean regret over the serve family's native model, clamped
    /// at zero: `max(0, mean_regret(A→B) − mean_regret(B→B))`.
    pub transfer_regret: f64,
    /// Overshoot shift vs. the native model: mean violating `power/cap`
    /// ratio (1.0 when nothing violates) minus the native model's.
    /// Positive means the foreign model overshoots caps harder.
    pub overshoot_delta: f64,
}

impl TransferCell {
    /// Whether this cell is a native (train == serve) pair.
    pub fn is_native(&self) -> bool {
        self.train_family == self.serve_family
    }
}

/// The full transfer matrix over a heterogeneous grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferMatrix {
    /// Families in grid order (matrix axes).
    pub families: Vec<FamilyId>,
    /// `(kernel, cap)` scenarios scored per pair per method.
    pub scenarios_per_pair: usize,
    /// All cells, ordered `train × serve × method` (train outermost).
    pub cells: Vec<TransferCell>,
}

/// Pass/fail gates for the transfer matrix: native pairs must be exact,
/// cross pairs must stay inside a measured envelope. The cross-pair
/// ceilings are calibrated against the quick transfer grid (worst pairs
/// plus margin) so a regression in the family model or the training
/// pipeline trips them, while ordinary cross-architecture error does not.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferThresholds {
    /// Native pairs must show exactly zero transfer regret (tolerance
    /// for the clamped float subtraction only).
    pub native_transfer_tol: f64,
    /// Maximum transfer regret for any cross pair. Measured worst case on
    /// the quick transfer grid is ≈34% (BigCore→LowPower, a 4-wide module
    /// machine scheduling a 2-core one); the gate sits above it with
    /// margin but below 50%, where a transferred model would be giving up
    /// half the oracle's remaining performance.
    pub cross_max_transfer_regret: f64,
    /// Minimum under-limit rate for Model+FL on cross pairs. The quick
    /// grid's two caps per kernel quantize this rate coarsely (measured
    /// floor: exactly 50%), so the gate sits just below that step.
    pub cross_min_under: f64,
    /// Maximum feasible-cap violation rate for Model+FL on cross pairs.
    pub cross_max_violation_rate: f64,
    /// Maximum overshoot shift vs. native for Model+FL on cross pairs
    /// (a foreign model may violate caps, but not qualitatively harder
    /// than the native one).
    pub cross_max_overshoot_delta: f64,
}

impl Default for TransferThresholds {
    fn default() -> Self {
        Self {
            native_transfer_tol: 1e-12,
            cross_max_transfer_regret: 0.40,
            cross_min_under: 0.45,
            cross_max_violation_rate: 0.40,
            cross_max_overshoot_delta: 0.25,
        }
    }
}

/// Run the transfer differential over a heterogeneous grid (one machine
/// per family — see [`crate::scenario::GridParams::transfer`]). Trains
/// one model per family, then scores every ordered `(train, serve)` pair
/// on the serve family's scenarios against the serve family's oracle.
pub fn run_transfer(
    grid: &ScenarioGrid,
    params: TrainingParams,
) -> Result<TransferMatrix, TrainError> {
    // One trained model per grid machine, in grid order. Training is
    // deterministic, and the serve-side replay below is order-preserving,
    // so the whole matrix is byte-identical at any thread count.
    let mut models = Vec::with_capacity(grid.machines.len());
    for m in &grid.machines {
        models.push(train(&m.training, params)?);
    }
    let families: Vec<FamilyId> = grid.machines.iter().map(|m| m.machine.family).collect();

    // Native baselines first: pair (B, B) for every B, keyed by index.
    let native: Vec<Vec<MethodRegret>> = grid
        .machines
        .iter()
        .enumerate()
        .map(|(i, serve)| score_pair(serve, &Predictor::new(&models[i])))
        .collect();

    let mut cells = Vec::with_capacity(families.len().pow(2) * TRANSFER_METHODS.len());
    for (ti, train_m) in grid.machines.iter().enumerate() {
        for (si, serve) in grid.machines.iter().enumerate() {
            let stats = if ti == si {
                native[si].clone()
            } else {
                score_pair(serve, &Predictor::new(&models[ti]))
            };
            for (mi, &method) in TRANSFER_METHODS.iter().enumerate() {
                let cross = &stats[mi];
                let base = &native[si][mi];
                cells.push(TransferCell {
                    train_family: train_m.machine.family,
                    serve_family: serve.machine.family,
                    method,
                    transfer_regret: (cross.mean_regret - base.mean_regret).max(0.0),
                    overshoot_delta: cross.mean_overshoot.unwrap_or(1.0)
                        - base.mean_overshoot.unwrap_or(1.0),
                    stats: cross.clone(),
                });
            }
        }
    }

    let scenarios_per_pair = grid
        .machines
        .first()
        .map(|m| m.evaluated.iter().map(|(_, caps)| caps.len()).sum::<usize>())
        .unwrap_or(0);
    Ok(TransferMatrix { families, scenarios_per_pair, cells })
}

/// Score one serve machine's full scenario set with one predictor, in
/// [`TRANSFER_METHODS`] order. Mirrors the differential runner's replay:
/// profiles fan out across the rayon pool, `flat_map_iter` keeps case
/// order equal to the sequential nesting.
fn score_pair(
    serve: &crate::scenario::MachineScenarios,
    predictor: &Predictor,
) -> Vec<MethodRegret> {
    let cases: Vec<ScenarioCase> = serve
        .evaluated
        .par_iter()
        .flat_map_iter(|(profile, caps)| {
            let frontier = profile.oracle_frontier();
            let mut scratch = acs_core::SelectScratch::new();
            let mut out = Vec::with_capacity(caps.len() * TRANSFER_METHODS.len());
            for &cap_w in caps {
                let oracle = OracleEngine::choose(&frontier, cap_w);
                for &method in &TRANSFER_METHODS {
                    let config =
                        select_with_scratch(method, profile, Some(predictor), cap_w, &mut scratch);
                    let run = profile.run_at(&config);
                    out.push(ScenarioCase {
                        method,
                        machine_seed: serve.machine.seed,
                        kernel_id: profile.kernel.id(),
                        cap_w,
                        config,
                        power_w: run.true_power_w(),
                        perf: 1.0 / run.time_s,
                        oracle,
                    });
                }
            }
            out
        })
        .collect();
    TRANSFER_METHODS.iter().map(|&m| summarize_method(&cases, m)).collect()
}

impl TransferMatrix {
    /// Look up one cell.
    pub fn cell(&self, train: FamilyId, serve: FamilyId, method: Method) -> Option<&TransferCell> {
        self.cells
            .iter()
            .find(|c| c.train_family == train && c.serve_family == serve && c.method == method)
    }

    /// Check every cell against the gates. Returns all failures (empty =
    /// pass).
    pub fn check(&self, t: &TransferThresholds) -> Vec<String> {
        let mut failures = Vec::new();
        for c in &self.cells {
            let label = format!("{}→{} {}", c.train_family, c.serve_family, c.method.name());
            if c.is_native() {
                if c.transfer_regret > t.native_transfer_tol {
                    failures.push(format!(
                        "{label}: native transfer regret {} must be 0",
                        c.transfer_regret
                    ));
                }
                continue;
            }
            if c.transfer_regret > t.cross_max_transfer_regret {
                failures.push(format!(
                    "{label}: transfer regret {:.1}% > allowed {:.1}%",
                    c.transfer_regret * 100.0,
                    t.cross_max_transfer_regret * 100.0
                ));
            }
            if c.method == Method::ModelFL {
                if c.stats.under_rate < t.cross_min_under {
                    failures.push(format!(
                        "{label}: under-limit rate {:.1}% < required {:.1}%",
                        c.stats.under_rate * 100.0,
                        t.cross_min_under * 100.0
                    ));
                }
                if c.stats.violation_rate > t.cross_max_violation_rate {
                    failures.push(format!(
                        "{label}: violation rate {:.1}% > allowed {:.1}%",
                        c.stats.violation_rate * 100.0,
                        t.cross_max_violation_rate * 100.0
                    ));
                }
                if c.overshoot_delta > t.cross_max_overshoot_delta {
                    failures.push(format!(
                        "{label}: overshoot delta {:+.2} > allowed {:+.2}",
                        c.overshoot_delta, t.cross_max_overshoot_delta
                    ));
                }
            }
        }
        failures
    }

    /// Render the per-pair transfer-regret matrices as aligned text, one
    /// block per method (train family down, serve family across).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out =
            format!("transfer regret matrix ({} scenarios per pair)\n", self.scenarios_per_pair);
        for &method in &TRANSFER_METHODS {
            let _ = writeln!(out, "\n[{}] train ↓ / serve →", method.name());
            let _ = write!(out, "{:<10}", "");
            for f in &self.families {
                let _ = write!(out, " {:>9}", f.as_str());
            }
            out.push('\n');
            for &train in &self.families {
                let _ = write!(out, "{:<10}", train.as_str());
                for &serve in &self.families {
                    match self.cell(train, serve, method) {
                        Some(c) => {
                            let _ = write!(out, " {:>8.1}%", c.transfer_regret * 100.0);
                        }
                        None => {
                            let _ = write!(out, " {:>9}", "—");
                        }
                    }
                }
                out.push('\n');
            }
        }
        out
    }

    /// A quantized summary (per mille, rounded) for snapshots and the
    /// benchmark artifact: stable under last-ulp arithmetic drift.
    pub fn golden_summary(&self) -> serde::Value {
        use serde::Value;
        let q = |x: f64| (x * 1000.0).round() / 10.0;
        let rows: Vec<Value> = self
            .cells
            .iter()
            .map(|c| {
                Value::Map(vec![
                    ("train".into(), Value::Str(c.train_family.as_str().into())),
                    ("serve".into(), Value::Str(c.serve_family.as_str().into())),
                    ("method".into(), Value::Str(c.method.name().into())),
                    ("under_pct".into(), Value::F64(q(c.stats.under_rate))),
                    ("mean_regret_pct".into(), Value::F64(q(c.stats.mean_regret))),
                    ("max_regret_pct".into(), Value::F64(q(c.stats.max_regret))),
                    ("violation_pct".into(), Value::F64(q(c.stats.violation_rate))),
                    ("transfer_regret_pct".into(), Value::F64(q(c.transfer_regret))),
                    ("overshoot_delta_pct".into(), Value::F64(q(c.overshoot_delta))),
                ])
            })
            .collect();
        Value::Map(vec![
            (
                "families".into(),
                Value::Array(self.families.iter().map(|f| Value::Str(f.as_str().into())).collect()),
            ),
            ("scenarios_per_pair".into(), Value::U64(self.scenarios_per_pair as u64)),
            ("cells".into(), Value::Array(rows)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GridParams;
    use std::sync::OnceLock;

    /// The quick transfer matrix is expensive to build (4 family sweeps +
    /// 4 trainings + 16 pair replays); build it once for all tests.
    fn quick_matrix() -> &'static TransferMatrix {
        static MATRIX: OnceLock<TransferMatrix> = OnceLock::new();
        MATRIX.get_or_init(|| {
            let grid = ScenarioGrid::generate(GridParams::transfer_quick());
            run_transfer(&grid, TrainingParams::default()).expect("training succeeds")
        })
    }

    #[test]
    fn matrix_covers_every_ordered_pair_and_method() {
        let m = quick_matrix();
        let n = m.families.len();
        assert_eq!(n, acs_sim::FamilyId::ALL.len());
        assert_eq!(m.cells.len(), n * n * TRANSFER_METHODS.len());
        for &train in &m.families {
            for &serve in &m.families {
                for &method in &TRANSFER_METHODS {
                    assert!(m.cell(train, serve, method).is_some(), "{train}→{serve} missing");
                }
            }
        }
        assert!(m.scenarios_per_pair > 0);
        for c in &m.cells {
            assert_eq!(c.stats.scenarios, m.scenarios_per_pair);
        }
    }

    #[test]
    fn native_pairs_have_exactly_zero_transfer_regret() {
        let m = quick_matrix();
        for c in m.cells.iter().filter(|c| c.is_native()) {
            assert_eq!(
                c.transfer_regret, 0.0,
                "{}→{} {} native pair must be regret-free",
                c.train_family, c.serve_family, c.method
            );
            assert_eq!(c.overshoot_delta, 0.0);
        }
    }

    #[test]
    fn cross_pairs_pass_default_thresholds() {
        let failures = quick_matrix().check(&TransferThresholds::default());
        assert!(failures.is_empty(), "{failures:#?}");
    }

    #[test]
    fn transfer_regret_is_clamped_nonnegative() {
        for c in &quick_matrix().cells {
            assert!(c.transfer_regret >= 0.0, "{c:?}");
            assert!(c.transfer_regret <= 1.0, "{c:?}");
        }
    }

    #[test]
    fn render_shows_every_family_and_method() {
        let txt = quick_matrix().render();
        for f in acs_sim::FamilyId::ALL {
            assert!(txt.contains(f.as_str()), "{txt}");
        }
        for m in TRANSFER_METHODS {
            assert!(txt.contains(m.name()), "{txt}");
        }
    }

    #[test]
    fn matrix_is_byte_identical_across_thread_counts() {
        // The ISSUE's determinism acceptance: the serialized matrix is
        // identical at 1, 2, and 8 rayon threads.
        let run = || {
            let grid = ScenarioGrid::generate(GridParams::transfer_quick());
            let matrix = run_transfer(&grid, TrainingParams::default()).unwrap();
            serde_json::to_string(&matrix.golden_summary()).unwrap()
        };
        let reference = rayon::with_num_threads(1, run);
        for threads in [2usize, 8] {
            let got = rayon::with_num_threads(threads, run);
            assert_eq!(got, reference, "matrix differs at {threads} threads");
        }
    }
}
