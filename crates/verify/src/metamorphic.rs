//! Metamorphic invariants: properties every correct implementation must
//! satisfy regardless of tuning, model quality, or simulator constants.
//!
//! Differential testing (see [`crate::differential`]) asks "how close to
//! the oracle?"; metamorphic testing asks "does the system even make
//! sense?". The invariants here come from first principles:
//!
//! 1. **Cap monotonicity** — granting more power can never make the
//!    oracle slower.
//! 2. **Frontier soundness** — Pareto points are mutually non-dominated.
//! 3. **Permutation invariance** — clustering training kernels must not
//!    depend on the order the kernels were listed in.
//! 4. **Seed determinism** — the same seed yields byte-identical
//!    timelines, on any thread, guarded chaos included.

use acs_core::dissimilarity::dissimilarity_matrix;
use acs_core::offline::TrainedModel;
use acs_core::profile::KernelProfile;
use acs_core::{CappedRuntime, Frontier, GuardPolicy};
use acs_kernels::AppInstance;
use acs_mlstat::cluster::pam;
use acs_sim::{FaultPlan, FaultyMachine, Machine};
use std::collections::BTreeSet;

/// One violated invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// Raising the cap lowered oracle performance.
    CapMonotonicity {
        /// Kernel whose frontier misbehaved.
        kernel_id: String,
        /// The lower cap, W.
        cap_lo_w: f64,
        /// The higher cap, W.
        cap_hi_w: f64,
        /// Oracle perf at the lower cap.
        perf_lo: f64,
        /// Oracle perf at the higher cap (smaller — the violation).
        perf_hi: f64,
    },
    /// Two frontier points dominate one another.
    FrontierDomination {
        /// Kernel whose frontier misbehaved.
        kernel_id: String,
        /// Index of the dominating point.
        winner: usize,
        /// Index of the dominated point.
        loser: usize,
    },
    /// Reordering the training kernels changed the clustering partition.
    ClusterPermutation {
        /// Human description of the permutation applied.
        permutation: String,
    },
    /// Two same-seed runs diverged.
    SeedDeterminism {
        /// Which replay path diverged ("unguarded" or "guarded-chaos").
        path: String,
        /// First byte offset at which the serialized timelines differ.
        first_diff_at: usize,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::CapMonotonicity {
                kernel_id,
                cap_lo_w,
                cap_hi_w,
                perf_lo,
                perf_hi,
            } => {
                write!(
                    f,
                    "cap monotonicity: {kernel_id} oracle perf fell {perf_lo:.4} → {perf_hi:.4} \
                     as the cap rose {cap_lo_w:.1} W → {cap_hi_w:.1} W"
                )
            }
            InvariantViolation::FrontierDomination { kernel_id, winner, loser } => {
                write!(f, "frontier: {kernel_id} point #{loser} is dominated by point #{winner}")
            }
            InvariantViolation::ClusterPermutation { permutation } => {
                write!(f, "clustering changed under kernel permutation: {permutation}")
            }
            InvariantViolation::SeedDeterminism { path, first_diff_at } => {
                write!(f, "{path} timelines diverge at byte {first_diff_at} despite equal seeds")
            }
        }
    }
}

/// Invariant 1: sweep caps across (and beyond) the frontier's power range
/// and check the oracle's achievable perf never decreases as the cap rises.
pub fn check_cap_monotonicity(kernel_id: &str, frontier: &Frontier) -> Vec<InvariantViolation> {
    let Some(min_p) = frontier.min_power() else { return Vec::new() };
    let Some(max_p) = frontier.max_perf() else { return Vec::new() };
    let lo = min_p.power_w * 0.8;
    let hi = max_p.power_w * 1.2;
    let caps: Vec<f64> = (0..32).map(|i| lo + (hi - lo) * i as f64 / 31.0).collect();

    let perf_at = |cap: f64| frontier.best_under(cap).map(|p| p.perf);
    let mut violations = Vec::new();
    for w in caps.windows(2) {
        let (a, b) = (perf_at(w[0]), perf_at(w[1]));
        match (a, b) {
            // Feasible at the lower cap but not the higher, or perf drops:
            // both break monotonicity.
            (Some(pa), Some(pb)) if pb < pa => {
                violations.push(InvariantViolation::CapMonotonicity {
                    kernel_id: kernel_id.into(),
                    cap_lo_w: w[0],
                    cap_hi_w: w[1],
                    perf_lo: pa,
                    perf_hi: pb,
                })
            }
            (Some(pa), None) => violations.push(InvariantViolation::CapMonotonicity {
                kernel_id: kernel_id.into(),
                cap_lo_w: w[0],
                cap_hi_w: w[1],
                perf_lo: pa,
                perf_hi: f64::NEG_INFINITY,
            }),
            _ => {}
        }
    }
    violations
}

/// Invariant 2: no frontier point may dominate another (≤ power and
/// ≥ perf, strict somewhere).
pub fn check_frontier_non_domination(
    kernel_id: &str,
    frontier: &Frontier,
) -> Vec<InvariantViolation> {
    let pts = frontier.points();
    let mut violations = Vec::new();
    for i in 0..pts.len() {
        for j in 0..pts.len() {
            if i == j {
                continue;
            }
            let dominates = pts[i].power_w <= pts[j].power_w
                && pts[i].perf >= pts[j].perf
                && (pts[i].power_w < pts[j].power_w || pts[i].perf > pts[j].perf);
            if dominates {
                violations.push(InvariantViolation::FrontierDomination {
                    kernel_id: kernel_id.into(),
                    winner: i,
                    loser: j,
                });
            }
        }
    }
    violations
}

/// A clustering as a label-free partition: the set of co-member groups,
/// each identified by the kernel ids it contains. Two clusterings are the
/// same partition iff these sets are equal, whatever the cluster numbers.
fn partition_of(ids: &[String], assignment: &[usize]) -> BTreeSet<BTreeSet<String>> {
    let k = assignment.iter().copied().max().map_or(0, |m| m + 1);
    (0..k)
        .map(|c| {
            assignment
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a == c)
                .map(|(i, _)| ids[i].clone())
                .collect::<BTreeSet<String>>()
        })
        .filter(|group| !group.is_empty())
        .collect()
}

/// Invariant 3: clustering the same training profiles in a different order
/// must yield the same partition (cluster *labels* may differ — only
/// co-membership matters).
pub fn check_cluster_permutation_invariance(
    profiles: &[KernelProfile],
    n_clusters: usize,
) -> Vec<InvariantViolation> {
    if profiles.len() < n_clusters || n_clusters == 0 {
        return Vec::new();
    }
    let cluster = |ps: &[&KernelProfile]| {
        let frontiers: Vec<Frontier> = ps.iter().map(|p| p.frontier()).collect();
        let ids: Vec<String> = ps.iter().map(|p| p.kernel.id()).collect();
        let clustering = pam(&dissimilarity_matrix(&frontiers), n_clusters);
        partition_of(&ids, &clustering.assignment)
    };

    let original: Vec<&KernelProfile> = profiles.iter().collect();
    let baseline = cluster(&original);

    let mut violations = Vec::new();
    let permutations: [(&str, Vec<&KernelProfile>); 2] = [
        ("reversed", profiles.iter().rev().collect()),
        ("rotated by 3", {
            let mid = 3 % profiles.len().max(1);
            profiles[mid..].iter().chain(profiles[..mid].iter()).collect()
        }),
    ];
    for (label, permuted) in permutations {
        if cluster(&permuted) != baseline {
            violations.push(InvariantViolation::ClusterPermutation { permutation: label.into() });
        }
    }
    violations
}

/// First index at which two byte strings differ (their common length if
/// one is a prefix of the other).
fn first_diff(a: &str, b: &str) -> usize {
    a.bytes().zip(b.bytes()).position(|(x, y)| x != y).unwrap_or_else(|| a.len().min(b.len()))
}

/// Replay an app twice through identical runtimes and return both
/// serialized timelines. `build` must construct the runtime from scratch
/// (same seed) on every call; the second replay runs on a spawned thread
/// to pin "regardless of thread count".
fn replay_twice<E, F>(build: F, app: &AppInstance, iterations: u64) -> (String, String)
where
    E: acs_sim::Executor,
    F: Fn() -> CappedRuntime<E> + Send + Sync,
{
    let run = |mut rt: CappedRuntime<E>| {
        // Guarded runtimes absorb faults; unguarded replays here use
        // fault-free executors, so errors mean a broken invariant *setup*,
        // not a broken invariant.
        rt.run_app(app, iterations).expect("replay must complete");
        rt.timeline().to_json()
    };
    let first = run(build());
    let second = std::thread::scope(|s| s.spawn(|| run(build())).join().expect("replay thread"));
    (first, second)
}

/// Invariant 4: byte-identical timelines for equal seeds, on the plain
/// machine and under the guarded chaos path from the fault-injection
/// harness.
pub fn check_seed_determinism(
    machine_seed: u64,
    model: &TrainedModel,
    app: &AppInstance,
) -> Vec<InvariantViolation> {
    let cap_w = 25.0;
    let iterations = 6;
    let mut violations = Vec::new();

    let (a, b) = replay_twice(
        || CappedRuntime::new(Machine::new(machine_seed), model.clone(), cap_w),
        app,
        iterations,
    );
    if a != b {
        violations.push(InvariantViolation::SeedDeterminism {
            path: "unguarded".into(),
            first_diff_at: first_diff(&a, &b),
        });
    }

    let chaos = FaultPlan {
        sensor_dropout_p: 0.10,
        sensor_freeze_p: 0.05,
        pstate_fail_p: 0.05,
        run_fail_p: 0.02,
        ..FaultPlan::none(machine_seed ^ 0x5eed)
    };
    let (a, b) = replay_twice(
        || {
            CappedRuntime::guarded(
                FaultyMachine::new(Machine::new(machine_seed), chaos.clone()),
                model.clone(),
                cap_w,
                GuardPolicy::default(),
            )
        },
        app,
        iterations,
    );
    if a != b {
        violations.push(InvariantViolation::SeedDeterminism {
            path: "guarded-chaos".into(),
            first_diff_at: first_diff(&a, &b),
        });
    }
    violations
}

/// Invariants 1 + 2 swept across a whole machine family: collect each
/// kernel's oracle frontier on a freshly instantiated member of `family`
/// and require cap monotonicity and non-domination. The frontier
/// invariants are family-independent physics — a parametrization that
/// breaks them (e.g. a power curve that inverts under a wide GPU) is a
/// bug in the family descriptor, and this is the check that names it.
pub fn check_family_frontiers(
    family: acs_sim::FamilyId,
    machine_seed: u64,
    kernels: &[acs_sim::KernelCharacteristics],
) -> Vec<InvariantViolation> {
    let machine = Machine::from_family(family, machine_seed);
    let mut violations = Vec::new();
    for k in kernels {
        let id = format!("{family}:{}", k.id());
        let frontier = KernelProfile::collect(&machine, k).oracle_frontier();
        violations.extend(check_cap_monotonicity(&id, &frontier));
        violations.extend(check_frontier_non_domination(&id, &frontier));
    }
    violations
}

/// Run every metamorphic invariant over a machine's worth of grid data:
/// frontier checks per evaluated kernel, permutation invariance over the
/// training suite, and seed determinism for the runtime.
pub fn check_all(
    machine_seed: u64,
    training: &[KernelProfile],
    evaluated: &[KernelProfile],
    model: &TrainedModel,
    app: &AppInstance,
) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    for p in evaluated {
        let id = p.kernel.id();
        let frontier = p.oracle_frontier();
        violations.extend(check_cap_monotonicity(&id, &frontier));
        violations.extend(check_frontier_non_domination(&id, &frontier));
    }
    violations.extend(check_cluster_permutation_invariance(training, model.params.n_clusters));
    violations.extend(check_seed_determinism(machine_seed, model, app));
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_core::{collect_suite, train, PowerPerfPoint, TrainingParams};
    use acs_kernels::InputSize;
    use acs_sim::{Configuration, CpuPState, KernelCharacteristics};

    fn machine() -> Machine {
        Machine::new(2014)
    }

    fn training_profiles(m: &Machine) -> Vec<KernelProfile> {
        let kernels: Vec<KernelCharacteristics> = acs_kernels::comd::kernels(InputSize::Default)
            .into_iter()
            .chain(acs_kernels::smc::kernels(InputSize::Small))
            .collect();
        collect_suite(m, &kernels)
    }

    fn lulesh() -> AppInstance {
        acs_kernels::app_instances().into_iter().find(|a| a.label() == "LULESH Small").unwrap()
    }

    #[test]
    fn real_frontiers_satisfy_monotonicity_and_non_domination() {
        let m = machine();
        for k in acs_kernels::lulesh::kernels(InputSize::Small) {
            let f = KernelProfile::collect(&m, &k).oracle_frontier();
            assert_eq!(check_cap_monotonicity(&k.id(), &f), vec![]);
            assert_eq!(check_frontier_non_domination(&k.id(), &f), vec![]);
        }
    }

    #[test]
    fn a_dominated_point_is_detected() {
        // Hand-build a frontier-shaped struct with a dominated point by
        // constructing one from raw points via from_points on a crafted
        // set is impossible (it prunes), so check the checker on a pruned
        // frontier plus a synthetic violation of monotonicity instead:
        // best_under on a correct frontier can never violate, so feed the
        // checker a frontier of one point and assert no false positives.
        let cfg = Configuration::cpu(4, CpuPState::MAX);
        let f =
            Frontier::from_points(vec![PowerPerfPoint { config: cfg, power_w: 10.0, perf: 1.0 }]);
        assert_eq!(check_cap_monotonicity("solo", &f), vec![]);
        assert_eq!(check_frontier_non_domination("solo", &f), vec![]);
    }

    #[test]
    fn clustering_is_permutation_invariant_on_the_training_suite() {
        let m = machine();
        let profiles = training_profiles(&m);
        let v = check_cluster_permutation_invariance(&profiles, 5);
        assert_eq!(v, vec![], "{v:?}");
    }

    #[test]
    fn partition_comparison_ignores_label_names() {
        let ids: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        // Same partition, different labels.
        let p1 = partition_of(&ids, &[0, 0, 1]);
        let p2 = partition_of(&ids, &[1, 1, 0]);
        assert_eq!(p1, p2);
        // Genuinely different partition.
        let p3 = partition_of(&ids, &[0, 1, 1]);
        assert_ne!(p1, p3);
    }

    #[test]
    fn seed_determinism_holds_for_plain_and_chaos_paths() {
        let m = machine();
        let model = train(&training_profiles(&m), TrainingParams::default()).unwrap();
        let v = check_seed_determinism(2014, &model, &lulesh());
        assert_eq!(v, vec![], "{v:?}");
    }

    #[test]
    fn check_all_is_clean_on_the_reference_machine() {
        let m = machine();
        let training = training_profiles(&m);
        let model = train(&training, TrainingParams::default()).unwrap();
        let evaluated = collect_suite(&m, &acs_kernels::lu::kernels(InputSize::Small));
        let v = check_all(2014, &training, &evaluated, &model, &lulesh());
        assert_eq!(v, vec![], "{v:?}");
    }

    #[test]
    fn every_family_satisfies_the_frontier_invariants() {
        let kernels = acs_kernels::lu::kernels(InputSize::Small);
        for family in acs_sim::FamilyId::ALL {
            let v = check_family_frontiers(family, 2014, &kernels);
            assert_eq!(v, vec![], "{family}: {v:?}");
        }
    }

    #[test]
    fn first_diff_reports_the_right_offset() {
        assert_eq!(first_diff("abcd", "abXd"), 2);
        assert_eq!(first_diff("abc", "abcd"), 3);
        assert_eq!(first_diff("", ""), 0);
    }
}
