//! Drift differential: static-model regret vs adaptive-model regret under
//! seeded time-varying drift.
//!
//! The static model (the paper's offline stage) selects once and holds
//! that configuration forever; the adaptation layer
//! ([`acs_core::AdaptivePredictor`]) watches measured feedback and
//! re-selects when drift is confirmed. This runner quantifies the
//! difference: every `(drift process, kernel, cap)` cell replays the same
//! iteration sequence twice — once pinned to the static selection, once
//! through the adaptive loop — against a per-iteration oracle that sweeps
//! all 42 configurations on the *drifted* machine. The gate
//! ([`AdaptThresholds`]) demands that adaptation strictly wins under every
//! drifted process and changes **nothing** at zero drift: the zero cell's
//! regrets must match the static path bit for bit, with zero re-selections
//! and zero drift events.

use crate::scenario::{evaluation_kernels, training_kernels};
use acs_core::offline::TrainError;
use acs_core::{
    sample_config, train, AdaptivePredictor, KernelProfile, PredictedProfile, Predictor,
    SamplePair, TrainingParams,
};
use acs_sim::{
    Configuration, Device, DriftPlan, DriftedMachine, Executor, KernelCharacteristics, Machine,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Grid shape: one machine, a slice of held-out kernels, two caps each,
/// a fixed iteration horizon per cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftGridParams {
    /// Machine seed (the serve default, 2014, keeps the grid aligned with
    /// the server's golden traces).
    pub machine_seed: u64,
    /// Seed for the drift processes' phase/magnitude jitter.
    pub drift_seed: u64,
    /// Stride over the held-out evaluation suite (1 = every kernel).
    pub kernel_stride: usize,
    /// Probe caps per kernel, spread across the feasible frontier band.
    pub caps_per_kernel: usize,
    /// Iterations per cell.
    pub iterations: u64,
}

impl DriftGridParams {
    /// CI-sized grid: 3 kernels × 2 caps × 40 iterations per process.
    pub fn quick() -> Self {
        Self {
            machine_seed: 2014,
            drift_seed: 7,
            kernel_stride: 8,
            caps_per_kernel: 2,
            iterations: 40,
        }
    }

    /// Full grid: 6 kernels × 2 caps × 64 iterations per process.
    pub fn full() -> Self {
        Self {
            machine_seed: 2014,
            drift_seed: 7,
            kernel_stride: 4,
            caps_per_kernel: 2,
            iterations: 64,
        }
    }
}

/// The drift processes scored by the grid, zero drift first. The zero row
/// is the regression gate (nothing may change); the rest are the wins.
pub fn drift_processes(params: &DriftGridParams) -> Vec<(String, DriftPlan)> {
    let seed = params.drift_seed;
    vec![
        ("zero".to_string(), DriftPlan::none(seed)),
        ("thermal-ramp".to_string(), DriftPlan::thermal_ramp(seed, params.iterations / 2)),
        ("step-throttle".to_string(), DriftPlan::step_throttle(seed)),
        ("aging".to_string(), DriftPlan::aging(seed)),
        ("co-tenant".to_string(), DriftPlan::co_tenant(seed)),
    ]
}

/// One `(process, kernel, cap)` cell: both methods' mean regret over the
/// shared iteration sequence, plus the adaptation counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftCell {
    /// Drift process name.
    pub scenario: String,
    /// Evaluated kernel.
    pub kernel_id: String,
    /// Power cap, W.
    pub cap_w: f64,
    /// Mean per-iteration regret of the pinned static selection.
    pub static_mean_regret: f64,
    /// Mean per-iteration regret of the adaptive loop.
    pub adaptive_mean_regret: f64,
    /// Iterations where the static selection broke its power bound.
    pub static_violations: u64,
    /// Iterations where the adaptive selection broke its power bound.
    pub adaptive_violations: u64,
    /// Times the adaptive path moved the selection off the static answer.
    pub reselections: u64,
    /// Drift events the adaptive predictor emitted.
    pub drift_events: u64,
    /// True iff every adaptive selection equalled the static selection.
    pub identical_selections: bool,
    /// True iff both mean regrets are bit-for-bit equal (implied by
    /// `identical_selections`; this is the zero-drift exactness witness).
    pub regret_bits_match: bool,
}

/// Per-process aggregate over all its cells (equal cell weight).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRegret {
    /// Drift process name.
    pub scenario: String,
    /// Mean of the cells' static mean regrets.
    pub static_mean_regret: f64,
    /// Mean of the cells' adaptive mean regrets.
    pub adaptive_mean_regret: f64,
    /// Total re-selections across the process's cells.
    pub reselections: u64,
    /// Total drift events across the process's cells.
    pub drift_events: u64,
}

/// The full drift differential report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// Grid shape the report was produced under.
    pub params: DriftGridParams,
    /// Process names in grid order (zero drift first).
    pub scenarios: Vec<String>,
    /// All cells, ordered process × kernel × cap (process outermost).
    pub cells: Vec<DriftCell>,
}

/// Pass/fail gates for the drift grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptThresholds {
    /// A drifted process passes only if its aggregate adaptive mean regret
    /// undercuts the static one by strictly more than this margin.
    pub min_improvement: f64,
    /// Ceiling on the aggregate adaptive mean regret under any drifted
    /// process — adaptation must not merely beat a terrible baseline.
    pub max_adaptive_regret: f64,
}

impl Default for AdaptThresholds {
    fn default() -> Self {
        Self { min_improvement: 0.0, max_adaptive_regret: 0.60 }
    }
}

/// The per-iteration oracle on the drifted machine: best performance with
/// true power under the cap, falling back to the minimum-power
/// configuration (infeasible cap) exactly like the differential runner.
fn oracle_at<E: Executor>(
    exec: &E,
    kernel: &KernelCharacteristics,
    cap_w: f64,
    iteration: u64,
) -> (f64, f64, bool) {
    let mut best: Option<(f64, f64)> = None;
    let mut min_power: Option<(f64, f64)> = None;
    for config in Configuration::all() {
        let run = exec
            .execute(kernel, config, iteration)
            .expect("drifted execution cannot fault without a fault plan");
        let power = run.true_power_w();
        let perf = run.performance();
        if power <= cap_w * (1.0 + 1e-9) && best.is_none_or(|(bp, _)| perf > bp) {
            best = Some((perf, power));
        }
        if min_power.is_none_or(|(_, mp)| power < mp) {
            min_power = Some((perf, power));
        }
    }
    match best {
        Some((perf, power)) => (perf, power, true),
        None => {
            let (perf, power) = min_power.expect("non-empty configuration space");
            (perf, power, false)
        }
    }
}

/// Regret of one executed iteration against the oracle, mirroring
/// `ScenarioCase`: a selection over its bound (the cap when feasible, the
/// oracle's fallback power when not) forfeits the iteration (regret 1);
/// otherwise regret is the clamped performance shortfall.
fn iteration_regret(
    true_power_w: f64,
    perf: f64,
    oracle_perf: f64,
    oracle_power_w: f64,
    cap_w: f64,
    feasible: bool,
) -> (f64, bool) {
    let bound = if feasible { cap_w } else { oracle_power_w };
    if true_power_w <= bound * (1.0 + 1e-9) {
        ((1.0 - perf / oracle_perf).max(0.0), false)
    } else {
        (1.0, true)
    }
}

/// The probe caps for one predicted profile: `caps_per_kernel` levels
/// spread over the feasible mid-band of the *predicted* frontier (what the
/// server believes). Unlike the differential grid there is no infeasible
/// cap — at an infeasible cap both methods sit at the min-power fallback
/// and the strict-win gate would be vacuous.
fn probe_caps(profile: &PredictedProfile, caps_per_kernel: usize) -> Vec<f64> {
    let lo = profile.frontier.min_power().expect("non-empty frontier").power_w * 1.25;
    let hi = profile.frontier.max_perf().expect("non-empty frontier").power_w * 0.85;
    let n = caps_per_kernel.max(1);
    (0..n).map(|i| if n == 1 { hi } else { lo + (hi - lo) * i as f64 / (n - 1) as f64 }).collect()
}

/// Score one cell: replay `iterations` steps of `kernel` under `plan`,
/// static selection pinned, adaptive loop observing measured feedback.
fn score_cell(
    machine_seed: u64,
    plan: DriftPlan,
    scenario: &str,
    kernel: &KernelCharacteristics,
    profile: &PredictedProfile,
    cap_w: f64,
    iterations: u64,
) -> DriftCell {
    let drifted = DriftedMachine::new(Machine::new(machine_seed), plan);
    let static_config = profile.select(cap_w);
    let kernel_id = kernel.id();
    let mut adapt = AdaptivePredictor::default();
    let mut static_sum = 0.0;
    let mut adaptive_sum = 0.0;
    let mut static_violations = 0u64;
    let mut adaptive_violations = 0u64;
    let mut identical = true;
    for t in 0..iterations {
        let selection = adapt.select(&kernel_id, profile, cap_w);
        if selection.config != static_config {
            identical = false;
        }
        let adaptive_run = drifted
            .execute(kernel, &selection.config, t)
            .expect("drifted execution cannot fault without a fault plan");
        // The executor is pure, so when the adaptive path made the static
        // choice the static run *is* the adaptive run — reusing it keeps
        // the zero-drift bit-identity structural rather than numerical.
        let static_run = if selection.config == static_config {
            adaptive_run.clone()
        } else {
            drifted
                .execute(kernel, &static_config, t)
                .expect("drifted execution cannot fault without a fault plan")
        };
        let (oracle_perf, oracle_power, feasible) = oracle_at(&drifted, kernel, cap_w, t);
        let (sr, sv) = iteration_regret(
            static_run.true_power_w(),
            static_run.performance(),
            oracle_perf,
            oracle_power,
            cap_w,
            feasible,
        );
        let (ar, av) = iteration_regret(
            adaptive_run.true_power_w(),
            adaptive_run.performance(),
            oracle_perf,
            oracle_power,
            cap_w,
            feasible,
        );
        static_sum += sr;
        adaptive_sum += ar;
        static_violations += sv as u64;
        adaptive_violations += av as u64;
        // Feed the sensor-visible measurements back, exactly as the server
        // does after a Run.
        let point = profile.point_for(&selection.config);
        adapt
            .observe(
                &kernel_id,
                adaptive_run.power_w(),
                adaptive_run.performance(),
                point.power_w,
                point.perf,
            )
            .expect("simulated measurements are finite");
    }
    let static_mean = static_sum / iterations as f64;
    let adaptive_mean = adaptive_sum / iterations as f64;
    DriftCell {
        scenario: scenario.to_string(),
        kernel_id,
        cap_w,
        static_mean_regret: static_mean,
        adaptive_mean_regret: adaptive_mean,
        static_violations,
        adaptive_violations,
        reselections: adapt.reselections(),
        drift_events: adapt.drift_events(),
        identical_selections: identical,
        regret_bits_match: static_mean.to_bits() == adaptive_mean.to_bits(),
    }
}

/// Run the drift differential. Trains the standard model (CoMD + SMC) on
/// the clean machine, predicts each held-out kernel's profile once, then
/// scores every `(process, kernel, cap)` cell. Cells are independent, so
/// they fan out on the rayon pool; `flat_map_iter` keeps cell order equal
/// to the sequential nesting at any thread count.
pub fn run_drift(params: &DriftGridParams) -> Result<DriftReport, TrainError> {
    let machine = Machine::new(params.machine_seed);
    let training: Vec<KernelProfile> =
        training_kernels().par_iter().map(|k| KernelProfile::collect(&machine, k)).collect();
    let model = train(&training, TrainingParams::default())?;
    let predictor = Predictor::new(&model);
    let kernels: Vec<KernelCharacteristics> =
        evaluation_kernels().into_iter().step_by(params.kernel_stride.max(1)).collect();
    let profiles: Vec<PredictedProfile> = kernels
        .iter()
        .map(|k| {
            let cpu = machine.run_iter(k, &sample_config(Device::Cpu), 0);
            let gpu = machine.run_iter(k, &sample_config(Device::Gpu), 1);
            predictor.predict(&SamplePair::new(cpu, gpu))
        })
        .collect();
    let processes = drift_processes(params);
    let cells: Vec<DriftCell> = processes
        .par_iter()
        .flat_map_iter(|(name, plan)| {
            let mut out = Vec::new();
            for (kernel, profile) in kernels.iter().zip(&profiles) {
                for cap_w in probe_caps(profile, params.caps_per_kernel) {
                    out.push(score_cell(
                        params.machine_seed,
                        *plan,
                        name,
                        kernel,
                        profile,
                        cap_w,
                        params.iterations,
                    ));
                }
            }
            out
        })
        .collect();
    Ok(DriftReport {
        params: *params,
        scenarios: processes.into_iter().map(|(name, _)| name).collect(),
        cells,
    })
}

impl DriftReport {
    /// Per-process aggregates, in grid order.
    pub fn scenario_regrets(&self) -> Vec<ScenarioRegret> {
        self.scenarios
            .iter()
            .map(|name| {
                let cells: Vec<&DriftCell> =
                    self.cells.iter().filter(|c| &c.scenario == name).collect();
                let n = cells.len().max(1) as f64;
                ScenarioRegret {
                    scenario: name.clone(),
                    static_mean_regret: cells.iter().map(|c| c.static_mean_regret).sum::<f64>() / n,
                    adaptive_mean_regret: cells.iter().map(|c| c.adaptive_mean_regret).sum::<f64>()
                        / n,
                    reselections: cells.iter().map(|c| c.reselections).sum(),
                    drift_events: cells.iter().map(|c| c.drift_events).sum(),
                }
            })
            .collect()
    }

    /// Check the gates. Returns all failures (empty = pass).
    pub fn check(&self, t: &AdaptThresholds) -> Vec<String> {
        let mut failures = Vec::new();
        for cell in self.cells.iter().filter(|c| c.scenario == "zero") {
            let label = format!("zero {} @{:.1}W", cell.kernel_id, cell.cap_w);
            if !cell.identical_selections {
                failures.push(format!("{label}: adaptive diverged from static at zero drift"));
            }
            if !cell.regret_bits_match {
                failures.push(format!("{label}: zero-drift regrets are not bit-identical"));
            }
            if cell.reselections != 0 || cell.drift_events != 0 {
                failures.push(format!(
                    "{label}: {} re-selections / {} drift events at zero drift",
                    cell.reselections, cell.drift_events
                ));
            }
        }
        for s in self.scenario_regrets() {
            if s.scenario == "zero" {
                continue;
            }
            if s.adaptive_mean_regret + t.min_improvement >= s.static_mean_regret {
                failures.push(format!(
                    "{}: adaptive mean regret {:.2}% must be strictly below static {:.2}%",
                    s.scenario,
                    s.adaptive_mean_regret * 100.0,
                    s.static_mean_regret * 100.0
                ));
            }
            if s.adaptive_mean_regret > t.max_adaptive_regret {
                failures.push(format!(
                    "{}: adaptive mean regret {:.2}% > allowed {:.2}%",
                    s.scenario,
                    s.adaptive_mean_regret * 100.0,
                    t.max_adaptive_regret * 100.0
                ));
            }
        }
        failures
    }

    /// Render the per-process comparison as aligned text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "drift differential ({} cells, {} iterations each)\n",
            self.cells.len(),
            self.params.iterations
        );
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>10} {:>8} {:>7}",
            "process", "static", "adaptive", "resel", "events"
        );
        for s in self.scenario_regrets() {
            let _ = writeln!(
                out,
                "{:<14} {:>9.2}% {:>9.2}% {:>8} {:>7}",
                s.scenario,
                s.static_mean_regret * 100.0,
                s.adaptive_mean_regret * 100.0,
                s.reselections,
                s.drift_events
            );
        }
        out
    }

    /// A quantized summary (per mille, rounded) for snapshots and the
    /// benchmark artifact: stable under last-ulp arithmetic drift.
    pub fn golden_summary(&self) -> serde::Value {
        use serde::Value;
        let q = |x: f64| (x * 1000.0).round() / 10.0;
        let cells: Vec<Value> = self
            .cells
            .iter()
            .map(|c| {
                Value::Map(vec![
                    ("scenario".into(), Value::Str(c.scenario.clone())),
                    ("kernel".into(), Value::Str(c.kernel_id.clone())),
                    ("cap_w".into(), Value::F64((c.cap_w * 10.0).round() / 10.0)),
                    ("static_regret_pct".into(), Value::F64(q(c.static_mean_regret))),
                    ("adaptive_regret_pct".into(), Value::F64(q(c.adaptive_mean_regret))),
                    ("static_violations".into(), Value::U64(c.static_violations)),
                    ("adaptive_violations".into(), Value::U64(c.adaptive_violations)),
                    ("reselections".into(), Value::U64(c.reselections)),
                    ("drift_events".into(), Value::U64(c.drift_events)),
                    ("identical".into(), Value::Bool(c.identical_selections)),
                ])
            })
            .collect();
        let aggregates: Vec<Value> = self
            .scenario_regrets()
            .iter()
            .map(|s| {
                Value::Map(vec![
                    ("scenario".into(), Value::Str(s.scenario.clone())),
                    ("static_regret_pct".into(), Value::F64(q(s.static_mean_regret))),
                    ("adaptive_regret_pct".into(), Value::F64(q(s.adaptive_mean_regret))),
                    ("reselections".into(), Value::U64(s.reselections)),
                    ("drift_events".into(), Value::U64(s.drift_events)),
                ])
            })
            .collect();
        Value::Map(vec![
            (
                "scenarios".into(),
                Value::Array(self.scenarios.iter().map(|s| Value::Str(s.clone())).collect()),
            ),
            ("iterations".into(), Value::U64(self.params.iterations)),
            ("aggregates".into(), Value::Array(aggregates)),
            ("cells".into(), Value::Array(cells)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The quick grid trains a model and sweeps ~25k executions; build it
    /// once for all tests.
    fn quick_report() -> &'static DriftReport {
        static REPORT: OnceLock<DriftReport> = OnceLock::new();
        REPORT.get_or_init(|| run_drift(&DriftGridParams::quick()).expect("training succeeds"))
    }

    #[test]
    fn grid_covers_every_process_kernel_and_cap() {
        let r = quick_report();
        assert_eq!(r.scenarios.len(), 5);
        assert_eq!(r.scenarios[0], "zero");
        let kernels = evaluation_kernels().into_iter().step_by(8).count();
        assert_eq!(r.cells.len(), r.scenarios.len() * kernels * 2);
    }

    #[test]
    fn zero_drift_cells_are_bit_identical_to_static() {
        for c in quick_report().cells.iter().filter(|c| c.scenario == "zero") {
            assert!(c.identical_selections, "{c:?}");
            assert!(c.regret_bits_match, "{c:?}");
            assert_eq!(c.reselections, 0, "{c:?}");
            assert_eq!(c.drift_events, 0, "{c:?}");
        }
    }

    #[test]
    fn every_drifted_process_strictly_improves() {
        let failures = quick_report().check(&AdaptThresholds::default());
        assert!(failures.is_empty(), "{failures:#?}");
    }

    #[test]
    fn drifted_processes_actually_reselect() {
        let total: u64 = quick_report()
            .cells
            .iter()
            .filter(|c| c.scenario != "zero")
            .map(|c| c.reselections)
            .sum();
        assert!(total > 0, "adaptation never moved a selection — the grid is vacuous");
    }

    #[test]
    fn render_names_every_process() {
        let txt = quick_report().render();
        for s in &quick_report().scenarios {
            assert!(txt.contains(s.as_str()), "{txt}");
        }
    }

    #[test]
    fn report_is_byte_identical_across_thread_counts() {
        let run = || {
            let report = run_drift(&DriftGridParams::quick()).unwrap();
            serde_json::to_string(&report.golden_summary()).unwrap()
        };
        let reference = rayon::with_num_threads(1, run);
        for threads in [2usize, 8] {
            let got = rayon::with_num_threads(threads, run);
            assert_eq!(got, reference, "drift grid differs at {threads} threads");
        }
    }
}
