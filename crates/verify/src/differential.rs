//! The differential runner: every method vs. the exhaustive oracle.
//!
//! Replays each grid scenario through the four compared methods (Model,
//! Model+FL, CPU+FL, GPU+FL) and scores them against the oracle's choice at
//! the same cap. The paper's headline claim (Figures 4–6) is that the model
//! methods land within a few percent of the oracle while meeting caps more
//! reliably than the fixed-device baselines; [`Thresholds`] turns those
//! claims into pass/fail gates that every future PR must clear.

use crate::oracle::{OracleChoice, OracleEngine};
use crate::scenario::ScenarioGrid;
use acs_core::methods::{select_with_scratch, Method};
use acs_core::offline::TrainError;
use acs_core::online::Predictor;
use acs_core::{train, SelectScratch, TrainingParams};
use acs_sim::Configuration;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One scenario's outcome for one method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioCase {
    /// Which method.
    pub method: Method,
    /// Machine seed.
    pub machine_seed: u64,
    /// Kernel identifier.
    pub kernel_id: String,
    /// The power constraint, W.
    pub cap_w: f64,
    /// The method's selection.
    pub config: Configuration,
    /// True power of the selection, W.
    pub power_w: f64,
    /// Performance of the selection.
    pub perf: f64,
    /// The oracle's choice at the same cap.
    pub oracle: OracleChoice,
}

impl ScenarioCase {
    /// Whether the method met the constraint (tolerating float noise; an
    /// *infeasible* cap — one even the oracle cannot meet — judges the
    /// method against the oracle's fallback power instead, since meeting
    /// the cap is impossible by construction).
    pub fn under_limit(&self) -> bool {
        let bound = if self.oracle.feasible { self.cap_w } else { self.oracle.power_w };
        self.power_w <= bound * (1.0 + 1e-9)
    }

    /// Performance regret vs. the oracle: `1 − perf/oracle_perf`, positive
    /// when the method is slower, clamped at 0 when it (over-cap) "wins".
    pub fn regret(&self) -> f64 {
        (1.0 - self.perf / self.oracle.perf).max(0.0)
    }
}

/// Aggregate regret statistics for one method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodRegret {
    /// The method.
    pub method: Method,
    /// Scenarios replayed.
    pub scenarios: usize,
    /// Fraction of scenarios meeting the constraint.
    pub under_rate: f64,
    /// Mean performance regret vs. the oracle over under-limit scenarios.
    pub mean_regret: f64,
    /// Worst under-limit regret.
    pub max_regret: f64,
    /// Fraction of scenarios whose true power exceeded a *feasible* cap.
    pub violation_rate: f64,
    /// Mean `power/cap` ratio over violating scenarios (how badly a
    /// violation overshoots), when any.
    pub mean_overshoot: Option<f64>,
}

/// The full differential report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegretReport {
    /// Total `(machine, kernel, cap)` scenarios replayed (per method).
    pub total_scenarios: usize,
    /// Per-method aggregates, in `Method::COMPARED` order.
    pub per_method: Vec<MethodRegret>,
    /// Every individual case (for goldens and per-app breakdowns).
    pub cases: Vec<ScenarioCase>,
}

/// Pass/fail gates derived from the paper's evaluation (Table III and
/// Figures 4–6): the model methods track the oracle within a few percent
/// and Model+FL meets caps most reliably, while the fixed-device baselines
/// pay for their ignorance in regret (CPU+FL) or violations (GPU+FL).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Minimum under-limit rate for Model+FL (paper: 88%).
    pub model_fl_min_under: f64,
    /// Minimum under-limit rate for Model alone (paper: 73%).
    pub model_min_under: f64,
    /// Maximum mean under-limit regret for the model methods (paper: they
    /// keep ≈91% of oracle performance, i.e. ≈9% regret).
    pub model_max_mean_regret: f64,
    /// Maximum mean under-limit regret for any method (even CPU+FL stays
    /// above ≈69% of oracle performance in the paper).
    pub any_max_mean_regret: f64,
    /// Maximum feasible-cap violation rate for Model+FL.
    pub model_fl_max_violations: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            model_fl_min_under: 0.80,
            model_min_under: 0.60,
            model_max_mean_regret: 0.20,
            any_max_mean_regret: 0.45,
            model_fl_max_violations: 0.20,
        }
    }
}

/// Run the differential harness over a scenario grid: per machine, train
/// on the training suite, then replay every `(kernel, cap)` through all
/// four methods against the oracle.
pub fn run_differential(
    grid: &ScenarioGrid,
    params: TrainingParams,
) -> Result<RegretReport, TrainError> {
    let mut cases = Vec::new();

    for m in &grid.machines {
        let model = train(&m.training, params)?;
        let predictor = Predictor::new(&model);
        // Each evaluated profile's (cap, method) replay is independent, so
        // profiles fan out across the rayon pool; `flat_map_iter` splices
        // the per-profile case blocks back in profile order, keeping the
        // report byte-identical to the sequential nesting.
        let machine_cases: Vec<ScenarioCase> = m
            .evaluated
            .par_iter()
            .flat_map_iter(|(profile, caps)| {
                // The grid already holds the full sweep; derive the oracle
                // frontier from it rather than re-sweeping (the disk-cached
                // [`OracleEngine::frontier`] path serves `acs verify
                // --cache-dir`, where profiles are not pre-collected).
                let frontier = profile.oracle_frontier();
                // One scratch arena per profile: the (cap, method) replay
                // loop below re-selects many times, and the fast path
                // writes through this instead of allocating per select.
                let mut scratch = SelectScratch::new();
                let mut out = Vec::with_capacity(caps.len() * Method::COMPARED.len());
                for &cap_w in caps {
                    let oracle = OracleEngine::choose(&frontier, cap_w);
                    for &method in &Method::COMPARED {
                        let config = select_with_scratch(
                            method,
                            profile,
                            Some(&predictor),
                            cap_w,
                            &mut scratch,
                        );
                        let run = profile.run_at(&config);
                        out.push(ScenarioCase {
                            method,
                            machine_seed: m.machine.seed,
                            kernel_id: profile.kernel.id(),
                            cap_w,
                            config,
                            power_w: run.true_power_w(),
                            perf: 1.0 / run.time_s,
                            oracle,
                        });
                    }
                }
                out
            })
            .collect();
        cases.extend(machine_cases);
    }

    let total_scenarios = cases.len() / Method::COMPARED.len();
    let per_method = Method::COMPARED.iter().map(|&m| summarize_method(&cases, m)).collect();
    Ok(RegretReport { total_scenarios, per_method, cases })
}

/// Aggregate one method's cases in a single pass (no intermediate
/// per-category `Vec`s): every statistic is a running count or sum.
/// Shared with the transfer runner, which scores foreign-model cases
/// with exactly the same statistics.
pub(crate) fn summarize_method(cases: &[ScenarioCase], method: Method) -> MethodRegret {
    let mut scenarios = 0usize;
    let mut under = 0usize;
    let mut regret_sum = 0.0f64;
    let mut max_regret = 0.0f64;
    let mut violations = 0usize;
    let mut overshoot_sum = 0.0f64;

    for c in cases.iter().filter(|c| c.method == method) {
        scenarios += 1;
        if c.under_limit() {
            under += 1;
            let r = c.regret();
            regret_sum += r;
            max_regret = max_regret.max(r);
        }
        if c.oracle.feasible && c.power_w > c.cap_w * (1.0 + 1e-9) {
            violations += 1;
            overshoot_sum += c.power_w / c.cap_w;
        }
    }

    let n = scenarios.max(1);
    MethodRegret {
        method,
        scenarios,
        under_rate: under as f64 / n as f64,
        mean_regret: if under == 0 { 0.0 } else { regret_sum / under as f64 },
        max_regret,
        violation_rate: violations as f64 / n as f64,
        mean_overshoot: (violations > 0).then(|| overshoot_sum / violations as f64),
    }
}

impl RegretReport {
    /// The aggregate row for one method.
    pub fn for_method(&self, method: Method) -> Option<&MethodRegret> {
        self.per_method.iter().find(|r| r.method == method)
    }

    /// Under-limit percentage for one method restricted to one kernel-id
    /// prefix (e.g. `"LULESH/"`) — the per-benchmark view of Figure 6.
    pub fn under_pct_for(&self, method: Method, kernel_prefix: &str) -> Option<f64> {
        let mine: Vec<&ScenarioCase> = self
            .cases
            .iter()
            .filter(|c| c.method == method && c.kernel_id.starts_with(kernel_prefix))
            .collect();
        if mine.is_empty() {
            return None;
        }
        let under = mine.iter().filter(|c| c.under_limit()).count();
        Some(under as f64 / mine.len() as f64 * 100.0)
    }

    /// Check the report against pass/fail thresholds. Returns every
    /// failed gate (empty = pass).
    pub fn check(&self, t: &Thresholds) -> Vec<String> {
        let mut failures = Vec::new();
        let get = |m: Method| self.for_method(m).expect("all compared methods present");

        let mfl = get(Method::ModelFL);
        let model = get(Method::Model);
        if mfl.under_rate < t.model_fl_min_under {
            failures.push(format!(
                "Model+FL under-limit rate {:.1}% < required {:.1}%",
                mfl.under_rate * 100.0,
                t.model_fl_min_under * 100.0
            ));
        }
        if model.under_rate < t.model_min_under {
            failures.push(format!(
                "Model under-limit rate {:.1}% < required {:.1}%",
                model.under_rate * 100.0,
                t.model_min_under * 100.0
            ));
        }
        for r in [model, mfl] {
            if r.mean_regret > t.model_max_mean_regret {
                failures.push(format!(
                    "{} mean regret {:.1}% > allowed {:.1}%",
                    r.method,
                    r.mean_regret * 100.0,
                    t.model_max_mean_regret * 100.0
                ));
            }
        }
        for r in &self.per_method {
            if r.mean_regret > t.any_max_mean_regret {
                failures.push(format!(
                    "{} mean regret {:.1}% > absolute ceiling {:.1}%",
                    r.method,
                    r.mean_regret * 100.0,
                    t.any_max_mean_regret * 100.0
                ));
            }
        }
        if mfl.violation_rate > t.model_fl_max_violations {
            failures.push(format!(
                "Model+FL violates feasible caps in {:.1}% of scenarios (> {:.1}%)",
                mfl.violation_rate * 100.0,
                t.model_fl_max_violations * 100.0
            ));
        }
        failures
    }

    /// Render the report as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out =
            format!("differential regret vs. oracle ({} scenarios)\n", self.total_scenarios);
        let _ = writeln!(
            out,
            "{:<9} | {:>7} | {:>11} | {:>10} | {:>10} | {:>9}",
            "Method", "%Under", "MeanRegret", "MaxRegret", "%Violate", "Overshoot"
        );
        for r in &self.per_method {
            let _ = writeln!(
                out,
                "{:<9} | {:>6.1}% | {:>10.1}% | {:>9.1}% | {:>9.1}% | {:>9}",
                r.method.name(),
                r.under_rate * 100.0,
                r.mean_regret * 100.0,
                r.max_regret * 100.0,
                r.violation_rate * 100.0,
                r.mean_overshoot.map_or("—".into(), |o| format!("{:.2}x", o)),
            );
        }
        out
    }

    /// A compact, float-rounded summary for golden-trace snapshots:
    /// aggregate rates only, quantized so blessed files stay stable under
    /// last-ulp arithmetic drift.
    pub fn golden_summary(&self) -> serde::Value {
        use serde::Value;
        let rows: Vec<Value> = self
            .per_method
            .iter()
            .map(|r| {
                Value::Map(vec![
                    ("method".into(), Value::Str(r.method.name().into())),
                    ("scenarios".into(), Value::U64(r.scenarios as u64)),
                    ("under_pct".into(), Value::F64((r.under_rate * 1000.0).round() / 10.0)),
                    ("mean_regret_pct".into(), Value::F64((r.mean_regret * 1000.0).round() / 10.0)),
                    (
                        "violation_pct".into(),
                        Value::F64((r.violation_rate * 1000.0).round() / 10.0),
                    ),
                ])
            })
            .collect();
        Value::Map(vec![
            ("total_scenarios".into(), Value::U64(self.total_scenarios as u64)),
            ("per_method".into(), Value::Array(rows)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GridParams;

    fn quick_report() -> RegretReport {
        let grid = ScenarioGrid::generate(GridParams::quick());
        run_differential(&grid, TrainingParams::default()).expect("training succeeds")
    }

    #[test]
    fn report_covers_all_methods_and_scenarios() {
        let r = quick_report();
        assert_eq!(r.per_method.len(), 4);
        for m in &r.per_method {
            assert_eq!(m.scenarios, r.total_scenarios);
        }
        assert_eq!(r.cases.len(), r.total_scenarios * 4);
    }

    #[test]
    fn oracle_is_never_beaten_under_limit() {
        // Gate on the *same strict comparison* `Frontier::best_under` uses
        // (`power_w <= cap_w`, no epsilon): `under_limit()` tolerates float
        // noise just above the cap, and a pick in that sliver may honestly
        // out-perform the oracle's strictly-capped choice.
        let r = quick_report();
        for c in &r.cases {
            if c.oracle.feasible && c.power_w <= c.cap_w {
                assert!(
                    c.perf <= c.oracle.perf * (1.0 + 1e-9),
                    "{} beat the oracle on {} at {} W",
                    c.method,
                    c.kernel_id,
                    c.cap_w
                );
            }
        }
    }

    #[test]
    fn regret_is_nonnegative_and_bounded() {
        let r = quick_report();
        for m in &r.per_method {
            assert!(m.mean_regret >= 0.0 && m.mean_regret <= 1.0, "{m:?}");
            assert!(m.max_regret >= m.mean_regret - 1e-12, "{m:?}");
            assert!((0.0..=1.0).contains(&m.under_rate), "{m:?}");
            assert!((0.0..=1.0).contains(&m.violation_rate), "{m:?}");
        }
    }

    #[test]
    fn quick_grid_passes_default_thresholds() {
        let failures = quick_report().check(&Thresholds::default());
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn render_mentions_every_method() {
        let txt = quick_report().render();
        for m in Method::COMPARED {
            assert!(txt.contains(m.name()), "{txt}");
        }
    }

    #[test]
    fn differential_is_deterministic() {
        let grid = ScenarioGrid::generate(GridParams::quick());
        let a = run_differential(&grid, TrainingParams::default()).unwrap();
        let b = run_differential(&grid, TrainingParams::default()).unwrap();
        assert_eq!(a, b);
    }
}
