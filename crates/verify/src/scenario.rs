//! The seeded scenario grid the verification subsystem replays.
//!
//! A *scenario* is one `(machine seed, kernel, power cap)` triple. The grid
//! is generated deterministically from a [`GridParams`], so every session —
//! local `cargo test`, CI, a blessing run — sees exactly the same scenarios
//! and the differential results are comparable across commits.
//!
//! The grid follows the paper's leave-one-benchmark-out discipline: the
//! kernels *evaluated* never appear in the training suite the differential
//! runner trains its model on, so Model/Model+FL are judged on genuinely
//! unseen kernels (Section V-C).

use acs_core::profile::KernelProfile;
use acs_kernels::InputSize;
use acs_sim::{KernelCharacteristics, Machine};
use serde::{Deserialize, Serialize};

/// Grid generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridParams {
    /// Machine seeds: one simulated node per seed.
    pub machine_seeds: Vec<u64>,
    /// Power constraints probed per kernel, spread across the kernel's
    /// oracle frontier power range.
    pub caps_per_kernel: usize,
    /// Stretch factor below the frontier's minimum power for the tightest
    /// cap (a value `< 1` includes one infeasible cap per kernel, forcing
    /// every method through its fallback path).
    pub tight_cap_factor: f64,
}

impl Default for GridParams {
    fn default() -> Self {
        Self { machine_seeds: vec![2014, 7, 99], caps_per_kernel: 4, tight_cap_factor: 0.9 }
    }
}

impl GridParams {
    /// A reduced grid for fast smoke checks (one machine, two caps).
    pub fn quick() -> Self {
        Self { machine_seeds: vec![2014], caps_per_kernel: 2, ..Self::default() }
    }
}

/// One replayable `(machine, kernel, cap)` case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Seed of the machine this scenario runs on.
    pub machine_seed: u64,
    /// Kernel identifier (`benchmark/input/name`).
    pub kernel_id: String,
    /// The power constraint, W.
    pub cap_w: f64,
}

/// A machine's worth of scenarios plus the data needed to replay them.
pub struct MachineScenarios {
    /// The simulated node.
    pub machine: Machine,
    /// Profiles the differential runner trains on (never evaluated).
    pub training: Vec<KernelProfile>,
    /// Profiles under evaluation, each with its probe caps.
    pub evaluated: Vec<(KernelProfile, Vec<f64>)>,
}

/// The full grid: per-machine scenario sets.
pub struct ScenarioGrid {
    /// Parameters the grid was generated from.
    pub params: GridParams,
    /// One entry per machine seed.
    pub machines: Vec<MachineScenarios>,
}

/// The training suite: CoMD (all sizes present in the app list) plus SMC.
fn training_kernels() -> Vec<KernelCharacteristics> {
    acs_kernels::comd::kernels(InputSize::Default)
        .into_iter()
        .chain(acs_kernels::smc::kernels(InputSize::Small))
        .collect()
}

/// The held-out evaluation suite: LULESH Small (20 kernels) plus LU at two
/// input sizes — 22 kernels per machine, none of which trains the model.
fn evaluation_kernels() -> Vec<KernelCharacteristics> {
    acs_kernels::lulesh::kernels(InputSize::Small)
        .into_iter()
        .chain(acs_kernels::lu::kernels(InputSize::Small))
        .chain(acs_kernels::lu::kernels(InputSize::Large))
        .collect()
}

/// The probe caps for one kernel: `caps_per_kernel` watt levels spread
/// evenly from below the oracle frontier's minimum power (infeasible when
/// `tight_cap_factor < 1`) up to its maximum.
pub fn probe_caps(profile: &KernelProfile, params: &GridParams) -> Vec<f64> {
    let frontier = profile.oracle_frontier();
    let lo = frontier.min_power().expect("non-empty frontier").power_w * params.tight_cap_factor;
    let hi = frontier.max_perf().expect("non-empty frontier").power_w;
    let n = params.caps_per_kernel.max(1);
    (0..n).map(|i| if n == 1 { hi } else { lo + (hi - lo) * i as f64 / (n - 1) as f64 }).collect()
}

impl ScenarioGrid {
    /// Generate the grid: characterize training and evaluation kernels on
    /// every machine and derive each kernel's probe caps. Machines are
    /// independent simulated nodes, so they characterize in parallel (and
    /// each machine's suite sweep fans out further inside
    /// [`acs_core::collect_suite`]); the machine order matches
    /// `params.machine_seeds` regardless of thread count.
    pub fn generate(params: GridParams) -> Self {
        use rayon::prelude::*;
        let machines = params
            .machine_seeds
            .par_iter()
            .map(|&seed| {
                let machine = Machine::new(seed);
                let training = acs_core::collect_suite(&machine, &training_kernels());
                let evaluated = acs_core::collect_suite(&machine, &evaluation_kernels())
                    .into_iter()
                    .map(|p| {
                        let caps = probe_caps(&p, &params);
                        (p, caps)
                    })
                    .collect();
                MachineScenarios { machine, training, evaluated }
            })
            .collect();
        Self { params, machines }
    }

    /// Total `(machine, kernel, cap)` scenario count.
    pub fn len(&self) -> usize {
        self.machines
            .iter()
            .map(|m| m.evaluated.iter().map(|(_, caps)| caps.len()).sum::<usize>())
            .sum()
    }

    /// True when the grid holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat list of scenario descriptors (for reports and goldens).
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.len());
        for m in &self.machines {
            for (profile, caps) in &m.evaluated {
                for &cap_w in caps {
                    out.push(Scenario {
                        machine_seed: m.machine.seed,
                        kernel_id: profile.kernel.id(),
                        cap_w,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_has_at_least_200_scenarios() {
        // 3 machines × 22 kernels × 4 caps = 264.
        let params = GridParams::default();
        let expected =
            params.machine_seeds.len() * evaluation_kernels().len() * params.caps_per_kernel;
        assert!(expected >= 200, "{expected} scenarios");
    }

    #[test]
    fn training_and_evaluation_suites_are_disjoint() {
        let train: Vec<String> = training_kernels().iter().map(|k| k.id()).collect();
        for k in evaluation_kernels() {
            assert!(!train.contains(&k.id()), "{} leaks into training", k.id());
        }
    }

    #[test]
    fn probe_caps_span_the_frontier_and_include_an_infeasible_one() {
        let machine = Machine::new(2014);
        let k = &evaluation_kernels()[0];
        let profile = KernelProfile::collect(&machine, k);
        let caps = probe_caps(&profile, &GridParams::default());
        assert_eq!(caps.len(), 4);
        assert!(caps.windows(2).all(|w| w[0] < w[1]), "caps must increase: {caps:?}");
        let frontier = profile.oracle_frontier();
        assert!(caps[0] < frontier.min_power().unwrap().power_w, "tightest cap is infeasible");
        assert!((caps[3] - frontier.max_perf().unwrap().power_w).abs() < 1e-9);
    }

    #[test]
    fn quick_grid_generates_deterministically() {
        let a = ScenarioGrid::generate(GridParams::quick());
        let b = ScenarioGrid::generate(GridParams::quick());
        assert_eq!(a.scenarios(), b.scenarios());
        assert!(!a.is_empty());
        assert_eq!(a.len(), a.scenarios().len());
    }
}
