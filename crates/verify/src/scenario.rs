//! The seeded scenario grid the verification subsystem replays.
//!
//! A *scenario* is one `(machine seed, kernel, power cap)` triple. The grid
//! is generated deterministically from a [`GridParams`], so every session —
//! local `cargo test`, CI, a blessing run — sees exactly the same scenarios
//! and the differential results are comparable across commits.
//!
//! The grid follows the paper's leave-one-benchmark-out discipline: the
//! kernels *evaluated* never appear in the training suite the differential
//! runner trains its model on, so Model/Model+FL are judged on genuinely
//! unseen kernels (Section V-C).

use acs_core::profile::KernelProfile;
use acs_kernels::InputSize;
use acs_sim::{FamilyId, KernelCharacteristics, Machine};
use serde::{Deserialize, Serialize};

/// Grid generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridParams {
    /// Machine seeds: one simulated node per `(family, seed)` pair.
    pub machine_seeds: Vec<u64>,
    /// Machine families instantiated per seed. An empty list (e.g. a
    /// record serialized before families existed) means Trinity only.
    #[serde(default)]
    pub families: Vec<FamilyId>,
    /// Power constraints probed per kernel, spread across the kernel's
    /// oracle frontier power range.
    pub caps_per_kernel: usize,
    /// Stretch factor below the frontier's minimum power for the tightest
    /// cap (a value `< 1` includes one infeasible cap per kernel, forcing
    /// every method through its fallback path).
    pub tight_cap_factor: f64,
}

impl Default for GridParams {
    fn default() -> Self {
        Self {
            machine_seeds: vec![2014, 7, 99],
            families: vec![FamilyId::Trinity],
            caps_per_kernel: 4,
            tight_cap_factor: 0.9,
        }
    }
}

impl GridParams {
    /// A reduced grid for fast smoke checks (one machine, two caps).
    pub fn quick() -> Self {
        Self { machine_seeds: vec![2014], caps_per_kernel: 2, ..Self::default() }
    }

    /// The heterogeneous transfer grid: every machine family on one seed,
    /// full cap resolution. One node per family keeps each
    /// `(train family, serve family)` pair's scenario set identical in
    /// shape, so transfer-regret differences are attributable to the
    /// family alone.
    pub fn transfer() -> Self {
        Self { machine_seeds: vec![2014], families: FamilyId::ALL.to_vec(), ..Self::default() }
    }

    /// [`GridParams::transfer`] at smoke-check resolution (two caps).
    pub fn transfer_quick() -> Self {
        Self { caps_per_kernel: 2, ..Self::transfer() }
    }

    /// The families this grid instantiates (empty normalizes to Trinity).
    pub fn effective_families(&self) -> Vec<FamilyId> {
        if self.families.is_empty() {
            vec![FamilyId::Trinity]
        } else {
            self.families.clone()
        }
    }
}

/// One replayable `(machine, kernel, cap)` case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Family of the machine this scenario runs on.
    #[serde(default)]
    pub family: FamilyId,
    /// Seed of the machine this scenario runs on.
    pub machine_seed: u64,
    /// Kernel identifier (`benchmark/input/name`).
    pub kernel_id: String,
    /// The power constraint, W.
    pub cap_w: f64,
}

/// A machine's worth of scenarios plus the data needed to replay them.
pub struct MachineScenarios {
    /// The simulated node.
    pub machine: Machine,
    /// Profiles the differential runner trains on (never evaluated).
    pub training: Vec<KernelProfile>,
    /// Profiles under evaluation, each with its probe caps.
    pub evaluated: Vec<(KernelProfile, Vec<f64>)>,
}

/// The full grid: per-machine scenario sets.
pub struct ScenarioGrid {
    /// Parameters the grid was generated from.
    pub params: GridParams,
    /// One entry per machine seed.
    pub machines: Vec<MachineScenarios>,
}

/// The training suite: CoMD (all sizes present in the app list) plus SMC.
pub(crate) fn training_kernels() -> Vec<KernelCharacteristics> {
    acs_kernels::comd::kernels(InputSize::Default)
        .into_iter()
        .chain(acs_kernels::smc::kernels(InputSize::Small))
        .collect()
}

/// The held-out evaluation suite: LULESH Small (20 kernels) plus LU at two
/// input sizes — 22 kernels per machine, none of which trains the model.
pub(crate) fn evaluation_kernels() -> Vec<KernelCharacteristics> {
    acs_kernels::lulesh::kernels(InputSize::Small)
        .into_iter()
        .chain(acs_kernels::lu::kernels(InputSize::Small))
        .chain(acs_kernels::lu::kernels(InputSize::Large))
        .collect()
}

/// The probe caps for one kernel: `caps_per_kernel` watt levels spread
/// evenly from below the oracle frontier's minimum power (infeasible when
/// `tight_cap_factor < 1`) up to its maximum.
pub fn probe_caps(profile: &KernelProfile, params: &GridParams) -> Vec<f64> {
    let frontier = profile.oracle_frontier();
    let lo = frontier.min_power().expect("non-empty frontier").power_w * params.tight_cap_factor;
    let hi = frontier.max_perf().expect("non-empty frontier").power_w;
    let n = params.caps_per_kernel.max(1);
    (0..n).map(|i| if n == 1 { hi } else { lo + (hi - lo) * i as f64 / (n - 1) as f64 }).collect()
}

impl ScenarioGrid {
    /// Generate the grid: characterize training and evaluation kernels on
    /// every machine and derive each kernel's probe caps. Machines are
    /// independent simulated nodes, so they characterize in parallel (and
    /// each machine's suite sweep fans out further inside
    /// [`acs_core::collect_suite`]); the machine order matches
    /// `params.machine_seeds` regardless of thread count.
    pub fn generate(params: GridParams) -> Self {
        use rayon::prelude::*;
        // Families vary in the outer position so a single-family grid
        // keeps its historical seed order and a transfer grid groups each
        // family's machines together.
        let nodes: Vec<(FamilyId, u64)> = params
            .effective_families()
            .into_iter()
            .flat_map(|f| params.machine_seeds.iter().map(move |&s| (f, s)))
            .collect();
        let machines = nodes
            .par_iter()
            .map(|&(family, seed)| {
                let machine = Machine::from_family(family, seed);
                let training = acs_core::collect_suite(&machine, &training_kernels());
                let evaluated = acs_core::collect_suite(&machine, &evaluation_kernels())
                    .into_iter()
                    .map(|p| {
                        let caps = probe_caps(&p, &params);
                        (p, caps)
                    })
                    .collect();
                MachineScenarios { machine, training, evaluated }
            })
            .collect();
        Self { params, machines }
    }

    /// Total `(machine, kernel, cap)` scenario count.
    pub fn len(&self) -> usize {
        self.machines
            .iter()
            .map(|m| m.evaluated.iter().map(|(_, caps)| caps.len()).sum::<usize>())
            .sum()
    }

    /// True when the grid holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat list of scenario descriptors (for reports and goldens).
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.len());
        for m in &self.machines {
            for (profile, caps) in &m.evaluated {
                for &cap_w in caps {
                    out.push(Scenario {
                        family: m.machine.family,
                        machine_seed: m.machine.seed,
                        kernel_id: profile.kernel.id(),
                        cap_w,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_has_at_least_200_scenarios() {
        // 3 machines × 22 kernels × 4 caps = 264.
        let params = GridParams::default();
        let expected =
            params.machine_seeds.len() * evaluation_kernels().len() * params.caps_per_kernel;
        assert!(expected >= 200, "{expected} scenarios");
    }

    #[test]
    fn training_and_evaluation_suites_are_disjoint() {
        let train: Vec<String> = training_kernels().iter().map(|k| k.id()).collect();
        for k in evaluation_kernels() {
            assert!(!train.contains(&k.id()), "{} leaks into training", k.id());
        }
    }

    #[test]
    fn probe_caps_span_the_frontier_and_include_an_infeasible_one() {
        let machine = Machine::new(2014);
        let k = &evaluation_kernels()[0];
        let profile = KernelProfile::collect(&machine, k);
        let caps = probe_caps(&profile, &GridParams::default());
        assert_eq!(caps.len(), 4);
        assert!(caps.windows(2).all(|w| w[0] < w[1]), "caps must increase: {caps:?}");
        let frontier = profile.oracle_frontier();
        assert!(caps[0] < frontier.min_power().unwrap().power_w, "tightest cap is infeasible");
        assert!((caps[3] - frontier.max_perf().unwrap().power_w).abs() < 1e-9);
    }

    #[test]
    fn quick_grid_generates_deterministically() {
        let a = ScenarioGrid::generate(GridParams::quick());
        let b = ScenarioGrid::generate(GridParams::quick());
        assert_eq!(a.scenarios(), b.scenarios());
        assert!(!a.is_empty());
        assert_eq!(a.len(), a.scenarios().len());
    }

    #[test]
    fn transfer_grid_covers_every_family_once() {
        let params = GridParams::transfer_quick();
        assert_eq!(params.effective_families().len(), acs_sim::FamilyId::ALL.len());
        let grid = ScenarioGrid::generate(params);
        let families: Vec<_> = grid.machines.iter().map(|m| m.machine.family).collect();
        assert_eq!(families, acs_sim::FamilyId::ALL.to_vec());
        // Every family serves the same kernel × cap shape.
        let shape: Vec<usize> =
            grid.machines[0].evaluated.iter().map(|(_, caps)| caps.len()).collect();
        for m in &grid.machines[1..] {
            let s: Vec<usize> = m.evaluated.iter().map(|(_, caps)| caps.len()).collect();
            assert_eq!(s, shape, "family {} differs in scenario shape", m.machine.family);
        }
    }

    #[test]
    fn empty_families_normalize_to_trinity() {
        let params = GridParams { families: vec![], ..GridParams::quick() };
        assert_eq!(params.effective_families(), vec![acs_sim::FamilyId::Trinity]);
    }
}
