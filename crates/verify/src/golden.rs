//! Golden-trace snapshots: blessed reference outputs the test suite diffs
//! every run against.
//!
//! Six canonical traces are pinned, chosen to cover the layers a
//! regression could hide in: the *unguarded* scheduler timeline (pure
//! selection logic), the *guarded chaos* timeline (fault handling and the
//! degradation ladder), the *regret summary* (end-to-end selection
//! quality vs. the oracle), and one unguarded timeline per non-Trinity
//! *machine family* (the parametric family descriptors — a drifting
//! BigCore power curve shows up here even if Trinity is untouched). All
//! are deterministic byte-for-byte, so comparison is exact string
//! equality — no tolerance windows to rot.
//!
//! Workflow: `acs verify --bless` regenerates the files under
//! `tests/golden/`; `tests/conformance.rs` fails if a current run
//! disagrees with a blessed file, writing the offending actual output to
//! `target/golden-diffs/` for CI to upload.

use crate::scenario::GridParams;
use acs_core::offline::TrainedModel;
use acs_core::{collect_suite, train, CappedRuntime, GuardPolicy, TrainingParams};
use acs_kernels::{AppInstance, InputSize};
use acs_sim::{FamilyId, FaultPlan, FaultyMachine, KernelCharacteristics, Machine};
use std::fs;
use std::path::{Path, PathBuf};

/// Machine seed every golden trace is produced on (the paper's year, as
/// everywhere else in the repo).
pub const GOLDEN_SEED: u64 = 2014;

/// Power cap for the golden runtime traces, W.
pub const GOLDEN_CAP_W: f64 = 25.0;

/// Iterations per kernel in the golden runtime traces — enough to cover
/// both sample iterations, the fixed-selection steady state, and (under
/// chaos) retries and tier moves.
pub const GOLDEN_ITERATIONS: u64 = 6;

/// The train-on suite for golden traces (matches the differential grid's
/// training discipline: CoMD + SMC, never the scheduled app).
fn golden_model(machine: &Machine) -> TrainedModel {
    let kernels: Vec<KernelCharacteristics> = acs_kernels::comd::kernels(InputSize::Default)
        .into_iter()
        .chain(acs_kernels::smc::kernels(InputSize::Small))
        .collect();
    let profiles = collect_suite(machine, &kernels);
    train(&profiles, TrainingParams::default()).expect("golden training suite is sufficient")
}

fn golden_app() -> AppInstance {
    acs_kernels::app_instances()
        .into_iter()
        .find(|a| a.label() == "LULESH Small")
        .expect("LULESH Small is part of the fixed app list")
}

/// The chaos plan pinned into the guarded golden trace. Aggressive enough
/// to exercise retries, sensor anomalies, and the degradation ladder, yet
/// fully deterministic via its seed.
pub fn golden_fault_plan() -> FaultPlan {
    FaultPlan {
        sensor_dropout_p: 0.10,
        sensor_freeze_p: 0.05,
        pstate_fail_p: 0.05,
        run_fail_p: 0.02,
        ..FaultPlan::none(GOLDEN_SEED ^ 0x5eed)
    }
}

/// Produce the unguarded scheduler timeline (canonical trace 1).
pub fn unguarded_timeline() -> String {
    let machine = Machine::new(GOLDEN_SEED);
    let model = golden_model(&machine);
    let mut rt = CappedRuntime::new(machine, model, GOLDEN_CAP_W);
    rt.run_app(&golden_app(), GOLDEN_ITERATIONS).expect("fault-free run completes");
    rt.timeline().to_json()
}

/// Produce the guarded chaos timeline (canonical trace 2).
pub fn guarded_chaos_timeline() -> String {
    let machine = Machine::new(GOLDEN_SEED);
    let model = golden_model(&machine);
    let executor = FaultyMachine::new(machine, golden_fault_plan());
    let mut rt = CappedRuntime::guarded(executor, model, GOLDEN_CAP_W, GuardPolicy::default());
    rt.run_app(&golden_app(), GOLDEN_ITERATIONS).expect("guarded run absorbs faults");
    rt.timeline().to_json()
}

/// Produce the quick-grid regret summary (canonical trace 3).
pub fn regret_summary() -> String {
    let grid = crate::scenario::ScenarioGrid::generate(GridParams::quick());
    let report = crate::differential::run_differential(&grid, TrainingParams::default())
        .expect("quick grid trains");
    serde_json::to_string_pretty(&report.golden_summary()).expect("summary serializes")
}

/// Produce one machine family's unguarded scheduler timeline: the model
/// trains and schedules on a `GOLDEN_SEED` member of `family`, end to
/// end, so a drift anywhere in that family's descriptor (P-state table,
/// power calibration, GPU width, accelerator derating) moves bytes here.
pub fn family_timeline(family: FamilyId) -> String {
    let machine = Machine::from_family(family, GOLDEN_SEED);
    let model = golden_model(&machine);
    let mut rt = CappedRuntime::new(machine, model, GOLDEN_CAP_W);
    rt.run_app(&golden_app(), GOLDEN_ITERATIONS).expect("fault-free run completes");
    rt.timeline().to_json()
}

/// Canonical trace 4: the BigCore family timeline.
pub fn bigcore_timeline() -> String {
    family_timeline(FamilyId::BigCore)
}

/// Canonical trace 5: the LowPower family timeline.
pub fn lowpower_timeline() -> String {
    family_timeline(FamilyId::LowPower)
}

/// Canonical trace 6: the AccelHybrid family timeline.
pub fn accel_timeline() -> String {
    family_timeline(FamilyId::AccelHybrid)
}

/// A golden-trace producer: renders the canonical byte stream to bless.
pub type TraceProducer = fn() -> String;

/// The golden traces, in blessing order: `(file name, producer)`.
/// (Trinity needs no family trace — trace 1 *is* its timeline, and the
/// family layer is proven bit-identical to it by the sim proptests.)
pub const TRACES: [(&str, TraceProducer); 6] = [
    ("unguarded-timeline.json", unguarded_timeline),
    ("guarded-chaos-timeline.json", guarded_chaos_timeline),
    ("regret-summary.json", regret_summary),
    ("family-bigcore-timeline.json", bigcore_timeline),
    ("family-lowpower-timeline.json", lowpower_timeline),
    ("family-accel-timeline.json", accel_timeline),
];

/// Outcome of comparing one current trace against its blessed file.
#[derive(Debug, Clone, PartialEq)]
pub enum GoldenStatus {
    /// Byte-identical.
    Match,
    /// No blessed file exists (run `acs verify --bless`).
    Missing,
    /// Current output disagrees with the blessed file.
    Mismatch {
        /// First differing byte offset.
        first_diff_at: usize,
        /// A short two-line excerpt around the divergence (blessed, then
        /// actual).
        excerpt: String,
    },
}

/// One trace's comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenDiff {
    /// Golden file name.
    pub name: String,
    /// Comparison outcome.
    pub status: GoldenStatus,
    /// The freshly produced output (written as a failure artifact when
    /// the comparison did not match).
    pub actual: String,
}

impl GoldenDiff {
    /// True when the trace matched its blessed file.
    pub fn passed(&self) -> bool {
        self.status == GoldenStatus::Match
    }
}

fn excerpt_around(blessed: &str, actual: &str, at: usize) -> String {
    let window = 60;
    let lo = at.saturating_sub(window / 2);
    let snip = |s: &str| {
        let hi = (lo + window).min(s.len());
        // Clamp to char boundaries so slicing never panics on multibyte
        // content.
        let lo_c = (lo..=hi.min(s.len())).find(|&i| s.is_char_boundary(i)).unwrap_or(s.len());
        let hi_c = (hi..s.len() + 1).find(|&i| s.is_char_boundary(i)).unwrap_or(s.len());
        s[lo_c..hi_c].to_string()
    };
    format!("blessed: …{}…\nactual:  …{}…", snip(blessed), snip(actual))
}

/// Compare one produced trace against its blessed file.
fn compare_one(dir: &Path, name: &str, actual: String) -> GoldenDiff {
    let path = dir.join(name);
    let status = match fs::read_to_string(&path) {
        Err(_) => GoldenStatus::Missing,
        Ok(blessed) if blessed == actual => GoldenStatus::Match,
        Ok(blessed) => {
            let at = blessed
                .bytes()
                .zip(actual.bytes())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| blessed.len().min(actual.len()));
            GoldenStatus::Mismatch {
                first_diff_at: at,
                excerpt: excerpt_around(&blessed, &actual, at),
            }
        }
    };
    GoldenDiff { name: name.to_string(), status, actual }
}

/// Compare every canonical trace against the blessed files in `dir`.
pub fn compare(dir: &Path) -> Vec<GoldenDiff> {
    TRACES.iter().map(|(name, produce)| compare_one(dir, name, produce())).collect()
}

/// Regenerate (bless) every golden file in `dir`. Returns the written
/// paths.
pub fn bless(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for (name, produce) in TRACES {
        let path = dir.join(name);
        fs::write(&path, produce())?;
        written.push(path);
    }
    Ok(written)
}

/// Write failing traces' actual outputs (plus a summary) under
/// `artifact_dir` so CI can upload them. Returns the paths written.
pub fn write_failure_artifacts(
    artifact_dir: &Path,
    diffs: &[GoldenDiff],
) -> std::io::Result<Vec<PathBuf>> {
    let failing: Vec<&GoldenDiff> = diffs.iter().filter(|d| !d.passed()).collect();
    if failing.is_empty() {
        return Ok(Vec::new());
    }
    fs::create_dir_all(artifact_dir)?;
    let mut written = Vec::new();
    let mut summary = String::new();
    for d in failing {
        let path = artifact_dir.join(format!("actual-{}", d.name));
        fs::write(&path, &d.actual)?;
        written.push(path);
        summary.push_str(&render_diff(d));
        summary.push('\n');
    }
    let summary_path = artifact_dir.join("summary.txt");
    fs::write(&summary_path, summary)?;
    written.push(summary_path);
    Ok(written)
}

/// Human-readable rendering of one comparison result.
pub fn render_diff(d: &GoldenDiff) -> String {
    match &d.status {
        GoldenStatus::Match => format!("{}: ok", d.name),
        GoldenStatus::Missing => {
            format!("{}: missing blessed file (run `acs verify --bless`)", d.name)
        }
        GoldenStatus::Mismatch { first_diff_at, excerpt } => {
            format!("{}: MISMATCH at byte {first_diff_at}\n{excerpt}", d.name)
        }
    }
}

/// The repo-relative default golden directory, resolved against this
/// crate's manifest so it works from any test or binary working
/// directory.
pub fn default_golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// The default failure-artifact directory (`target/golden-diffs/`).
pub fn default_artifact_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/golden-diffs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn producers_are_deterministic() {
        assert_eq!(unguarded_timeline(), unguarded_timeline());
        assert_eq!(guarded_chaos_timeline(), guarded_chaos_timeline());
    }

    #[test]
    fn chaos_trace_differs_from_unguarded_trace() {
        assert_ne!(unguarded_timeline(), guarded_chaos_timeline());
    }

    #[test]
    fn family_traces_are_pairwise_distinct_and_trinity_equals_trace_one() {
        // Each family timeline must carry its own signal (identical bytes
        // would mean the descriptor is not actually reaching the runtime),
        // while Trinity-via-family reproduces the canonical trace exactly.
        let traces =
            [unguarded_timeline(), bigcore_timeline(), lowpower_timeline(), accel_timeline()];
        for i in 0..traces.len() {
            for j in i + 1..traces.len() {
                assert_ne!(traces[i], traces[j], "traces {i} and {j} are identical");
            }
        }
        assert_eq!(family_timeline(FamilyId::Trinity), traces[0]);
    }

    #[test]
    fn bless_then_compare_matches() {
        let dir = std::env::temp_dir().join("acs-verify-test-golden-roundtrip");
        let _ = fs::remove_dir_all(&dir);
        let written = bless(&dir).unwrap();
        assert_eq!(written.len(), TRACES.len());
        let diffs = compare(&dir);
        assert!(diffs.iter().all(GoldenDiff::passed), "{diffs:?}");
    }

    #[test]
    fn tampered_golden_is_flagged_with_offset_and_artifacts() {
        let dir = std::env::temp_dir().join("acs-verify-test-golden-tamper");
        let _ = fs::remove_dir_all(&dir);
        bless(&dir).unwrap();
        let victim = dir.join(TRACES[0].0);
        let mut text = fs::read_to_string(&victim).unwrap();
        text.insert(5, 'X');
        fs::write(&victim, text).unwrap();

        let diffs = compare(&dir);
        let d = &diffs[0];
        match &d.status {
            GoldenStatus::Mismatch { first_diff_at, excerpt } => {
                assert_eq!(*first_diff_at, 5);
                assert!(excerpt.contains("blessed:"), "{excerpt}");
            }
            other => panic!("expected mismatch, got {other:?}"),
        }

        let artifact_dir = std::env::temp_dir().join("acs-verify-test-golden-artifacts");
        let _ = fs::remove_dir_all(&artifact_dir);
        let written = write_failure_artifacts(&artifact_dir, &diffs).unwrap();
        // actual-<name> plus summary.txt.
        assert_eq!(written.len(), 2, "{written:?}");
        assert!(artifact_dir.join("summary.txt").exists());
    }

    #[test]
    fn missing_golden_is_reported_not_panicked() {
        let dir = std::env::temp_dir().join("acs-verify-test-golden-missing");
        let _ = fs::remove_dir_all(&dir);
        let diffs = compare(&dir);
        assert!(diffs.iter().all(|d| d.status == GoldenStatus::Missing));
        assert!(render_diff(&diffs[0]).contains("--bless"));
    }
}
