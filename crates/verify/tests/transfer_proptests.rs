//! Property tests for the cross-architecture transfer harness: the
//! invariants that make transfer regret a trustworthy number must hold
//! for *arbitrary* seeds and families, not just the blessed grid.

use acs_core::profile::KernelProfile;
use acs_core::TrainingParams;
use acs_kernels::InputSize;
use acs_sim::{FamilyId, Machine};
use acs_verify::{
    check_cap_monotonicity, check_frontier_non_domination, run_transfer, GridParams, ScenarioGrid,
};
use proptest::prelude::*;

/// Strategy drawing one of the four machine families.
fn family_strategy() -> impl Strategy<Value = FamilyId> {
    (0usize..FamilyId::ALL.len()).prop_map(|i| FamilyId::ALL[i])
}

proptest! {
    // Each case sweeps full 42-configuration frontiers (and the transfer
    // identity case trains models), so the local budget is small;
    // `PROPTEST_CASES` (CI) can raise it.
    #![proptest_config(ProptestConfig::with_cases_env(8))]

    /// Family instantiation is seed-deterministic all the way up to the
    /// verification layer: two independently collected oracle frontiers
    /// on the same `(family, seed)` member are identical.
    #[test]
    fn family_frontiers_are_seed_deterministic(
        family in family_strategy(),
        seed in 0u64..512,
    ) {
        let k = &acs_kernels::lu::kernels(InputSize::Small)[0];
        let a = KernelProfile::collect(&Machine::from_family(family, seed), k).oracle_frontier();
        let b = KernelProfile::collect(&Machine::from_family(family, seed), k).oracle_frontier();
        prop_assert_eq!(a, b, "{} frontier must be a pure function of the seed", family);
    }

    /// Cap monotonicity and frontier non-domination hold on every family
    /// at every seed — the frontier physics is family-independent.
    #[test]
    fn every_family_frontier_is_monotone_and_non_dominated(
        family in family_strategy(),
        seed in 0u64..512,
    ) {
        let m = Machine::from_family(family, seed);
        for k in acs_kernels::lu::kernels(InputSize::Small) {
            let f = KernelProfile::collect(&m, &k).oracle_frontier();
            let id = format!("{family}:{}", k.id());
            prop_assert_eq!(check_cap_monotonicity(&id, &f), vec![]);
            prop_assert_eq!(check_frontier_non_domination(&id, &f), vec![]);
        }
    }
}

proptest! {
    // The identity property trains two models and replays two full pair
    // matrices per case — a handful of cases is already a strong check.
    #![proptest_config(ProptestConfig::with_cases_env(3))]

    /// The defining identity: a native `(A, A)` pair has *exactly* zero
    /// transfer regret and zero overshoot delta, for any machine seed.
    /// This is the end-to-end determinism proof — any nondeterminism in
    /// grid generation, training, or replay would break exact equality.
    #[test]
    fn native_pairs_are_regret_free_at_any_seed(seed in 0u64..256) {
        // Two families keep the matrix small while still exercising the
        // cross-pair code paths around the native cells.
        let params = GridParams {
            machine_seeds: vec![seed],
            families: vec![FamilyId::Trinity, FamilyId::LowPower],
            caps_per_kernel: 2,
            ..GridParams::default()
        };
        let grid = ScenarioGrid::generate(params);
        let matrix = run_transfer(&grid, TrainingParams::default()).unwrap();
        prop_assert_eq!(matrix.cells.len(), 2 * 2 * 2);
        for c in &matrix.cells {
            if c.is_native() {
                prop_assert_eq!(c.transfer_regret, 0.0, "{:?}", c);
                prop_assert_eq!(c.overshoot_delta, 0.0, "{:?}", c);
            } else {
                prop_assert!(c.transfer_regret >= 0.0, "{:?}", c);
            }
        }
    }
}
