//! Determinism gate for the drift-differential grid (ISSUE 9 satellite):
//! the full report — not just its quantized golden summary — must be
//! byte-identical across independent runs, and the zero-drift diagonal
//! must reproduce the static path's regret bit-for-bit with no
//! re-selections. Thread-count invariance of the quantized summary is
//! pinned separately in the `drift` module's unit tests.

use acs_verify::{run_drift, DriftGridParams};

#[test]
fn full_report_is_byte_identical_across_runs() {
    let run = || {
        let report = run_drift(&DriftGridParams::quick()).expect("training succeeds");
        serde_json::to_string(&report).expect("serialize report")
    };
    assert_eq!(run(), run(), "two runs of the same grid serialized differently");
}

#[test]
fn zero_drift_diagonal_reproduces_static_regret_exactly() {
    let report = run_drift(&DriftGridParams::quick()).expect("training succeeds");
    let zero_cells: Vec<_> = report.cells.iter().filter(|c| c.scenario == "zero").collect();
    assert!(!zero_cells.is_empty(), "the grid lost its zero-drift diagonal");
    for cell in zero_cells {
        assert_eq!(
            cell.static_mean_regret.to_bits(),
            cell.adaptive_mean_regret.to_bits(),
            "zero-drift regret drifted for {}/{} @ {} W",
            cell.scenario,
            cell.kernel_id,
            cell.cap_w
        );
        assert!(cell.identical_selections, "adaptation moved a zero-drift selection: {cell:?}");
        assert_eq!(cell.reselections, 0, "{cell:?}");
        assert_eq!(
            cell.static_violations, cell.adaptive_violations,
            "violation counts split at zero drift: {cell:?}"
        );
    }
}
