//! The integrated profiling library (Section III-D).
//!
//! On real hardware the library wraps kernels with instrumentation pragmas
//! that a preprocessor lowers to enter/exit calls recording counters and
//! power. Here the profiler drives the [`acs_sim::Machine`] instead, but
//! exposes the same shape of API: per-kernel, per-iteration samples pushed
//! into a shared [`History`].
//!
//! The paper reports two overheads (Section IV-C): <50 µs to record a
//! sample, and <10% from the 1 kHz power-estimate sampling loop. Both can
//! be enabled via [`Profiler::with_overheads`] to study their effect; the
//! default profiler is overhead-free so model error can be isolated from
//! instrumentation error.

use crate::history::History;
use crate::sample::ProfileSample;
use acs_sim::{Configuration, KernelCharacteristics, Machine};
use rayon::prelude::*;
use std::sync::Arc;

/// Drives simulated kernel executions and records them.
#[derive(Debug, Clone)]
pub struct Profiler {
    machine: Machine,
    history: Arc<History>,
    /// Fixed cost of recording one sample, seconds.
    record_overhead_s: f64,
    /// Relative slowdown from the power-sampling loop.
    sampling_overhead_frac: f64,
}

impl Profiler {
    /// An overhead-free profiler on the given machine.
    pub fn new(machine: Machine) -> Self {
        Self {
            machine,
            history: Arc::new(History::new()),
            record_overhead_s: 0.0,
            sampling_overhead_frac: 0.0,
        }
    }

    /// A profiler modeling the paper's measured instrumentation overheads:
    /// `record_overhead_s` per sample (paper: < 50 µs) and a relative
    /// `sampling_overhead_frac` slowdown (paper: < 10%).
    pub fn with_overheads(
        machine: Machine,
        record_overhead_s: f64,
        sampling_overhead_frac: f64,
    ) -> Self {
        assert!(record_overhead_s >= 0.0 && sampling_overhead_frac >= 0.0);
        Self {
            machine,
            history: Arc::new(History::new()),
            record_overhead_s,
            sampling_overhead_frac,
        }
    }

    /// The shared history this profiler records into.
    pub fn history(&self) -> &Arc<History> {
        &self.history
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Execute one iteration of a kernel at a configuration, record it,
    /// and return the sample.
    pub fn profile(
        &self,
        kernel: &KernelCharacteristics,
        config: &Configuration,
        iteration: u64,
    ) -> ProfileSample {
        let run = self.machine.run_iter(kernel, config, iteration);
        let mut sample = ProfileSample::from_run(&kernel.id(), iteration, &run);
        sample.time_s =
            sample.time_s * (1.0 + self.sampling_overhead_frac) + self.record_overhead_s;
        self.history.record(sample.clone());
        sample
    }

    /// Profile a kernel across the entire configuration space (the offline
    /// characterization sweep), recording every sample.
    pub fn sweep(&self, kernel: &KernelCharacteristics) -> Vec<ProfileSample> {
        Configuration::all().iter().map(|c| self.profile(kernel, c, 0)).collect()
    }

    /// Profile many kernels across the full configuration space in
    /// parallel. Deterministic: simulator noise is addressed by
    /// `(seed, kernel, config, iteration)`, not by execution order.
    pub fn sweep_suite(&self, kernels: &[KernelCharacteristics]) -> Vec<Vec<ProfileSample>> {
        kernels.par_iter().map(|k| self.sweep(k)).collect()
    }

    /// Total instrumented wall time currently recorded, seconds. The
    /// offline stage must stay cheap — the paper's training runs take
    /// under two hours.
    pub fn recorded_time_s(&self) -> f64 {
        self.history
            .kernel_ids()
            .iter()
            .flat_map(|id| self.history.samples(id))
            .map(|s| s.time_s)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_sim::CpuPState;

    fn kernel() -> KernelCharacteristics {
        KernelCharacteristics::default()
    }

    #[test]
    fn profile_records_into_history() {
        let p = Profiler::new(Machine::noiseless(0));
        let k = kernel();
        let s = p.profile(&k, &Configuration::cpu(2, CpuPState::MAX), 0);
        assert_eq!(p.history().sample_count(&k.id()), 1);
        assert_eq!(p.history().samples(&k.id())[0], s);
    }

    #[test]
    fn sweep_covers_configuration_space() {
        let p = Profiler::new(Machine::noiseless(0));
        let k = kernel();
        let samples = p.sweep(&k);
        assert_eq!(samples.len(), Configuration::space_size());
        assert_eq!(p.history().sample_count(&k.id()), Configuration::space_size());
    }

    #[test]
    fn parallel_sweep_matches_serial_sweep() {
        let k1 = kernel();
        let k2 = KernelCharacteristics { name: "other".into(), ..kernel() };

        let serial = Profiler::new(Machine::new(42));
        let a1 = serial.sweep(&k1);
        let a2 = serial.sweep(&k2);

        let parallel = Profiler::new(Machine::new(42));
        let both = parallel.sweep_suite(&[k1, k2]);

        assert_eq!(both[0], a1);
        assert_eq!(both[1], a2);
    }

    #[test]
    fn overheads_inflate_measured_time() {
        let k = kernel();
        let cfg = Configuration::cpu(4, CpuPState::MAX);
        let clean = Profiler::new(Machine::noiseless(0)).profile(&k, &cfg, 0);
        let dirty =
            Profiler::with_overheads(Machine::noiseless(0), 50e-6, 0.05).profile(&k, &cfg, 0);
        let expected = clean.time_s * 1.05 + 50e-6;
        assert!((dirty.time_s - expected).abs() < 1e-12);
    }

    #[test]
    fn paper_overhead_bound_holds() {
        // With the paper's worst-case overheads, a millisecond-scale kernel
        // still measures within ~15% of its true time.
        let k = kernel();
        let cfg = Configuration::cpu(4, CpuPState::MAX);
        let clean = Profiler::new(Machine::noiseless(0)).profile(&k, &cfg, 0);
        let dirty =
            Profiler::with_overheads(Machine::noiseless(0), 50e-6, 0.10).profile(&k, &cfg, 0);
        assert!(dirty.time_s / clean.time_s < 1.15);
    }

    #[test]
    fn recorded_time_accumulates() {
        let p = Profiler::new(Machine::noiseless(0));
        let k = kernel();
        let s1 = p.profile(&k, &Configuration::cpu(1, CpuPState::MIN), 0);
        let s2 = p.profile(&k, &Configuration::cpu(4, CpuPState::MAX), 1);
        assert!((p.recorded_time_s() - (s1.time_s + s2.time_s)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn negative_overheads_rejected() {
        let _ = Profiler::with_overheads(Machine::noiseless(0), -1.0, 0.0);
    }
}
