//! Profiling regions and invocation contexts.
//!
//! Section III-D instruments source with profiling pragmas that delimit
//! regions; Section VI notes that the system "does not automatically
//! differentiate between invocations of the same kernel with distinct data
//! inputs or input sizes" and suggests using call stacks "to differentiate
//! between invocations of the same kernel from distinct points in the
//! application". This module provides both: a nested region stack and
//! context-qualified kernel identities, so one kernel called from two
//! phases (or with two input sizes) accumulates two independent histories
//! and can be assigned two different configurations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A stack of named regions representing the current call context.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionStack {
    frames: Vec<String>,
}

/// Token proving a region was entered; must be passed back to
/// [`RegionStack::exit`] so mismatched exits are caught at the call site.
#[derive(Debug, PartialEq, Eq)]
#[must_use = "a region that is entered must be exited"]
pub struct RegionToken {
    depth: usize,
}

impl RegionStack {
    /// An empty (top-level) context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enter a named region (e.g. an application phase or loop nest).
    pub fn enter(&mut self, name: &str) -> RegionToken {
        assert!(!name.contains('>'), "region names may not contain '>'");
        self.frames.push(name.to_string());
        RegionToken { depth: self.frames.len() }
    }

    /// Exit the region `token` came from. Panics on out-of-order exits —
    /// regions must nest, exactly like the paper's pragma pairs.
    pub fn exit(&mut self, token: RegionToken) {
        assert_eq!(
            token.depth,
            self.frames.len(),
            "region exit out of order: token depth {} vs stack depth {}",
            token.depth,
            self.frames.len()
        );
        self.frames.pop();
    }

    /// Current nesting depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The call path, e.g. `main>timestep>hydro`.
    pub fn path(&self) -> String {
        self.frames.join(">")
    }

    /// Qualify a kernel identity with the current context.
    pub fn context_key(&self, kernel_id: &str, input_bytes: Option<u64>) -> ContextKey {
        ContextKey { kernel_id: kernel_id.to_string(), call_path: self.path(), input_bytes }
    }
}

/// A context-qualified kernel identity: the kernel, where it was called
/// from, and (when the runtime can see it — an OpenCL runtime can) the
/// input size.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ContextKey {
    /// The kernel's own identity.
    pub kernel_id: String,
    /// `>`-joined call path at invocation.
    pub call_path: String,
    /// Total argument bytes, when known.
    pub input_bytes: Option<u64>,
}

impl ContextKey {
    /// The history key this context records under. Two invocations of the
    /// same kernel from different contexts (or with different input
    /// sizes) get distinct keys — and therefore independent sample pairs,
    /// classifications, and selected configurations.
    pub fn history_id(&self) -> String {
        match self.input_bytes {
            Some(b) => format!("{}@{}#{}", self.kernel_id, self.call_path, b),
            None => format!("{}@{}", self.kernel_id, self.call_path),
        }
    }
}

impl fmt::Display for ContextKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.history_id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{History, ProfileSample, Profiler};
    use acs_sim::{Configuration, CpuPState, KernelCharacteristics, Machine};

    #[test]
    fn regions_nest_and_unwind() {
        let mut stack = RegionStack::new();
        assert_eq!(stack.path(), "");
        let a = stack.enter("main");
        let b = stack.enter("timestep");
        assert_eq!(stack.path(), "main>timestep");
        assert_eq!(stack.depth(), 2);
        stack.exit(b);
        assert_eq!(stack.path(), "main");
        stack.exit(a);
        assert_eq!(stack.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_exit_panics() {
        let mut stack = RegionStack::new();
        let a = stack.enter("outer");
        let _b = stack.enter("inner");
        stack.exit(a); // must exit inner first
    }

    #[test]
    #[should_panic(expected = "may not contain")]
    fn separator_in_name_rejected() {
        let mut stack = RegionStack::new();
        let _ = stack.enter("bad>name");
    }

    #[test]
    fn contexts_distinguish_call_sites() {
        let mut stack = RegionStack::new();
        let t = stack.enter("force");
        let from_force = stack.context_key("CoMD/Default/LJForce", None);
        stack.exit(t);
        let t = stack.enter("energy");
        let from_energy = stack.context_key("CoMD/Default/LJForce", None);
        stack.exit(t);
        assert_ne!(from_force.history_id(), from_energy.history_id());
        assert_eq!(from_force.kernel_id, from_energy.kernel_id);
    }

    #[test]
    fn contexts_distinguish_input_sizes() {
        let stack = RegionStack::new();
        let small = stack.context_key("LU/lud", Some(1 << 20));
        let large = stack.context_key("LU/lud", Some(1 << 26));
        assert_ne!(small.history_id(), large.history_id());
    }

    #[test]
    fn history_keeps_contexts_separate() {
        let machine = Machine::noiseless(0);
        let profiler = Profiler::new(machine.clone());
        let kernel = KernelCharacteristics::default();
        let cfg = Configuration::cpu(4, CpuPState::MAX);

        let mut stack = RegionStack::new();
        let history = History::new();
        for phase in ["hydro", "transport"] {
            let t = stack.enter(phase);
            let key = stack.context_key(&kernel.id(), None);
            let sample = profiler.profile(&kernel, &cfg, 0);
            history.record(ProfileSample { kernel_id: key.history_id(), ..sample });
            stack.exit(t);
        }
        assert_eq!(history.kernel_ids().len(), 2);
        for id in history.kernel_ids() {
            assert_eq!(history.sample_count(&id), 1);
        }
    }

    #[test]
    fn display_matches_history_id() {
        let key = ContextKey {
            kernel_id: "A/B/k".into(),
            call_path: "main>x".into(),
            input_bytes: Some(42),
        };
        assert_eq!(key.to_string(), key.history_id());
        assert_eq!(key.to_string(), "A/B/k@main>x#42");
    }
}
