//! # acs-profiling — integrated power/performance profiling library
//!
//! The reproduction of the paper's Section III-D library: it associates
//! power and performance measurements with individual kernel executions,
//! keeps a shared run [`History`] accessible to the scheduler, and drives
//! the offline characterization sweeps (optionally modeling the paper's
//! measured instrumentation overheads).
//!
//! ```
//! use acs_profiling::Profiler;
//! use acs_sim::{Configuration, CpuPState, KernelCharacteristics, Machine};
//!
//! let profiler = Profiler::new(Machine::new(42));
//! let kernel = KernelCharacteristics::default();
//! let sample = profiler.profile(&kernel, &Configuration::cpu(4, CpuPState::MAX), 0);
//! assert_eq!(profiler.history().sample_count(&kernel.id()), 1);
//! assert!(sample.power_w() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod history;
pub mod profiler;
pub mod region;
pub mod sample;
pub mod timeline;

pub use history::History;
pub use profiler::Profiler;
pub use region::{ContextKey, RegionStack, RegionToken};
pub use sample::ProfileSample;
pub use timeline::{Entry, Event, Timeline};
