//! Run history.
//!
//! "A history of performance and power measurements is made accessible to
//! the application or runtime, which facilitates online selections of
//! device and configuration for a given kernel" (Section III-D). The
//! history is shared between the application threads and the scheduler, so
//! it is guarded by a `parking_lot::RwLock`.

use crate::sample::ProfileSample;
use acs_sim::Configuration;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Thread-safe store of profile samples, indexed by kernel id.
#[derive(Debug, Default)]
pub struct History {
    inner: RwLock<HashMap<String, Vec<ProfileSample>>>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&self, sample: ProfileSample) {
        self.inner.write().entry(sample.kernel_id.clone()).or_default().push(sample);
    }

    /// Number of samples recorded for a kernel.
    pub fn sample_count(&self, kernel_id: &str) -> usize {
        self.inner.read().get(kernel_id).map_or(0, Vec::len)
    }

    /// Total number of samples across all kernels.
    pub fn total_samples(&self) -> usize {
        self.inner.read().values().map(Vec::len).sum()
    }

    /// All samples for a kernel, cloned out (the store stays locked only
    /// for the copy).
    pub fn samples(&self, kernel_id: &str) -> Vec<ProfileSample> {
        self.inner.read().get(kernel_id).cloned().unwrap_or_default()
    }

    /// The most recent sample of a kernel at a specific configuration.
    pub fn latest_at(&self, kernel_id: &str, config: &Configuration) -> Option<ProfileSample> {
        self.inner.read().get(kernel_id)?.iter().rev().find(|s| &s.config == config).cloned()
    }

    /// The best-performing sample observed so far for a kernel, optionally
    /// restricted to samples within a power cap.
    pub fn best_observed(&self, kernel_id: &str, cap_w: Option<f64>) -> Option<ProfileSample> {
        self.inner
            .read()
            .get(kernel_id)?
            .iter()
            .filter(|s| cap_w.is_none_or(|cap| s.power_w() <= cap))
            .min_by(|a, b| a.time_s.partial_cmp(&b.time_s).unwrap())
            .cloned()
    }

    /// Kernel ids present in the history, sorted.
    pub fn kernel_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.inner.read().keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Drop all samples (e.g. between cross-validation folds).
    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_sim::{CpuPState, KernelCharacteristics, Machine};

    fn sample(kernel: &KernelCharacteristics, threads: u8, iter: u64) -> ProfileSample {
        let m = Machine::noiseless(0);
        let cfg = Configuration::cpu(threads, CpuPState::MAX);
        ProfileSample::from_run(&kernel.id(), iter, &m.run(kernel, &cfg))
    }

    #[test]
    fn record_and_query() {
        let h = History::new();
        let k = KernelCharacteristics::default();
        h.record(sample(&k, 1, 0));
        h.record(sample(&k, 4, 1));
        assert_eq!(h.sample_count(&k.id()), 2);
        assert_eq!(h.total_samples(), 2);
        assert_eq!(h.samples(&k.id()).len(), 2);
        assert_eq!(h.kernel_ids(), vec![k.id()]);
    }

    #[test]
    fn missing_kernel_is_empty() {
        let h = History::new();
        assert_eq!(h.sample_count("nope"), 0);
        assert!(h.samples("nope").is_empty());
        assert!(h.best_observed("nope", None).is_none());
        assert!(h.latest_at("nope", &Configuration::cpu(1, CpuPState::MIN)).is_none());
    }

    #[test]
    fn best_observed_prefers_fastest() {
        let h = History::new();
        let k = KernelCharacteristics::default();
        h.record(sample(&k, 1, 0));
        h.record(sample(&k, 4, 1));
        let best = h.best_observed(&k.id(), None).unwrap();
        assert_eq!(best.config.threads, 4, "4 threads is fastest");
    }

    #[test]
    fn best_observed_respects_cap() {
        let h = History::new();
        let k = KernelCharacteristics::default();
        let slow = sample(&k, 1, 0);
        let fast = sample(&k, 4, 1);
        let cap = (slow.power_w() + fast.power_w()) / 2.0;
        h.record(slow);
        h.record(fast.clone());
        assert!(fast.power_w() > cap, "test assumes 4T draws more than the cap");
        let best = h.best_observed(&k.id(), Some(cap)).unwrap();
        assert_eq!(best.config.threads, 1);
        // An impossible cap yields nothing.
        assert!(h.best_observed(&k.id(), Some(0.1)).is_none());
    }

    #[test]
    fn latest_at_finds_most_recent() {
        let h = History::new();
        let k = KernelCharacteristics::default();
        let cfg = Configuration::cpu(2, CpuPState::MAX);
        let m = Machine::new(5); // noisy: iterations differ
        h.record(ProfileSample::from_run(&k.id(), 0, &m.run_iter(&k, &cfg, 0)));
        h.record(ProfileSample::from_run(&k.id(), 1, &m.run_iter(&k, &cfg, 1)));
        let latest = h.latest_at(&k.id(), &cfg).unwrap();
        assert_eq!(latest.iteration, 1);
    }

    #[test]
    fn clear_empties_store() {
        let h = History::new();
        h.record(sample(&KernelCharacteristics::default(), 1, 0));
        h.clear();
        assert_eq!(h.total_samples(), 0);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let h = std::sync::Arc::new(History::new());
        let k = KernelCharacteristics::default();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                let k = k.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        h.record(sample(&k, (t % 4) + 1, i));
                    }
                });
            }
        });
        assert_eq!(h.total_samples(), 200);
    }
}
