//! Scheduling timeline: an ordered record of what the runtime did and why.
//!
//! The profiling library is "designed to provide a foundation for dynamic
//! scheduling" (Section III-D); a scheduler that cannot explain its
//! decisions cannot be debugged. The timeline records kernel executions,
//! configuration changes, cap changes, and limiter interventions with
//! virtual timestamps, and renders a human-readable trace.

use acs_sim::Configuration;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// One timeline event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A kernel iteration completed.
    KernelRun {
        /// Kernel identifier.
        kernel_id: String,
        /// Iteration number.
        iteration: u64,
        /// Configuration used.
        config: Configuration,
        /// Wall time of the iteration, seconds.
        time_s: f64,
        /// Measured package power, W.
        power_w: f64,
    },
    /// The scheduler fixed or changed a kernel's configuration.
    ConfigSelected {
        /// Kernel identifier.
        kernel_id: String,
        /// The chosen configuration.
        config: Configuration,
        /// Why (free-form, e.g. "model", "model+fl", "cap change").
        reason: String,
    },
    /// The node power budget changed.
    CapChanged {
        /// New cap, W.
        cap_w: f64,
    },
    /// A frequency limiter stepped a device's P-state.
    LimiterStep {
        /// Kernel identifier.
        kernel_id: String,
        /// Configuration after the step.
        config: Configuration,
    },
    /// Measured power exceeded the cap on a configured iteration.
    CapViolation {
        /// Kernel identifier.
        kernel_id: String,
        /// Measured package power, W.
        power_w: f64,
        /// Cap in force, W.
        cap_w: f64,
        /// Consecutive violations so far (this one included).
        streak: u32,
    },
    /// The guard moved a kernel along its degradation ladder.
    TierChanged {
        /// Kernel identifier.
        kernel_id: String,
        /// Tier before the move (rendered label).
        from: String,
        /// Tier after the move (rendered label).
        to: String,
        /// Why (e.g. "cap violations", "stale sensor", "recovered").
        reason: String,
    },
    /// The power sensor misbehaved (dropout or frozen reading).
    SensorAnomaly {
        /// Kernel identifier.
        kernel_id: String,
        /// Anomaly kind ("dropout" or "frozen").
        kind: String,
    },
    /// A failed execution or clamped transition is being retried after a
    /// backoff wait. Advances the virtual clock by `wait_s`.
    RetryBackoff {
        /// Kernel identifier.
        kernel_id: String,
        /// Retry attempt number (1-based).
        attempt: u32,
        /// Backoff wait before the retry, seconds.
        wait_s: f64,
        /// What went wrong (free-form).
        fault: String,
    },
    /// A requested configuration transition was silently clamped by the
    /// hardware: the kernel ran at `actual`, not `requested`.
    TransitionClamped {
        /// Kernel identifier.
        kernel_id: String,
        /// Configuration the scheduler asked for.
        requested: Configuration,
        /// Configuration the hardware actually ran.
        actual: Configuration,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entry {
    /// Virtual time at which the event was recorded, seconds.
    pub at_s: f64,
    /// The event.
    pub event: Event,
}

/// An append-only, thread-safe scheduling trace with a virtual clock that
/// advances by recorded kernel durations.
///
/// By default the trace is unbounded. A long-running process (the
/// `acs-serve` daemon) instead bounds it with
/// [`with_capacity`](Self::with_capacity) /
/// [`set_capacity`](Self::set_capacity): the trace becomes a ring buffer
/// that drops its **oldest** entries once full, counting what it sheds in
/// [`dropped`](Self::dropped). While the entry count stays under the
/// capacity the observable trace — [`entries`](Self::entries),
/// [`to_json`](Self::to_json), [`render`](Self::render) — is byte-for-byte
/// identical to an unbounded timeline's, so golden traces recorded before
/// the bound existed keep passing.
#[derive(Debug, Default)]
pub struct Timeline {
    inner: Mutex<TimelineInner>,
}

#[derive(Debug, Default)]
struct TimelineInner {
    now_s: f64,
    entries: VecDeque<Entry>,
    /// Maximum retained entries (`None` = unbounded).
    capacity: Option<usize>,
    /// Entries shed by the ring buffer.
    dropped: u64,
}

impl TimelineInner {
    fn evict_to_capacity(&mut self) {
        if let Some(cap) = self.capacity {
            while self.entries.len() > cap {
                self.entries.pop_front();
                self.dropped += 1;
            }
        }
    }
}

impl Timeline {
    /// An empty, unbounded timeline at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty timeline retaining at most `capacity` entries (oldest
    /// entries are dropped first once full).
    pub fn with_capacity(capacity: usize) -> Self {
        let t = Self::default();
        t.inner.lock().capacity = Some(capacity);
        t
    }

    /// Change the retention bound (`None` = unbounded). Shrinking below
    /// the current length evicts the oldest entries immediately.
    pub fn set_capacity(&self, capacity: Option<usize>) {
        let mut inner = self.inner.lock();
        inner.capacity = capacity;
        inner.evict_to_capacity();
    }

    /// The retention bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.inner.lock().capacity
    }

    /// Entries shed so far by the ring buffer (0 while under capacity,
    /// and always 0 for an unbounded timeline).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Record an event at the current virtual time. `KernelRun` events
    /// advance the clock by their duration; `RetryBackoff` events by their
    /// wait.
    pub fn record(&self, event: Event) {
        let mut inner = self.inner.lock();
        let at_s = inner.now_s;
        match &event {
            Event::KernelRun { time_s, .. } => inner.now_s += time_s,
            Event::RetryBackoff { wait_s, .. } => inner.now_s += wait_s,
            _ => {}
        }
        inner.entries.push_back(Entry { at_s, event });
        inner.evict_to_capacity();
    }

    /// Current virtual time, seconds.
    pub fn now_s(&self) -> f64 {
        self.inner.lock().now_s
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all retained entries, oldest first.
    pub fn entries(&self) -> Vec<Entry> {
        self.inner.lock().entries.iter().cloned().collect()
    }

    /// Canonical JSON serialization of the whole trace. The vendored
    /// `serde_json` emits shortest-roundtrip floats and preserves field
    /// order, so two timelines produced by identical schedules serialize
    /// to byte-identical strings — the representation the determinism
    /// tests and golden-trace gates diff.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.entries()).expect("timeline entries always serialize")
    }

    /// Events concerning one kernel.
    pub fn for_kernel(&self, kernel_id: &str) -> Vec<Entry> {
        self.entries()
            .into_iter()
            .filter(|e| match &e.event {
                Event::KernelRun { kernel_id: k, .. }
                | Event::ConfigSelected { kernel_id: k, .. }
                | Event::LimiterStep { kernel_id: k, .. }
                | Event::CapViolation { kernel_id: k, .. }
                | Event::TierChanged { kernel_id: k, .. }
                | Event::SensorAnomaly { kernel_id: k, .. }
                | Event::RetryBackoff { kernel_id: k, .. }
                | Event::TransitionClamped { kernel_id: k, .. } => k == kernel_id,
                Event::CapChanged { .. } => false,
            })
            .collect()
    }

    /// Total energy recorded across kernel runs, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.entries()
            .iter()
            .map(|e| match &e.event {
                Event::KernelRun { time_s, power_w, .. } => time_s * power_w,
                _ => 0.0,
            })
            .sum()
    }

    /// Render the trace as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.entries() {
            let _ = write!(out, "[{:>10.3} ms] ", e.at_s * 1e3);
            match &e.event {
                Event::KernelRun { kernel_id, iteration, config, time_s, power_w } => {
                    let _ = writeln!(
                        out,
                        "run   {kernel_id} #{iteration} @ {config}  ({:.3} ms, {:.1} W)",
                        time_s * 1e3,
                        power_w
                    );
                }
                Event::ConfigSelected { kernel_id, config, reason } => {
                    let _ = writeln!(out, "pick  {kernel_id} → {config}  [{reason}]");
                }
                Event::CapChanged { cap_w } => {
                    let _ = writeln!(out, "cap   → {cap_w:.1} W");
                }
                Event::LimiterStep { kernel_id, config } => {
                    let _ = writeln!(out, "limit {kernel_id} ↓ {config}");
                }
                Event::CapViolation { kernel_id, power_w, cap_w, streak } => {
                    let _ = writeln!(
                        out,
                        "over  {kernel_id}  {power_w:.1} W > {cap_w:.1} W  (streak {streak})"
                    );
                }
                Event::TierChanged { kernel_id, from, to, reason } => {
                    let _ = writeln!(out, "tier  {kernel_id} {from} → {to}  [{reason}]");
                }
                Event::SensorAnomaly { kernel_id, kind } => {
                    let _ = writeln!(out, "sense {kernel_id}: {kind}");
                }
                Event::RetryBackoff { kernel_id, attempt, wait_s, fault } => {
                    let _ = writeln!(
                        out,
                        "retry {kernel_id} #{attempt} after {:.3} ms  [{fault}]",
                        wait_s * 1e3
                    );
                }
                Event::TransitionClamped { kernel_id, requested, actual } => {
                    let _ = writeln!(out, "clamp {kernel_id} wanted {requested}, ran {actual}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_sim::CpuPState;

    fn cfg() -> Configuration {
        Configuration::cpu(4, CpuPState::MAX)
    }

    fn run_event(id: &str, iter: u64, time_s: f64) -> Event {
        Event::KernelRun {
            kernel_id: id.into(),
            iteration: iter,
            config: cfg(),
            time_s,
            power_w: 30.0,
        }
    }

    #[test]
    fn clock_advances_on_kernel_runs_only() {
        let t = Timeline::new();
        t.record(Event::CapChanged { cap_w: 25.0 });
        assert_eq!(t.now_s(), 0.0);
        t.record(run_event("k", 0, 0.010));
        assert!((t.now_s() - 0.010).abs() < 1e-15);
        t.record(Event::ConfigSelected {
            kernel_id: "k".into(),
            config: cfg(),
            reason: "model".into(),
        });
        assert!((t.now_s() - 0.010).abs() < 1e-15);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn entries_carry_record_time() {
        let t = Timeline::new();
        t.record(run_event("a", 0, 0.002));
        t.record(run_event("b", 0, 0.003));
        let entries = t.entries();
        assert_eq!(entries[0].at_s, 0.0);
        assert!((entries[1].at_s - 0.002).abs() < 1e-15);
    }

    #[test]
    fn per_kernel_filter() {
        let t = Timeline::new();
        t.record(run_event("a", 0, 0.001));
        t.record(run_event("b", 0, 0.001));
        t.record(Event::CapChanged { cap_w: 20.0 });
        t.record(Event::LimiterStep { kernel_id: "a".into(), config: cfg() });
        let a = t.for_kernel("a");
        assert_eq!(a.len(), 2);
        assert!(t.for_kernel("c").is_empty());
    }

    #[test]
    fn energy_accumulates() {
        let t = Timeline::new();
        t.record(run_event("a", 0, 0.010)); // 0.3 J
        t.record(run_event("a", 1, 0.020)); // 0.6 J
        assert!((t.total_energy_j() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn render_is_readable() {
        let t = Timeline::new();
        t.record(Event::CapChanged { cap_w: 25.0 });
        t.record(run_event("LULESH/Small/K", 0, 0.004));
        let txt = t.render();
        assert!(txt.contains("cap   → 25.0 W"));
        assert!(txt.contains("run   LULESH/Small/K #0"));
        assert!(txt.starts_with("[     0.000 ms]"));
    }

    #[test]
    fn retry_backoff_advances_clock_and_health_events_render() {
        let t = Timeline::new();
        t.record(Event::RetryBackoff {
            kernel_id: "k".into(),
            attempt: 1,
            wait_s: 0.004,
            fault: "kernel run failure".into(),
        });
        assert!((t.now_s() - 0.004).abs() < 1e-15);
        t.record(Event::CapViolation {
            kernel_id: "k".into(),
            power_w: 31.0,
            cap_w: 25.0,
            streak: 2,
        });
        t.record(Event::TierChanged {
            kernel_id: "k".into(),
            from: "model".into(),
            to: "model+fl(1)".into(),
            reason: "cap violations".into(),
        });
        t.record(Event::SensorAnomaly { kernel_id: "k".into(), kind: "dropout".into() });
        t.record(Event::TransitionClamped {
            kernel_id: "k".into(),
            requested: cfg(),
            actual: Configuration::cpu(4, CpuPState::MIN),
        });
        // Only the backoff advanced the clock.
        assert!((t.now_s() - 0.004).abs() < 1e-15);
        assert_eq!(t.for_kernel("k").len(), 5);
        let txt = t.render();
        assert!(txt.contains("retry k #1"));
        assert!(txt.contains("over  k  31.0 W > 25.0 W  (streak 2)"));
        assert!(txt.contains("tier  k model → model+fl(1)"));
        assert!(txt.contains("sense k: dropout"));
        assert!(txt.contains("clamp k wanted"));
    }

    #[test]
    fn ring_buffer_drops_oldest_beyond_capacity() {
        let t = Timeline::with_capacity(3);
        for i in 0..5 {
            t.record(run_event("k", i, 0.001));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        // The oldest entries went first: iterations 2, 3, 4 remain.
        let iters: Vec<u64> = t
            .entries()
            .iter()
            .map(|e| match &e.event {
                Event::KernelRun { iteration, .. } => *iteration,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(iters, vec![2, 3, 4]);
        // The virtual clock still covers every recorded run.
        assert!((t.now_s() - 0.005).abs() < 1e-15);
    }

    #[test]
    fn to_json_is_identical_under_capacity() {
        // A bounded timeline that never overflows must serialize exactly
        // like an unbounded one — existing golden traces depend on it.
        let unbounded = Timeline::new();
        let bounded = Timeline::with_capacity(16);
        for t in [&unbounded, &bounded] {
            t.record(Event::CapChanged { cap_w: 25.0 });
            t.record(run_event("k", 0, 0.004));
            t.record(Event::LimiterStep { kernel_id: "k".into(), config: cfg() });
        }
        assert_eq!(bounded.dropped(), 0);
        assert_eq!(unbounded.to_json(), bounded.to_json());
        assert_eq!(unbounded.render(), bounded.render());
    }

    #[test]
    fn set_capacity_trims_immediately_and_unbounds() {
        let t = Timeline::new();
        for i in 0..10 {
            t.record(run_event("k", i, 0.001));
        }
        assert_eq!(t.capacity(), None);
        t.set_capacity(Some(4));
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        // Growing the bound (or removing it) never resurrects entries.
        t.set_capacity(None);
        assert_eq!(t.len(), 4);
        t.record(run_event("k", 10, 0.001));
        assert_eq!(t.len(), 5);
        assert_eq!(t.dropped(), 6);
    }

    #[test]
    fn zero_capacity_retains_nothing_but_keeps_the_clock() {
        let t = Timeline::with_capacity(0);
        t.record(run_event("k", 0, 0.002));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
        assert!((t.now_s() - 0.002).abs() < 1e-15);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let t = std::sync::Arc::new(Timeline::new());
        std::thread::scope(|s| {
            for i in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for j in 0..100 {
                        t.record(run_event(&format!("k{i}"), j, 0.0001));
                    }
                });
            }
        });
        assert_eq!(t.len(), 400);
        assert!((t.now_s() - 0.04).abs() < 1e-12);
    }
}
