//! Profile samples: the unit of data the profiling library records.

use acs_sim::{Configuration, CounterSet, KernelRun, PowerBreakdown};
use serde::{Deserialize, Serialize};

/// One recorded kernel execution, tagged with kernel identity and iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileSample {
    /// Kernel identifier (`benchmark/input/kernel`).
    pub kernel_id: String,
    /// Iteration number within the application run.
    pub iteration: u64,
    /// The configuration the iteration executed at.
    pub config: Configuration,
    /// Measured wall time, seconds.
    pub time_s: f64,
    /// Sensor-estimated average power per plane, W.
    pub power: PowerBreakdown,
    /// Performance counter readings.
    pub counters: CounterSet,
}

impl ProfileSample {
    /// Build a sample from a simulator observation.
    pub fn from_run(kernel_id: &str, iteration: u64, run: &KernelRun) -> Self {
        Self {
            kernel_id: kernel_id.to_string(),
            iteration,
            config: run.config,
            time_s: run.time_s,
            power: run.power,
            counters: run.counters,
        }
    }

    /// Total measured package power, W.
    #[inline]
    pub fn power_w(&self) -> f64 {
        self.power.total_w()
    }

    /// Performance as inverse time.
    #[inline]
    pub fn performance(&self) -> f64 {
        1.0 / self.time_s
    }

    /// Energy of the iteration, joules.
    #[inline]
    pub fn energy_j(&self) -> f64 {
        self.power_w() * self.time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_sim::{CpuPState, KernelCharacteristics, Machine};

    #[test]
    fn from_run_copies_observation() {
        let m = Machine::noiseless(0);
        let k = KernelCharacteristics::default();
        let cfg = Configuration::cpu(2, CpuPState::MAX);
        let run = m.run(&k, &cfg);
        let s = ProfileSample::from_run(&k.id(), 3, &run);
        assert_eq!(s.kernel_id, k.id());
        assert_eq!(s.iteration, 3);
        assert_eq!(s.time_s, run.time_s);
        assert_eq!(s.power_w(), run.power_w());
        assert!((s.energy_j() - s.power_w() * s.time_s).abs() < 1e-12);
        assert!((s.performance() - 1.0 / s.time_s).abs() < 1e-12);
    }
}
