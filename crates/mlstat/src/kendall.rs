//! Kendall rank correlation (Kendall 1938, the paper's reference \[34\]).
//!
//! The frontier-comparison step of Section III-B computes the Kendall rank
//! correlation between the orderings of the configurations shared by two
//! kernels' Pareto frontiers: +1 for identical orderings, −1 for exactly
//! reversed orderings. τ-b additionally corrects for ties.

/// True when rank correlation over `(x, y)` is well-defined: equal
/// lengths, at least one pair, and no NaN/infinite values (a NaN compares
/// false to everything, which would silently count pairs as discordant).
fn defined(x: &[f64], y: &[f64]) -> bool {
    x.len() == y.len() && x.len() >= 2 && x.iter().chain(y).all(|v| v.is_finite())
}

/// Kendall τ-a: `(concordant − discordant) / (n(n−1)/2)`.
///
/// Returns `None` when the sequences differ in length, have fewer than
/// two elements, or contain non-finite values (rank correlation is
/// undefined in every case).
pub fn tau_a(x: &[f64], y: &[f64]) -> Option<f64> {
    if !defined(x, y) {
        return None;
    }
    let (mut concordant, mut discordant) = (0i64, 0i64);
    for i in 0..x.len() {
        for j in i + 1..x.len() {
            // A pair tied in either sequence is neither concordant nor
            // discordant (note: f64::signum maps +0.0 to 1.0, so the
            // product below handles ties where signum would not).
            let s = (x[i] - x[j]) * (y[i] - y[j]);
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (x.len() * (x.len() - 1) / 2) as f64;
    Some((concordant - discordant) as f64 / pairs)
}

/// Kendall τ-b, correcting for ties in either sequence:
/// `(C − D) / sqrt((C + D + Tx)(C + D + Ty))` where `Tx`/`Ty` count pairs
/// tied only in `x`/`y`.
///
/// Returns `None` for mismatched/short/non-finite input or when either
/// sequence is entirely tied: a degenerate sequence has no ordering to
/// correlate, so the result is "undefined", never NaN.
pub fn tau_b(x: &[f64], y: &[f64]) -> Option<f64> {
    if !defined(x, y) {
        return None;
    }
    // All-tied detection up front: with every pair tied in `x` (or `y`),
    // C = D = T_other = 0 makes the denominator zero below, but spelling
    // the degenerate case out keeps it a contract, not an arithmetic
    // accident.
    let all_tied = |s: &[f64]| s.windows(2).all(|w| w[0] == w[1]);
    if all_tied(x) || all_tied(y) {
        return None;
    }
    let (mut concordant, mut discordant) = (0i64, 0i64);
    let (mut tied_x, mut tied_y) = (0i64, 0i64);
    for i in 0..x.len() {
        for j in i + 1..x.len() {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            match (dx == 0.0, dy == 0.0) {
                (true, true) => {} // tied in both: contributes to neither
                (true, false) => tied_x += 1,
                (false, true) => tied_y += 1,
                (false, false) => {
                    if dx.signum() == dy.signum() {
                        concordant += 1;
                    } else {
                        discordant += 1;
                    }
                }
            }
        }
    }
    let n0x = (concordant + discordant + tied_x) as f64;
    let n0y = (concordant + discordant + tied_y) as f64;
    let denom = (n0x * n0y).sqrt();
    if denom == 0.0 {
        return None;
    }
    Some((concordant - discordant) as f64 / denom)
}

/// Kendall rank correlation between the *orders* of two permutations of the
/// same items: `ranks_a[i]` and `ranks_b[i]` are item `i`'s positions in
/// the two orderings.
pub fn tau_of_rankings(ranks_a: &[usize], ranks_b: &[usize]) -> Option<f64> {
    let a: Vec<f64> = ranks_a.iter().map(|&r| r as f64).collect();
    let b: Vec<f64> = ranks_b.iter().map(|&r| r as f64).collect();
    tau_a(&a, &b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_orderings_give_one() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(tau_a(&x, &x), Some(1.0));
        assert_eq!(tau_b(&x, &x), Some(1.0));
    }

    #[test]
    fn reversed_orderings_give_minus_one() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(tau_a(&x, &y), Some(-1.0));
        assert_eq!(tau_b(&x, &y), Some(-1.0));
    }

    #[test]
    fn independent_orderings_near_zero() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 1.0, 4.0, 3.0];
        // 4 concordant, 2 discordant → (4-2)/6 = 1/3
        assert!((tau_a(&x, &y).unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tau_is_symmetric() {
        let x = [3.0, 1.0, 4.0, 1.5, 5.0];
        let y = [2.0, 7.0, 1.0, 8.0, 2.5];
        assert_eq!(tau_a(&x, &y), tau_a(&y, &x));
        assert_eq!(tau_b(&x, &y), tau_b(&y, &x));
    }

    #[test]
    fn tau_b_handles_ties() {
        let x = [1.0, 1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        let t = tau_b(&x, &y).unwrap();
        // C=5, D=0, Tx=1, Ty=0 → 5/sqrt(6*5) ≈ 0.9129
        assert!((t - 5.0 / (30.0f64).sqrt()).abs() < 1e-12);
        // τ-a counts the tied pair as neither: (5-0)/6
        assert!((tau_a(&x, &y).unwrap() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert_eq!(tau_a(&[1.0], &[1.0]), None);
        assert_eq!(tau_a(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(tau_b(&[], &[]), None);
        // All tied in x: denominator zero.
        assert_eq!(tau_b(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn all_tied_inputs_are_none_never_nan() {
        // Tied in y, in both, and a two-element tie.
        assert_eq!(tau_b(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]), None);
        assert_eq!(tau_b(&[2.0, 2.0], &[2.0, 2.0]), None);
        assert_eq!(tau_b(&[0.0, 0.0], &[0.0, 0.0]), None);
        // τ-a stays defined (it divides by the pair count, not the tie
        // correction) and reports zero correlation.
        assert_eq!(tau_a(&[1.0, 1.0], &[1.0, 1.0]), Some(0.0));
    }

    #[test]
    fn non_finite_inputs_are_none() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(tau_a(&[1.0, bad, 3.0], &[1.0, 2.0, 3.0]), None);
            assert_eq!(tau_b(&[1.0, bad, 3.0], &[1.0, 2.0, 3.0]), None);
            assert_eq!(tau_b(&[1.0, 2.0, 3.0], &[bad, 2.0, 3.0]), None);
        }
        // A NaN must not masquerade as an all-tied or discordant pair.
        assert_eq!(tau_b(&[f64::NAN, f64::NAN], &[1.0, 2.0]), None);
    }

    #[test]
    fn tau_in_unit_range() {
        let x = [0.3, 0.7, 0.1, 0.9, 0.5, 0.2];
        let y = [0.8, 0.2, 0.6, 0.1, 0.9, 0.4];
        for t in [tau_a(&x, &y).unwrap(), tau_b(&x, &y).unwrap()] {
            assert!((-1.0..=1.0).contains(&t));
        }
    }

    #[test]
    fn rankings_wrapper() {
        assert_eq!(tau_of_rankings(&[0, 1, 2], &[0, 1, 2]), Some(1.0));
        assert_eq!(tau_of_rankings(&[0, 1, 2], &[2, 1, 0]), Some(-1.0));
    }
}
