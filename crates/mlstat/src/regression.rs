//! Multivariate ordinary-least-squares regression with first-order
//! interaction expansion — the model family of Section III-B:
//!
//! * performance: `P_perf = (a₁x₁ + … + aₙxₙ) · S_perf` (no intercept;
//!   scaling relative to the sample-configuration performance), and
//! * power: `P_power = b₀ + b₁x₁ + … + bₙxₙ` (with intercept),
//!
//! where the `xᵢ` are the configuration variables and their pairwise
//! products. Fitting solves the normal equations by Cholesky, falling back
//! to a small ridge penalty when the design is rank-deficient (e.g. a
//! training cluster whose kernels never vary one knob).

use crate::matrix::{Matrix, MatrixError};
use serde::{Deserialize, Serialize};

/// Expand a raw feature vector with all pairwise interaction terms
/// `xᵢ·xⱼ (i < j)`, preserving the original features first.
pub fn with_interactions(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let mut out = Vec::with_capacity(n + n * (n - 1) / 2);
    out.extend_from_slice(x);
    for i in 0..n {
        for j in i + 1..n {
            out.push(x[i] * x[j]);
        }
    }
    out
}

/// Number of columns produced by [`with_interactions`] for `n` raw features.
pub fn interaction_len(n: usize) -> usize {
    n + n * n.saturating_sub(1) / 2
}

/// A fitted linear model `y ≈ β·x (+ β₀)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Coefficients; when `intercept` is true, `coeffs[0]` is β₀ and the
    /// remaining entries align with the design columns.
    pub coeffs: Vec<f64>,
    /// Whether the model includes an intercept column.
    pub intercept: bool,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
    /// Ridge penalty that was needed to fit (0 when OLS succeeded).
    pub ridge_lambda: f64,
    /// Root-mean-square training residual — a (crude) per-prediction
    /// uncertainty scale usable for confidence-aware selection.
    pub residual_rmse: f64,
    /// Standard error of each coefficient (same layout as `coeffs`), from
    /// the classical OLS covariance `σ²·(XᵀX)⁻¹`. Empty when the Gram
    /// matrix could not be inverted even with ridge.
    pub coef_std_errors: Vec<f64>,
}

/// Errors from model fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer observations than parameters even ridge cannot rescue sanely.
    NoData,
    /// Underlying linear-algebra failure.
    Matrix(MatrixError),
    /// Response/row count mismatch.
    Dimension(String),
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::NoData => write!(f, "no observations"),
            FitError::Matrix(e) => write!(f, "linear algebra: {e}"),
            FitError::Dimension(msg) => write!(f, "dimension: {msg}"),
        }
    }
}

impl std::error::Error for FitError {}

impl From<MatrixError> for FitError {
    fn from(e: MatrixError) -> Self {
        FitError::Matrix(e)
    }
}

impl LinearModel {
    /// Fit `y ≈ X β` by OLS on the given design rows (already expanded;
    /// no intercept is added when `intercept` is false).
    pub fn fit(rows: &[Vec<f64>], y: &[f64], intercept: bool) -> Result<Self, FitError> {
        if rows.is_empty() || y.is_empty() {
            return Err(FitError::NoData);
        }
        if rows.len() != y.len() {
            return Err(FitError::Dimension(format!(
                "{} design rows vs {} responses",
                rows.len(),
                y.len()
            )));
        }
        let p_raw = rows[0].len();
        if rows.iter().any(|r| r.len() != p_raw) {
            return Err(FitError::Dimension("ragged design rows".into()));
        }
        let p = p_raw + usize::from(intercept);

        let mut data = Vec::with_capacity(rows.len() * p);
        for r in rows {
            if intercept {
                data.push(1.0);
            }
            data.extend_from_slice(r);
        }
        let x = Matrix::from_rows(rows.len(), p, data).map_err(FitError::Matrix)?;
        let mut gram = x.gram();
        let xty = x.t_vec(y)?;

        // OLS, with ridge fallback for rank-deficient designs.
        let mut ridge_lambda = 0.0;
        let coeffs = match gram.solve_spd(&xty) {
            Ok(c) => c,
            Err(MatrixError::Singular) => {
                // Scale the penalty with the trace so it is dimensionless.
                let trace: f64 = (0..p).map(|i| gram[(i, i)]).sum();
                ridge_lambda = 1e-6 * (trace / p as f64).max(1e-12);
                gram.add_diagonal(ridge_lambda);
                gram.solve_spd(&xty)?
            }
            Err(e) => return Err(e.into()),
        };

        // R² on training data.
        let yhat = x.matvec(&coeffs)?;
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let ss_res: f64 = y.iter().zip(&yhat).map(|(a, b)| (a - b).powi(2)).sum();
        let ss_tot: f64 = y.iter().map(|a| (a - mean).powi(2)).sum();
        let r_squared = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
        let residual_rmse = (ss_res / y.len() as f64).sqrt();

        // Coefficient standard errors: sqrt of diag(σ²·(XᵀX)⁻¹), with the
        // unbiased residual variance estimate. Solve one column of the
        // inverse per coefficient against the (possibly ridged) Gram.
        let dof = y.len().saturating_sub(p);
        let coef_std_errors = if dof > 0 {
            let sigma2 = ss_res / dof as f64;
            let mut errs = Vec::with_capacity(p);
            let mut ok = true;
            for j in 0..p {
                let mut e = vec![0.0; p];
                e[j] = 1.0;
                match gram.solve_spd(&e) {
                    Ok(col) => errs.push((sigma2 * col[j].max(0.0)).sqrt()),
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                errs
            } else {
                Vec::new()
            }
        } else {
            Vec::new()
        };

        Ok(Self { coeffs, intercept, r_squared, ridge_lambda, residual_rmse, coef_std_errors })
    }

    /// Predict the response for one (already expanded) feature row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.intercept {
            self.coeffs[0] + self.coeffs[1..].iter().zip(x).map(|(c, v)| c * v).sum::<f64>()
        } else {
            self.coeffs.iter().zip(x).map(|(c, v)| c * v).sum()
        }
    }

    /// Number of raw design columns this model expects.
    pub fn input_len(&self) -> usize {
        self.coeffs.len() - usize::from(self.intercept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interaction_expansion_layout() {
        let x = [2.0, 3.0, 5.0];
        let e = with_interactions(&x);
        assert_eq!(e, vec![2.0, 3.0, 5.0, 6.0, 10.0, 15.0]);
        assert_eq!(e.len(), interaction_len(3));
    }

    #[test]
    fn interaction_len_small_cases() {
        assert_eq!(interaction_len(0), 0);
        assert_eq!(interaction_len(1), 1);
        assert_eq!(interaction_len(2), 3);
        assert_eq!(interaction_len(4), 10);
    }

    #[test]
    fn recovers_planted_model_with_intercept() {
        // y = 3 + 2 x1 - x2
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, (i * i % 7) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 + 2.0 * r[0] - r[1]).collect();
        let m = LinearModel::fit(&rows, &y, true).unwrap();
        assert!((m.coeffs[0] - 3.0).abs() < 1e-9);
        assert!((m.coeffs[1] - 2.0).abs() < 1e-9);
        assert!((m.coeffs[2] + 1.0).abs() < 1e-9);
        assert!((m.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(m.ridge_lambda, 0.0);
    }

    #[test]
    fn recovers_planted_model_without_intercept() {
        // y = 0.5 x1 + 4 x2, no intercept.
        let rows: Vec<Vec<f64>> =
            (1..15).map(|i| vec![i as f64, ((i * 3) % 5) as f64 + 1.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 0.5 * r[0] + 4.0 * r[1]).collect();
        let m = LinearModel::fit(&rows, &y, false).unwrap();
        assert!((m.coeffs[0] - 0.5).abs() < 1e-9);
        assert!((m.coeffs[1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn predict_matches_fit() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 1.0 + 2.0 * r[0]).collect();
        let m = LinearModel::fit(&rows, &y, true).unwrap();
        assert!((m.predict(&[100.0]) - 201.0).abs() < 1e-6);
        assert_eq!(m.input_len(), 1);
    }

    #[test]
    fn recovers_interaction_model() {
        // y = x1 + x2 + 0.5 x1 x2 over a grid.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for a in 0..5 {
            for b in 0..5 {
                let x = [a as f64, b as f64];
                rows.push(with_interactions(&x));
                y.push(x[0] + x[1] + 0.5 * x[0] * x[1]);
            }
        }
        let m = LinearModel::fit(&rows, &y, false).unwrap();
        assert!((m.coeffs[0] - 1.0).abs() < 1e-9);
        assert!((m.coeffs[1] - 1.0).abs() < 1e-9);
        assert!((m.coeffs[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rank_deficient_falls_back_to_ridge() {
        // Second column is a copy of the first: singular gram.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0]).collect();
        let m = LinearModel::fit(&rows, &y, false).unwrap();
        assert!(m.ridge_lambda > 0.0);
        // Ridge splits the weight across the duplicated columns; the
        // prediction is still right.
        assert!((m.predict(&[2.0, 2.0]) - 6.0).abs() < 1e-3);
    }

    #[test]
    fn errors_reported() {
        assert_eq!(LinearModel::fit(&[], &[], true), Err(FitError::NoData));
        assert!(matches!(
            LinearModel::fit(&[vec![1.0]], &[1.0, 2.0], true),
            Err(FitError::Dimension(_))
        ));
        assert!(matches!(
            LinearModel::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0], true),
            Err(FitError::Dimension(_))
        ));
    }

    #[test]
    fn constant_response_has_unit_r_squared() {
        let rows: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let y = vec![7.0; 5];
        let m = LinearModel::fit(&rows, &y, true).unwrap();
        assert!((m.predict(&[3.0]) - 7.0).abs() < 1e-9);
        assert_eq!(m.r_squared, 1.0);
    }

    #[test]
    fn std_errors_shrink_with_sample_size() {
        let gen = |n: usize| {
            let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![(i % 13) as f64]).collect();
            let y: Vec<f64> = rows
                .iter()
                .enumerate()
                .map(|(i, r)| 2.0 * r[0] + ((i * 2654435761) % 100) as f64 / 50.0 - 1.0)
                .collect();
            LinearModel::fit(&rows, &y, true).unwrap()
        };
        let small = gen(20);
        let large = gen(500);
        assert_eq!(small.coef_std_errors.len(), 2);
        assert!(large.coef_std_errors[1] < small.coef_std_errors[1]);
        // The true slope lies within a few standard errors.
        assert!((large.coeffs[1] - 2.0).abs() < 4.0 * large.coef_std_errors[1]);
    }

    #[test]
    fn exact_fit_has_zero_std_errors() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] + 1.0).collect();
        let m = LinearModel::fit(&rows, &y, true).unwrap();
        for se in &m.coef_std_errors {
            assert!(*se < 1e-6, "exact fit should have ~0 std errors, got {se}");
        }
    }

    #[test]
    fn noisy_fit_has_reasonable_r_squared() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        // Deterministic pseudo-noise.
        let y: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| 2.0 * r[0] + ((i * 2654435761) % 100) as f64 / 100.0 - 0.5)
            .collect();
        let m = LinearModel::fit(&rows, &y, true).unwrap();
        assert!(m.r_squared > 0.99, "r² = {}", m.r_squared);
    }
}
