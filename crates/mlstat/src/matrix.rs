//! Small dense row-major matrices and the linear solvers the regression
//! models need. The design matrices here are tiny (tens of rows, ~10
//! columns), so simple, numerically careful O(n³) algorithms are the right
//! tool — no external linear-algebra dependency required.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Errors from matrix construction and solves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Dimensions do not match the data length or the operation.
    Dimension(String),
    /// The system is singular (or not positive definite for Cholesky).
    Singular,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::Dimension(msg) => write!(f, "dimension mismatch: {msg}"),
            MatrixError::Singular => write!(f, "matrix is singular"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from row-major data.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MatrixError> {
        if data.len() != rows * cols {
            return Err(MatrixError::Dimension(format!(
                "{rows}x{cols} needs {} elements, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        #[allow(clippy::needless_range_loop)] // parallel-array indexing is the clear form here
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != other.rows {
            return Err(MatrixError::Dimension(format!(
                "{}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if self.cols != v.len() {
            return Err(MatrixError::Dimension(format!(
                "{}x{} * vec{}",
                self.rows,
                self.cols,
                v.len()
            )));
        }
        Ok((0..self.rows).map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum()).collect())
    }

    /// Gram matrix `Aᵀ A` (symmetric positive semi-definite).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        #[allow(clippy::needless_range_loop)] // parallel-array indexing is the clear form here
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += ri * row[j];
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// `Aᵀ y` for a response vector.
    pub fn t_vec(&self, y: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if self.rows != y.len() {
            return Err(MatrixError::Dimension(format!(
                "Aᵀy: A has {} rows, y has {}",
                self.rows,
                y.len()
            )));
        }
        let mut out = vec![0.0; self.cols];
        #[allow(clippy::needless_range_loop)] // r indexes both the matrix rows and y
        for r in 0..self.rows {
            let row = self.row(r);
            let yr = y[r];
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * yr;
            }
        }
        Ok(out)
    }

    /// Solve the symmetric positive-definite system `self · x = b` by
    /// Cholesky decomposition. Fails with [`MatrixError::Singular`] when
    /// the matrix is not (numerically) positive definite.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
        let n = self.rows;
        if self.cols != n || b.len() != n {
            return Err(MatrixError::Dimension("solve_spd needs square A and matching b".into()));
        }
        // Cholesky: A = L Lᵀ, lower triangle stored in `l`.
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    // Relative tolerance: a pivot that collapses to noise
                    // relative to the original diagonal means the matrix is
                    // numerically rank-deficient.
                    let tol = 1e-10 * self[(i, i)].abs().max(1e-300);
                    if sum <= tol || !sum.is_finite() {
                        return Err(MatrixError::Singular);
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        // Forward substitution: L z = b.
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[i * n + k] * z[k];
            }
            z[i] = sum / l[i * n + i];
        }
        // Back substitution: Lᵀ x = z.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = z[i];
            for k in i + 1..n {
                sum -= l[k * n + i] * x[k];
            }
            x[i] = sum / l[i * n + i];
        }
        Ok(x)
    }

    /// Solve a general square system `self · x = b` by Gaussian elimination
    /// with partial pivoting.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
        let n = self.rows;
        if self.cols != n || b.len() != n {
            return Err(MatrixError::Dimension("solve needs square A and matching b".into()));
        }
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let pivot = (col..n)
                .max_by(|&i, &j| a[i * n + col].abs().partial_cmp(&a[j * n + col].abs()).unwrap())
                .unwrap();
            if a[pivot * n + col].abs() < 1e-12 {
                return Err(MatrixError::Singular);
            }
            if pivot != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot * n + k);
                }
                x.swap(col, pivot);
            }
            for row in col + 1..n {
                let factor = a[row * n + col] / a[col * n + col];
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                x[row] -= factor * x[col];
            }
        }
        for i in (0..n).rev() {
            let mut sum = x[i];
            for k in i + 1..n {
                sum -= a[i * n + k] * x[k];
            }
            x[i] = sum / a[i * n + i];
        }
        Ok(x)
    }

    /// Add `lambda` to the diagonal (ridge regularization), in place.
    pub fn add_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn identity_solve_is_identity() {
        let i = Matrix::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        approx(&i.solve(&b).unwrap(), &b, 1e-12);
        approx(&i.solve_spd(&b).unwrap(), &b, 1e-12);
    }

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [3; 5]  =>  x = [4/5, 7/5]
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = a.solve(&[3.0, 5.0]).unwrap();
        approx(&x, &[0.8, 1.4], 1e-12);
        let x2 = a.solve_spd(&[3.0, 5.0]).unwrap();
        approx(&x2, &[0.8, 1.4], 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        approx(&x, &[3.0, 2.0], 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(a.solve(&[1.0, 2.0]), Err(MatrixError::Singular));
        assert_eq!(a.solve_spd(&[1.0, 2.0]), Err(MatrixError::Singular));
    }

    #[test]
    fn not_positive_definite_detected() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert_eq!(a.solve_spd(&[1.0, 1.0]), Err(MatrixError::Singular));
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert_eq!(g, explicit);
    }

    #[test]
    fn t_vec_matches_transpose_matvec() {
        let a = Matrix::from_rows(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = [1.0, -1.0, 2.0];
        approx(&a.t_vec(&y).unwrap(), &a.transpose().matvec(&y).unwrap(), 1e-12);
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 0.0, 2.0, 0.0, 1.0, -1.0]).unwrap();
        approx(&a.matvec(&[1.0, 2.0, 3.0]).unwrap(), &[7.0, -1.0], 1e-12);
    }

    #[test]
    fn dimension_errors() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.matvec(&[1.0]), Err(MatrixError::Dimension(_))));
        assert!(matches!(a.matmul(&Matrix::zeros(2, 2)), Err(MatrixError::Dimension(_))));
        assert!(matches!(a.t_vec(&[1.0]), Err(MatrixError::Dimension(_))));
        assert!(matches!(a.solve(&[1.0, 1.0]), Err(MatrixError::Dimension(_))));
        assert!(matches!(Matrix::from_rows(2, 2, vec![1.0]), Err(MatrixError::Dimension(_))));
    }

    #[test]
    fn ridge_makes_singular_solvable() {
        let mut g = Matrix::from_rows(2, 2, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        g.add_diagonal(0.1);
        assert!(g.solve_spd(&[1.0, 1.0]).is_ok());
    }

    #[test]
    fn solve_random_spd_roundtrip() {
        // A = BᵀB + I is SPD; verify A·solve(A, b) == b.
        let b_mat = Matrix::from_rows(
            4,
            4,
            vec![
                0.5, -1.2, 2.0, 0.3, 1.1, 0.7, -0.4, 0.9, -2.0, 0.1, 0.8, 1.5, 0.2, -0.6, 1.0, -1.1,
            ],
        )
        .unwrap();
        let mut a = b_mat.gram();
        a.add_diagonal(1.0);
        let rhs = [1.0, 2.0, -1.0, 0.5];
        let x = a.solve_spd(&rhs).unwrap();
        approx(&a.matvec(&x).unwrap(), &rhs, 1e-9);
        let x2 = a.solve(&rhs).unwrap();
        approx(&x, &x2, 1e-9);
    }
}
