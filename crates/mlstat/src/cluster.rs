//! Relational clustering on a dissimilarity matrix.
//!
//! The paper clusters kernels "via the R Fossil package" from a pairwise
//! dissimilarity matrix (Section III-B). The standard algorithm for
//! relational (dissimilarity-only) clustering is PAM — Partitioning Around
//! Medoids (Kaufman & Rousseeuw) — implemented here with the classic BUILD
//! and SWAP phases, plus average-silhouette scoring for choosing `k`.

use serde::{Deserialize, Serialize};

/// A symmetric pairwise dissimilarity matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dissimilarity {
    n: usize,
    /// Full row-major storage (kept symmetric by the setter).
    data: Vec<f64>,
}

impl Dissimilarity {
    /// An `n × n` all-zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self { n, data: vec![0.0; n * n] }
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dissimilarity between items `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Set the dissimilarity between `i` and `j` (kept symmetric).
    pub fn set(&mut self, i: usize, j: usize, d: f64) {
        self.data[i * self.n + j] = d;
        self.data[j * self.n + i] = d;
    }

    /// Validate symmetry, zero diagonal, and non-negativity.
    pub fn validate(&self) -> Result<(), String> {
        for i in 0..self.n {
            if self.get(i, i) != 0.0 {
                return Err(format!("diagonal ({i},{i}) = {} ≠ 0", self.get(i, i)));
            }
            for j in 0..i {
                let d = self.get(i, j);
                if d < 0.0 || !d.is_finite() {
                    return Err(format!("d({i},{j}) = {d} invalid"));
                }
                if (d - self.get(j, i)).abs() > 1e-12 {
                    return Err(format!("asymmetric at ({i},{j})"));
                }
            }
        }
        Ok(())
    }
}

/// Result of a PAM clustering run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clustering {
    /// Medoid item index per cluster.
    pub medoids: Vec<usize>,
    /// Cluster assignment per item (index into `medoids`).
    pub assignment: Vec<usize>,
    /// Total dissimilarity of items to their medoids (the PAM objective).
    pub cost: f64,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.medoids.len()
    }

    /// Item indices belonging to cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignment.iter().enumerate().filter_map(|(i, &a)| (a == c).then_some(i)).collect()
    }

    /// Sizes of every cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignment {
            sizes[a] += 1;
        }
        sizes
    }
}

fn assign_and_cost(d: &Dissimilarity, medoids: &[usize]) -> (Vec<usize>, f64) {
    let mut assignment = vec![0usize; d.len()];
    let mut cost = 0.0;
    #[allow(clippy::needless_range_loop)] // parallel-array indexing is the clear form here
    for i in 0..d.len() {
        // A medoid always claims its own cluster — otherwise two medoids
        // at dissimilarity zero could leave one cluster empty.
        if let Some(own) = medoids.iter().position(|&m| m == i) {
            assignment[i] = own;
            continue;
        }
        let (best_c, best_d) = medoids
            .iter()
            .enumerate()
            .map(|(c, &m)| (c, d.get(i, m)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("at least one medoid");
        assignment[i] = best_c;
        cost += best_d;
    }
    (assignment, cost)
}

/// PAM (k-medoids): BUILD a greedy initial medoid set, then SWAP until no
/// single medoid↔non-medoid exchange lowers the objective.
///
/// Deterministic: ties break toward lower item indices, so the same matrix
/// always yields the same clustering. Panics if `k` is zero or exceeds the
/// number of items.
pub fn pam(d: &Dissimilarity, k: usize) -> Clustering {
    let n = d.len();
    assert!(k >= 1 && k <= n, "k = {k} must be in 1..={n}");

    // BUILD: first medoid minimizes total dissimilarity; each subsequent
    // medoid maximizes the cost reduction.
    let mut medoids: Vec<usize> = Vec::with_capacity(k);
    let first = (0..n)
        .min_by(|&a, &b| {
            let ca: f64 = (0..n).map(|i| d.get(i, a)).sum();
            let cb: f64 = (0..n).map(|i| d.get(i, b)).sum();
            ca.partial_cmp(&cb).unwrap()
        })
        .expect("non-empty matrix");
    medoids.push(first);

    while medoids.len() < k {
        // Current distance of every item to its nearest medoid.
        let near: Vec<f64> = (0..n)
            .map(|i| medoids.iter().map(|&m| d.get(i, m)).fold(f64::INFINITY, f64::min))
            .collect();
        let candidate = (0..n)
            .filter(|i| !medoids.contains(i))
            .max_by(|&a, &b| {
                let gain =
                    |c: usize| -> f64 { (0..n).map(|i| (near[i] - d.get(i, c)).max(0.0)).sum() };
                gain(a)
                    .partial_cmp(&gain(b))
                    .unwrap()
                    // Tie-break toward the lower index for determinism.
                    .then(b.cmp(&a))
            })
            .expect("k <= n leaves a candidate");
        medoids.push(candidate);
    }

    // SWAP: steepest-descent single swaps.
    let (mut assignment, mut cost) = assign_and_cost(d, &medoids);
    loop {
        let mut best: Option<(usize, usize, f64)> = None; // (medoid slot, item, new cost)
        for slot in 0..medoids.len() {
            for item in 0..n {
                if medoids.contains(&item) {
                    continue;
                }
                let mut trial = medoids.clone();
                trial[slot] = item;
                let (_, c) = assign_and_cost(d, &trial);
                if c + 1e-12 < best.map_or(cost, |(_, _, bc)| bc) {
                    best = Some((slot, item, c));
                }
            }
        }
        match best {
            Some((slot, item, c)) => {
                medoids[slot] = item;
                cost = c;
                assignment = assign_and_cost(d, &medoids).0;
            }
            None => break,
        }
    }

    // Canonical order: sort medoids so cluster ids are stable.
    let mut order: Vec<usize> = (0..medoids.len()).collect();
    order.sort_by_key(|&c| medoids[c]);
    let medoids_sorted: Vec<usize> = order.iter().map(|&c| medoids[c]).collect();
    let remap: Vec<usize> = {
        let mut r = vec![0usize; medoids.len()];
        for (new_c, &old_c) in order.iter().enumerate() {
            r[old_c] = new_c;
        }
        r
    };
    let assignment = assignment.into_iter().map(|a| remap[a]).collect();

    Clustering { medoids: medoids_sorted, assignment, cost }
}

/// Mean silhouette width of a clustering: in [-1, 1], higher is better.
/// Items in singleton clusters contribute 0, per the usual convention.
pub fn silhouette(d: &Dissimilarity, clustering: &Clustering) -> f64 {
    let n = d.len();
    if n == 0 || clustering.k() < 2 {
        return 0.0;
    }
    let sizes = clustering.sizes();
    let mut total = 0.0;
    for i in 0..n {
        let own = clustering.assignment[i];
        if sizes[own] <= 1 {
            continue; // silhouette 0 for singletons
        }
        // a(i): mean dissimilarity to own cluster (excluding self).
        let mut a = 0.0;
        for j in 0..n {
            if j != i && clustering.assignment[j] == own {
                a += d.get(i, j);
            }
        }
        a /= (sizes[own] - 1) as f64;
        // b(i): smallest mean dissimilarity to another cluster.
        let mut b = f64::INFINITY;
        #[allow(clippy::needless_range_loop)] // parallel-array indexing is the clear form here
        for c in 0..clustering.k() {
            if c == own || sizes[c] == 0 {
                continue;
            }
            let mut m = 0.0;
            for j in 0..n {
                if clustering.assignment[j] == c {
                    m += d.get(i, j);
                }
            }
            b = b.min(m / sizes[c] as f64);
        }
        if b.is_finite() {
            total += (b - a) / a.max(b).max(1e-300);
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight groups far apart: {0,1,2} and {3,4,5}.
    fn two_blobs() -> Dissimilarity {
        let mut d = Dissimilarity::zeros(6);
        for i in 0..6 {
            for j in 0..6 {
                if i == j {
                    continue;
                }
                let same = (i < 3) == (j < 3);
                d.set(i, j, if same { 0.1 } else { 1.0 });
            }
        }
        d
    }

    #[test]
    fn pam_separates_two_blobs() {
        let d = two_blobs();
        let c = pam(&d, 2);
        assert_eq!(c.k(), 2);
        // All of 0..3 together, all of 3..6 together.
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_eq!(c.assignment[1], c.assignment[2]);
        assert_eq!(c.assignment[3], c.assignment[4]);
        assert_eq!(c.assignment[4], c.assignment[5]);
        assert_ne!(c.assignment[0], c.assignment[3]);
        assert!((c.cost - 4.0 * 0.1).abs() < 1e-9);
    }

    #[test]
    fn assignment_is_nearest_medoid() {
        let d = two_blobs();
        let c = pam(&d, 2);
        for i in 0..d.len() {
            let own = d.get(i, c.medoids[c.assignment[i]]);
            for &m in &c.medoids {
                assert!(own <= d.get(i, m) + 1e-12);
            }
        }
    }

    #[test]
    fn k_equals_n_is_free() {
        let d = two_blobs();
        let c = pam(&d, 6);
        assert_eq!(c.cost, 0.0);
        let mut medoids = c.medoids.clone();
        medoids.dedup();
        assert_eq!(medoids.len(), 6);
    }

    #[test]
    fn k_equals_one_picks_central_item() {
        let mut d = Dissimilarity::zeros(3);
        d.set(0, 1, 1.0);
        d.set(1, 2, 1.0);
        d.set(0, 2, 2.0);
        let c = pam(&d, 1);
        assert_eq!(c.medoids, vec![1], "item 1 is the 1-median");
    }

    #[test]
    fn deterministic() {
        let d = two_blobs();
        assert_eq!(pam(&d, 2), pam(&d, 2));
        assert_eq!(pam(&d, 3), pam(&d, 3));
    }

    #[test]
    #[should_panic(expected = "must be in")]
    fn k_zero_panics() {
        let _ = pam(&two_blobs(), 0);
    }

    #[test]
    #[should_panic(expected = "must be in")]
    fn k_too_large_panics() {
        let _ = pam(&two_blobs(), 7);
    }

    #[test]
    fn silhouette_prefers_true_structure() {
        let d = two_blobs();
        let good = silhouette(&d, &pam(&d, 2));
        let worse = silhouette(&d, &pam(&d, 3));
        assert!(good > 0.8, "clean blobs: silhouette {good}");
        assert!(good > worse, "k=2 ({good}) must beat k=3 ({worse})");
    }

    #[test]
    fn silhouette_of_single_cluster_is_zero() {
        let d = two_blobs();
        assert_eq!(silhouette(&d, &pam(&d, 1)), 0.0);
    }

    #[test]
    fn members_and_sizes_agree() {
        let d = two_blobs();
        let c = pam(&d, 2);
        let sizes = c.sizes();
        #[allow(clippy::needless_range_loop)] // parallel-array indexing is the clear form here
        for cl in 0..c.k() {
            assert_eq!(c.members(cl).len(), sizes[cl]);
        }
        assert_eq!(sizes.iter().sum::<usize>(), d.len());
    }

    #[test]
    fn validate_accepts_good_rejects_bad() {
        let d = two_blobs();
        assert!(d.validate().is_ok());
        let mut bad = two_blobs();
        bad.data[1] = -0.5; // direct poke to break symmetry/negativity
        assert!(bad.validate().is_err());
    }

    #[test]
    fn swap_improves_on_bad_build() {
        // A chain where greedy BUILD can start suboptimally; SWAP must
        // still find a 2-clustering with optimal cost.
        let mut d = Dissimilarity::zeros(4);
        let pts: [f64; 4] = [0.0, 1.0, 10.0, 11.0];
        for i in 0..4 {
            for j in 0..4 {
                d.set(i, j, (pts[i] - pts[j]).abs());
            }
        }
        let c = pam(&d, 2);
        assert!((c.cost - 2.0).abs() < 1e-9, "optimal cost is 1+1, got {}", c.cost);
    }
}
