//! Cross-validation helpers.
//!
//! The paper verifies its model with leave-one-out cross-validation "for
//! the entire process across individual benchmarks" (Section V-C): for each
//! benchmark, the training set is every kernel from the *other* benchmarks,
//! and the trained pipeline is applied to the held-out benchmark's kernels.
//! These helpers produce the index partitions for that protocol, plus plain
//! leave-one-out and simple descriptive statistics.

/// One cross-validation fold: indices to train on and to validate on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// A label for the fold (e.g. the held-out benchmark name).
    pub label: String,
    /// Training indices.
    pub train: Vec<usize>,
    /// Validation (held-out) indices.
    pub test: Vec<usize>,
}

/// Leave-one-out folds over `n` items.
pub fn leave_one_out(n: usize) -> Vec<Fold> {
    (0..n)
        .map(|held| Fold {
            label: format!("item-{held}"),
            train: (0..n).filter(|&i| i != held).collect(),
            test: vec![held],
        })
        .collect()
}

/// Leave-one-group-out folds: each distinct group label becomes one fold
/// whose test set is that group's items. Folds are ordered by first
/// appearance of the group, so the output is deterministic.
pub fn leave_one_group_out(groups: &[&str]) -> Vec<Fold> {
    let mut order: Vec<&str> = Vec::new();
    for &g in groups {
        if !order.contains(&g) {
            order.push(g);
        }
    }
    order
        .into_iter()
        .map(|g| Fold {
            label: g.to_string(),
            train: groups
                .iter()
                .enumerate()
                .filter_map(|(i, &gi)| (gi != g).then_some(i))
                .collect(),
            test: groups.iter().enumerate().filter_map(|(i, &gi)| (gi == g).then_some(i)).collect(),
        })
        .collect()
}

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Weighted arithmetic mean; 0 when weights sum to 0.
pub fn weighted_mean(xs: &[f64], ws: &[f64]) -> f64 {
    assert_eq!(xs.len(), ws.len(), "value/weight length mismatch");
    let total: f64 = ws.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    xs.iter().zip(ws).map(|(x, w)| x * w).sum::<f64>() / total
}

/// Population standard deviation; 0 for fewer than two items.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median; 0 for empty input.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loo_covers_everything_once() {
        let folds = leave_one_out(4);
        assert_eq!(folds.len(), 4);
        for (i, f) in folds.iter().enumerate() {
            assert_eq!(f.test, vec![i]);
            assert_eq!(f.train.len(), 3);
            assert!(!f.train.contains(&i));
        }
    }

    #[test]
    fn logo_partitions_by_group() {
        let groups = ["a", "a", "b", "c", "b"];
        let folds = leave_one_group_out(&groups);
        assert_eq!(folds.len(), 3);
        assert_eq!(folds[0].label, "a");
        assert_eq!(folds[0].test, vec![0, 1]);
        assert_eq!(folds[0].train, vec![2, 3, 4]);
        assert_eq!(folds[1].label, "b");
        assert_eq!(folds[1].test, vec![2, 4]);
        assert_eq!(folds[2].label, "c");
        assert_eq!(folds[2].test, vec![3]);
        // Every fold: train ∪ test = all, train ∩ test = ∅.
        for f in &folds {
            let mut all: Vec<usize> = f.train.iter().chain(&f.test).copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn stats_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(weighted_mean(&[1.0, 3.0], &[1.0, 3.0]), 2.5);
        assert_eq!(weighted_mean(&[1.0, 3.0], &[0.0, 0.0]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn weighted_mean_checks_lengths() {
        let _ = weighted_mean(&[1.0], &[1.0, 2.0]);
    }
}
