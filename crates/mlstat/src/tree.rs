//! CART classification tree (Breiman et al. 1984, the paper's reference
//! \[36\]).
//!
//! The online stage needs to assign a brand-new kernel to one of the
//! offline-trained clusters using only features observed at the two sample
//! configurations. The paper trains a classification tree on normalized
//! performance-counter and power features (Figure 3 shows an example).
//! This implementation uses binary axis-aligned splits chosen by Gini
//! impurity, with depth and minimum-leaf-size controls.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Training/complexity controls.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root has depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_split: usize,
    /// Minimum samples each child must keep.
    pub min_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self { max_depth: 6, min_split: 4, min_leaf: 2 }
    }
}

/// A trained classification tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassificationTree {
    nodes: Vec<Node>,
    n_features: usize,
    n_classes: usize,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    /// `feature < threshold` goes left, else right.
    Split { feature: usize, threshold: f64, left: usize, right: usize },
    /// Majority class at the leaf with its training purity.
    Leaf { class: usize, purity: f64, count: usize },
}

/// Errors from tree training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// Empty training set or ragged feature rows.
    BadInput(String),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::BadInput(m) => write!(f, "bad input: {m}"),
        }
    }
}

impl std::error::Error for TreeError {}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

fn class_counts(labels: &[usize], idx: &[usize], n_classes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n_classes];
    for &i in idx {
        counts[labels[i]] += 1;
    }
    counts
}

fn majority(counts: &[usize]) -> (usize, usize) {
    counts
        .iter()
        .enumerate()
        // max_by_key is stable toward later elements; invert index for
        // deterministic lowest-class tie-breaks.
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(c, &n)| (c, n))
        .unwrap_or((0, 0))
}

impl ClassificationTree {
    /// Train a tree on feature rows and integer class labels in
    /// `0..n_classes`.
    pub fn fit(
        rows: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        params: TreeParams,
    ) -> Result<Self, TreeError> {
        if rows.is_empty() || rows.len() != labels.len() {
            return Err(TreeError::BadInput(format!(
                "{} rows vs {} labels",
                rows.len(),
                labels.len()
            )));
        }
        let n_features = rows[0].len();
        if n_features == 0 || rows.iter().any(|r| r.len() != n_features) {
            return Err(TreeError::BadInput("ragged or empty feature rows".into()));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= n_classes) {
            return Err(TreeError::BadInput(format!("label {bad} >= n_classes {n_classes}")));
        }

        let mut tree = Self { nodes: Vec::new(), n_features, n_classes };
        let all: Vec<usize> = (0..rows.len()).collect();
        tree.build(rows, labels, &all, 0, &params);
        Ok(tree)
    }

    fn build(
        &mut self,
        rows: &[Vec<f64>],
        labels: &[usize],
        idx: &[usize],
        depth: usize,
        params: &TreeParams,
    ) -> usize {
        let counts = class_counts(labels, idx, self.n_classes);
        let node_gini = gini(&counts, idx.len());
        let (class, count) = majority(&counts);

        let make_leaf =
            depth >= params.max_depth || idx.len() < params.min_split || node_gini == 0.0;
        if !make_leaf {
            if let Some((feature, threshold, left_idx, right_idx)) =
                self.best_split(rows, labels, idx, params)
            {
                let slot = self.nodes.len();
                // Reserve the slot so children indices are known after.
                self.nodes.push(Node::Leaf { class, purity: 0.0, count });
                let left = self.build(rows, labels, &left_idx, depth + 1, params);
                let right = self.build(rows, labels, &right_idx, depth + 1, params);
                self.nodes[slot] = Node::Split { feature, threshold, left, right };
                return slot;
            }
        }
        let purity = if idx.is_empty() { 0.0 } else { count as f64 / idx.len() as f64 };
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { class, purity, count });
        slot
    }

    /// Exhaustive best split by weighted child Gini; thresholds midway
    /// between consecutive distinct feature values.
    #[allow(clippy::type_complexity)]
    fn best_split(
        &self,
        rows: &[Vec<f64>],
        labels: &[usize],
        idx: &[usize],
        params: &TreeParams,
    ) -> Option<(usize, f64, Vec<usize>, Vec<usize>)> {
        let parent_gini = gini(&class_counts(labels, idx, self.n_classes), idx.len());
        let mut best: Option<(f64, usize, f64)> = None; // (score, feature, threshold)

        #[allow(clippy::needless_range_loop)] // parallel-array indexing is the clear form here
        for feature in 0..self.n_features {
            let mut order: Vec<usize> = idx.to_vec();
            order.sort_by(|&a, &b| rows[a][feature].partial_cmp(&rows[b][feature]).unwrap());

            // Incremental left/right class counts while scanning.
            let mut left = vec![0usize; self.n_classes];
            let mut right = class_counts(labels, idx, self.n_classes);
            for split_at in 1..order.len() {
                let moved = order[split_at - 1];
                left[labels[moved]] += 1;
                right[labels[moved]] -= 1;

                let lo = rows[order[split_at - 1]][feature];
                let hi = rows[order[split_at]][feature];
                if lo == hi {
                    continue; // cannot split between equal values
                }
                if split_at < params.min_leaf || order.len() - split_at < params.min_leaf {
                    continue;
                }
                let nl = split_at;
                let nr = order.len() - split_at;
                let score = (nl as f64 * gini(&left, nl) + nr as f64 * gini(&right, nr))
                    / order.len() as f64;
                let threshold = 0.5 * (lo + hi);
                let better = match best {
                    None => score + 1e-12 < parent_gini,
                    Some((bs, _, _)) => score + 1e-12 < bs,
                };
                if better {
                    best = Some((score, feature, threshold));
                }
            }
        }

        best.map(|(_, feature, threshold)| {
            let (mut l, mut r) = (Vec::new(), Vec::new());
            for &i in idx {
                if rows[i][feature] < threshold {
                    l.push(i);
                } else {
                    r.push(i);
                }
            }
            (feature, threshold, l, r)
        })
    }

    /// Predict the class of one feature row.
    pub fn predict(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.n_features, "feature count mismatch");
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Split { feature, threshold, left, right } => {
                    at = if x[*feature] < *threshold { *left } else { *right };
                }
                Node::Leaf { class, .. } => return *class,
            }
        }
    }

    /// Training accuracy over a labelled set.
    pub fn accuracy(&self, rows: &[Vec<f64>], labels: &[usize]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let hits = rows.iter().zip(labels).filter(|(r, &l)| self.predict(r) == l).count();
        hits as f64 / rows.len() as f64
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth of any leaf (root = 0). This bounds the online
    /// classification cost the paper calls "time on the order of the depth
    /// of the tree" (Section IV-C).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    /// Reduced-error pruning against a validation set.
    ///
    /// Bottom-up, every split whose replacement by a leaf (labelled with
    /// the training majority of the leaves beneath it) does not increase
    /// validation error is collapsed. Returns the number of splits
    /// removed. The classic CART companion to growing (Breiman et al.).
    pub fn prune(&mut self, rows: &[Vec<f64>], labels: &[usize]) -> usize {
        assert_eq!(rows.len(), labels.len(), "rows/labels mismatch");
        let all: Vec<usize> = (0..rows.len()).collect();
        let before = self.split_count();
        self.prune_node(0, rows, labels, &all);
        self.compact();
        before - self.split_count()
    }

    fn split_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Split { .. })).count()
    }

    /// Post-order pruning pass. Returns the training class counts of the
    /// leaves beneath `at` and the subtree's validation error on `idx`.
    fn prune_node(
        &mut self,
        at: usize,
        rows: &[Vec<f64>],
        labels: &[usize],
        idx: &[usize],
    ) -> (Vec<usize>, usize) {
        match self.nodes[at].clone() {
            Node::Leaf { class, count, .. } => {
                let mut counts = vec![0usize; self.n_classes];
                counts[class] += count;
                let err = idx.iter().filter(|&&i| labels[i] != class).count();
                (counts, err)
            }
            Node::Split { feature, threshold, left, right } => {
                let (l_idx, r_idx): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| rows[i][feature] < threshold);
                let (l_counts, l_err) = self.prune_node(left, rows, labels, &l_idx);
                let (r_counts, r_err) = self.prune_node(right, rows, labels, &r_idx);
                let counts: Vec<usize> =
                    l_counts.iter().zip(&r_counts).map(|(a, b)| a + b).collect();
                let subtree_err = l_err + r_err;

                let (class, count) = majority(&counts);
                let leaf_err = idx.iter().filter(|&&i| labels[i] != class).count();
                if leaf_err <= subtree_err {
                    let total: usize = counts.iter().sum();
                    let purity = if total > 0 { count as f64 / total as f64 } else { 0.0 };
                    self.nodes[at] = Node::Leaf { class, purity, count: total };
                    (counts, leaf_err)
                } else {
                    (counts, subtree_err)
                }
            }
        }
    }

    /// Rebuild the node arena, dropping nodes unreachable after pruning.
    fn compact(&mut self) {
        fn copy(old: &[Node], at: usize, out: &mut Vec<Node>) -> usize {
            match &old[at] {
                leaf @ Node::Leaf { .. } => {
                    out.push(leaf.clone());
                    out.len() - 1
                }
                Node::Split { feature, threshold, left, right } => {
                    let slot = out.len();
                    out.push(Node::Leaf { class: 0, purity: 0.0, count: 0 }); // placeholder
                    let l = copy(old, *left, out);
                    let r = copy(old, *right, out);
                    out[slot] =
                        Node::Split { feature: *feature, threshold: *threshold, left: l, right: r };
                    slot
                }
            }
        }
        if self.nodes.is_empty() {
            return;
        }
        let mut out = Vec::with_capacity(self.nodes.len());
        copy(&self.nodes, 0, &mut out);
        self.nodes = out;
    }

    /// Flatten into a branchless, predicated array encoding for the online
    /// fast path (DESIGN.md §15). Returns `None` for the degenerate cases
    /// the encoding cannot represent compactly: an empty tree, or one
    /// deeper than [`FlatTree::MAX_DEPTH`] (the complete-binary embedding
    /// is `2^(depth+1) − 1` slots, so pathological depth would explode).
    pub fn flatten(&self) -> Option<FlatTree> {
        if self.nodes.is_empty() {
            return None;
        }
        let depth = self.depth();
        if depth > FlatTree::MAX_DEPTH {
            return None;
        }
        let slots = (1usize << (depth + 1)) - 1;
        let mut flat = FlatTree {
            depth,
            n_features: self.n_features,
            feature: vec![0; slots],
            threshold: vec![f64::INFINITY; slots],
            class: vec![0; slots],
        };
        flat.embed(&self.nodes, 0, 0);
        Some(flat)
    }

    /// Render the tree as indented text (the Figure 3 artifact), with
    /// feature names supplied by the caller.
    pub fn render(&self, feature_names: &[&str]) -> String {
        let mut out = String::new();
        self.render_node(0, 0, feature_names, &mut out);
        out
    }

    fn render_node(&self, at: usize, indent: usize, names: &[&str], out: &mut String) {
        let pad = "  ".repeat(indent);
        match &self.nodes[at] {
            Node::Split { feature, threshold, left, right } => {
                let name = names.get(*feature).copied().unwrap_or("?");
                let _ = writeln!(out, "{pad}if {name} < {threshold:.4}:");
                self.render_node(*left, indent + 1, names, out);
                let _ = writeln!(out, "{pad}else:");
                self.render_node(*right, indent + 1, names, out);
            }
            Node::Leaf { class, purity, count } => {
                let _ =
                    writeln!(out, "{pad}→ cluster {class}  ({count} kernels, purity {purity:.2})");
            }
        }
    }
}

/// A [`ClassificationTree`] re-encoded as a complete binary tree in three
/// parallel arrays, descended with predicated index arithmetic instead of
/// pointer chasing.
///
/// Slot `i`'s children are `2i + 1` and `2i + 2`. Leaves shallower than the
/// full depth pad their subtree with pseudo-splits at threshold `+∞`: the
/// comparison result is irrelevant because every slot under a padded leaf
/// carries that leaf's class, so descent always runs exactly `depth` steps
/// and reads the class at the final slot.
///
/// The descent step is `2i + 1 + !(x[feature] < threshold)` — the negated
/// form of the scalar tree's left-test, so NaN features route right in both
/// encodings and [`FlatTree::predict`] agrees with
/// [`ClassificationTree::predict`] bit-for-bit on every input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatTree {
    depth: usize,
    n_features: usize,
    feature: Vec<u32>,
    threshold: Vec<f64>,
    class: Vec<u32>,
}

impl FlatTree {
    /// Depth cap for [`ClassificationTree::flatten`]: the complete-binary
    /// embedding allocates `2^(depth+1) − 1` slots, so beyond this the
    /// scalar walk is the better encoding.
    pub const MAX_DEPTH: usize = 16;

    /// Write `nodes[at]`'s subtree into the complete-binary slot `slot`,
    /// replicating leaves downward so every padded slot carries the class
    /// of the leaf above it.
    fn embed(&mut self, nodes: &[Node], at: usize, slot: usize) {
        match &nodes[at] {
            Node::Split { feature, threshold, left, right } => {
                self.feature[slot] = *feature as u32;
                self.threshold[slot] = *threshold;
                self.embed(nodes, *left, 2 * slot + 1);
                self.embed(nodes, *right, 2 * slot + 2);
            }
            Node::Leaf { class, .. } => self.fill(*class as u32, slot),
        }
    }

    /// Fill `slot` and its whole subtree with `class`, leaving the padded
    /// pseudo-split defaults (feature 0, threshold `+∞`) in place.
    fn fill(&mut self, class: u32, slot: usize) {
        self.class[slot] = class;
        let left = 2 * slot + 1;
        if left < self.class.len() {
            self.fill(class, left);
            self.fill(class, left + 1);
        }
    }

    /// Predict the class of one feature row: a fixed-length, branchless
    /// descent (`depth` predicated steps, no data-dependent control flow).
    pub fn predict(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.n_features, "feature count mismatch");
        let mut at = 0usize;
        for _ in 0..self.depth {
            // `!(x < t)` (not `x >= t`) so a NaN feature goes right,
            // exactly as the scalar walk's else-branch does.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            let go_right = usize::from(!(x[self.feature[at] as usize] < self.threshold[at]));
            at = 2 * at + 1 + go_right;
        }
        self.class[at] as usize
    }

    /// Depth of the source tree (every descent runs this many steps).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Feature arity expected by [`FlatTree::predict`].
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A clean two-feature, three-class problem split on axis thresholds.
    fn toy() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            let jitter = i as f64 * 0.01;
            rows.push(vec![0.1 + jitter, 0.2]);
            labels.push(0);
            rows.push(vec![0.9 + jitter, 0.2]);
            labels.push(1);
            rows.push(vec![0.5, 0.9 + jitter]);
            labels.push(2);
        }
        (rows, labels)
    }

    #[test]
    fn fits_separable_data_perfectly() {
        let (rows, labels) = toy();
        let t = ClassificationTree::fit(&rows, &labels, 3, TreeParams::default()).unwrap();
        assert_eq!(t.accuracy(&rows, &labels), 1.0);
    }

    #[test]
    fn predictions_are_trained_labels() {
        let (rows, labels) = toy();
        let t = ClassificationTree::fit(&rows, &labels, 3, TreeParams::default()).unwrap();
        for r in &rows {
            assert!(t.predict(r) < 3);
        }
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let rows = vec![vec![1.0], vec![2.0], vec![3.0]];
        let labels = vec![1, 1, 1];
        let t = ClassificationTree::fit(&rows, &labels, 2, TreeParams::default()).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict(&[99.0]), 1);
    }

    #[test]
    fn depth_limit_respected() {
        let (rows, labels) = toy();
        let shallow = TreeParams { max_depth: 1, ..TreeParams::default() };
        let t = ClassificationTree::fit(&rows, &labels, 3, shallow).unwrap();
        assert!(t.depth() <= 1);
    }

    #[test]
    fn min_leaf_respected() {
        // 9 samples of class 0, 1 of class 1; min_leaf 3 forbids isolating
        // the singleton.
        let mut rows: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64]).collect();
        rows.push(vec![100.0]);
        let mut labels = vec![0usize; 9];
        labels.push(1);
        let params = TreeParams { min_leaf: 3, ..TreeParams::default() };
        let t = ClassificationTree::fit(&rows, &labels, 2, params).unwrap();
        // min_leaf forbids isolating the singleton: whatever leaf the
        // outlier lands in is majority class 0.
        assert_eq!(t.predict(&[100.0]), 0);
        assert!(t.node_count() <= 3);
    }

    #[test]
    fn identical_features_cannot_split() {
        let rows = vec![vec![1.0, 2.0]; 6];
        let labels = vec![0, 1, 0, 1, 0, 1];
        let t = ClassificationTree::fit(&rows, &labels, 2, TreeParams::default()).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[1.0, 2.0]), 0, "majority/tie-break to class 0");
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(ClassificationTree::fit(&[], &[], 2, TreeParams::default()).is_err());
        assert!(ClassificationTree::fit(&[vec![1.0]], &[0, 1], 2, TreeParams::default()).is_err());
        assert!(ClassificationTree::fit(
            &[vec![1.0], vec![1.0, 2.0]],
            &[0, 1],
            2,
            TreeParams::default()
        )
        .is_err());
        assert!(ClassificationTree::fit(&[vec![1.0]], &[5], 2, TreeParams::default()).is_err());
    }

    #[test]
    fn render_contains_feature_names() {
        let (rows, labels) = toy();
        let t = ClassificationTree::fit(&rows, &labels, 3, TreeParams::default()).unwrap();
        let txt = t.render(&["ipc", "stall_fraction"]);
        assert!(txt.contains("ipc") || txt.contains("stall_fraction"));
        assert!(txt.contains("cluster"));
    }

    #[test]
    fn deterministic_fit() {
        let (rows, labels) = toy();
        let a = ClassificationTree::fit(&rows, &labels, 3, TreeParams::default()).unwrap();
        let b = ClassificationTree::fit(&rows, &labels, 3, TreeParams::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pruning_removes_noise_splits() {
        // Train on data with a single true boundary plus label noise; the
        // tree overfits the noise, and pruning against clean validation
        // data must simplify it without losing validation accuracy.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let x = i as f64 / 10.0;
            rows.push(vec![x]);
            let clean = usize::from(x >= 3.0);
            // Flip ~15% of training labels deterministically.
            let noisy = if (i * 2654435761usize).is_multiple_of(7) { 1 - clean } else { clean };
            labels.push(noisy);
        }
        let mut tree = ClassificationTree::fit(
            &rows,
            &labels,
            2,
            TreeParams { max_depth: 10, min_split: 2, min_leaf: 1 },
        )
        .unwrap();

        // Clean validation set on the same boundary.
        let val_rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 6.7]).collect();
        let val_labels: Vec<usize> = val_rows.iter().map(|r| usize::from(r[0] >= 3.0)).collect();

        let acc_before = tree.accuracy(&val_rows, &val_labels);
        let nodes_before = tree.node_count();
        let removed = tree.prune(&val_rows, &val_labels);
        let acc_after = tree.accuracy(&val_rows, &val_labels);

        assert!(removed > 0, "overfit tree should lose splits");
        assert!(tree.node_count() < nodes_before);
        assert!(acc_after >= acc_before, "{acc_after} < {acc_before}");
        assert!(acc_after > 0.9);
    }

    #[test]
    fn pruning_perfect_tree_is_a_noop_on_training_data() {
        let (rows, labels) = toy();
        let mut tree = ClassificationTree::fit(&rows, &labels, 3, TreeParams::default()).unwrap();
        let nodes = tree.node_count();
        // Validating against the training data itself: the perfectly
        // fitting subtrees always beat their majority leaves.
        tree.prune(&rows, &labels);
        assert_eq!(tree.node_count(), nodes);
        assert_eq!(tree.accuracy(&rows, &labels), 1.0);
    }

    #[test]
    fn pruning_with_empty_validation_collapses_to_root_majority() {
        // No validation evidence: leaf error (0) <= subtree error (0)
        // everywhere, so the tree collapses to a single majority leaf.
        let (rows, labels) = toy();
        let mut tree = ClassificationTree::fit(&rows, &labels, 3, TreeParams::default()).unwrap();
        tree.prune(&[], &[]);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn predict_wrong_arity_panics() {
        let (rows, labels) = toy();
        let t = ClassificationTree::fit(&rows, &labels, 3, TreeParams::default()).unwrap();
        let _ = t.predict(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn flat_tree_agrees_with_pointer_walk() {
        let (rows, labels) = toy();
        let t = ClassificationTree::fit(&rows, &labels, 3, TreeParams::default()).unwrap();
        let flat = t.flatten().expect("toy tree flattens");
        assert_eq!(flat.depth(), t.depth());
        assert_eq!(flat.n_features(), 2);
        for r in &rows {
            assert_eq!(flat.predict(r), t.predict(r));
        }
        // Dense grid probe beyond the training points, including the exact
        // thresholds (the < vs >= boundary).
        for i in 0..=40 {
            for j in 0..=40 {
                let x = [i as f64 / 40.0 * 1.2, j as f64 / 40.0 * 1.2];
                assert_eq!(flat.predict(&x), t.predict(&x), "diverged at {x:?}");
            }
        }
    }

    #[test]
    fn flat_tree_routes_nan_like_pointer_walk() {
        let (rows, labels) = toy();
        let t = ClassificationTree::fit(&rows, &labels, 3, TreeParams::default()).unwrap();
        let flat = t.flatten().unwrap();
        for probe in
            [[f64::NAN, 0.2], [0.5, f64::NAN], [f64::NAN, f64::NAN], [f64::INFINITY, f64::NAN]]
        {
            assert_eq!(flat.predict(&probe), t.predict(&probe), "diverged at {probe:?}");
        }
    }

    #[test]
    fn flat_tree_of_single_leaf_is_zero_step() {
        let rows = vec![vec![1.0], vec![2.0]];
        let labels = vec![1, 1];
        let t = ClassificationTree::fit(&rows, &labels, 2, TreeParams::default()).unwrap();
        let flat = t.flatten().unwrap();
        assert_eq!(flat.depth(), 0);
        assert_eq!(flat.predict(&[99.0]), 1);
    }

    #[test]
    fn flatten_refuses_pathological_depth() {
        // A comb tree: each level peels off one sample, so depth grows
        // linearly with the training set.
        let n = FlatTree::MAX_DEPTH + 4;
        let rows: Vec<Vec<f64>> = (0..2 * n).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..2 * n).map(|i| usize::from(i % 2 == 0)).collect();
        let params = TreeParams { max_depth: 64, min_split: 2, min_leaf: 1 };
        let t = ClassificationTree::fit(&rows, &labels, 2, params).unwrap();
        if t.depth() > FlatTree::MAX_DEPTH {
            assert!(t.flatten().is_none());
        } else {
            // Fit found a shallower perfect tree; flattening must agree.
            let flat = t.flatten().unwrap();
            for r in &rows {
                assert_eq!(flat.predict(r), t.predict(r));
            }
        }
    }
}
