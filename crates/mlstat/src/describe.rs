//! Descriptive statistics: ranks, rank correlation, quantiles, and text
//! histograms — the reporting toolkit the experiment binaries share.

/// Fractional ranks (average rank for ties), 1-based as in R's `rank()`.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).unwrap());
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Pearson correlation coefficient; `None` when either input is constant
/// or lengths differ/are short.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation: Pearson over fractional ranks. Measures
/// monotone association — exactly the "ranks configurations correctly"
/// property the paper's linear models target.
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    pearson(&ranks(x), &ranks(y))
}

/// The `q`-quantile (0..=1) by linear interpolation over sorted data;
/// `None` for empty input.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q.clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

/// A fixed-width text histogram with `bins` buckets over the data range.
pub fn histogram(xs: &[f64], bins: usize, width: usize) -> String {
    if xs.is_empty() || bins == 0 {
        return String::new();
    }
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-300);
    let mut counts = vec![0usize; bins];
    for &x in xs {
        let b = (((x - min) / span) * bins as f64) as usize;
        counts[b.min(bins - 1)] += 1;
    }
    let peak = *counts.iter().max().unwrap() as f64;
    let mut out = String::new();
    for (i, &c) in counts.iter().enumerate() {
        let lo = min + span * i as f64 / bins as f64;
        let hi = min + span * (i + 1) as f64 / bins as f64;
        let bar = "#".repeat(((c as f64 / peak) * width as f64).round() as usize);
        out.push_str(&format!("[{lo:>9.3}, {hi:>9.3}) |{bar:<width$}| {c}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_handle_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[3.0, 1.0, 2.0]), vec![3.0, 1.0, 2.0]);
        assert_eq!(ranks(&[]), Vec::<f64>::new());
        assert_eq!(ranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn pearson_known_values() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 1.0).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[1.0, 1.0, 1.0, 1.0]), None);
        assert_eq!(pearson(&x, &[1.0]), None);
    }

    #[test]
    fn spearman_tracks_monotone_not_linear() {
        let x: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
        // y = exp(x): nonlinear but perfectly monotone.
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let rev: Vec<f64> = x.iter().rev().cloned().collect();
        assert!((spearman(&x, &rev).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn histogram_renders() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let h = histogram(&xs, 5, 20);
        assert_eq!(h.lines().count(), 5);
        assert!(h.contains('#'));
        assert_eq!(histogram(&[], 5, 20), "");
    }
}
