//! # acs-mlstat — statistics and machine-learning substrate
//!
//! The paper's offline stage is built from four classic statistical tools,
//! all reimplemented here from scratch so the reproduction has no opaque
//! dependencies:
//!
//! * [`regression`] — multivariate OLS linear models with first-order
//!   interaction expansion (the paper's `lm`-style cluster models),
//! * [`kendall`] — Kendall rank correlation (τ-a, τ-b) for comparing
//!   Pareto-frontier orderings,
//! * [`cluster`] — PAM (k-medoids) relational clustering on a
//!   dissimilarity matrix, standing in for the R `fossil` package,
//! * [`tree`] — a CART classification tree with Gini impurity, standing in
//!   for `rpart`.
//!
//! [`matrix`] supplies the small dense linear algebra, and [`validate`] the
//! leave-one-group-out cross-validation protocol of Section V-C.
//!
//! ```
//! use acs_mlstat::{pam, tau_a, Dissimilarity, LinearModel};
//!
//! // Regression: recover y = 1 + 2x.
//! let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i)]).collect();
//! let y: Vec<f64> = rows.iter().map(|r| 1.0 + 2.0 * r[0]).collect();
//! let m = LinearModel::fit(&rows, &y, true).unwrap();
//! assert!((m.predict(&[100.0]) - 201.0).abs() < 1e-6);
//!
//! // Rank correlation and clustering.
//! assert_eq!(tau_a(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]), Some(1.0));
//! let mut d = Dissimilarity::zeros(4);
//! d.set(0, 1, 0.1); d.set(2, 3, 0.1);
//! d.set(0, 2, 1.0); d.set(0, 3, 1.0); d.set(1, 2, 1.0); d.set(1, 3, 1.0);
//! let c = pam(&d, 2);
//! assert_eq!(c.assignment[0], c.assignment[1]);
//! assert_ne!(c.assignment[0], c.assignment[2]);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod describe;
pub mod kendall;
pub mod matrix;
pub mod regression;
pub mod tree;
pub mod validate;

pub use cluster::{pam, silhouette, Clustering, Dissimilarity};
pub use describe::{histogram, pearson, quantile, ranks, spearman};
pub use kendall::{tau_a, tau_b};
pub use matrix::{Matrix, MatrixError};
pub use regression::{interaction_len, with_interactions, FitError, LinearModel};
pub use tree::{ClassificationTree, FlatTree, TreeError, TreeParams};
pub use validate::{
    leave_one_group_out, leave_one_out, mean, median, std_dev, weighted_mean, Fold,
};
