//! Property-based tests for the statistics substrate.

use acs_mlstat::{
    pam, tau_a, tau_b, ClassificationTree, Dissimilarity, LinearModel, Matrix, TreeParams,
};
use proptest::prelude::*;

fn vec_pair(len: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    len.prop_flat_map(|n| {
        (prop::collection::vec(-100.0..100.0f64, n), prop::collection::vec(-100.0..100.0f64, n))
    })
}

proptest! {
    #[test]
    fn tau_a_is_bounded_and_symmetric((x, y) in vec_pair(2..=20)) {
        let t = tau_a(&x, &y).unwrap();
        prop_assert!((-1.0..=1.0).contains(&t));
        prop_assert_eq!(tau_a(&y, &x).unwrap(), t);
    }

    #[test]
    fn tau_a_self_correlation_is_one_without_ties(mut x in prop::collection::vec(-100.0..100.0f64, 2..20)) {
        x.sort_by(|a, b| a.partial_cmp(b).unwrap());
        x.dedup();
        prop_assume!(x.len() >= 2);
        prop_assert_eq!(tau_a(&x, &x).unwrap(), 1.0);
    }

    #[test]
    fn tau_negates_under_reversal(mut x in prop::collection::vec(-100.0..100.0f64, 2..20)) {
        x.sort_by(|a, b| a.partial_cmp(b).unwrap());
        x.dedup();
        prop_assume!(x.len() >= 2);
        let rev: Vec<f64> = x.iter().rev().copied().collect();
        prop_assert_eq!(tau_a(&x, &rev).unwrap(), -1.0);
    }

    #[test]
    fn tau_b_bounded((x, y) in vec_pair(2..=20)) {
        if let Some(t) = tau_b(&x, &y) {
            prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&t));
        }
    }

    #[test]
    fn tau_b_is_symmetric_defined_and_in_range((x, y) in vec_pair(2..=20)) {
        // τ is symmetric in its arguments: swapping the sequences swaps
        // the roles of Tx and Ty but leaves C, D, and the product in the
        // denominator unchanged — so tau(x,y) == tau(y,x) exactly,
        // including which inputs are defined at all.
        let xy = tau_b(&x, &y);
        let yx = tau_b(&y, &x);
        prop_assert_eq!(xy, yx);
        // Never NaN; when defined, strictly within [-1, 1].
        if let Some(t) = xy {
            prop_assert!(t.is_finite(), "tau_b produced {t}");
            prop_assert!((-1.0..=1.0).contains(&t), "tau_b out of range: {t}");
        }
    }

    #[test]
    fn tau_b_all_tied_is_none(c in -100.0..100.0f64, n in 2usize..20, y in prop::collection::vec(-100.0..100.0f64, 20)) {
        // A constant sequence carries no ordering: τ-b must decline
        // (return None), never divide 0/0 into NaN.
        let x = vec![c; n];
        prop_assert_eq!(tau_b(&x, &y[..n]), None);
        prop_assert_eq!(tau_b(&y[..n], &x), None);
        prop_assert_eq!(tau_b(&x, &x), None);
    }

    #[test]
    fn tau_negates_when_one_sequence_is_negated((x, y) in vec_pair(2..=20)) {
        // Antisymmetry under order reversal: negating one sequence
        // reverses its ordering, so every concordant pair becomes
        // discordant and vice versa while ties stay ties.
        let neg_y: Vec<f64> = y.iter().map(|v| -v).collect();
        match (tau_b(&x, &y), tau_b(&x, &neg_y)) {
            (Some(t), Some(nt)) => prop_assert!((t + nt).abs() < 1e-12, "{t} vs {nt}"),
            (a, b) => prop_assert_eq!(a.is_none(), b.is_none()),
        }
    }

    #[test]
    fn regression_recovers_planted_coefficients(
        a in -5.0..5.0f64,
        b in -5.0..5.0f64,
        c in -5.0..5.0f64,
        xs in prop::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 8..40),
    ) {
        // Ensure the design has spread in both columns.
        let spread = |i: usize| {
            let vals: Vec<f64> = xs.iter().map(|p| if i == 0 { p.0 } else { p.1 }).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max)
        };
        prop_assume!(spread(0) > 1.0 && spread(1) > 1.0);
        // Columns must not be collinear.
        let corr_num: f64 = xs.iter().map(|p| p.0 * p.1).sum::<f64>();
        let n0: f64 = xs.iter().map(|p| p.0 * p.0).sum::<f64>();
        let n1: f64 = xs.iter().map(|p| p.1 * p.1).sum::<f64>();
        prop_assume!((corr_num * corr_num) < 0.95 * n0 * n1);

        let rows: Vec<Vec<f64>> = xs.iter().map(|p| vec![p.0, p.1]).collect();
        let y: Vec<f64> = xs.iter().map(|p| a + b * p.0 + c * p.1).collect();
        let m = LinearModel::fit(&rows, &y, true).unwrap();
        prop_assert!((m.coeffs[0] - a).abs() < 1e-5, "intercept {} vs {a}", m.coeffs[0]);
        prop_assert!((m.coeffs[1] - b).abs() < 1e-5);
        prop_assert!((m.coeffs[2] - c).abs() < 1e-5);
    }

    #[test]
    fn spd_solve_roundtrips(entries in prop::collection::vec(-2.0..2.0f64, 16), rhs in prop::collection::vec(-10.0..10.0f64, 4)) {
        let b = Matrix::from_rows(4, 4, entries).unwrap();
        let mut a = b.gram();
        a.add_diagonal(1.0); // guarantees SPD
        let x = a.solve_spd(&rhs).unwrap();
        let back = a.matvec(&x).unwrap();
        for (u, v) in back.iter().zip(&rhs) {
            prop_assert!((u - v).abs() < 1e-6, "{back:?} vs {rhs:?}");
        }
    }

    #[test]
    fn pam_assigns_to_nearest_medoid(
        raw in prop::collection::vec(0.01..1.0f64, 45), // 10 choose 2 = 45 pairs
        k in 1usize..=5,
    ) {
        let n = 10;
        let mut d = Dissimilarity::zeros(n);
        let mut it = raw.into_iter();
        for i in 0..n {
            for j in 0..i {
                d.set(i, j, it.next().unwrap());
            }
        }
        let c = pam(&d, k);
        prop_assert_eq!(c.k(), k);
        prop_assert_eq!(c.assignment.len(), n);
        // Every cluster is non-empty and each medoid belongs to its own
        // cluster.
        for (slot, &m) in c.medoids.iter().enumerate() {
            prop_assert_eq!(c.assignment[m], slot);
        }
        // Non-medoid items sit with their nearest medoid.
        for i in 0..n {
            if c.medoids.contains(&i) { continue; }
            let own = d.get(i, c.medoids[c.assignment[i]]);
            for &m in &c.medoids {
                prop_assert!(own <= d.get(i, m) + 1e-12);
            }
        }
        // Cost equals the sum of distances to assigned medoids.
        let expected: f64 = (0..n).map(|i| d.get(i, c.medoids[c.assignment[i]])).sum();
        prop_assert!((c.cost - expected).abs() < 1e-9);
    }

    #[test]
    fn tree_predicts_only_training_classes(
        rows in prop::collection::vec(prop::collection::vec(-10.0..10.0f64, 3), 4..40),
        seed in 0u64..1000,
    ) {
        let n_classes = 3;
        let labels: Vec<usize> =
            (0..rows.len()).map(|i| ((i as u64 * 2654435761 + seed) % n_classes as u64) as usize).collect();
        let tree = ClassificationTree::fit(&rows, &labels, n_classes, TreeParams::default()).unwrap();
        for r in &rows {
            prop_assert!(tree.predict(r) < n_classes);
        }
        // Accuracy is a valid fraction and depth respects the cap.
        let acc = tree.accuracy(&rows, &labels);
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert!(tree.depth() <= TreeParams::default().max_depth);
    }

    #[test]
    fn tree_on_separable_data_is_perfect(
        split in -5.0..5.0f64,
        offsets in prop::collection::vec(0.1..4.0f64, 6..30),
    ) {
        // One feature, classes perfectly separated around `split`.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (i, o) in offsets.iter().enumerate() {
            if i % 2 == 0 {
                rows.push(vec![split - o]);
                labels.push(0);
            } else {
                rows.push(vec![split + o]);
                labels.push(1);
            }
        }
        let tree = ClassificationTree::fit(&rows, &labels, 2, TreeParams::default()).unwrap();
        prop_assert_eq!(tree.accuracy(&rows, &labels), 1.0);
    }
}
