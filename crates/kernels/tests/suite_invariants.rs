//! Suite-wide invariants: the synthetic benchmark suite must provide the
//! statistical raw material the paper's method depends on — behavioral
//! diversity, stable identities, well-formed weights — at every input
//! size, simulated end-to-end.

use acs_kernels::{all_kernel_instances, app_instances, InputSize};
use acs_sim::{Configuration, CpuPState, Device, GpuPState, Machine};

#[test]
fn every_kernel_has_a_nonempty_frontier_with_both_regions() {
    // Across the whole suite, low-power ends of frontiers must be CPU
    // configurations (the paper's Figure 2 observation) — the GPU's
    // active floor is simply too high.
    let machine = Machine::noiseless(0);
    for kernel in all_kernel_instances() {
        let runs = machine.sweep(&kernel);
        let min_power_run = runs
            .iter()
            .min_by(|a, b| a.true_power_w().partial_cmp(&b.true_power_w()).unwrap())
            .unwrap();
        assert_eq!(
            min_power_run.config.device,
            Device::Cpu,
            "{}: minimum power must be a CPU configuration",
            kernel.id()
        );
    }
}

#[test]
fn suite_contains_both_gpu_winners_and_cpu_winners() {
    let machine = Machine::noiseless(0);
    let mut gpu_best = 0usize;
    let mut cpu_best = 0usize;
    for kernel in all_kernel_instances() {
        let runs = machine.sweep(&kernel);
        let best = runs.iter().min_by(|a, b| a.time_s.partial_cmp(&b.time_s).unwrap()).unwrap();
        match best.config.device {
            Device::Gpu => gpu_best += 1,
            Device::Cpu => cpu_best += 1,
        }
    }
    assert!(gpu_best >= 10, "suite too CPU-leaning: {gpu_best} GPU winners");
    assert!(cpu_best >= 5, "suite too GPU-leaning: {cpu_best} CPU winners");
}

#[test]
fn large_inputs_run_longer_than_small() {
    let machine = Machine::noiseless(0);
    let cfg = Configuration::cpu(4, CpuPState::MAX);
    let apps = app_instances();
    for app in &apps {
        if app.input != "Small" {
            continue;
        }
        let large = apps.iter().find(|a| a.benchmark == app.benchmark && a.input == "Large");
        let Some(large) = large else { continue };
        for (s, l) in app.kernels.iter().zip(&large.kernels) {
            assert_eq!(s.name, l.name);
            let ts = machine.run(s, &cfg).time_s;
            let tl = machine.run(l, &cfg).time_s;
            assert!(tl > ts * 4.0, "{}: Large ({tl}) vs Small ({ts})", s.name);
        }
    }
}

#[test]
fn launch_overhead_matters_more_at_small_inputs() {
    // A defining Small-vs-Large asymmetry: the GPU-vs-CPU tradeoff
    // shifts toward the GPU at Large inputs for GPU-capable kernels.
    let machine = Machine::noiseless(0);
    let apps = app_instances();
    let small = apps.iter().find(|a| a.label() == "LULESH Small").unwrap();
    let large = apps.iter().find(|a| a.label() == "LULESH Large").unwrap();

    let gpu = Configuration::gpu(GpuPState::MAX, CpuPState::MAX);
    let cpu = Configuration::cpu(4, CpuPState::MAX);
    let mut improved = 0usize;
    let mut total = 0usize;
    for (s, l) in small.kernels.iter().zip(&large.kernels) {
        let ratio_small = machine.run(s, &gpu).time_s / machine.run(s, &cpu).time_s;
        let ratio_large = machine.run(l, &gpu).time_s / machine.run(l, &cpu).time_s;
        total += 1;
        if ratio_large < ratio_small {
            improved += 1;
        }
    }
    assert!(
        improved * 2 > total,
        "GPU relative attractiveness should improve at Large for most kernels ({improved}/{total})"
    );
}

#[test]
fn weights_reflect_hot_kernels() {
    for app in app_instances() {
        if app.kernels.len() < 2 {
            continue; // LU's single kernel is trivially "hot"
        }
        let max_weight = app.kernels.iter().map(|k| k.weight).fold(0.0, f64::max);
        assert!(
            max_weight > 1.5 / app.kernels.len() as f64,
            "{}: no hot kernel (max weight {max_weight})",
            app.label()
        );
    }
}

#[test]
fn counter_signatures_distinguish_archetypes() {
    // The classification tree can only work if sample-config counters
    // separate behavior classes. Check two extremes directly.
    let machine = Machine::new(0);
    let apps = app_instances();
    let comd = apps.iter().find(|a| a.benchmark == "CoMD").unwrap();
    let lj = comd.kernels.iter().find(|k| k.name == "LJForce").unwrap();
    let neigh = comd.kernels.iter().find(|k| k.name == "BuildNeighborList").unwrap();

    let cfg = Configuration::cpu(4, CpuPState::MAX);
    let f_lj = machine.run(lj, &cfg).counters.normalized_features();
    let f_ne = machine.run(neigh, &cfg).counters.normalized_features();

    // LJForce: vector-heavy; BuildNeighborList: branchy and stall-heavy.
    assert!(f_lj[5] > f_ne[5] * 2.0, "vector_per_inst should separate");
    assert!(f_ne[4] > f_lj[4], "branches_per_inst should separate");
    assert!(f_ne[6] > f_lj[6], "stall_fraction should separate");
}

#[test]
fn ids_are_parseable_triples() {
    for k in all_kernel_instances() {
        let id = k.id();
        let parts: Vec<&str> = id.split('/').collect();
        assert_eq!(parts.len(), 3, "{id}");
        assert_eq!(parts[0], k.benchmark);
        assert_eq!(parts[1], k.input);
        assert_eq!(parts[2], k.name);
    }
}

#[test]
fn input_size_labels_are_consistent() {
    for k in all_kernel_instances() {
        assert!(
            ["Small", "Large", "Default"].contains(&k.input.as_str()),
            "unexpected input label {}",
            k.input
        );
    }
    assert_eq!(InputSize::Small.label(), "Small");
}
