//! LU — the Rodinia `lud` dense LU-decomposition benchmark.
//!
//! A single kernel chosen by the paper for its relevance to LINPACK. It is
//! the suite's extreme case: dense, regular, massively GPU-friendly compute
//! with a sharp performance cliff at the CPU→GPU switch (paper Figure 7:
//! attainable performance jumps from 10.4% to 89.0% when the available
//! power crosses from 17.2 W to 17.6 W).

use crate::inputs::InputSize;
use crate::spec::KernelSpec;
use acs_sim::KernelCharacteristics;

/// Benchmark name used in kernel ids and evaluation tables.
pub const NAME: &str = "LU";

/// The single `lud` kernel specification at the Small input.
pub const SPECS: [KernelSpec; 1] = [KernelSpec {
    name: "lud",
    compute_ms: 16.0,
    memory_ms: 1.2,
    parallel_fraction: 0.995,
    bw_saturation_threads: 2.5,
    module_sharing_penalty: 0.20,
    sync_overhead: 0.03,
    gpu_speedup: 90.0,
    branch_divergence: 0.06,
    gpu_bw_advantage: 1.5,
    launch_ms: 0.25,
    vector_fraction: 0.50,
    working_set_mb: 18.0,
    cpu_activity: 0.45,
    gpu_activity: 0.72,
    weight: 1.0,
}];

/// Instantiate the LU kernel for an input size.
pub fn kernels(input: InputSize) -> Vec<KernelCharacteristics> {
    SPECS.iter().map(|s| s.instantiate(NAME, input)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_sim::{Configuration, CpuPState, GpuPState, Machine};

    #[test]
    fn single_valid_kernel() {
        let ks = kernels(InputSize::Small);
        assert_eq!(ks.len(), 1);
        assert!(ks[0].validate().is_empty());
    }

    #[test]
    fn gpu_cliff_exists() {
        // The defining property from Figure 7: even the slowest GPU
        // configuration crushes the best CPU configuration.
        let k = &kernels(InputSize::Small)[0];
        let m = Machine::noiseless(0);
        let best_cpu = m.run(k, &Configuration::cpu(4, CpuPState::MAX)).time_s;
        let slowest_gpu = m.run(k, &Configuration::gpu(GpuPState::MIN, CpuPState::MIN)).time_s;
        assert!(
            slowest_gpu < best_cpu / 2.0,
            "GPU min ({slowest_gpu}) must far outrun CPU best ({best_cpu})"
        );
    }
}
