//! The full evaluation suite: benchmark/input application instances and the
//! 65 kernel/input combinations of Section IV-B.
//!
//! * LULESH × {Small, Large} — 20 kernels each (40 combinations)
//! * SMC × {Small, Large} — 8 kernels each (16 combinations)
//! * CoMD × {Default} — 7 kernels (7 combinations)
//! * LU × {Small, Large} — 1 kernel each (2 combinations)
//!
//! Total: 36 distinct kernels, 65 kernel/input combinations, 7 application
//! instances.

use crate::inputs::InputSize;
use crate::{comd, lu, lulesh, smc};
use acs_sim::KernelCharacteristics;
use serde::{Deserialize, Serialize};

/// One benchmark at one input size: a sequence of kernels with normalized
/// time weights (kernels execute sequentially, per Section III-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppInstance {
    /// Benchmark name (`LULESH`, `CoMD`, `SMC`, `LU`).
    pub benchmark: String,
    /// Input-size label.
    pub input: String,
    /// The kernels, with weights normalized to sum to 1.
    pub kernels: Vec<KernelCharacteristics>,
}

impl AppInstance {
    fn new(benchmark: &str, input: InputSize, mut kernels: Vec<KernelCharacteristics>) -> Self {
        let total: f64 = kernels.iter().map(|k| k.weight).sum();
        assert!(total > 0.0, "{benchmark}/{input}: weights must be positive");
        for k in &mut kernels {
            k.weight /= total;
        }
        Self { benchmark: benchmark.to_string(), input: input.label().to_string(), kernels }
    }

    /// `"<benchmark> <input>"`, e.g. `"LULESH Small"`; CoMD's single input
    /// is rendered without a label, matching the paper's figures.
    pub fn label(&self) -> String {
        if self.input == "Default" {
            self.benchmark.clone()
        } else {
            format!("{} {}", self.benchmark, self.input)
        }
    }
}

/// All seven application instances of the evaluation.
pub fn app_instances() -> Vec<AppInstance> {
    vec![
        AppInstance::new(lulesh::NAME, InputSize::Small, lulesh::kernels(InputSize::Small)),
        AppInstance::new(lulesh::NAME, InputSize::Large, lulesh::kernels(InputSize::Large)),
        AppInstance::new(comd::NAME, InputSize::Default, comd::kernels(InputSize::Default)),
        AppInstance::new(smc::NAME, InputSize::Small, smc::kernels(InputSize::Small)),
        AppInstance::new(smc::NAME, InputSize::Large, smc::kernels(InputSize::Large)),
        AppInstance::new(lu::NAME, InputSize::Small, lu::kernels(InputSize::Small)),
        AppInstance::new(lu::NAME, InputSize::Large, lu::kernels(InputSize::Large)),
    ]
}

/// All 65 kernel/input combinations, flattened.
pub fn all_kernel_instances() -> Vec<KernelCharacteristics> {
    app_instances().into_iter().flat_map(|a| a.kernels).collect()
}

/// Number of distinct kernels (ignoring input size).
pub fn distinct_kernel_count() -> usize {
    let mut names: Vec<String> =
        all_kernel_instances().iter().map(|k| format!("{}/{}", k.benchmark, k.name)).collect();
    names.sort();
    names.dedup();
    names.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_65_combinations() {
        assert_eq!(all_kernel_instances().len(), 65);
    }

    #[test]
    fn suite_has_36_distinct_kernels() {
        assert_eq!(distinct_kernel_count(), 36);
    }

    #[test]
    fn suite_has_7_app_instances() {
        assert_eq!(app_instances().len(), 7);
    }

    #[test]
    fn weights_normalize_per_app() {
        for app in app_instances() {
            let total: f64 = app.kernels.iter().map(|k| k.weight).sum();
            assert!((total - 1.0).abs() < 1e-9, "{}: weights sum to {total}", app.label());
        }
    }

    #[test]
    fn all_instances_validate() {
        for k in all_kernel_instances() {
            assert!(k.validate().is_empty(), "{:?}", k.validate());
        }
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<String> = all_kernel_instances().iter().map(|k| k.id()).collect();
        ids.sort();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn labels_match_paper_figures() {
        let labels: Vec<String> = app_instances().iter().map(|a| a.label()).collect();
        assert!(labels.contains(&"LULESH Small".to_string()));
        assert!(labels.contains(&"LULESH Large".to_string()));
        assert!(labels.contains(&"CoMD".to_string()));
        assert!(labels.contains(&"LU Small".to_string()));
        assert!(labels.contains(&"LU Large".to_string()));
    }

    #[test]
    fn benchmark_names_cover_four_suites() {
        let mut benches: Vec<String> =
            app_instances().iter().map(|a| a.benchmark.clone()).collect();
        benches.sort();
        benches.dedup();
        assert_eq!(benches, ["CoMD", "LU", "LULESH", "SMC"]);
    }
}
