//! Kernel specification table format.
//!
//! Each benchmark module describes its kernels as a compact static table of
//! [`KernelSpec`] rows (latents at the Small input), which are instantiated
//! into [`KernelCharacteristics`] for a concrete input size.

use crate::inputs::InputSize;
use acs_sim::KernelCharacteristics;

/// Static description of one kernel at the Small reference input.
///
/// Time-like fields are in milliseconds for readability; instantiation
/// converts to seconds.
#[derive(Debug, Clone, Copy)]
pub struct KernelSpec {
    /// Kernel name as it appears in the source benchmark.
    pub name: &'static str,
    /// Single-thread compute time at 3.7 GHz, milliseconds.
    pub compute_ms: f64,
    /// Single-thread DRAM-bound time, milliseconds.
    pub memory_ms: f64,
    /// Amdahl parallel fraction.
    pub parallel_fraction: f64,
    /// Threads at which DRAM bandwidth saturates.
    pub bw_saturation_threads: f64,
    /// Module-sharing (shared FPU/front-end) throughput penalty.
    pub module_sharing_penalty: f64,
    /// Per-extra-thread synchronization overhead.
    pub sync_overhead: f64,
    /// Effective GPU speedup over one reference CPU core.
    pub gpu_speedup: f64,
    /// Branch-divergence factor.
    pub branch_divergence: f64,
    /// GPU bandwidth advantage over one CPU thread.
    pub gpu_bw_advantage: f64,
    /// OpenCL launch + driver overhead, milliseconds.
    pub launch_ms: f64,
    /// Fraction of vector (SIMD) instructions.
    pub vector_fraction: f64,
    /// Working set, MiB.
    pub working_set_mb: f64,
    /// CPU switching activity.
    pub cpu_activity: f64,
    /// GPU switching activity.
    pub gpu_activity: f64,
    /// Relative share of application time (normalized per app later).
    pub weight: f64,
}

impl KernelSpec {
    /// Instantiate this spec for a benchmark at an input size.
    pub fn instantiate(&self, benchmark: &str, input: InputSize) -> KernelCharacteristics {
        KernelCharacteristics {
            name: self.name.to_string(),
            benchmark: benchmark.to_string(),
            input: input.label().to_string(),
            compute_time_s: self.compute_ms * 1e-3 * input.compute_scale(),
            memory_time_s: self.memory_ms * 1e-3 * input.memory_scale(),
            parallel_fraction: self.parallel_fraction,
            bw_saturation_threads: self.bw_saturation_threads,
            module_sharing_penalty: self.module_sharing_penalty,
            sync_overhead: self.sync_overhead,
            gpu_speedup: (self.gpu_speedup * input.gpu_occupancy_scale()).max(0.05),
            branch_divergence: self.branch_divergence,
            gpu_bw_advantage: self.gpu_bw_advantage,
            launch_overhead_s: self.launch_ms * 1e-3,
            vector_fraction: self.vector_fraction,
            working_set_mb: self.working_set_mb * input.working_set_scale(),
            cpu_activity: self.cpu_activity,
            gpu_activity: self.gpu_activity,
            weight: self.weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> KernelSpec {
        KernelSpec {
            name: "TestKernel",
            compute_ms: 10.0,
            memory_ms: 2.0,
            parallel_fraction: 0.95,
            bw_saturation_threads: 3.0,
            module_sharing_penalty: 0.2,
            sync_overhead: 0.03,
            gpu_speedup: 8.0,
            branch_divergence: 0.1,
            gpu_bw_advantage: 1.3,
            launch_ms: 0.4,
            vector_fraction: 0.5,
            working_set_mb: 16.0,
            cpu_activity: 0.4,
            gpu_activity: 0.6,
            weight: 1.0,
        }
    }

    #[test]
    fn small_instantiation_converts_units() {
        let k = spec().instantiate("Bench", InputSize::Small);
        assert!((k.compute_time_s - 0.010).abs() < 1e-12);
        assert!((k.memory_time_s - 0.002).abs() < 1e-12);
        assert!((k.launch_overhead_s - 0.0004).abs() < 1e-12);
        assert_eq!(k.id(), "Bench/Small/TestKernel");
        assert!(k.validate().is_empty());
    }

    #[test]
    fn large_instantiation_scales() {
        let s = spec().instantiate("Bench", InputSize::Small);
        let l = spec().instantiate("Bench", InputSize::Large);
        assert!((l.compute_time_s / s.compute_time_s - 8.0).abs() < 1e-9);
        assert!((l.memory_time_s / s.memory_time_s - 11.0).abs() < 1e-9);
        assert!(l.memory_boundedness() > s.memory_boundedness());
        assert!(l.gpu_speedup > s.gpu_speedup);
        // Launch overhead does not grow: it amortizes on large inputs.
        assert_eq!(l.launch_overhead_s, s.launch_overhead_s);
    }
}
