//! LULESH — Livermore Unstructured Lagrangian Explicit Shock Hydrodynamics.
//!
//! The paper's OpenCL/OpenMP port contains 20 significant kernels spanning
//! compute-dense element loops (hourglass control, stress integration),
//! memory-bound nodal streaming updates, branchy limiter kernels, and tiny
//! boundary-condition kernels where launch overhead dominates. The latents
//! below encode those archetypes; the suite runs LULESH at Small and Large
//! inputs.

use crate::inputs::InputSize;
use crate::spec::KernelSpec;
use acs_sim::KernelCharacteristics;

/// Benchmark name used in kernel ids and evaluation tables.
pub const NAME: &str = "LULESH";

/// The 20 LULESH kernel specifications at the Small input.
pub const SPECS: [KernelSpec; 20] = [
    // Compute-dense element kernels: high parallel fraction, strong GPU
    // affinity, FP-heavy (module sharing hurts), big weights.
    KernelSpec {
        name: "CalcFBHourglassForce",
        compute_ms: 22.0,
        memory_ms: 3.0,
        parallel_fraction: 0.99,
        bw_saturation_threads: 3.0,
        module_sharing_penalty: 0.25,
        sync_overhead: 0.02,
        gpu_speedup: 8.0,
        branch_divergence: 0.05,
        gpu_bw_advantage: 1.5,
        launch_ms: 0.35,
        vector_fraction: 0.60,
        working_set_mb: 30.0,
        cpu_activity: 0.50,
        gpu_activity: 0.75,
        weight: 0.18,
    },
    KernelSpec {
        name: "CalcHourglassControlForElems",
        compute_ms: 12.0,
        memory_ms: 2.5,
        parallel_fraction: 0.98,
        bw_saturation_threads: 3.0,
        module_sharing_penalty: 0.22,
        sync_overhead: 0.02,
        gpu_speedup: 7.0,
        branch_divergence: 0.08,
        gpu_bw_advantage: 1.4,
        launch_ms: 0.30,
        vector_fraction: 0.55,
        working_set_mb: 28.0,
        cpu_activity: 0.48,
        gpu_activity: 0.70,
        weight: 0.10,
    },
    KernelSpec {
        name: "CalcVolumeForceForElems",
        compute_ms: 6.0,
        memory_ms: 1.2,
        parallel_fraction: 0.97,
        bw_saturation_threads: 3.0,
        module_sharing_penalty: 0.20,
        sync_overhead: 0.03,
        gpu_speedup: 6.0,
        branch_divergence: 0.10,
        gpu_bw_advantage: 1.3,
        launch_ms: 0.30,
        vector_fraction: 0.50,
        working_set_mb: 20.0,
        cpu_activity: 0.45,
        gpu_activity: 0.65,
        weight: 0.05,
    },
    KernelSpec {
        name: "IntegrateStressForElems",
        compute_ms: 10.0,
        memory_ms: 2.8,
        parallel_fraction: 0.98,
        bw_saturation_threads: 2.5,
        module_sharing_penalty: 0.20,
        sync_overhead: 0.02,
        gpu_speedup: 6.5,
        branch_divergence: 0.07,
        gpu_bw_advantage: 1.4,
        launch_ms: 0.30,
        vector_fraction: 0.45,
        working_set_mb: 26.0,
        cpu_activity: 0.46,
        gpu_activity: 0.68,
        weight: 0.09,
    },
    // Nodal gather: irregular access, memory-bound, weak GPU mapping.
    KernelSpec {
        name: "CalcForceForNodes",
        compute_ms: 1.5,
        memory_ms: 2.2,
        parallel_fraction: 0.92,
        bw_saturation_threads: 2.0,
        module_sharing_penalty: 0.08,
        sync_overhead: 0.04,
        gpu_speedup: 3.5,
        branch_divergence: 0.20,
        gpu_bw_advantage: 1.1,
        launch_ms: 0.25,
        vector_fraction: 0.15,
        working_set_mb: 18.0,
        cpu_activity: 0.33,
        gpu_activity: 0.45,
        weight: 0.03,
    },
    // Streaming nodal updates: bandwidth-bound, DVFS-insensitive.
    KernelSpec {
        name: "CalcAccelerationForNodes",
        compute_ms: 0.8,
        memory_ms: 1.4,
        parallel_fraction: 0.95,
        bw_saturation_threads: 2.0,
        module_sharing_penalty: 0.05,
        sync_overhead: 0.04,
        gpu_speedup: 4.0,
        branch_divergence: 0.10,
        gpu_bw_advantage: 1.2,
        launch_ms: 0.20,
        vector_fraction: 0.30,
        working_set_mb: 12.0,
        cpu_activity: 0.30,
        gpu_activity: 0.40,
        weight: 0.02,
    },
    // Tiny boundary-condition kernel: mostly serial, launch-dominated on
    // the GPU — the classic "do not offload" case.
    KernelSpec {
        name: "ApplyAccelerationBoundaryConditions",
        compute_ms: 0.30,
        memory_ms: 0.15,
        parallel_fraction: 0.55,
        bw_saturation_threads: 1.5,
        module_sharing_penalty: 0.05,
        sync_overhead: 0.06,
        gpu_speedup: 0.8,
        branch_divergence: 0.35,
        gpu_bw_advantage: 1.0,
        launch_ms: 0.20,
        vector_fraction: 0.10,
        working_set_mb: 2.0,
        cpu_activity: 0.28,
        gpu_activity: 0.30,
        weight: 0.01,
    },
    KernelSpec {
        name: "CalcVelocityForNodes",
        compute_ms: 0.9,
        memory_ms: 1.6,
        parallel_fraction: 0.96,
        bw_saturation_threads: 2.0,
        module_sharing_penalty: 0.05,
        sync_overhead: 0.03,
        gpu_speedup: 4.5,
        branch_divergence: 0.08,
        gpu_bw_advantage: 1.25,
        launch_ms: 0.20,
        vector_fraction: 0.35,
        working_set_mb: 14.0,
        cpu_activity: 0.30,
        gpu_activity: 0.42,
        weight: 0.02,
    },
    KernelSpec {
        name: "CalcPositionForNodes",
        compute_ms: 0.8,
        memory_ms: 1.5,
        parallel_fraction: 0.96,
        bw_saturation_threads: 2.0,
        module_sharing_penalty: 0.05,
        sync_overhead: 0.03,
        gpu_speedup: 4.5,
        branch_divergence: 0.08,
        gpu_bw_advantage: 1.25,
        launch_ms: 0.20,
        vector_fraction: 0.35,
        working_set_mb: 14.0,
        cpu_activity: 0.30,
        gpu_activity: 0.42,
        weight: 0.02,
    },
    KernelSpec {
        name: "CalcKinematicsForElems",
        compute_ms: 9.0,
        memory_ms: 2.0,
        parallel_fraction: 0.98,
        bw_saturation_threads: 3.0,
        module_sharing_penalty: 0.18,
        sync_overhead: 0.02,
        gpu_speedup: 6.5,
        branch_divergence: 0.08,
        gpu_bw_advantage: 1.35,
        launch_ms: 0.30,
        vector_fraction: 0.50,
        working_set_mb: 24.0,
        cpu_activity: 0.44,
        gpu_activity: 0.66,
        weight: 0.08,
    },
    KernelSpec {
        name: "CalcLagrangeElements",
        compute_ms: 3.0,
        memory_ms: 1.0,
        parallel_fraction: 0.95,
        bw_saturation_threads: 2.5,
        module_sharing_penalty: 0.15,
        sync_overhead: 0.03,
        gpu_speedup: 4.5,
        branch_divergence: 0.10,
        gpu_bw_advantage: 1.3,
        launch_ms: 0.25,
        vector_fraction: 0.40,
        working_set_mb: 16.0,
        cpu_activity: 0.40,
        gpu_activity: 0.55,
        weight: 0.03,
    },
    KernelSpec {
        name: "CalcMonotonicQGradientsForElems",
        compute_ms: 7.0,
        memory_ms: 2.4,
        parallel_fraction: 0.97,
        bw_saturation_threads: 2.5,
        module_sharing_penalty: 0.15,
        sync_overhead: 0.03,
        gpu_speedup: 5.0,
        branch_divergence: 0.12,
        gpu_bw_advantage: 1.3,
        launch_ms: 0.30,
        vector_fraction: 0.40,
        working_set_mb: 26.0,
        cpu_activity: 0.41,
        gpu_activity: 0.60,
        weight: 0.06,
    },
    // Branch-heavy limiter: divergence wrecks GPU throughput.
    KernelSpec {
        name: "CalcMonotonicQRegionForElems",
        compute_ms: 4.0,
        memory_ms: 1.6,
        parallel_fraction: 0.93,
        bw_saturation_threads: 2.0,
        module_sharing_penalty: 0.10,
        sync_overhead: 0.04,
        gpu_speedup: 2.5,
        branch_divergence: 0.50,
        gpu_bw_advantage: 1.1,
        launch_ms: 0.30,
        vector_fraction: 0.20,
        working_set_mb: 20.0,
        cpu_activity: 0.36,
        gpu_activity: 0.45,
        weight: 0.04,
    },
    KernelSpec {
        name: "CalcQForElems",
        compute_ms: 2.5,
        memory_ms: 1.0,
        parallel_fraction: 0.94,
        bw_saturation_threads: 2.0,
        module_sharing_penalty: 0.10,
        sync_overhead: 0.04,
        gpu_speedup: 3.0,
        branch_divergence: 0.40,
        gpu_bw_advantage: 1.1,
        launch_ms: 0.25,
        vector_fraction: 0.25,
        working_set_mb: 16.0,
        cpu_activity: 0.36,
        gpu_activity: 0.45,
        weight: 0.03,
    },
    KernelSpec {
        name: "CalcPressureForElems",
        compute_ms: 3.5,
        memory_ms: 0.9,
        parallel_fraction: 0.96,
        bw_saturation_threads: 3.0,
        module_sharing_penalty: 0.18,
        sync_overhead: 0.03,
        gpu_speedup: 5.5,
        branch_divergence: 0.10,
        gpu_bw_advantage: 1.3,
        launch_ms: 0.25,
        vector_fraction: 0.50,
        working_set_mb: 12.0,
        cpu_activity: 0.43,
        gpu_activity: 0.60,
        weight: 0.04,
    },
    // Iterative EOS solve with data-dependent convergence branches.
    KernelSpec {
        name: "CalcEnergyForElems",
        compute_ms: 8.0,
        memory_ms: 1.8,
        parallel_fraction: 0.96,
        bw_saturation_threads: 3.0,
        module_sharing_penalty: 0.18,
        sync_overhead: 0.03,
        gpu_speedup: 5.5,
        branch_divergence: 0.25,
        gpu_bw_advantage: 1.3,
        launch_ms: 0.30,
        vector_fraction: 0.45,
        working_set_mb: 20.0,
        cpu_activity: 0.42,
        gpu_activity: 0.58,
        weight: 0.08,
    },
    KernelSpec {
        name: "CalcSoundSpeedForElems",
        compute_ms: 1.2,
        memory_ms: 0.5,
        parallel_fraction: 0.95,
        bw_saturation_threads: 2.5,
        module_sharing_penalty: 0.15,
        sync_overhead: 0.03,
        gpu_speedup: 4.0,
        branch_divergence: 0.10,
        gpu_bw_advantage: 1.2,
        launch_ms: 0.20,
        vector_fraction: 0.45,
        working_set_mb: 8.0,
        cpu_activity: 0.40,
        gpu_activity: 0.50,
        weight: 0.02,
    },
    KernelSpec {
        name: "UpdateVolumesForElems",
        compute_ms: 0.4,
        memory_ms: 1.1,
        parallel_fraction: 0.97,
        bw_saturation_threads: 2.0,
        module_sharing_penalty: 0.03,
        sync_overhead: 0.03,
        gpu_speedup: 3.8,
        branch_divergence: 0.05,
        gpu_bw_advantage: 1.3,
        launch_ms: 0.20,
        vector_fraction: 0.20,
        working_set_mb: 10.0,
        cpu_activity: 0.28,
        gpu_activity: 0.38,
        weight: 0.01,
    },
    // Reduction kernels with data-dependent branches.
    KernelSpec {
        name: "CalcCourantConstraintForElems",
        compute_ms: 1.8,
        memory_ms: 0.9,
        parallel_fraction: 0.90,
        bw_saturation_threads: 2.0,
        module_sharing_penalty: 0.10,
        sync_overhead: 0.05,
        gpu_speedup: 2.2,
        branch_divergence: 0.45,
        gpu_bw_advantage: 1.1,
        launch_ms: 0.30,
        vector_fraction: 0.30,
        working_set_mb: 14.0,
        cpu_activity: 0.35,
        gpu_activity: 0.42,
        weight: 0.02,
    },
    KernelSpec {
        name: "CalcHydroConstraintForElems",
        compute_ms: 1.6,
        memory_ms: 0.8,
        parallel_fraction: 0.90,
        bw_saturation_threads: 2.0,
        module_sharing_penalty: 0.10,
        sync_overhead: 0.05,
        gpu_speedup: 2.2,
        branch_divergence: 0.40,
        gpu_bw_advantage: 1.1,
        launch_ms: 0.30,
        vector_fraction: 0.30,
        working_set_mb: 14.0,
        cpu_activity: 0.35,
        gpu_activity: 0.42,
        weight: 0.02,
    },
];

/// Instantiate the LULESH kernels for an input size.
pub fn kernels(input: InputSize) -> Vec<KernelCharacteristics> {
    SPECS.iter().map(|s| s.instantiate(NAME, input)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_twenty_kernels() {
        assert_eq!(SPECS.len(), 20);
        assert_eq!(kernels(InputSize::Small).len(), 20);
    }

    #[test]
    fn all_kernels_validate() {
        for input in [InputSize::Small, InputSize::Large] {
            for k in kernels(input) {
                assert!(k.validate().is_empty(), "{:?}", k.validate());
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = SPECS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn suite_has_behavioral_diversity() {
        let ks = kernels(InputSize::Small);
        let max_gpu = ks.iter().map(|k| k.gpu_speedup).fold(0.0, f64::max);
        let min_gpu = ks.iter().map(|k| k.gpu_speedup).fold(f64::INFINITY, f64::min);
        assert!(max_gpu / min_gpu > 8.0, "GPU affinity must vary widely");
        let max_mb = ks.iter().map(|k| k.memory_boundedness()).fold(0.0, f64::max);
        let min_mb = ks.iter().map(|k| k.memory_boundedness()).fold(f64::INFINITY, f64::min);
        assert!(max_mb > 0.5 && min_mb < 0.2, "memory-boundedness must vary");
    }
}
