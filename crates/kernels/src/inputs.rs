//! Input sizes and their effect on kernel characteristics.
//!
//! "Running benchmarks with various inputs increases the variance in kernel
//! behavior, and increases our benchmark/input combination count to 65"
//! (Section IV-B). Larger inputs grow working sets and memory-boundedness,
//! amortize OpenCL launch overhead, and improve GPU occupancy — the same
//! qualitative shifts observed between the paper's Small and Large runs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Input-size label for a benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputSize {
    /// Problem fits mostly in cache; launch overheads are significant.
    Small,
    /// Problem spills to DRAM; GPU occupancy is high.
    Large,
    /// Single reference input (used by CoMD, which the paper runs at one
    /// size).
    Default,
}

impl InputSize {
    /// Multiplier on compute time relative to the Small baseline (an 8×
    /// element count for a 2× refinement in each spatial dimension).
    pub fn compute_scale(self) -> f64 {
        match self {
            InputSize::Small | InputSize::Default => 1.0,
            InputSize::Large => 8.0,
        }
    }

    /// Multiplier on DRAM-bound time. Grows faster than compute because the
    /// larger working set also lowers cache hit rates.
    pub fn memory_scale(self) -> f64 {
        match self {
            InputSize::Small | InputSize::Default => 1.0,
            InputSize::Large => 11.0,
        }
    }

    /// Multiplier on the resident working set.
    pub fn working_set_scale(self) -> f64 {
        match self {
            InputSize::Small | InputSize::Default => 1.0,
            InputSize::Large => 8.0,
        }
    }

    /// Multiplier on effective GPU speedup: more work per launch means
    /// better occupancy on the 384-lane array.
    pub fn gpu_occupancy_scale(self) -> f64 {
        match self {
            InputSize::Small | InputSize::Default => 1.0,
            InputSize::Large => 1.15,
        }
    }

    /// The label used in kernel ids and result tables.
    pub fn label(self) -> &'static str {
        match self {
            InputSize::Small => "Small",
            InputSize::Large => "Large",
            InputSize::Default => "Default",
        }
    }
}

impl fmt::Display for InputSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_grows_memory_faster_than_compute() {
        assert!(InputSize::Large.memory_scale() > InputSize::Large.compute_scale());
    }

    #[test]
    fn small_and_default_are_identity() {
        for s in [InputSize::Small, InputSize::Default] {
            assert_eq!(s.compute_scale(), 1.0);
            assert_eq!(s.memory_scale(), 1.0);
            assert_eq!(s.working_set_scale(), 1.0);
            assert_eq!(s.gpu_occupancy_scale(), 1.0);
        }
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(InputSize::Small.label(), InputSize::Large.label());
        assert_eq!(InputSize::Large.to_string(), "Large");
    }
}
