//! # acs-kernels — synthetic exascale-proxy benchmark suite
//!
//! Stand-ins for the paper's benchmark suite (Section IV-B): LULESH (20
//! kernels), CoMD (7), SMC (8), and Rodinia LU (1) — 36 kernels total, run
//! at multiple input sizes for 65 benchmark/input combinations.
//!
//! Each kernel is a [`KernelSpec`] table row of latent characteristics
//! (parallel fraction, memory-boundedness, GPU affinity, branch divergence,
//! vectorization, launch overhead, switching activity) instantiated into an
//! [`acs_sim::KernelCharacteristics`] for a concrete input size. The latents
//! are chosen per archetype — compute-dense force/chemistry kernels,
//! bandwidth-bound streaming updates, divergent neighbor/limiter kernels,
//! and tiny launch-dominated boundary kernels — so that the suite spans the
//! behavioral diversity the paper reports (best-config power spread and
//! multi-order-of-magnitude performance ranges).
//!
//! ```
//! let combos = acs_kernels::all_kernel_instances();
//! assert_eq!(combos.len(), 65);
//! ```

#![warn(missing_docs)]

pub mod comd;
pub mod generator;
pub mod inputs;
pub mod lu;
pub mod lulesh;
pub mod smc;
pub mod spec;
pub mod suite;

pub use generator::{generate, GeneratorConfig};
pub use inputs::InputSize;
pub use spec::KernelSpec;
pub use suite::{all_kernel_instances, app_instances, distinct_kernel_count, AppInstance};
