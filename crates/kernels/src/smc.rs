//! SMC — combustion (reacting compressible Navier–Stokes) proxy application.
//!
//! Eight significant kernels: dense chemistry-rate evaluation (the most
//! power-hungry, highly vectorized kernel in the suite), wide stencil
//! diffusion/hyperbolic terms (large working sets), transport-coefficient
//! and primitive-variable kernels, a halo-exchange boundary fill that the
//! GPU handles poorly, and a streaming Runge-Kutta update.

use crate::inputs::InputSize;
use crate::spec::KernelSpec;
use acs_sim::KernelCharacteristics;

/// Benchmark name used in kernel ids and evaluation tables.
pub const NAME: &str = "SMC";

/// The 8 SMC kernel specifications at the Small input.
pub const SPECS: [KernelSpec; 8] = [
    KernelSpec {
        name: "ChemRates",
        compute_ms: 40.0,
        memory_ms: 2.0,
        parallel_fraction: 0.99,
        bw_saturation_threads: 4.0,
        module_sharing_penalty: 0.30,
        sync_overhead: 0.015,
        gpu_speedup: 9.0,
        branch_divergence: 0.08,
        gpu_bw_advantage: 1.5,
        launch_ms: 0.50,
        vector_fraction: 0.65,
        working_set_mb: 16.0,
        cpu_activity: 0.55,
        gpu_activity: 0.80,
        weight: 0.35,
    },
    KernelSpec {
        name: "DiffTerm",
        compute_ms: 14.0,
        memory_ms: 5.0,
        parallel_fraction: 0.97,
        bw_saturation_threads: 2.5,
        module_sharing_penalty: 0.15,
        sync_overhead: 0.03,
        gpu_speedup: 4.5,
        branch_divergence: 0.10,
        gpu_bw_advantage: 1.4,
        launch_ms: 0.45,
        vector_fraction: 0.45,
        working_set_mb: 40.0,
        cpu_activity: 0.42,
        gpu_activity: 0.60,
        weight: 0.18,
    },
    KernelSpec {
        name: "HypTerm",
        compute_ms: 12.0,
        memory_ms: 4.5,
        parallel_fraction: 0.97,
        bw_saturation_threads: 2.5,
        module_sharing_penalty: 0.15,
        sync_overhead: 0.03,
        gpu_speedup: 5.0,
        branch_divergence: 0.12,
        gpu_bw_advantage: 1.4,
        launch_ms: 0.45,
        vector_fraction: 0.45,
        working_set_mb: 36.0,
        cpu_activity: 0.42,
        gpu_activity: 0.60,
        weight: 0.15,
    },
    KernelSpec {
        name: "CalcDiffusionCoeffs",
        compute_ms: 8.0,
        memory_ms: 1.5,
        parallel_fraction: 0.98,
        bw_saturation_threads: 3.0,
        module_sharing_penalty: 0.22,
        sync_overhead: 0.02,
        gpu_speedup: 5.5,
        branch_divergence: 0.10,
        gpu_bw_advantage: 1.3,
        launch_ms: 0.35,
        vector_fraction: 0.50,
        working_set_mb: 14.0,
        cpu_activity: 0.46,
        gpu_activity: 0.65,
        weight: 0.08,
    },
    KernelSpec {
        name: "CalcPrimitives",
        compute_ms: 3.0,
        memory_ms: 1.8,
        parallel_fraction: 0.96,
        bw_saturation_threads: 2.0,
        module_sharing_penalty: 0.08,
        sync_overhead: 0.03,
        gpu_speedup: 4.5,
        branch_divergence: 0.08,
        gpu_bw_advantage: 1.3,
        launch_ms: 0.30,
        vector_fraction: 0.35,
        working_set_mb: 22.0,
        cpu_activity: 0.36,
        gpu_activity: 0.50,
        weight: 0.05,
    },
    KernelSpec {
        name: "FillBoundary",
        compute_ms: 0.6,
        memory_ms: 0.9,
        parallel_fraction: 0.70,
        bw_saturation_threads: 1.5,
        module_sharing_penalty: 0.05,
        sync_overhead: 0.06,
        gpu_speedup: 0.9,
        branch_divergence: 0.50,
        gpu_bw_advantage: 1.0,
        launch_ms: 0.30,
        vector_fraction: 0.10,
        working_set_mb: 6.0,
        cpu_activity: 0.30,
        gpu_activity: 0.33,
        weight: 0.03,
    },
    KernelSpec {
        name: "UpdateRK3",
        compute_ms: 1.2,
        memory_ms: 2.4,
        parallel_fraction: 0.98,
        bw_saturation_threads: 2.0,
        module_sharing_penalty: 0.03,
        sync_overhead: 0.02,
        gpu_speedup: 4.8,
        branch_divergence: 0.04,
        gpu_bw_advantage: 1.35,
        launch_ms: 0.25,
        vector_fraction: 0.40,
        working_set_mb: 28.0,
        cpu_activity: 0.30,
        gpu_activity: 0.42,
        weight: 0.06,
    },
    KernelSpec {
        name: "CalcSpeciesEnergy",
        compute_ms: 5.0,
        memory_ms: 1.2,
        parallel_fraction: 0.97,
        bw_saturation_threads: 3.0,
        module_sharing_penalty: 0.20,
        sync_overhead: 0.025,
        gpu_speedup: 5.5,
        branch_divergence: 0.10,
        gpu_bw_advantage: 1.3,
        launch_ms: 0.30,
        vector_fraction: 0.50,
        working_set_mb: 12.0,
        cpu_activity: 0.44,
        gpu_activity: 0.62,
        weight: 0.05,
    },
];

/// Instantiate the SMC kernels for an input size.
pub fn kernels(input: InputSize) -> Vec<KernelCharacteristics> {
    SPECS.iter().map(|s| s.instantiate(NAME, input)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_eight_kernels() {
        assert_eq!(SPECS.len(), 8);
    }

    #[test]
    fn all_kernels_validate() {
        for input in [InputSize::Small, InputSize::Large] {
            for k in kernels(input) {
                assert!(k.validate().is_empty(), "{:?}", k.validate());
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = SPECS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn chemistry_is_the_power_hog() {
        // ChemRates has the highest activity product in the suite — it is
        // the kernel that pushes best-config power toward the top of the
        // paper's 19–55 W spread.
        let chem = &SPECS[0];
        for s in &SPECS[1..] {
            assert!(chem.cpu_activity >= s.cpu_activity);
            assert!(chem.gpu_activity >= s.gpu_activity);
        }
    }
}
