//! Synthetic training-workload generator.
//!
//! Section III-B: "we use a cross-validation scheme to select training
//! kernels; however, the training set could be composed of
//! microbenchmarks or a standard benchmark suite." This module generates
//! such microbenchmark sets: seeded, parameterized sweeps over the latent
//! space (compute/memory mix, GPU affinity, divergence, …) that span
//! behavior space *by construction* instead of by benchmark curation.
//!
//! Experiment A7 (`ablation_microbench`) trains on a generated set and
//! validates on the real suite — the deployment mode a vendor would ship.

use acs_sim::KernelCharacteristics;
use serde::{Deserialize, Serialize};

/// Parameter ranges for microbenchmark generation. Each latent is drawn
/// log- or linearly-uniformly from its range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of microbenchmarks to generate.
    pub count: usize,
    /// Single-thread compute time range at reference frequency, seconds
    /// (log-uniform).
    pub compute_time_s: (f64, f64),
    /// Memory-boundedness range (fraction of reference time DRAM-bound).
    pub memory_boundedness: (f64, f64),
    /// GPU speedup range (log-uniform).
    pub gpu_speedup: (f64, f64),
    /// Branch-divergence range.
    pub branch_divergence: (f64, f64),
    /// Parallel-fraction range.
    pub parallel_fraction: (f64, f64),
    /// Vectorization range.
    pub vector_fraction: (f64, f64),
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            count: 40,
            compute_time_s: (0.0005, 0.05),
            memory_boundedness: (0.02, 0.85),
            gpu_speedup: (0.5, 30.0),
            branch_divergence: (0.0, 0.7),
            parallel_fraction: (0.55, 0.995),
            vector_fraction: (0.05, 0.7),
        }
    }
}

/// SplitMix64 step.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn uniform(state: &mut u64, (lo, hi): (f64, f64)) -> f64 {
    let u = (next(state) >> 11) as f64 / (1u64 << 53) as f64;
    lo + u * (hi - lo)
}

fn log_uniform(state: &mut u64, (lo, hi): (f64, f64)) -> f64 {
    assert!(lo > 0.0 && hi > lo);
    (uniform(state, (lo.ln(), hi.ln()))).exp()
}

/// Generate a seeded microbenchmark training set.
///
/// The latents are drawn independently except for physically-motivated
/// couplings: memory-bound kernels saturate bandwidth at fewer threads and
/// switch less; divergent kernels vectorize poorly.
pub fn generate(config: &GeneratorConfig, seed: u64) -> Vec<KernelCharacteristics> {
    let mut state = seed ^ 0x5DEECE66D;
    (0..config.count)
        .map(|i| {
            let compute = log_uniform(&mut state, config.compute_time_s);
            let mem_bound = uniform(&mut state, config.memory_boundedness);
            let memory = compute * mem_bound / (1.0 - mem_bound).max(0.05);
            let divergence = uniform(&mut state, config.branch_divergence);
            let vector = uniform(&mut state, config.vector_fraction) * (1.0 - divergence);

            KernelCharacteristics {
                name: format!("ubench-{i:03}"),
                benchmark: "Microbench".into(),
                input: "Gen".into(),
                compute_time_s: compute,
                memory_time_s: memory,
                parallel_fraction: uniform(&mut state, config.parallel_fraction),
                bw_saturation_threads: 1.5 + 2.5 * (1.0 - mem_bound),
                module_sharing_penalty: 0.05 + 0.3 * vector,
                sync_overhead: uniform(&mut state, (0.01, 0.08)),
                gpu_speedup: log_uniform(&mut state, config.gpu_speedup),
                branch_divergence: divergence,
                gpu_bw_advantage: uniform(&mut state, (1.0, 1.6)),
                launch_overhead_s: log_uniform(&mut state, (1e-4, 6e-4)),
                vector_fraction: vector.clamp(0.0, 1.0),
                working_set_mb: log_uniform(&mut state, (2.0, 64.0)),
                cpu_activity: 0.26 + 0.30 * (1.0 - mem_bound),
                gpu_activity: 0.35 + 0.45 * (1.0 - mem_bound),
                weight: 1.0 / config.count as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_of_valid_kernels() {
        let ks = generate(&GeneratorConfig::default(), 1);
        assert_eq!(ks.len(), 40);
        for k in &ks {
            assert!(k.validate().is_empty(), "{:?}", k.validate());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = GeneratorConfig::default();
        assert_eq!(generate(&cfg, 9), generate(&cfg, 9));
        assert_ne!(generate(&cfg, 9), generate(&cfg, 10));
    }

    #[test]
    fn names_are_unique() {
        let ks = generate(&GeneratorConfig::default(), 3);
        let mut names: Vec<&str> = ks.iter().map(|k| k.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 40);
    }

    #[test]
    fn spans_behavior_space() {
        let ks = generate(&GeneratorConfig { count: 100, ..Default::default() }, 7);
        let gpu_min = ks.iter().map(|k| k.gpu_speedup).fold(f64::INFINITY, f64::min);
        let gpu_max = ks.iter().map(|k| k.gpu_speedup).fold(0.0, f64::max);
        assert!(gpu_max / gpu_min > 8.0, "GPU affinity span {gpu_min}..{gpu_max}");
        let mb_min = ks.iter().map(|k| k.memory_boundedness()).fold(f64::INFINITY, f64::min);
        let mb_max = ks.iter().map(|k| k.memory_boundedness()).fold(0.0, f64::max);
        assert!(mb_min < 0.15 && mb_max > 0.6, "memory span {mb_min}..{mb_max}");
    }

    #[test]
    fn couplings_hold() {
        for k in generate(&GeneratorConfig { count: 200, ..Default::default() }, 5) {
            // Divergent kernels cannot also be heavily vectorized.
            assert!(k.vector_fraction <= 1.0 - k.branch_divergence + 1e-9);
            // Memory-bound kernels saturate bandwidth early.
            if k.memory_boundedness() > 0.7 {
                assert!(k.bw_saturation_threads < 3.0);
            }
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let ks = generate(&GeneratorConfig::default(), 2);
        let total: f64 = ks.iter().map(|k| k.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
