//! CoMD — classical molecular dynamics proxy application.
//!
//! Seven significant kernels: the Lennard-Jones and three-pass EAM force
//! computations (compute-dense, GPU-friendly), streaming integrator updates
//! (bandwidth-bound), and neighbor-list construction (divergent and
//! GPU-hostile). The paper runs CoMD at a single input size.

use crate::inputs::InputSize;
use crate::spec::KernelSpec;
use acs_sim::KernelCharacteristics;

/// Benchmark name used in kernel ids and evaluation tables.
pub const NAME: &str = "CoMD";

/// The 7 CoMD kernel specifications.
pub const SPECS: [KernelSpec; 7] = [
    KernelSpec {
        name: "LJForce",
        compute_ms: 30.0,
        memory_ms: 4.0,
        parallel_fraction: 0.99,
        bw_saturation_threads: 3.0,
        module_sharing_penalty: 0.30,
        sync_overhead: 0.02,
        gpu_speedup: 7.5,
        branch_divergence: 0.15,
        gpu_bw_advantage: 1.4,
        launch_ms: 0.40,
        vector_fraction: 0.55,
        working_set_mb: 24.0,
        cpu_activity: 0.52,
        gpu_activity: 0.78,
        weight: 0.55,
    },
    KernelSpec {
        name: "EAMForcePass1",
        compute_ms: 18.0,
        memory_ms: 3.5,
        parallel_fraction: 0.98,
        bw_saturation_threads: 3.0,
        module_sharing_penalty: 0.28,
        sync_overhead: 0.02,
        gpu_speedup: 6.5,
        branch_divergence: 0.18,
        gpu_bw_advantage: 1.35,
        launch_ms: 0.40,
        vector_fraction: 0.50,
        working_set_mb: 26.0,
        cpu_activity: 0.50,
        gpu_activity: 0.74,
        weight: 0.15,
    },
    KernelSpec {
        name: "EAMForcePass2",
        compute_ms: 10.0,
        memory_ms: 2.5,
        parallel_fraction: 0.98,
        bw_saturation_threads: 2.5,
        module_sharing_penalty: 0.25,
        sync_overhead: 0.02,
        gpu_speedup: 5.5,
        branch_divergence: 0.15,
        gpu_bw_advantage: 1.3,
        launch_ms: 0.35,
        vector_fraction: 0.45,
        working_set_mb: 22.0,
        cpu_activity: 0.47,
        gpu_activity: 0.70,
        weight: 0.08,
    },
    KernelSpec {
        name: "EAMForcePass3",
        compute_ms: 12.0,
        memory_ms: 2.8,
        parallel_fraction: 0.98,
        bw_saturation_threads: 2.5,
        module_sharing_penalty: 0.25,
        sync_overhead: 0.02,
        gpu_speedup: 6.0,
        branch_divergence: 0.16,
        gpu_bw_advantage: 1.3,
        launch_ms: 0.35,
        vector_fraction: 0.48,
        working_set_mb: 22.0,
        cpu_activity: 0.48,
        gpu_activity: 0.70,
        weight: 0.09,
    },
    KernelSpec {
        name: "AdvanceVelocity",
        compute_ms: 0.7,
        memory_ms: 1.2,
        parallel_fraction: 0.97,
        bw_saturation_threads: 2.0,
        module_sharing_penalty: 0.03,
        sync_overhead: 0.03,
        gpu_speedup: 4.2,
        branch_divergence: 0.05,
        gpu_bw_advantage: 1.3,
        launch_ms: 0.20,
        vector_fraction: 0.30,
        working_set_mb: 10.0,
        cpu_activity: 0.30,
        gpu_activity: 0.40,
        weight: 0.03,
    },
    KernelSpec {
        name: "AdvancePosition",
        compute_ms: 0.7,
        memory_ms: 1.2,
        parallel_fraction: 0.97,
        bw_saturation_threads: 2.0,
        module_sharing_penalty: 0.03,
        sync_overhead: 0.03,
        gpu_speedup: 4.2,
        branch_divergence: 0.05,
        gpu_bw_advantage: 1.3,
        launch_ms: 0.20,
        vector_fraction: 0.30,
        working_set_mb: 10.0,
        cpu_activity: 0.30,
        gpu_activity: 0.40,
        weight: 0.03,
    },
    KernelSpec {
        name: "BuildNeighborList",
        compute_ms: 5.0,
        memory_ms: 3.2,
        parallel_fraction: 0.90,
        bw_saturation_threads: 2.0,
        module_sharing_penalty: 0.08,
        sync_overhead: 0.05,
        gpu_speedup: 1.8,
        branch_divergence: 0.60,
        gpu_bw_advantage: 1.0,
        launch_ms: 0.45,
        vector_fraction: 0.10,
        working_set_mb: 30.0,
        cpu_activity: 0.34,
        gpu_activity: 0.40,
        weight: 0.07,
    },
];

/// Instantiate the CoMD kernels for an input size.
pub fn kernels(input: InputSize) -> Vec<KernelCharacteristics> {
    SPECS.iter().map(|s| s.instantiate(NAME, input)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_seven_kernels() {
        assert_eq!(SPECS.len(), 7);
    }

    #[test]
    fn all_kernels_validate() {
        for k in kernels(InputSize::Default) {
            assert!(k.validate().is_empty(), "{:?}", k.validate());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = SPECS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn force_kernels_dominate_runtime() {
        let w: f64 = SPECS.iter().filter(|s| s.name.contains("Force")).map(|s| s.weight).sum();
        assert!(w > 0.8, "force computation should dominate MD time");
    }
}
