//! A resilient wire-protocol client: deadlines, bounded retries with
//! decorrelated-jitter backoff, idempotency keys, and a per-session
//! circuit breaker.
//!
//! The plain [`Client`](acs_serve::Client) is a bare socket: one torn
//! frame or injected disconnect (see `serve::chaosproxy`) and the caller
//! is on their own. This wrapper owns the failure handling:
//!
//! - **Deadline**: every logical call gets a wall-clock budget covering
//!   all its attempts; the socket read timeout is always the *remaining*
//!   budget, so a hung server cannot stall past it.
//! - **Retry**: failed attempts reconnect (a failed frame leaves the
//!   stream possibly desynced, so the old connection is always dropped)
//!   and back off with decorrelated jitter — `sleep = clamp(base,
//!   rand(base, prev*3), max)` — the AWS-architecture-blog variant that
//!   avoids synchronized retry storms without tracking attempt counts.
//! - **Idempotency**: [`run`](ResilientClient::run) draws one key per
//!   *logical* call and reuses it across retries; the server's memo makes
//!   execution exactly-once in effect and replays byte-identical response
//!   frames. Requests without safe-retry semantics are never retried
//!   (see [`is_idempotent`]).
//! - **Circuit breaker**: consecutive failures open the breaker; while
//!   open, calls fail fast with [`ClientError::CircuitOpen`] instead of
//!   hammering a dead server. After a cooldown one half-open probe is
//!   allowed through; its outcome closes or re-opens the circuit.
//!
//! Determinism note: idempotency keys come from a seeded splitmix64
//! stream, so a reproduced bench run issues the same keys. Backoff sleeps
//! are the only wall-clock-dependent behavior, and they affect timing
//! only, never response bytes.

use acs_serve::{Client, Request, Response};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Retry/deadline/breaker tuning for a [`ResilientClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts per logical call (1 = no retries).
    pub max_attempts: u32,
    /// First backoff sleep; also the decorrelated-jitter floor.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Wall-clock budget for one logical call, all attempts included.
    pub request_deadline: Duration,
    /// Consecutive failures that open the circuit.
    pub breaker_threshold: u32,
    /// How long the circuit stays open before one half-open probe.
    pub breaker_cooldown: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
            request_deadline: Duration::from_secs(5),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
        }
    }
}

/// Typed client-side failures (server-side failures arrive as
/// [`Response::Error`] values, not as `Err`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The deadline elapsed before any attempt succeeded.
    DeadlineExceeded {
        /// Attempts made before the budget ran out.
        attempts: u32,
    },
    /// The circuit breaker is open; no attempt was made.
    CircuitOpen,
    /// Every allowed attempt failed.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// Detail of the last failure.
        last: String,
    },
    /// The request is not safe to retry and its single attempt failed.
    NotRetriable {
        /// Detail of the failure.
        detail: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::DeadlineExceeded { attempts } => {
                write!(f, "deadline exceeded after {attempts} attempt(s)")
            }
            ClientError::CircuitOpen => write!(f, "circuit breaker open: failing fast"),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "all {attempts} attempt(s) failed; last: {last}")
            }
            ClientError::NotRetriable { detail } => {
                write!(f, "non-idempotent request failed (not retried): {detail}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Is a request safe to send more than once?
///
/// Reads (`Hello`, `Select`, `Batch`, `Stats`) are pure. A `Run` is only
/// safe when it carries an idempotency key — the server then replays the
/// first execution instead of running again. `Report` re-triggers a
/// budget reshuffle, `Bye`/`Shutdown` are session/process transitions;
/// none of those may be silently doubled.
pub fn is_idempotent(request: &Request) -> bool {
    match request {
        Request::Hello | Request::Select { .. } | Request::Batch { .. } | Request::Stats => true,
        Request::Run { idem, .. } => idem.is_some(),
        Request::Report { .. } | Request::Bye | Request::Shutdown => false,
    }
}

/// Circuit-breaker state machine. Time is passed in, not sampled, so the
/// transitions are unit-testable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    threshold: u32,
    cooldown: Duration,
    opens: u64,
}

impl Breaker {
    fn new(threshold: u32, cooldown: Duration) -> Self {
        Self {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: None,
            threshold: threshold.max(1),
            cooldown,
            opens: 0,
        }
    }

    /// May a call proceed at `now`? Open→HalfOpen happens here once the
    /// cooldown has elapsed.
    fn admit(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let expired =
                    self.opened_at.is_none_or(|at| now.duration_since(at) >= self.cooldown);
                if expired {
                    self.state = BreakerState::HalfOpen;
                }
                expired
            }
        }
    }

    fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.opened_at = None;
    }

    fn on_failure(&mut self, now: Instant) {
        self.consecutive_failures += 1;
        let trip = match self.state {
            BreakerState::HalfOpen => true, // a failed probe re-opens
            _ => self.consecutive_failures >= self.threshold,
        };
        if trip && self.state != BreakerState::Open {
            self.state = BreakerState::Open;
            self.opened_at = Some(now);
            self.opens += 1;
        } else if trip {
            self.opened_at = Some(now);
        }
    }
}

/// Counters a bench or test can assert on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientStats {
    /// TCP connects (first connect plus every reconnect).
    pub connects: u64,
    /// Attempts sent, first tries included.
    pub attempts: u64,
    /// Attempts beyond the first of their logical call.
    pub retries: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_opens: u64,
    /// Calls rejected fast because the circuit was open.
    pub breaker_fast_fails: u64,
}

/// splitmix64 for idempotency keys: seedable, stable, dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A retrying, deadline-bounded, breaker-guarded client.
pub struct ResilientClient {
    addr: String,
    policy: RetryPolicy,
    conn: Option<Client>,
    breaker: Breaker,
    rng: u64,
    stats: ClientStats,
}

enum AttemptError {
    /// The remaining deadline hit zero.
    Deadline,
    /// The attempt failed (connect, write, read, torn frame, ...).
    Failed(String),
}

impl ResilientClient {
    /// A client for `addr` (`host:port`). Connects lazily on first call.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        let breaker = Breaker::new(policy.breaker_threshold, policy.breaker_cooldown);
        Self {
            addr: addr.into(),
            policy,
            conn: None,
            breaker,
            rng: 0x5EED_C11E_4715_0001,
            stats: ClientStats::default(),
        }
    }

    /// Seed the idempotency-key stream (defaults to a fixed seed).
    pub fn with_key_seed(mut self, seed: u64) -> Self {
        self.rng = seed;
        self
    }

    /// Counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Run a kernel with exactly-once-in-effect semantics: one
    /// idempotency key is drawn for the logical call and reused across
    /// every retry, so the server either executes once and replays the
    /// memoized bytes, or the call fails typed.
    pub fn run(&mut self, kernel_id: &str, iterations: u64) -> Result<Response, ClientError> {
        let key = splitmix64(&mut self.rng);
        self.call(&Request::Run {
            kernel_id: kernel_id.to_string(),
            iterations,
            idem: Some(key),
            deadline_ms: None,
            priority: 0,
        })
    }

    /// Send a request under the policy. Idempotent requests (see
    /// [`is_idempotent`]) are retried with backoff until the deadline or
    /// attempt bound; everything else gets exactly one attempt.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let started = Instant::now();
        if !self.breaker.admit(started) {
            self.stats.breaker_fast_fails += 1;
            return Err(ClientError::CircuitOpen);
        }
        // A half-open circuit admits a single probe, never a retry burst.
        let max_attempts = if self.breaker.state == BreakerState::HalfOpen {
            1
        } else if is_idempotent(request) {
            self.policy.max_attempts.max(1)
        } else {
            1
        };
        let mut prev_backoff = self.policy.base_backoff;
        let mut last = String::new();
        for attempt in 1..=max_attempts {
            self.stats.attempts += 1;
            if attempt > 1 {
                self.stats.retries += 1;
            }
            match self.attempt(request, started) {
                Ok(response) => {
                    self.breaker.on_success();
                    return Ok(response);
                }
                Err(AttemptError::Deadline) => {
                    self.breaker.on_failure(Instant::now());
                    self.stats.breaker_opens = self.breaker.opens;
                    return Err(ClientError::DeadlineExceeded { attempts: attempt });
                }
                Err(AttemptError::Failed(detail)) => {
                    self.breaker.on_failure(Instant::now());
                    last = detail;
                    // The stream may be desynced mid-frame; never reuse it.
                    self.conn = None;
                }
            }
            if attempt < max_attempts {
                let Some(remaining) = self
                    .policy
                    .request_deadline
                    .checked_sub(started.elapsed())
                    .filter(|r| !r.is_zero())
                else {
                    self.stats.breaker_opens = self.breaker.opens;
                    return Err(ClientError::DeadlineExceeded { attempts: attempt });
                };
                let backoff = self.decorrelated_backoff(prev_backoff);
                prev_backoff = backoff;
                std::thread::sleep(backoff.min(remaining));
            }
        }
        self.stats.breaker_opens = self.breaker.opens;
        if max_attempts == 1 && !is_idempotent(request) {
            Err(ClientError::NotRetriable { detail: last })
        } else {
            Err(ClientError::Exhausted { attempts: max_attempts, last })
        }
    }

    /// One wire attempt under the remaining deadline.
    fn attempt(&mut self, request: &Request, started: Instant) -> Result<Response, AttemptError> {
        let Some(remaining) =
            self.policy.request_deadline.checked_sub(started.elapsed()).filter(|r| !r.is_zero())
        else {
            return Err(AttemptError::Deadline);
        };
        if self.conn.is_none() {
            let conn =
                Client::connect(&self.addr).map_err(|e| AttemptError::Failed(e.to_string()))?;
            self.stats.connects += 1;
            self.conn = Some(conn);
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        // The socket read budget is whatever is left of the deadline, so a
        // silent server cannot hold the call past it.
        let _ = conn.stream_mut().set_read_timeout(Some(remaining));
        conn.call(request).map_err(|e| AttemptError::Failed(e.to_string()))
    }

    /// Decorrelated jitter: uniform in `[base, prev*3]`, capped.
    fn decorrelated_backoff(&mut self, prev: Duration) -> Duration {
        let base = self.policy.base_backoff.as_micros() as u64;
        let ceil = (prev.as_micros() as u64).saturating_mul(3).max(base + 1);
        let span = ceil - base;
        let jitter = base + splitmix64(&mut self.rng) % span;
        Duration::from_micros(jitter).min(self.policy.max_backoff).max(self.policy.base_backoff)
    }
}

/// FNV-1a over the address bytes; the per-session rendezvous weight mixes
/// this with the session key through splitmix64 so each session gets an
/// independent permutation of the shard ring.
fn addr_hash(addr: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in addr.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Rendezvous (highest-random-weight) score of `addr` for `session_key`.
pub fn rendezvous_weight(addr: &str, session_key: u64) -> u64 {
    let mut state = addr_hash(addr) ^ session_key;
    splitmix64(&mut state)
}

/// Counters a fleet bench or chaos test can assert on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Shards this session evicted after a failed logical call.
    pub failovers: u64,
    /// Keyed runs replayed onto a new shard during failover.
    pub replays: u64,
}

/// A session-scoped client over a ring of shards.
///
/// Placement is rendezvous hashing: the session lands on the live shard
/// with the highest [`rendezvous_weight`] for its key, so evicting one
/// shard only remaps the sessions that were on it — everyone else stays
/// put (no ring-wide reshuffle). When a logical call fails the client
/// evicts the shard, re-picks, and **replays its keyed run history** on
/// the new shard before retrying, so exactly-once-in-effect semantics
/// carry across the failover: every idempotency key the session ever
/// issued is re-established on the shard that now owns it.
pub struct FleetClient {
    /// `(label, addr, live)` per shard: the label is the rendezvous
    /// identity, the addr is only for dialing. Keeping them separate lets
    /// callers hash on stable names ("shard-0") while the OS hands out
    /// ephemeral ports.
    shards: Vec<(String, String, bool)>,
    session_key: u64,
    policy: RetryPolicy,
    conn: Option<(String, ResilientClient)>,
    run_history: Vec<(String, u64, u64)>,
    rng: u64,
    stats: FleetStats,
}

impl FleetClient {
    /// A client over `addrs`; `session_key` fixes both the rendezvous
    /// placement and the idempotency-key stream. Each shard's label is
    /// its address — use [`FleetClient::with_ring`] when placement must
    /// not depend on dialed ports.
    pub fn new(addrs: &[String], session_key: u64, policy: RetryPolicy) -> Self {
        let ring: Vec<(String, String)> = addrs.iter().map(|a| (a.clone(), a.clone())).collect();
        Self::with_ring(&ring, session_key, policy)
    }

    /// A client over `(label, addr)` pairs: rendezvous placement hashes
    /// the label, dialing uses the addr. With stable labels the
    /// session→shard map is a pure function of `session_key`, independent
    /// of whatever ephemeral ports the shards bound.
    pub fn with_ring(ring: &[(String, String)], session_key: u64, policy: RetryPolicy) -> Self {
        Self {
            shards: ring.iter().map(|(l, a)| (l.clone(), a.clone(), true)).collect(),
            session_key,
            policy,
            conn: None,
            run_history: Vec::new(),
            rng: session_key ^ 0x5EED_C11E_4715_0001,
            stats: FleetStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// The label of the live shard this session currently maps to, if
    /// any. (Under [`FleetClient::new`] the label is the address.)
    pub fn pick(&self) -> Option<&str> {
        self.shards
            .iter()
            .filter(|(_, _, live)| *live)
            .max_by_key(|(label, _, _)| rendezvous_weight(label, self.session_key))
            .map(|(label, _, _)| label.as_str())
    }

    /// The dial address behind `label`, if the label is in the ring.
    fn addr_of(&self, label: &str) -> Option<String> {
        self.shards.iter().find(|(l, _, _)| l == label).map(|(_, a, _)| a.clone())
    }

    /// Mark the shard labelled `label` dead; its sessions re-pick on the
    /// next call.
    pub fn evict(&mut self, label: &str) {
        for (l, _, live) in &mut self.shards {
            if l == label {
                *live = false;
            }
        }
        if self.conn.as_ref().is_some_and(|(l, _)| l == label) {
            self.conn = None;
        }
    }

    /// Mark the shard labelled `label` live again (e.g. after a chaos
    /// restart).
    pub fn restore(&mut self, label: &str) {
        for (l, _, live) in &mut self.shards {
            if l == label {
                *live = true;
            }
        }
    }

    /// Run a kernel with exactly-once-in-effect semantics that survive
    /// shard failover: the drawn key joins the session's replay history.
    pub fn run(&mut self, kernel_id: &str, iterations: u64) -> Result<Response, ClientError> {
        let key = splitmix64(&mut self.rng);
        self.run_history.push((kernel_id.to_string(), iterations, key));
        self.call(&Request::Run {
            kernel_id: kernel_id.to_string(),
            iterations,
            idem: Some(key),
            deadline_ms: None,
            priority: 0,
        })
    }

    /// Send a request to the session's shard, failing over (evict,
    /// re-pick, replay keyed history, retry) until it succeeds or no live
    /// shard remains.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        loop {
            let Some(label) = self.pick().map(str::to_string) else {
                return Err(ClientError::Exhausted {
                    attempts: self.stats.failovers as u32,
                    last: "no live shard".into(),
                });
            };
            if self.conn.as_ref().is_none_or(|(l, _)| *l != label) {
                let addr = self.addr_of(&label).expect("picked label is in the ring");
                match self.connect_and_replay(&label, &addr) {
                    Ok(conn) => self.conn = Some((label.clone(), conn)),
                    Err(_) => {
                        self.stats.failovers += 1;
                        self.evict(&label);
                        continue;
                    }
                }
            }
            let (_, conn) = self.conn.as_mut().expect("connection just ensured");
            match conn.call(request) {
                Ok(response) => return Ok(response),
                Err(_) => {
                    self.stats.failovers += 1;
                    self.evict(&label);
                }
            }
        }
    }

    /// Connect to a shard and re-establish the session's keyed runs on
    /// it, in issue order, so later duplicate sends replay memoized bytes
    /// instead of re-executing. The key seed mixes the stable label, not
    /// the dial address, so the stream is port-independent.
    fn connect_and_replay(
        &mut self,
        label: &str,
        addr: &str,
    ) -> Result<ResilientClient, ClientError> {
        let mut conn = ResilientClient::new(addr, self.policy.clone())
            .with_key_seed(self.session_key ^ addr_hash(label));
        conn.call(&Request::Hello)?;
        for (kernel_id, iterations, key) in &self.run_history {
            conn.call(&Request::Run {
                kernel_id: kernel_id.clone(),
                iterations: *iterations,
                idem: Some(*key),
                deadline_ms: None,
                priority: 0,
            })?;
            self.stats.replays += 1;
        }
        Ok(conn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idempotency_classification() {
        assert!(is_idempotent(&Request::Hello));
        assert!(is_idempotent(&Request::Select {
            kernel_id: "k".into(),
            deadline_ms: None,
            priority: 0
        }));
        assert!(is_idempotent(&Request::Stats));
        assert!(is_idempotent(&Request::Run {
            kernel_id: "k".into(),
            iterations: 1,
            idem: Some(7),
            deadline_ms: None,
            priority: 0
        }));
        assert!(!is_idempotent(&Request::Run {
            kernel_id: "k".into(),
            iterations: 1,
            idem: None,
            deadline_ms: None,
            priority: 0
        }));
        assert!(!is_idempotent(&Request::Report { residual_w: 1.0, feedback: None }));
        assert!(!is_idempotent(&Request::Bye));
        assert!(!is_idempotent(&Request::Shutdown));
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_after_cooldown() {
        let cooldown = Duration::from_millis(100);
        let mut b = Breaker::new(3, cooldown);
        let t0 = Instant::now();
        assert!(b.admit(t0));
        b.on_failure(t0);
        b.on_failure(t0);
        assert!(b.admit(t0), "below threshold: still closed");
        b.on_failure(t0);
        assert_eq!(b.state, BreakerState::Open);
        assert_eq!(b.opens, 1);
        assert!(!b.admit(t0), "open: fail fast");
        assert!(b.admit(t0 + cooldown), "cooldown elapsed: one probe allowed");
        assert_eq!(b.state, BreakerState::HalfOpen);

        // A failed probe re-opens with a fresh cooldown window.
        b.on_failure(t0 + cooldown);
        assert_eq!(b.state, BreakerState::Open);
        assert!(!b.admit(t0 + cooldown + Duration::from_millis(50)));

        // A successful probe closes fully.
        assert!(b.admit(t0 + cooldown * 2 + Duration::from_millis(1)));
        b.on_success();
        assert_eq!(b.state, BreakerState::Closed);
        assert_eq!(b.consecutive_failures, 0);
    }

    #[test]
    fn backoff_stays_inside_the_configured_bounds() {
        let mut c = ResilientClient::new("127.0.0.1:1", RetryPolicy::default());
        let mut prev = c.policy.base_backoff;
        for _ in 0..200 {
            let b = c.decorrelated_backoff(prev);
            assert!(b >= c.policy.base_backoff, "{b:?} below base");
            assert!(b <= c.policy.max_backoff, "{b:?} above cap");
            prev = b;
        }
    }

    #[test]
    fn idempotency_keys_are_seeded_and_unique() {
        let draw = |seed: u64| -> Vec<u64> {
            let mut c =
                ResilientClient::new("127.0.0.1:1", RetryPolicy::default()).with_key_seed(seed);
            (0..32).map(|_| splitmix64(&mut c.rng)).collect()
        };
        let a = draw(9);
        assert_eq!(a, draw(9), "same seed, same key stream");
        assert_ne!(a, draw(10));
        let dedup: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(dedup.len(), a.len(), "keys must not collide in-stream");
    }

    #[test]
    fn rendezvous_eviction_only_remaps_the_evicted_shards_sessions() {
        let addrs: Vec<String> = (0..5).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect();
        let picks_before: Vec<String> = (0..200u64)
            .map(|key| {
                FleetClient::new(&addrs, key, RetryPolicy::default())
                    .pick()
                    .expect("live shard")
                    .to_string()
            })
            .collect();
        let victim = picks_before[0].clone();
        let mut moved = 0;
        for (key, before) in picks_before.iter().enumerate() {
            let mut c = FleetClient::new(&addrs, key as u64, RetryPolicy::default());
            c.evict(&victim);
            let after = c.pick().expect("live shard").to_string();
            if *before == victim {
                moved += 1;
                assert_ne!(after, victim, "evicted shard must not be picked");
            } else {
                assert_eq!(after, *before, "session off the victim must not move");
            }
        }
        assert!(moved > 0, "some sessions must have been on the victim");
    }

    #[test]
    fn rendezvous_pick_is_a_pure_function_of_key_and_live_set() {
        let addrs: Vec<String> = (0..4).map(|i| format!("10.0.0.{i}:7000")).collect();
        let a = FleetClient::new(&addrs, 42, RetryPolicy::default());
        let b = FleetClient::new(&addrs, 42, RetryPolicy::default());
        assert_eq!(a.pick(), b.pick());
        let picks: std::collections::HashSet<_> = (0..64u64)
            .filter_map(|k| {
                FleetClient::new(&addrs, k, RetryPolicy::default()).pick().map(str::to_string)
            })
            .collect();
        assert!(picks.len() > 1, "sessions must spread over more than one shard");
    }

    #[test]
    fn restore_brings_an_evicted_shard_back_into_rotation() {
        let addrs: Vec<String> = vec!["a:1".into(), "b:2".into()];
        let mut c = FleetClient::new(&addrs, 7, RetryPolicy::default());
        let home = c.pick().expect("live").to_string();
        c.evict(&home);
        assert_ne!(c.pick().expect("live"), home);
        c.restore(&home);
        assert_eq!(c.pick().expect("live"), home, "restore must reinstate the original mapping");
        c.evict("a:1");
        c.evict("b:2");
        assert!(c.pick().is_none(), "no live shard left");
    }

    #[test]
    fn fleet_call_with_all_shards_dead_fails_typed() {
        let addrs: Vec<String> = vec!["127.0.0.1:1".into()];
        let mut c = FleetClient::new(&addrs, 3, RetryPolicy::default());
        c.evict("127.0.0.1:1");
        match c.call(&Request::Hello) {
            Err(ClientError::Exhausted { last, .. }) => assert_eq!(last, "no live shard"),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn connecting_nowhere_fails_typed_and_trips_the_breaker() {
        // Port 1 is essentially never listening; connect fails instantly.
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(200),
            breaker_threshold: 3,
            ..RetryPolicy::default()
        };
        let mut c = ResilientClient::new("127.0.0.1:1", policy);
        match c.call(&Request::Hello) {
            Err(ClientError::Exhausted { attempts: 4, .. }) => {}
            other => panic!("expected Exhausted after 4 attempts, got {other:?}"),
        }
        assert_eq!(c.stats().attempts, 4);
        assert_eq!(c.stats().retries, 3);
        assert!(c.stats().breaker_opens >= 1, "repeated failures must trip the breaker");
        match c.call(&Request::Hello) {
            Err(ClientError::CircuitOpen) => {}
            other => panic!("expected fast-fail while open, got {other:?}"),
        }
        assert_eq!(c.stats().breaker_fast_fails, 1);
    }
}
