//! Experiment A9 — configuration-ranking quality. Section III-B: "Our goal
//! in using linear performance and power prediction models is to rank
//! configurations in performance and power in a computationally efficient
//! manner. We find that linear models satisfy this goal." This experiment
//! measures that claim directly: the Spearman rank correlation between
//! predicted and true orderings of all 42 configurations, per held-out
//! kernel, under leave-one-benchmark-out cross-validation.
//!
//! Run with: `cargo run --release -p acs-bench --bin ablation_ranking`

use acs_core::{train, Predictor, TrainingParams};
use acs_mlstat::{leave_one_group_out, quantile, spearman};

fn main() {
    let apps = acs_bench::characterized_suite();
    let benchmarks: Vec<&str> = apps.iter().map(|a| a.app.benchmark.as_str()).collect();
    let folds = leave_one_group_out(&benchmarks);

    let mut perf_rhos = Vec::new();
    let mut power_rhos = Vec::new();

    for fold in &folds {
        let training: Vec<_> =
            fold.train.iter().flat_map(|&ai| apps[ai].profiles.iter().cloned()).collect();
        let model = train(&training, TrainingParams::default()).expect("training succeeds");
        let predictor = Predictor::new(&model);

        for &ai in &fold.test {
            for profile in &apps[ai].profiles {
                let predicted = predictor.predict(&profile.sample_pair());
                let truth = profile.true_points();
                let (mut pp, mut tp, mut pw, mut tw) = (vec![], vec![], vec![], vec![]);
                for (pred, act) in predicted.points.iter().zip(&truth) {
                    pp.push(pred.perf);
                    tp.push(act.perf);
                    pw.push(pred.power_w);
                    tw.push(act.power_w);
                }
                if let Some(r) = spearman(&pp, &tp) {
                    perf_rhos.push(r);
                }
                if let Some(r) = spearman(&pw, &tw) {
                    power_rhos.push(r);
                }
            }
        }
    }

    let stats = |v: &[f64]| {
        (quantile(v, 0.05).unwrap(), quantile(v, 0.5).unwrap(), quantile(v, 0.95).unwrap())
    };
    let (p5, p50, p95) = stats(&perf_rhos);
    let (w5, w50, w95) = stats(&power_rhos);

    println!("Ablation A9 — held-out configuration-ranking quality (Spearman ρ, 65 kernels)");
    println!();
    println!("                    |   p5  | median |  p95");
    println!("  performance rank  | {p5:>5.3} | {p50:>6.3} | {p95:>5.3}");
    println!("  power rank        | {w5:>5.3} | {w50:>6.3} | {w95:>5.3}");
    println!();
    println!("  distribution of performance ρ:");
    print!("{}", acs_mlstat::histogram(&perf_rhos, 8, 40));
    println!();
    println!(
        "Shape check: the paper's claim that linear models suffice for RANKING\n\
         holds when median ρ is high (≥0.9) even though absolute prediction\n\
         errors (MAPE) are much larger."
    );

    let path = acs_bench::write_result("ablation_ranking", &((p5, p50, p95), (w5, w50, w95)));
    println!("\nwrote {}", path.display());
}
