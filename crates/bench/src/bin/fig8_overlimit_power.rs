//! Experiment F8 — Figure 8: power relative to the oracle in over-limit
//! cases, broken down by benchmark/input combination.
//!
//! Run with: `cargo run --release -p acs-bench --bin fig8_overlimit_power`

fn main() {
    let eval = acs_bench::full_evaluation();
    let txt = acs_bench::render_by_app(
        &eval,
        "Figure 8 — % of oracle power, over-limit cases, by benchmark (— = no over-limit cases)",
        |s| s.over_power_pct,
    );
    println!("{txt}");
    println!(
        "Paper shape check: in over-limit cases Model+FL uses the least power\n\
         of the methods on nearly every benchmark; GPU+FL the most."
    );
    let path = acs_bench::write_result("fig8_overlimit_power", &txt);
    println!("\nwrote {}", path.display());
}
