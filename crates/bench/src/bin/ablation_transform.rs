//! Experiment A2 — variance-stabilizing-transform ablation. Section VI
//! proposes applying a variance-stabilizing transformation to model inputs
//! and outputs "to give less weight to both very small and very large
//! fitted model values". This binary trains the model with and without a
//! square-root response transform and compares held-out quality.
//!
//! Run with: `cargo run --release -p acs-bench --bin ablation_transform`

use acs_core::eval::evaluate;
use acs_core::{Method, TrainingParams};

fn main() {
    let apps = acs_bench::characterized_suite();

    println!("Ablation A2 — variance-stabilizing transform (sqrt on responses)");
    println!();

    let mut rows = Vec::new();
    for stabilize in [false, true] {
        let params = TrainingParams { stabilize_variance: stabilize, ..Default::default() };
        let eval = evaluate(&apps, params).expect("training succeeds");
        let table = eval.table3();
        println!("stabilize_variance = {stabilize}:");
        print!("{}", acs_bench::render_table3(&table));
        println!();
        rows.push((stabilize, table));
    }

    let get = |rows: &[(bool, Vec<acs_core::MethodSummary>)], s: bool, m: Method| {
        rows.iter()
            .find(|(st, _)| *st == s)
            .and_then(|(_, t)| t.iter().find(|x| x.method == m).copied())
            .expect("row present")
    };
    let off = get(&rows, false, Method::ModelFL);
    let on = get(&rows, true, Method::ModelFL);
    println!(
        "Model+FL %under: {:.1} → {:.1}; under %perf: {:.1} → {:.1} (off → on)",
        off.pct_under,
        on.pct_under,
        off.under_perf_pct.unwrap_or(0.0),
        on.under_perf_pct.unwrap_or(0.0),
    );

    let path = acs_bench::write_result("ablation_transform", &rows);
    println!("\nwrote {}", path.display());
}
