//! Experiment A6 — measurement-quality ablation. The paper's power data
//! comes from a 1 kHz on-chip estimator (Section IV-C) and notes that
//! "this method of power measurement is not necessary on architectures
//! equipped with hardware- or firmware-based energy accumulators". This
//! binary quantifies how sensor quality affects the end-to-end result:
//! an ideal accumulator, the paper's 1 kHz estimator, and a degraded
//! 100 Hz / 5%-noise sensor.
//!
//! Run with: `cargo run --release -p acs-bench --bin ablation_noise`

use acs_core::eval::{characterize_apps, evaluate};
use acs_core::TrainingParams;
use acs_sim::{Machine, PowerSensor};

fn main() {
    let sensors: [(&str, PowerSensor); 3] = [
        ("ideal accumulator", PowerSensor::ideal()),
        ("1 kHz estimator (paper)", PowerSensor::default()),
        (
            "degraded 100 Hz, 5% noise",
            PowerSensor { sample_hz: 100.0, quantum_w: 0.25, noise_sigma: 0.05 },
        ),
    ];

    println!("Ablation A6 — power-sensor quality vs. end-to-end results (LOBO-CV)");
    println!();

    let mut results = Vec::new();
    for (label, sensor) in sensors {
        let machine = Machine { sensor, ..Machine::new(acs_bench::EXPERIMENT_SEED) };
        let apps = characterize_apps(&machine, &acs_kernels::app_instances());
        let eval = evaluate(&apps, TrainingParams::default()).expect("training succeeds");
        let table = eval.table3();

        println!("sensor: {label}");
        print!("{}", acs_bench::render_table3(&table));
        println!();
        results.push((label.to_string(), table));
    }

    println!(
        "Shape check: the pipeline tolerates the paper's 1 kHz estimator with\n\
         little loss versus an ideal accumulator; a badly degraded sensor\n\
         chiefly hurts the frequency-limited methods, whose walk-down loop\n\
         trusts each measurement."
    );

    let path = acs_bench::write_result("ablation_noise", &results);
    println!("\nwrote {}", path.display());
}
