//! Experiment A6 — measurement-quality ablation. The paper's power data
//! comes from a 1 kHz on-chip estimator (Section IV-C) and notes that
//! "this method of power measurement is not necessary on architectures
//! equipped with hardware- or firmware-based energy accumulators". This
//! binary quantifies how sensor quality affects the end-to-end result:
//! an ideal accumulator, the paper's 1 kHz estimator, and a degraded
//! 100 Hz / 5%-noise sensor.
//!
//! Run with: `cargo run --release -p acs-bench --bin ablation_noise`

use acs_core::eval::{characterize_apps, evaluate};
use acs_core::TrainingParams;
use acs_sim::{Machine, PowerSensor};
use rayon::prelude::*;

fn main() {
    let sensors: Vec<(&str, PowerSensor)> = vec![
        ("ideal accumulator", PowerSensor::ideal()),
        ("1 kHz estimator (paper)", PowerSensor::default()),
        (
            "degraded 100 Hz, 5% noise",
            PowerSensor { sample_hz: 100.0, quantum_w: 0.25, noise_sigma: 0.05 },
        ),
    ];

    println!("Ablation A6 — power-sensor quality vs. end-to-end results (LOBO-CV)");
    println!();

    // Each sensor variant re-characterizes and re-evaluates the entire
    // suite — independent end-to-end pipelines, fanned out across the
    // rayon pool and printed in declaration order.
    let results: Vec<(String, Vec<acs_core::MethodSummary>)> = sensors
        .into_par_iter()
        .map(|(label, sensor)| {
            let machine = Machine { sensor, ..Machine::new(acs_bench::EXPERIMENT_SEED) };
            let apps = characterize_apps(&machine, &acs_kernels::app_instances());
            let eval = evaluate(&apps, TrainingParams::default()).expect("training succeeds");
            (label.to_string(), eval.table3())
        })
        .collect();
    for (label, table) in &results {
        println!("sensor: {label}");
        print!("{}", acs_bench::render_table3(table));
        println!();
    }

    println!(
        "Shape check: the pipeline tolerates the paper's 1 kHz estimator with\n\
         little loss versus an ideal accumulator; a badly degraded sensor\n\
         chiefly hurts the frequency-limited methods, whose walk-down loop\n\
         trusts each measurement."
    );

    let path = acs_bench::write_result("ablation_noise", &results);
    println!("\nwrote {}", path.display());
}
