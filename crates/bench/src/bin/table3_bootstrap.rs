//! Experiment T3b — bootstrap confidence intervals for the Table III
//! headline metrics, resampling kernels with replacement (1000
//! replicates, 95% percentile intervals).
//!
//! Run with: `cargo run --release -p acs-bench --bin table3_bootstrap`

use acs_core::bootstrap::{bootstrap_table3, render_intervals};

fn main() {
    let eval = acs_bench::full_evaluation();
    let intervals = bootstrap_table3(&eval.cases, 1000, 0.95, acs_bench::EXPERIMENT_SEED);

    println!("Table III with kernel-bootstrap 95% confidence intervals");
    println!();
    print!("{}", render_intervals(&intervals));
    println!();
    println!(
        "Reading: non-overlapping intervals confirm the orderings the paper\n\
         reports (Model+FL > others on cap compliance; CPU+FL worst on\n\
         under-limit performance) are not resampling artifacts."
    );

    let path = acs_bench::write_result("table3_bootstrap", &intervals);
    println!("\nwrote {}", path.display());
}
