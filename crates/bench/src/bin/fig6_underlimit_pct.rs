//! Experiment F6 — Figure 6: percent of cases meeting the power
//! constraint, broken down by benchmark/input combination.
//!
//! Run with: `cargo run --release -p acs-bench --bin fig6_underlimit_pct`

fn main() {
    let eval = acs_bench::full_evaluation();
    let txt =
        acs_bench::render_by_app(&eval, "Figure 6 — % of cases under-limit, by benchmark", |s| {
            Some(s.pct_under)
        });
    println!("{txt}");
    println!(
        "Paper shape check: Model+FL meets constraints most often for nearly\n\
         every benchmark; LU (both inputs) is the hardest because every\n\
         method that picks the GPU cannot reach the lowest caps."
    );
    let path = acs_bench::write_result("fig6_underlimit_pct", &txt);
    println!("\nwrote {}", path.display());
}
