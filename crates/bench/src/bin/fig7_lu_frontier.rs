//! Experiment F7 — Figure 7: the power–performance frontier of LU Small,
//! the suite's hardest case. Its defining feature is a sharp performance
//! cliff at the CPU→GPU switch: the paper reports attainable normalized
//! performance jumping from 10.4% to 89.0% between 17.2 W and 17.6 W.
//!
//! Run with: `cargo run --release -p acs-bench --bin fig7_lu_frontier`

use acs_core::KernelProfile;
use acs_sim::Device;

fn main() {
    let machine = acs_bench::default_machine();
    let apps = acs_kernels::app_instances();
    let lu_small = apps.iter().find(|a| a.label() == "LU Small").expect("LU Small");
    let kernel = &lu_small.kernels[0];

    let profile = KernelProfile::collect(&machine, kernel);
    let frontier = profile.frontier().normalized();

    println!("Figure 7 — power–performance frontier of {}", kernel.id());
    println!();
    println!("Power   | Norm. perf | Configuration");
    println!("--------+------------+----------------------------------");
    for p in frontier.points() {
        let bar = "#".repeat((p.perf * 40.0).round() as usize);
        println!("{:>5.1} W | {:>9.3}  | {:<40} {bar}", p.power_w, p.perf, p.config.to_string());
    }

    // Quantify the cliff: the largest perf jump between adjacent frontier
    // points, and whether it coincides with the device switch.
    let pts = frontier.points();
    let mut best_jump = (0.0f64, 0usize);
    for (i, w) in pts.windows(2).enumerate() {
        let jump = w[1].perf - w[0].perf;
        if jump > best_jump.0 {
            best_jump = (jump, i + 1);
        }
    }
    let (jump, at) = best_jump;
    println!();
    println!(
        "largest cliff: {:.1}% → {:.1}% of max performance between {:.1} W and {:.1} W",
        pts[at - 1].perf * 100.0,
        pts[at].perf * 100.0,
        pts[at - 1].power_w,
        pts[at].power_w
    );
    let device_switch =
        pts[at - 1].config.device == Device::Cpu && pts[at].config.device == Device::Gpu;
    println!("cliff coincides with CPU→GPU switch: {device_switch}");
    println!("jump magnitude: {:.1} percentage points (paper: 78.6)", jump * 100.0);

    let path = acs_bench::write_result("fig7_lu_frontier", &frontier.points());
    println!("\nwrote {}", path.display());
}
