//! Experiment A13: serve-path smoke + throughput benchmark.
//!
//! Starts an in-process selection server per arbiter policy, drives 200
//! seeded closed-loop requests at each (with periodic `Run` and `Report`
//! traffic), and records throughput, latency quantiles, and the cold/warm
//! split in `results/BENCH_serve.json`. Asserts the invariants the CI
//! smoke job relies on: zero dropped requests, zero protocol errors,
//! clean shutdown, demand-policy rebalances observed, and the warm
//! (memoized) path beating the cold (CART + regression) path.

use acs_bench::loadgen::{run_loadgen, LoadgenOptions};
use acs_core::{train, KernelProfile, TrainingParams};
use acs_serve::{ArbiterPolicy, ServeConfig, Server};
use serde::Serialize;

#[derive(Serialize)]
struct PolicyResult {
    policy: String,
    sessions: u64,
    report: acs_bench::loadgen::LoadgenReport,
}

#[derive(Serialize)]
struct BenchServe {
    experiment: String,
    seed: u64,
    requests_per_policy: u64,
    policies: Vec<PolicyResult>,
}

fn train_model() -> acs_core::TrainedModel {
    let machine = acs_bench::default_machine();
    let profiles: Vec<KernelProfile> = acs_kernels::all_kernel_instances()
        .iter()
        .map(|k| KernelProfile::collect(&machine, k))
        .collect();
    train(&profiles, TrainingParams::default()).expect("full-suite training succeeds")
}

fn drive(policy: ArbiterPolicy, sessions: u64, model: acs_core::TrainedModel) -> PolicyResult {
    let server = Server::bind(
        ServeConfig {
            policy,
            seed: acs_bench::EXPERIMENT_SEED,
            max_sessions: sessions as usize + 2,
            ..ServeConfig::default()
        },
        model,
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server runs"));

    let opts = LoadgenOptions {
        addr,
        requests: 200,
        seed: 7,
        sessions,
        run_every: 10,
        report_every: 7,
        feedback: false,
        stats_at_end: true,
        shutdown_at_end: true,
        open_loop: false,
        rate_rps: 0.0,
        deadline_ms: 0,
        priority: 0,
    };
    let (report, _log) = run_loadgen(&opts).expect("loadgen completes");
    join.join().expect("server thread joins");

    assert_eq!(report.dropped, 0, "{policy:?}: dropped requests");
    assert_eq!(report.errors, 0, "{policy:?}: errored requests");
    let stats = report.stats.as_ref().expect("stats requested");
    assert_eq!(stats.protocol_errors, 0, "{policy:?}: protocol errors");
    assert!(handle.is_shutting_down(), "{policy:?}: no clean shutdown");
    if policy == ArbiterPolicy::DemandProportional && sessions > 1 {
        assert!(stats.arbiter_rebalances > 0, "demand policy with residual reports must rebalance");
    }
    assert!(
        report.warm_selects > 0 && report.cold_selects > 0,
        "{policy:?}: both paths must be exercised (cold {}, warm {})",
        report.cold_selects,
        report.warm_selects
    );
    assert!(
        report.warm_mean_us < report.cold_mean_us,
        "{policy:?}: memoized path ({:.0} µs) must beat cold path ({:.0} µs)",
        report.warm_mean_us,
        report.cold_mean_us
    );

    PolicyResult { policy: policy.name().to_string(), sessions, report }
}

fn main() {
    let model = train_model();
    let policies = vec![
        drive(ArbiterPolicy::EqualShare, 1, model.clone()),
        drive(ArbiterPolicy::DemandProportional, 3, model),
    ];
    for p in &policies {
        println!(
            "{:<7} sessions={} {:>7.0} req/s  p50 {:>5} µs  p99 {:>5} µs  cold {:>6.0} µs  warm {:>5.0} µs  rebalances {}",
            p.policy,
            p.sessions,
            p.report.throughput_rps,
            p.report.p50_latency_us,
            p.report.p99_latency_us,
            p.report.cold_mean_us,
            p.report.warm_mean_us,
            p.report.stats.as_ref().map(|s| s.arbiter_rebalances).unwrap_or(0),
        );
    }
    let out = BenchServe {
        experiment: "BENCH_serve".into(),
        seed: acs_bench::EXPERIMENT_SEED,
        requests_per_policy: 200,
        policies,
    };
    let path = acs_bench::write_result("BENCH_serve", &out);
    println!("wrote {}", path.display());
}
