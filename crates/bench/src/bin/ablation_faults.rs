//! Experiment A10 — fault-rate ablation for the self-healing runtime.
//!
//! The paper evaluates its scheduler on cooperating hardware. This
//! ablation injects the fault classes of `acs_sim::faults` at increasing
//! severity — sensor dropouts, frozen readings, silently rejected P-state
//! transitions, transient run failures — and sweeps the fraction of
//! iterations whose *true* power met the cap, for the guarded
//! (degradation-ladder) runtime against the unguarded scheduler. The
//! guarded curve should bend gracefully rather than fall off a cliff, and
//! the unguarded scheduler stops completing apps at all once run
//! failures appear.
//!
//! Run with: `cargo run --release -p acs-bench --bin ablation_faults`

use acs_core::{train, CappedRuntime, GuardPolicy, KernelProfile, TrainingParams};
use acs_sim::{FaultPlan, FaultyMachine};
use serde::Serialize;

/// One sweep point.
#[derive(Debug, Serialize)]
struct SweepRow {
    severity: f64,
    dropout_p: f64,
    pstate_fail_p: f64,
    run_fail_p: f64,
    freeze_p: f64,
    guarded_caps_met: f64,
    guarded_failed_runs: u64,
    guarded_time_s: f64,
    unguarded_caps_met: Option<f64>,
    unguarded_completed: bool,
    degradations: u64,
    retries: u64,
    injected_faults: u64,
}

fn plan(severity: f64, seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        // The ISSUE's acceptance envelope: dropouts up to 50%, transition
        // failures up to 30%; the rest scale alongside.
        sensor_dropout_p: 0.5 * severity,
        sensor_freeze_p: 0.1 * severity,
        pstate_fail_p: 0.3 * severity,
        run_fail_p: 0.15 * severity,
        counter_corrupt_p: 0.1 * severity,
        ..FaultPlan::default()
    }
}

fn main() {
    let machine = acs_bench::default_machine();
    let training: Vec<KernelProfile> = acs_kernels::comd::kernels(acs_kernels::InputSize::Default)
        .into_iter()
        .chain(acs_kernels::smc::kernels(acs_kernels::InputSize::Small))
        .chain(acs_kernels::lu::kernels(acs_kernels::InputSize::Default))
        .map(|k| KernelProfile::collect(&machine, &k))
        .collect();
    let model = train(&training, TrainingParams::default()).expect("training succeeds");
    let app = acs_kernels::app_instances()
        .into_iter()
        .find(|a| a.label() == "LULESH Small")
        .expect("suite has LULESH Small");

    let cap_w = 25.0;
    let iters = 20;
    println!("Ablation A10 — fault severity vs. % of iterations meeting a {cap_w} W cap");
    println!("(app: {}, {iters} iterations/kernel, true-power compliance)", app.label());
    println!();
    println!(
        "{:>8} | {:>8} | {:>11} | {:>9} | {:>10} | {:>7} | {:>7}",
        "severity", "guarded", "unguarded", "failed", "degraded", "retries", "faults"
    );
    println!("---------+----------+-------------+-----------+------------+---------+--------");

    let mut rows = Vec::new();
    for step in 0..=10u32 {
        let severity = f64::from(step) / 10.0;
        let fault_seed = 0xA10 + u64::from(step);

        let guarded_exec = FaultyMachine::new(machine.clone(), plan(severity, fault_seed));
        let mut guarded =
            CappedRuntime::guarded(guarded_exec, model.clone(), cap_w, GuardPolicy::default());
        let report = guarded.run_app(&app, iters).expect("the guarded runtime never aborts");
        let degradations: u64 = app
            .kernels
            .iter()
            .filter_map(|k| guarded.health(&k.id()))
            .map(|h| u64::from(h.degradations))
            .sum();
        let retries: u64 = app
            .kernels
            .iter()
            .filter_map(|k| guarded.health(&k.id()))
            .map(|h| u64::from(h.retries))
            .sum();
        let injected = guarded.executor().stats().total();

        let unguarded_exec = FaultyMachine::new(machine.clone(), plan(severity, fault_seed));
        let mut unguarded = CappedRuntime::with_executor(unguarded_exec, model.clone(), cap_w);
        let unguarded_report = unguarded.run_app(&app, iters).ok();

        println!(
            "{:>7.0}% | {:>7.0}% | {:>11} | {:>9} | {:>10} | {:>7} | {:>7}",
            severity * 100.0,
            report.cap_compliance * 100.0,
            unguarded_report
                .as_ref()
                .map_or("aborted".to_string(), |r| format!("{:.0}%", r.cap_compliance * 100.0)),
            report.failed_runs,
            degradations,
            retries,
            injected,
        );

        rows.push(SweepRow {
            severity,
            dropout_p: plan(severity, 0).sensor_dropout_p,
            pstate_fail_p: plan(severity, 0).pstate_fail_p,
            run_fail_p: plan(severity, 0).run_fail_p,
            freeze_p: plan(severity, 0).sensor_freeze_p,
            guarded_caps_met: report.cap_compliance,
            guarded_failed_runs: report.failed_runs,
            guarded_time_s: report.total_time_s,
            unguarded_caps_met: unguarded_report.as_ref().map(|r| r.cap_compliance),
            unguarded_completed: unguarded_report.is_some(),
            degradations,
            retries,
            injected_faults: injected,
        });
    }

    // Graceful-degradation shape check: compliance at half severity must
    // hold most of the fault-free level (no cliff), and the guarded
    // runtime must complete the app at every severity.
    let base = rows[0].guarded_caps_met.max(1e-9);
    let mid = rows[5].guarded_caps_met;
    println!();
    println!(
        "Shape check: guarded compliance {:.0}% at zero faults → {:.0}% at 50% severity \
         ({} retained); every severity completed.",
        base * 100.0,
        mid * 100.0,
        if mid / base > 0.5 { "gracefully" } else { "NOT gracefully" }
    );

    let path = acs_bench::write_result("ablation_faults", &rows);
    println!("\nwrote {}", path.display());
}
