//! Experiment A4 — opportunistic overclocking (Section VI future work):
//! how much performance does thermally-governed boost add on top of the
//! top software P-state, per thread count, and what does it cost in power?
//!
//! Run with: `cargo run --release -p acs-bench --bin ablation_boost`

use acs_sim::boost::{boosted_cpu_run, ThermalModel, BOOST_STATES};
use acs_sim::{Configuration, CpuPState, PowerCalibration};

fn main() {
    let cal = PowerCalibration::default();
    let thermal = ThermalModel::default();
    let boost = BOOST_STATES[1];

    println!(
        "Ablation A4 — opportunistic overclocking ({:.1} GHz boost, {:.0} W thermal budget)",
        boost.freq_ghz,
        thermal.power_budget_w()
    );
    println!();
    println!(
        "{:<34} | {:>7} | {:>9} | {:>9} | {:>9} | {:>9}",
        "kernel", "threads", "residency", "f_eff", "speedup", "Δpower"
    );
    println!("{}", "-".repeat(92));

    let mut rows = Vec::new();
    for kernel in acs_kernels::all_kernel_instances()
        .iter()
        .filter(|k| k.input == "Small" || k.input == "Default")
        .take(12)
    {
        for threads in [1u8, 2, 4] {
            let cfg = Configuration::cpu(threads, CpuPState::MAX);
            let base = acs_sim::cpu::cpu_time(kernel, &cfg);
            let base_power = cal.cpu_run_power(kernel, &cfg, &base);
            let boosted = boosted_cpu_run(kernel, &cfg, &cal, &thermal, boost);
            let speedup = base.total_s / boosted.timing.total_s;
            println!(
                "{:<34} | {:>7} | {:>8.0}% | {:>5.2} GHz | {:>8.3}x | {:>+7.1} W",
                format!("{}/{}", kernel.benchmark, kernel.name),
                threads,
                boosted.residency * 100.0,
                boosted.effective_freq_ghz,
                speedup,
                boosted.power.total_w() - base_power.total_w(),
            );
            rows.push((
                kernel.id(),
                threads,
                boosted.residency,
                boosted.effective_freq_ghz,
                speedup,
            ));
        }
    }

    println!();
    println!(
        "Shape check: light thread counts boost fully; four FP-heavy threads \
         saturate the thermal budget and boost partially or not at all — the \
         behavior the paper says makes boost hard to include in the offline \
         configuration space."
    );

    let path = acs_bench::write_result("ablation_boost", &rows);
    println!("\nwrote {}", path.display());
}
