//! Experiment F9 — Figure 9: performance relative to the oracle in
//! over-limit cases, broken down by benchmark/input combination. Exceeding
//! oracle performance is only possible when also exceeding oracle power.
//!
//! Run with: `cargo run --release -p acs-bench --bin fig9_overlimit_perf`

fn main() {
    let eval = acs_bench::full_evaluation();
    let txt = acs_bench::render_by_app(
        &eval,
        "Figure 9 — % of oracle performance, over-limit cases, by benchmark (— = none)",
        |s| s.over_perf_pct,
    );
    println!("{txt}");
    println!(
        "Paper shape check: GPU+FL posts enormous over-limit performance on\n\
         the GPU-extreme benchmarks (paper clips 9297% on LU Large) because\n\
         it ignores the cap and runs near flat-out."
    );
    let path = acs_bench::write_result("fig9_overlimit_perf", &txt);
    println!("\nwrote {}", path.display());
}
