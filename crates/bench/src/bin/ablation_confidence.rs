//! Experiment A5 — confidence-aware selection (Section VI future work):
//! discount predictions by `z` residual standard deviations before
//! selecting. Sweeps `z` and reports the cap-compliance / performance
//! trade-off under leave-one-benchmark-out cross-validation.
//!
//! Run with: `cargo run --release -p acs-bench --bin ablation_confidence`

use acs_core::confidence::predict_with_confidence;
use acs_core::{train, TrainingParams};
use acs_mlstat::leave_one_group_out;

fn main() {
    let apps = acs_bench::characterized_suite();
    let benchmarks: Vec<&str> = apps.iter().map(|a| a.app.benchmark.as_str()).collect();
    let folds = leave_one_group_out(&benchmarks);

    println!("Ablation A5 — risk-averse selection (z · residual sigma), LOBO-CV");
    println!();
    println!("{:>4} | {:>9} | {:>16} | {:>15}", "z", "% under", "% oracle perf", "(under-limit)");
    println!("{}", "-".repeat(54));

    let mut results = Vec::new();
    for z in [0.0, 0.5, 1.0, 1.5, 2.0, 3.0] {
        let mut under_w = 0.0;
        let mut total_w = 0.0;
        let mut perf_w = 0.0;

        for fold in &folds {
            let training: Vec<_> =
                fold.train.iter().flat_map(|&ai| apps[ai].profiles.iter().cloned()).collect();
            let model = train(&training, TrainingParams::default()).unwrap();

            for &ai in &fold.test {
                for profile in &apps[ai].profiles {
                    let bounded = predict_with_confidence(&model, &profile.sample_pair());
                    let frontier = profile.oracle_frontier();
                    let caps: Vec<f64> = frontier.points().iter().map(|p| p.power_w).collect();
                    let w = profile.kernel.weight / caps.len() as f64;
                    for &cap in &caps {
                        let cfg = bounded.select_risk_averse(cap, z);
                        let run = profile.run_at(&cfg);
                        let oracle = frontier.best_under(cap).unwrap();
                        total_w += w;
                        if run.true_power_w() <= cap * (1.0 + 1e-9) {
                            under_w += w;
                            perf_w += w * (1.0 / run.time_s) / oracle.perf;
                        }
                    }
                }
            }
        }

        let pct_under = under_w / total_w * 100.0;
        let perf = if under_w > 0.0 { perf_w / under_w * 100.0 } else { 0.0 };
        println!("{z:>4.1} | {pct_under:>9.1} | {perf:>16.1} |");
        results.push((z, pct_under, perf));
    }

    println!();
    println!(
        "Expectation (Section VI): growing z buys cap compliance at a small\n\
         performance cost — the model declines configurations whose predicted\n\
         power sits within the error band of the cap."
    );

    let path = acs_bench::write_result("ablation_confidence", &results);
    println!("\nwrote {}", path.display());
}
