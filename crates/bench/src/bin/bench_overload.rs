//! Experiment A19: overload resilience under deadline-aware shedding.
//!
//! Phase 1 measures single-shard saturation with a closed loop (every
//! session waits for its response, so the server sets the pace). Phase 2
//! offers an *open-loop* load at 2× that rate against a brownout-enabled
//! server, with every request carrying a deadline — the configuration the
//! shed gate exists for. The gates the CI overload-smoke job relies on:
//!
//! - goodput (served within deadline, sheds excluded) stays at or above
//!   70% of the measured saturation throughput,
//! - the admitted p99 stays bounded (≤ 5× the request deadline) instead
//!   of growing with the backlog,
//! - nothing is dropped and nothing errors — overload answers are *typed*
//!   (`ShedDeadline`), never torn connections.
//!
//! Results land in `results/BENCH_overload.json`.

use acs_bench::loadgen::{run_loadgen, LoadgenOptions, LoadgenReport};
use acs_core::{train, KernelProfile, TrainingParams};
use acs_serve::{ServeConfig, Server};
use serde::Serialize;

/// Deadline attached to every phase-2 request, ms.
const DEADLINE_MS: u64 = 50;
/// Brownout p99 target for the phase-2 server, µs.
const BROWNOUT_US: u64 = 2_000;
/// Requests per phase.
const REQUESTS: u64 = 600;

#[derive(Serialize)]
struct Phase {
    label: String,
    sessions: u64,
    offered_rate_rps: f64,
    report: LoadgenReport,
}

#[derive(Serialize)]
struct BenchOverload {
    experiment: String,
    seed: u64,
    deadline_ms: u64,
    brownout_us: u64,
    saturation_rps: f64,
    goodput_rps: f64,
    goodput_ratio: f64,
    deadline_misses: u64,
    phases: Vec<Phase>,
}

fn train_model() -> acs_core::TrainedModel {
    let machine = acs_bench::default_machine();
    let profiles: Vec<KernelProfile> = acs_kernels::all_kernel_instances()
        .iter()
        .map(|k| KernelProfile::collect(&machine, k))
        .collect();
    train(&profiles, TrainingParams::default()).expect("full-suite training succeeds")
}

fn spawn(
    config: ServeConfig,
    model: acs_core::TrainedModel,
) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(config, model).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let join = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, join)
}

fn main() {
    let model = train_model();

    // Phase 1: closed-loop saturation. Four sessions, no deadlines, no
    // brownout — the pre-overload byte path, setting the baseline.
    let (addr, join) = spawn(
        ServeConfig {
            seed: acs_bench::EXPERIMENT_SEED,
            max_sessions: 16,
            ..ServeConfig::default()
        },
        model.clone(),
    );
    let saturation_opts = LoadgenOptions {
        addr,
        requests: REQUESTS,
        seed: 7,
        sessions: 4,
        run_every: 10,
        report_every: 0,
        feedback: false,
        stats_at_end: true,
        shutdown_at_end: true,
        open_loop: false,
        rate_rps: 0.0,
        deadline_ms: 0,
        priority: 0,
    };
    let (saturation, _) = run_loadgen(&saturation_opts).expect("saturation phase completes");
    join.join().expect("server thread joins");
    assert_eq!(saturation.dropped, 0, "saturation: dropped requests");
    assert_eq!(saturation.errors, 0, "saturation: errored requests");
    let saturation_rps = saturation.throughput_rps;
    println!(
        "saturation: {:>8.0} req/s  p50 {:>5} µs  p99 {:>5} µs",
        saturation_rps, saturation.p50_latency_us, saturation.p99_latency_us
    );

    // Phase 2: open-loop at 2× saturation against a brownout-enabled
    // server, every request deadline-carrying. The offered load exceeds
    // what the closed loop could extract; the shed gate and the brownout
    // ladder keep the admitted latency bounded.
    let offered_rate = saturation_rps * 2.0;
    let (addr, join) = spawn(
        ServeConfig {
            seed: acs_bench::EXPERIMENT_SEED,
            max_sessions: 16,
            brownout_us: BROWNOUT_US,
            ..ServeConfig::default()
        },
        model,
    );
    let overload_opts = LoadgenOptions {
        addr,
        requests: REQUESTS,
        seed: 7,
        sessions: 8,
        run_every: 10,
        report_every: 0,
        feedback: false,
        stats_at_end: true,
        shutdown_at_end: true,
        open_loop: true,
        rate_rps: offered_rate,
        deadline_ms: DEADLINE_MS,
        priority: 0,
    };
    let (overload, _) = run_loadgen(&overload_opts).expect("overload phase completes");
    join.join().expect("server thread joins");

    assert_eq!(overload.dropped, 0, "overload must answer, not tear connections");
    assert_eq!(overload.errors, 0, "overload answers are typed sheds, not errors");
    let stats = overload.stats.as_ref().expect("stats requested");
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.sheds, overload.sheds, "client and server agree on the shed count");

    // Goodput: answered in time. Sheds are deliberate (excluded from the
    // numerator by construction — a shed is not a served request), and a
    // served request that blew its own deadline does not count either.
    let good = REQUESTS - overload.sheds - stats.deadline_misses;
    let goodput_rps = if overload.elapsed_s > 0.0 { good as f64 / overload.elapsed_s } else { 0.0 };
    let goodput_ratio = goodput_rps / saturation_rps;
    println!(
        "overload:   {:>8.0} req/s offered  {:>8.0} req/s goodput ({:.0}% of saturation)",
        offered_rate,
        goodput_rps,
        goodput_ratio * 100.0
    );
    println!(
        "            sheds {}  deadline misses {}  admitted p50 {} µs  p99 {} µs  brownout level {}",
        overload.sheds,
        stats.deadline_misses,
        overload.p50_latency_us,
        overload.p99_latency_us,
        stats.brownout_level
    );

    assert!(
        goodput_ratio >= 0.70,
        "goodput {goodput_rps:.0} req/s fell below 70% of saturation {saturation_rps:.0} req/s"
    );
    assert!(
        overload.p99_latency_us <= DEADLINE_MS * 1000 * 5,
        "admitted p99 {} µs is unbounded (deadline {DEADLINE_MS} ms)",
        overload.p99_latency_us
    );

    let out = BenchOverload {
        experiment: "BENCH_overload".into(),
        seed: acs_bench::EXPERIMENT_SEED,
        deadline_ms: DEADLINE_MS,
        brownout_us: BROWNOUT_US,
        saturation_rps,
        goodput_rps,
        goodput_ratio,
        deadline_misses: stats.deadline_misses,
        phases: vec![
            Phase {
                label: "closed-loop saturation".into(),
                sessions: 4,
                offered_rate_rps: saturation_rps,
                report: saturation,
            },
            Phase {
                label: "open-loop 2x overload".into(),
                sessions: 8,
                offered_rate_rps: offered_rate,
                report: overload,
            },
        ],
    };
    let path = acs_bench::write_result("BENCH_overload", &out);
    println!("wrote {}", path.display());
}
