//! Experiment A11 — differential regret vs. the exhaustive oracle.
//!
//! Replays the full `crates/verify` scenario grid (3 machine seeds × every
//! training/evaluation kernel × probe caps spanning each oracle frontier)
//! through the four compared methods and reports per-method regret against
//! the exhaustive-sweep oracle: under-limit rate, mean/max performance
//! regret, feasible-cap violation rate, and overshoot. This is the
//! Figure 4–6 story told against ground truth rather than the Table III
//! leave-one-benchmark-out evaluation, plus the per-benchmark under-limit
//! breakdown of Figure 6.
//!
//! Run with: `cargo run --release -p acs-bench --bin ablation_regret`

use acs_core::{Method, TrainingParams};
use acs_verify::{run_differential, GridParams, ScenarioGrid, Thresholds};
use serde::Serialize;

/// One per-benchmark row of the Figure 6 view.
#[derive(Debug, Serialize)]
struct BenchmarkRow {
    benchmark: String,
    model_under_pct: Option<f64>,
    model_fl_under_pct: Option<f64>,
    cpu_fl_under_pct: Option<f64>,
    gpu_fl_under_pct: Option<f64>,
}

/// The serialized experiment result.
#[derive(Debug, Serialize)]
struct RegretResult {
    machine_seed: u64,
    total_scenarios: usize,
    per_method: Vec<acs_verify::MethodRegret>,
    per_benchmark: Vec<BenchmarkRow>,
    threshold_failures: Vec<String>,
}

fn main() {
    let grid = ScenarioGrid::generate(GridParams::default());
    println!(
        "Ablation A11 — per-method regret vs. exhaustive oracle ({} scenarios, {} machines)",
        grid.len(),
        grid.machines.len()
    );
    println!();

    let report = run_differential(&grid, TrainingParams::default()).expect("training succeeds");
    println!("{}", report.render());

    // The per-benchmark under-limit breakdown (Figure 6 against the oracle
    // grid; EXPERIMENTS.md compares these to the paper's percentages).
    let prefixes = ["LULESH/", "CoMD/", "SMC/", "LU/"];
    println!(
        "{:<10} | {:>7} | {:>9} | {:>7} | {:>7}   (% under limit)",
        "Benchmark", "Model", "Model+FL", "CPU+FL", "GPU+FL"
    );
    println!("-----------+---------+-----------+---------+--------");
    let mut per_benchmark = Vec::new();
    for prefix in prefixes {
        let cell = |m: Method| report.under_pct_for(m, prefix);
        let fmt = |v: Option<f64>| v.map_or("—".to_string(), |p| format!("{p:.1}"));
        println!(
            "{:<10} | {:>7} | {:>9} | {:>7} | {:>7}",
            prefix.trim_end_matches('/'),
            fmt(cell(Method::Model)),
            fmt(cell(Method::ModelFL)),
            fmt(cell(Method::CpuFL)),
            fmt(cell(Method::GpuFL)),
        );
        per_benchmark.push(BenchmarkRow {
            benchmark: prefix.trim_end_matches('/').to_string(),
            model_under_pct: cell(Method::Model),
            model_fl_under_pct: cell(Method::ModelFL),
            cpu_fl_under_pct: cell(Method::CpuFL),
            gpu_fl_under_pct: cell(Method::GpuFL),
        });
    }

    let failures = report.check(&Thresholds::default());
    println!();
    if failures.is_empty() {
        println!("All paper-derived regret gates pass.");
    } else {
        println!("Regret gates FAILED:");
        for f in &failures {
            println!("  {f}");
        }
    }

    let result = RegretResult {
        machine_seed: acs_bench::EXPERIMENT_SEED,
        total_scenarios: report.total_scenarios,
        per_method: report.per_method.clone(),
        per_benchmark,
        threshold_failures: failures,
    };
    let path = acs_bench::write_result("ablation_regret", &result);
    println!("\nwrote {}", path.display());
}
