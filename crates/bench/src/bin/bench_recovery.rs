//! Experiment A14: crash recovery + chaos smoke.
//!
//! Part 1 — a real kill-and-restart cycle, out of process: the binary
//! re-executes itself as a journaled server child, drives half a seeded
//! request stream, SIGKILLs the child mid-conversation (no clean leaves,
//! no warning), restarts it on the same journal, and finishes the stream.
//! The combined response log must be **byte-identical** to an
//! uninterrupted run of the same stream, and the recovery must come back
//! with a warm cache. Measures recovery latency (journal open + replay),
//! replayed-entry count, and the post-recovery cache hit rate.
//!
//! Part 2 — the chaos smoke: 500 seeded loadgen requests through the
//! chaos proxy at a fixed plan. Injected faults may drop requests (that
//! is their job); the assertions are that the server survives, every
//! failure was typed or a clean drop, and the arbiter's budget split
//! still sums exactly to the global cap afterwards.
//!
//! Writes `results/BENCH_recovery.json`.

use acs_bench::loadgen::{run_loadgen, LoadgenOptions};
use acs_core::{train, KernelProfile, TrainedModel, TrainingParams};
use acs_serve::{
    replay, ArbiterPolicy, ChaosPlan, ChaosProxy, ChaosStats, Client, Journal, Request, Response,
    ServeConfig, Server,
};
use serde::Serialize;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Child-role marker: when set, this process is the journaled server.
const ROLE_ENV: &str = "ACS_BENCH_RECOVERY_ROLE";
const JOURNAL_ENV: &str = "ACS_BENCH_RECOVERY_JOURNAL";
const MODEL_ENV: &str = "ACS_BENCH_RECOVERY_MODEL";

const GLOBAL_CAP_W: f64 = 90.0;

#[derive(Serialize)]
struct RecoveryResult {
    phase1_requests: usize,
    phase2_requests: usize,
    replayed_entries: u64,
    warm_kernels: usize,
    orphaned_sessions: usize,
    recovery_latency_us: u64,
    byte_identical: bool,
    post_recovery_cache_hit_rate: f64,
}

#[derive(Serialize)]
struct ChaosSmokeResult {
    requests: u64,
    plan: ChaosPlan,
    proxy: ChaosStats,
    completed: u64,
    dropped: u64,
    errored: u64,
    conservation_error_w: f64,
}

#[derive(Serialize)]
struct BenchRecovery {
    experiment: String,
    seed: u64,
    global_cap_w: f64,
    recovery: RecoveryResult,
    chaos_smoke: ChaosSmokeResult,
}

fn train_model() -> TrainedModel {
    let machine = acs_bench::default_machine();
    let profiles: Vec<KernelProfile> = acs_kernels::all_kernel_instances()
        .iter()
        .map(|k| KernelProfile::collect(&machine, k))
        .collect();
    train(&profiles, TrainingParams::default()).expect("full-suite training succeeds")
}

/// The child process: bind an ephemeral port, print the contract lines,
/// and serve until the parent kills us.
fn serve_child() {
    let journal = std::env::var(JOURNAL_ENV).expect("child needs the journal path");
    let model_path = std::env::var(MODEL_ENV).expect("child needs the model path");
    let model = TrainedModel::load(&model_path).expect("child loads the saved model");
    let server = Server::bind(
        ServeConfig {
            port: 0,
            seed: acs_bench::EXPERIMENT_SEED,
            global_cap_w: GLOBAL_CAP_W,
            policy: ArbiterPolicy::DemandProportional,
            journal: Some(PathBuf::from(journal)),
            ..ServeConfig::default()
        },
        model,
    )
    .expect("child binds");
    if let Some(recovery) = server.handle().recovery() {
        println!("recovered: {}", recovery.replayed);
    }
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().expect("flush the contract lines");
    server.run().expect("child serves");
}

/// Spawn a server child on `journal`, returning the process and the
/// address parsed from its `listening on` line.
fn spawn_child(journal: &Path, model_path: &Path) -> (std::process::Child, String) {
    let exe = std::env::current_exe().expect("own path");
    let mut child = std::process::Command::new(exe)
        .env(ROLE_ENV, "server")
        .env(JOURNAL_ENV, journal)
        .env(MODEL_ENV, model_path)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn server child");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line =
            lines.next().expect("child printed its contract lines").expect("child stdout is utf8");
        if let Some(addr) = line.strip_prefix("listening on ") {
            break addr.to_string();
        }
    };
    (child, addr)
}

/// The seeded request stream both the reference run and the interrupted
/// run drive. Selections and reports only: `Run` responses depend on
/// per-session runtime noise, which a reconnect legitimately resets
/// (DESIGN.md §12 scopes the recovery contract to selections + budgets).
fn request_stream() -> Vec<Request> {
    let ids: Vec<String> =
        acs_kernels::all_kernel_instances().iter().take(10).map(|k| k.id()).collect();
    let mut stream = Vec::new();
    for (i, id) in ids.iter().enumerate() {
        stream.push(Request::Select { kernel_id: id.clone(), deadline_ms: None, priority: 0 });
        if i % 2 == 1 {
            stream.push(Request::Report { residual_w: 3.0 + i as f64, feedback: None });
        }
        if i % 3 == 2 {
            stream.push(Request::Select {
                kernel_id: ids[i / 2].clone(),
                deadline_ms: None,
                priority: 0,
            });
        }
    }
    stream
}

fn drive(client: &mut Client, requests: &[Request]) -> Vec<String> {
    requests
        .iter()
        .map(|r| serde_json::to_string(&client.call(r).expect("call succeeds")).unwrap())
        .collect()
}

fn run_recovery_cycle(model: &TrainedModel, scratch: &Path) -> RecoveryResult {
    let journal = scratch.join("serve.journal");
    let model_path = scratch.join("model.json");
    model.save(&model_path).expect("save model for the child");

    let stream = request_stream();
    let half = stream.len() / 2;

    // Reference: the whole stream against one uninterrupted in-process
    // server (same code path as the child, minus the journal).
    let reference = {
        let server = Server::bind(
            ServeConfig {
                port: 0,
                seed: acs_bench::EXPERIMENT_SEED,
                global_cap_w: GLOBAL_CAP_W,
                policy: ArbiterPolicy::DemandProportional,
                ..ServeConfig::default()
            },
            model.clone(),
        )
        .expect("reference bind");
        let addr = server.local_addr().to_string();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("reference serves"));
        let mut client = Client::connect(&addr).expect("connect reference");
        let log = drive(&mut client, &stream);
        handle.shutdown();
        join.join().unwrap();
        log
    };

    // Phase 1 against the journaled child — then SIGKILL, mid-session, no
    // Bye, no clean leave.
    let (mut child, addr) = spawn_child(&journal, &model_path);
    let mut client = Client::connect(&addr).expect("connect child");
    let mut log = drive(&mut client, &stream[..half]);
    child.kill().expect("SIGKILL the serving child");
    child.wait().expect("reap the child");
    drop(client);

    // Recovery latency: what a restart pays before it can serve — journal
    // open (validate + truncate) plus arbiter replay.
    let started = Instant::now();
    let (_journal, entries) = Journal::open(&journal).expect("journal survives SIGKILL");
    let (_, recovery) =
        replay(&entries, GLOBAL_CAP_W, ArbiterPolicy::DemandProportional).expect("journal replays");
    let recovery_latency_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;

    // Phase 2 against a restarted child on the same journal.
    let (mut child, addr) = spawn_child(&journal, &model_path);
    let mut client = Client::connect(&addr).expect("reconnect after restart");
    log.extend(drive(&mut client, &stream[half..]));

    let hit_rate = match client.call(&Request::Stats).expect("stats after recovery") {
        Response::Stats(s) => s.cache_hit_rate,
        other => panic!("expected Stats, got {other:?}"),
    };
    // A clean end for the second child: poison it and reap.
    let _ = client.call(&Request::Shutdown);
    child.wait().expect("reap the restarted child");

    let byte_identical = log == reference;
    assert!(byte_identical, "post-recovery selections/budgets diverged from the reference");
    assert!(!recovery.warm_kernels.is_empty(), "phase-1 misses were journaled");
    assert_eq!(recovery.orphaned_sessions.len(), 1, "the killed session is an orphan");
    assert!(hit_rate > 0.0, "phase-2 selects must hit the re-warmed cache");

    RecoveryResult {
        phase1_requests: half,
        phase2_requests: stream.len() - half,
        replayed_entries: recovery.replayed,
        warm_kernels: recovery.warm_kernels.len(),
        orphaned_sessions: recovery.orphaned_sessions.len(),
        recovery_latency_us,
        byte_identical,
        post_recovery_cache_hit_rate: hit_rate,
    }
}

fn run_chaos_smoke(model: TrainedModel) -> ChaosSmokeResult {
    let server = Server::bind(
        ServeConfig {
            port: 0,
            seed: acs_bench::EXPERIMENT_SEED,
            global_cap_w: GLOBAL_CAP_W,
            max_sessions: 16,
            ..ServeConfig::default()
        },
        model,
    )
    .expect("smoke bind");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("smoke serves"));

    // Session-ending faults (disconnect/tear/corrupt) stay rare: the
    // loadgen is closed-loop without reconnect, so each one forfeits the
    // session's remaining allotment. Delays are harmless to completion
    // and carry most of the injection volume.
    let plan = ChaosPlan {
        disconnect_p: 0.002,
        tear_p: 0.002,
        corrupt_p: 0.001,
        delay_p: 0.03,
        delay_ms: 1,
        dup_p: 0.0, // a dup desyncs the closed-loop loadgen's log pairing
        ..ChaosPlan::quiet(acs_bench::EXPERIMENT_SEED)
    };
    let proxy = ChaosProxy::bind("127.0.0.1:0", &addr, plan).expect("proxy bind");
    let proxy_addr = proxy.local_addr().to_string();
    let proxy_handle = proxy.handle();
    let proxy_join = std::thread::spawn(move || proxy.run().expect("proxy runs"));

    let requests = 500u64;
    let opts = LoadgenOptions {
        addr: proxy_addr,
        requests,
        seed: 7,
        sessions: 4,
        run_every: 11,
        report_every: 13,
        feedback: true,
        stats_at_end: false,
        shutdown_at_end: false,
        open_loop: false,
        rate_rps: 0.0,
        deadline_ms: 0,
        priority: 0,
    };
    let (report, _log) = run_loadgen(&opts).expect("loadgen completes under chaos");

    // The hardening contract, after ~500 requests' worth of injected
    // faults: server alive, failures typed or clean, budget conserved.
    let mut probe = Client::connect(&addr).expect("server still accepts");
    match probe.call(&Request::Hello) {
        Ok(Response::Welcome { .. }) => {}
        other => panic!("server unhealthy after chaos smoke: {other:?}"),
    }
    let conservation_error_w = handle.budget_conservation_error_w();
    assert_eq!(conservation_error_w, 0.0, "chaos smoke violated budget conservation");

    proxy_handle.shutdown();
    proxy_join.join().unwrap();
    handle.shutdown();
    join.join().unwrap();

    ChaosSmokeResult {
        requests,
        plan,
        proxy: proxy_handle.stats(),
        completed: requests - report.dropped,
        dropped: report.dropped,
        errored: report.errors,
        conservation_error_w,
    }
}

fn main() {
    if std::env::var(ROLE_ENV).as_deref() == Ok("server") {
        serve_child();
        return;
    }

    let scratch = std::env::temp_dir().join(format!("acs-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    let model = train_model();
    let recovery = run_recovery_cycle(&model, &scratch);
    println!(
        "recovery: {} entries replayed in {} µs, {} kernels warmed, byte-identical: {}, \
         post-recovery hit rate {:.2}",
        recovery.replayed_entries,
        recovery.recovery_latency_us,
        recovery.warm_kernels,
        recovery.byte_identical,
        recovery.post_recovery_cache_hit_rate,
    );

    let chaos_smoke = run_chaos_smoke(model);
    println!(
        "chaos smoke: {}/{} completed ({} dropped, {} errored), {} faults injected, \
         conservation error {} W",
        chaos_smoke.completed,
        chaos_smoke.requests,
        chaos_smoke.dropped,
        chaos_smoke.errored,
        chaos_smoke.proxy.faults(),
        chaos_smoke.conservation_error_w,
    );

    let out = BenchRecovery {
        experiment: "BENCH_recovery".into(),
        seed: acs_bench::EXPERIMENT_SEED,
        global_cap_w: GLOBAL_CAP_W,
        recovery,
        chaos_smoke,
    };
    let path = acs_bench::write_result("BENCH_recovery", &out);
    println!("wrote {}", path.display());
    let _ = std::fs::remove_dir_all(&scratch);
}
