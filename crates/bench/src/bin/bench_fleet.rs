//! Experiment A15: fleet power arbitration under real process failure.
//!
//! A journaled coordinator runs as a **separate OS process** (this binary
//! re-executes itself, exactly like `bench_recovery`); three in-process
//! shards lease their power caps from it over TCP, one of them through
//! the chaos proxy. The bench then walks the three failure modes the
//! lease protocol exists for:
//!
//! 1. **Coordinator SIGKILL + restart** — no clean shutdown, no warning.
//!    During the outage the shards' enforced caps may only decay, so the
//!    fleet-wide sum stays under the global cap; the restarted
//!    coordinator replays its journal and re-adopts the same shards
//!    instead of double-granting.
//! 2. **Network partition** — the proxy blackholes a shard's renewals
//!    both ways while its connections stay open. The shard decays into
//!    degraded mode, bounded by `[min(floor, last grant), last grant]`,
//!    then recovers to a full lease when the window closes.
//! 3. **Shard SIGKILL** — the lease expires to a floor-sized encumbrance
//!    and the survivors ramp into the freed budget.
//!
//! The gate, sampled throughout: the sum of the caps the shards actually
//! enforce never exceeds the coordinator's global cap, and the
//! coordinator's own overshoot counter stays at zero.
//!
//! Writes `results/BENCH_fleet.json`.

use acs_core::{train, KernelProfile, TrainedModel, TrainingParams};
use acs_serve::{
    ArbiterPolicy, ChaosPlan, ChaosProxy, CoordClient, CoordRequest, CoordResponse, CoordStats,
    Coordinator, CoordinatorConfig, ServeConfig, Server, ServerHandle,
};
use serde::Serialize;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Child-role marker: when set, this process is the journaled coordinator.
const ROLE_ENV: &str = "ACS_BENCH_FLEET_ROLE";
const JOURNAL_ENV: &str = "ACS_BENCH_FLEET_JOURNAL";
const PORT_ENV: &str = "ACS_BENCH_FLEET_PORT";

const GLOBAL_CAP_W: f64 = 90.0;
const FLOOR_W: f64 = 2.0;
/// Shard demands deliberately oversubscribe the cap (100 W asked, 90 W
/// available) so the demand-proportional split is actually exercised.
const DEMANDS_W: [f64; 3] = [50.0, 30.0, 20.0];

#[derive(Serialize)]
struct CoordinatorKillResult {
    outage_max_sum_w: f64,
    degraded_entries: u64,
    replayed_entries: u64,
    reconverge_ms: u64,
}

#[derive(Serialize)]
struct PartitionResult {
    blackholed: u64,
    last_grant_w: f64,
    degraded_min_cap_w: f64,
    recover_ms: u64,
}

#[derive(Serialize)]
struct ShardKillResult {
    encumbered_w: f64,
    survivor_sum_w: f64,
    expirations: u64,
}

#[derive(Serialize)]
struct BenchFleet {
    experiment: String,
    seed: u64,
    global_cap_w: f64,
    floor_w: f64,
    shards: usize,
    demands_w: Vec<f64>,
    converge_ms: u64,
    steady_max_sum_w: f64,
    fleet_max_sum_w: f64,
    coordinator_overshoot_w: f64,
    coordinator_kill: CoordinatorKillResult,
    partition: PartitionResult,
    shard_kill: ShardKillResult,
}

fn train_model() -> TrainedModel {
    let machine = acs_bench::default_machine();
    let profiles: Vec<KernelProfile> = acs_kernels::all_kernel_instances()
        .iter()
        .take(12)
        .map(|k| KernelProfile::collect(&machine, k))
        .collect();
    train(&profiles, TrainingParams::default()).expect("training succeeds")
}

/// The child process: bind the coordinator (an explicit port on restart,
/// ephemeral on the first run), print the contract lines, serve until
/// the parent kills us.
fn coordinator_child() {
    let journal = std::env::var(JOURNAL_ENV).expect("child needs the journal path");
    let port: u16 =
        std::env::var(PORT_ENV).expect("child needs a port").parse().expect("port is a u16");
    let coordinator = Coordinator::bind(CoordinatorConfig {
        host: "127.0.0.1".into(),
        port,
        global_cap_w: GLOBAL_CAP_W,
        policy: ArbiterPolicy::DemandProportional,
        ttl_ticks: 20,
        tick_ms: 25, // TTL = 500 ms of silence
        floor_w: FLOOR_W,
        evict_after_ticks: 0,
        journal: Some(PathBuf::from(journal)),
        journal_sync: false,
    })
    .expect("coordinator binds");
    println!("recovered: {}", coordinator.handle().recovery().map_or(0, |r| r.replayed));
    println!("listening on {}", coordinator.local_addr());
    std::io::stdout().flush().expect("flush the contract lines");
    coordinator.run().expect("coordinator serves");
}

/// Spawn a coordinator child on `journal`, returning the process, its
/// address, and the replayed-entry count it reported.
fn spawn_coordinator(journal: &Path, port: u16) -> (std::process::Child, String, u64) {
    let exe = std::env::current_exe().expect("own path");
    let mut child = std::process::Command::new(exe)
        .env(ROLE_ENV, "coordinator")
        .env(JOURNAL_ENV, journal)
        .env(PORT_ENV, port.to_string())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn coordinator child");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let mut replayed = 0u64;
    let addr = loop {
        let line =
            lines.next().expect("child printed its contract lines").expect("child stdout is utf8");
        if let Some(n) = line.strip_prefix("recovered: ") {
            replayed = n.parse().expect("replayed count is a u64");
        } else if let Some(addr) = line.strip_prefix("listening on ") {
            break addr.to_string();
        }
    };
    (child, addr, replayed)
}

fn spawn_shard(
    model: &TrainedModel,
    coordinator: &str,
    demand_w: f64,
) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(
        ServeConfig {
            port: 0,
            seed: acs_bench::EXPERIMENT_SEED,
            global_cap_w: demand_w,
            policy: ArbiterPolicy::EqualShare,
            coordinator: Some(coordinator.to_string()),
            lease_floor_w: FLOOR_W,
            renew_ms: 25,
            ..ServeConfig::default()
        },
        model.clone(),
    )
    .expect("shard binds");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("shard serves"));
    (handle, join)
}

fn wait_until(timeout: Duration, mut condition: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if condition() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    condition()
}

fn fleet_sum_w(handles: &[&ServerHandle]) -> f64 {
    handles.iter().map(|h| h.lease_cap_w()).sum()
}

/// Sample the fleet's enforced-cap sum for `window`, asserting the cap at
/// every instant and returning the maximum observed.
fn sample_fleet(handles: &[&ServerHandle], window: Duration, label: &str) -> f64 {
    let deadline = Instant::now() + window;
    let mut max_sum = 0.0f64;
    while Instant::now() < deadline {
        let sum = fleet_sum_w(handles);
        assert!(
            sum <= GLOBAL_CAP_W + 1e-9,
            "{label}: fleet enforces {sum} W, above the {GLOBAL_CAP_W} W cap"
        );
        max_sum = max_sum.max(sum);
        std::thread::sleep(Duration::from_millis(15));
    }
    max_sum
}

fn coordinator_stats(addr: &str) -> CoordStats {
    let mut client = CoordClient::connect(addr).expect("coordinator accepts a stats probe");
    match client.call(&CoordRequest::Stats).expect("stats call succeeds") {
        CoordResponse::Stats(s) => s,
        other => panic!("expected Stats, got {other:?}"),
    }
}

fn main() {
    if std::env::var(ROLE_ENV).as_deref() == Ok("coordinator") {
        coordinator_child();
        return;
    }

    let scratch = std::env::temp_dir().join(format!("acs-bench-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let journal = scratch.join("coordinator.journal");

    let model = train_model();
    let (mut coord, coord_addr, replayed0) = spawn_coordinator(&journal, 0);
    assert_eq!(replayed0, 0, "a fresh journal replays nothing");
    let coord_port: u16 = coord_addr.rsplit(':').next().unwrap().parse().expect("coordinator port");

    // Shards 0 and 1 talk to the coordinator directly; shard 2 goes
    // through the chaos proxy so a partition can be injected later.
    let proxy =
        ChaosProxy::bind("127.0.0.1:0", &coord_addr, ChaosPlan::quiet(acs_bench::EXPERIMENT_SEED))
            .expect("proxy binds");
    let proxy_addr = proxy.local_addr().to_string();
    let proxy_handle = proxy.handle();
    let proxy_join = std::thread::spawn(move || proxy.run().expect("proxy runs"));

    let started = Instant::now();
    let (shard0, join0) = spawn_shard(&model, &coord_addr, DEMANDS_W[0]);
    let (shard1, join1) = spawn_shard(&model, &coord_addr, DEMANDS_W[1]);
    let (shard2, join2) = spawn_shard(&model, &proxy_addr, DEMANDS_W[2]);
    let fleet = [&shard0, &shard1, &shard2];

    // Phase A: converge. Demands oversubscribe the cap, so the enforced
    // sum ramps up to exactly the global cap and stays there.
    assert!(
        wait_until(Duration::from_secs(10), || {
            fleet.iter().all(|h| h.lease_state() == "leased")
                && (fleet_sum_w(&fleet) - GLOBAL_CAP_W).abs() < 1e-6
        }),
        "fleet failed to converge to the global cap"
    );
    let converge_ms = started.elapsed().as_millis() as u64;
    let steady_max_sum_w = sample_fleet(&fleet, Duration::from_millis(300), "steady state");
    let mut fleet_max_sum_w = steady_max_sum_w;

    // Phase B: SIGKILL the coordinator mid-lease — no Release frames, no
    // warning — and watch the shards decay without ever overshooting.
    coord.kill().expect("SIGKILL the coordinator");
    coord.wait().expect("reap the coordinator");
    let outage_max_sum_w = sample_fleet(&fleet, Duration::from_millis(700), "coordinator outage");
    fleet_max_sum_w = fleet_max_sum_w.max(outage_max_sum_w);
    let degraded_entries: u64 = fleet.iter().map(|h| h.degraded_entries()).sum();
    assert!(degraded_entries >= 1, "a 700 ms outage must drive shards into degraded mode");

    // Restart on the same port and journal: the replayed table re-adopts
    // the same shards (each remembers its shard id) instead of granting
    // fresh budget on top of the old.
    let (mut coord, coord_addr2, replayed_entries) = spawn_coordinator(&journal, coord_port);
    assert_eq!(coord_addr2, coord_addr, "restart must land on the same address");
    assert!(replayed_entries >= 2, "the journal recorded the initial grants");
    let restart = Instant::now();
    assert!(
        wait_until(Duration::from_secs(10), || {
            fleet.iter().all(|h| h.lease_state() == "leased")
                && (fleet_sum_w(&fleet) - GLOBAL_CAP_W).abs() < 1e-6
        }),
        "fleet failed to re-converge after the coordinator restart"
    );
    let reconverge_ms = restart.elapsed().as_millis() as u64;
    fleet_max_sum_w =
        fleet_max_sum_w.max(sample_fleet(&fleet, Duration::from_millis(200), "re-adopted"));
    let stats = coordinator_stats(&coord_addr);
    assert_eq!(stats.live_leases, 3, "all three shards re-adopted");
    assert_eq!(stats.overshoot_w, 0.0, "replay must not double-grant");

    // Phase C: partition shard 2 — the proxy swallows its renewals both
    // ways while the connections stay open. Its cap decays below the last
    // grant but never under min(floor, last grant), then recovers.
    let last_grant_w = shard2.lease_cap_w();
    proxy_handle.partition(700);
    assert!(
        wait_until(Duration::from_secs(5), || shard2.lease_state() == "degraded"),
        "the partitioned shard never entered degraded mode"
    );
    assert!(
        wait_until(Duration::from_secs(5), || shard2.lease_cap_w() < last_grant_w - 1e-9),
        "the partitioned shard's cap never decayed"
    );
    let mut degraded_min_cap_w = f64::INFINITY;
    let deadline = Instant::now() + Duration::from_millis(150);
    while Instant::now() < deadline {
        let cap = shard2.lease_cap_w();
        assert!(cap <= last_grant_w + 1e-9, "degraded cap above the last grant");
        assert!(cap >= FLOOR_W.min(last_grant_w) - 1e-9, "degraded cap under the floor");
        degraded_min_cap_w = degraded_min_cap_w.min(cap);
        std::thread::sleep(Duration::from_millis(10));
    }
    let partition_recover = Instant::now();
    assert!(
        wait_until(Duration::from_secs(10), || {
            shard2.lease_state() == "leased" && (fleet_sum_w(&fleet) - GLOBAL_CAP_W).abs() < 1e-6
        }),
        "the partitioned shard never recovered its lease"
    );
    let recover_ms = partition_recover.elapsed().as_millis() as u64;
    let blackholed = proxy_handle.stats().blackholed;
    assert!(blackholed > 0, "the partition window swallowed nothing");
    fleet_max_sum_w =
        fleet_max_sum_w.max(sample_fleet(&fleet, Duration::from_millis(200), "post-partition"));

    // Phase D: SIGKILL a shard. Its lease expires to a floor-sized
    // encumbrance and the survivors ramp into the freed budget.
    shard1.simulate_crash();
    join1.join().expect("crashed shard thread exits");
    assert!(
        wait_until(Duration::from_secs(5), || {
            let s = coordinator_stats(&coord_addr);
            s.live_leases == 2 && s.encumbered_leases == 1
        }),
        "the killed shard's lease never expired"
    );
    let stats = coordinator_stats(&coord_addr);
    assert!(stats.encumbered_w <= FLOOR_W + 1e-9, "encumbrance above the floor");
    assert_eq!(stats.overshoot_w, 0.0);
    let survivors = [&shard0, &shard2];
    let freed_cap_w = GLOBAL_CAP_W - stats.encumbered_w;
    assert!(
        wait_until(Duration::from_secs(10), || {
            (fleet_sum_w(&survivors) - freed_cap_w).abs() < 1e-6
        }),
        "survivors never ramped into the freed budget"
    );
    let survivor_sum_w = fleet_sum_w(&survivors);
    let final_stats = coordinator_stats(&coord_addr);
    assert!(
        final_stats.live_committed_w + final_stats.encumbered_w <= GLOBAL_CAP_W + 1e-9,
        "coordinator's own accounting exceeds the cap"
    );

    // Teardown: clean shard shutdown (Release frames), then the proxy,
    // then the coordinator child.
    for handle in [&shard0, &shard2] {
        handle.shutdown();
    }
    join0.join().expect("shard 0 exits");
    join2.join().expect("shard 2 exits");
    proxy_handle.shutdown();
    proxy_join.join().expect("proxy exits");
    coord.kill().expect("stop the coordinator child");
    coord.wait().expect("reap the coordinator child");

    println!(
        "fleet: converged in {converge_ms} ms, steady max {steady_max_sum_w:.3} W, \
         lifetime max {fleet_max_sum_w:.3} W (cap {GLOBAL_CAP_W} W)"
    );
    println!(
        "coordinator kill: outage max {outage_max_sum_w:.3} W, {degraded_entries} degraded \
         entries, {replayed_entries} entries replayed, re-converged in {reconverge_ms} ms"
    );
    println!(
        "partition: {blackholed} frames blackholed, cap decayed {last_grant_w:.3} -> \
         {degraded_min_cap_w:.3} W, recovered in {recover_ms} ms"
    );
    println!(
        "shard kill: {} W encumbered, survivors enforce {survivor_sum_w:.3} W, \
         {} expirations",
        stats.encumbered_w, final_stats.expirations
    );

    let out = BenchFleet {
        experiment: "BENCH_fleet".into(),
        seed: acs_bench::EXPERIMENT_SEED,
        global_cap_w: GLOBAL_CAP_W,
        floor_w: FLOOR_W,
        shards: 3,
        demands_w: DEMANDS_W.to_vec(),
        converge_ms,
        steady_max_sum_w,
        fleet_max_sum_w,
        coordinator_overshoot_w: final_stats.overshoot_w,
        coordinator_kill: CoordinatorKillResult {
            outage_max_sum_w,
            degraded_entries,
            replayed_entries,
            reconverge_ms,
        },
        partition: PartitionResult { blackholed, last_grant_w, degraded_min_cap_w, recover_ms },
        shard_kill: ShardKillResult {
            encumbered_w: stats.encumbered_w,
            survivor_sum_w,
            expirations: final_stats.expirations,
        },
    };
    let path = acs_bench::write_result("BENCH_fleet", &out);
    println!("wrote {}", path.display());
    let _ = std::fs::remove_dir_all(&scratch);
}
