//! Experiment A8 — asymmetric per-module P-states. Section IV-A notes
//! Trinity can assign P-states per compute unit, but the shared voltage
//! plane means "the voltage across all compute units is set by the CU with
//! maximum frequency". The paper's configuration space is symmetric-only;
//! this experiment quantifies how little is lost: for every kernel, how
//! many asymmetric configurations land on the combined (symmetric ∪
//! asymmetric) Pareto frontier, and how much frontier performance they add
//! at their power levels.
//!
//! Run with: `cargo run --release -p acs-bench --bin ablation_asymmetric`

use acs_core::{Frontier, PowerPerfPoint};
use acs_sim::asymmetric::{asymmetric_cpu_power, asymmetric_cpu_time, AsymmetricCpuConfig};
use acs_sim::{Configuration, PowerCalibration};

fn main() {
    let cal = PowerCalibration::default();
    let machine = acs_bench::default_machine();

    let mut kernels_with_gain = 0usize;
    let mut total_kernels = 0usize;
    let mut max_gain_pct = 0.0f64;
    let mut asym_frontier_share = 0.0f64;
    let mut hull_beats = 0usize;

    for kernel in acs_kernels::all_kernel_instances() {
        total_kernels += 1;

        // Symmetric CPU points (noiseless analytic, matching the
        // asymmetric model's fidelity).
        let mut sym_points = Vec::new();
        for cfg in
            Configuration::enumerate().into_iter().filter(|c| c.device == acs_sim::Device::Cpu)
        {
            let t = acs_sim::cpu::cpu_time(&kernel, &cfg);
            let p = cal.cpu_run_power(&kernel, &cfg, &t);
            sym_points.push(PowerPerfPoint {
                config: cfg,
                power_w: p.total_w(),
                perf: 1.0 / t.total_s,
            });
        }
        let sym_frontier = Frontier::from_points(sym_points.clone());

        // Linear interpolation of the symmetric frontier (its upper
        // hull): what a scheduler could achieve by duty-cycling between
        // two adjacent symmetric configurations.
        let hull_perf = |power_w: f64| -> f64 {
            let pts = sym_frontier.points();
            match pts.iter().position(|q| q.power_w > power_w) {
                Some(0) => 0.0,
                Some(i) => {
                    let (a, b) = (&pts[i - 1], &pts[i]);
                    a.perf + (b.perf - a.perf) * (power_w - a.power_w) / (b.power_w - a.power_w)
                }
                None => pts.last().map(|q| q.perf).unwrap_or(0.0),
            }
        };

        // Asymmetric candidates (strictly asymmetric only).
        let mut gained = false;
        let mut asym_on_frontier = 0usize;
        let mut asym_total = 0usize;
        for acfg in AsymmetricCpuConfig::enumerate().into_iter().filter(|c| !c.is_symmetric()) {
            asym_total += 1;
            let t = asymmetric_cpu_time(&kernel, &acfg);
            let p = asymmetric_cpu_power(&kernel, &acfg, &t, &cal);
            let (power_w, perf) = (p.total_w(), 1.0 / t.total_s);

            // Step gain: beats the best symmetric config at its power.
            let best_sym = sym_frontier.best_under(power_w).map(|q| q.perf).unwrap_or(0.0);
            if perf > best_sym * 1.001 {
                gained = true;
                asym_on_frontier += 1;
                let gain = (perf / best_sym - 1.0) * 100.0;
                max_gain_pct = max_gain_pct.max(gain);
            }
            // Hull gain: beats even the interpolated frontier.
            let hull = hull_perf(power_w);
            if hull > 0.0 && perf > hull * 1.001 {
                hull_beats += 1;
            }
        }
        if gained {
            kernels_with_gain += 1;
        }
        asym_frontier_share += asym_on_frontier as f64 / asym_total as f64;
        let _ = machine; // (placeholders for symmetry with other bins)
    }

    let share = asym_frontier_share / total_kernels as f64 * 100.0;
    println!("Ablation A8 — asymmetric per-module P-states on a shared voltage plane");
    println!();
    println!("  kernels where any asymmetric config beats the symmetric frontier: {kernels_with_gain}/{total_kernels}");
    println!("  mean share of asymmetric configs that beat it:                    {share:.1}%");
    println!(
        "  largest performance gain at equal power (vs. frontier steps):     {max_gain_pct:.2}%"
    );
    println!("  asymmetric points beating the interpolated (hull) frontier:       {hull_beats}");
    println!();
    println!(
        "Reading: asymmetric P-states mostly add *granularity* — they fill in\n\
         the gaps between the discrete symmetric frontier steps (up to ~9% at\n\
         equal power) because the slow module still pays the fast module's\n\
         V². Only ~2% of asymmetric points marginally beat even the\n\
         interpolated hull (serial phases riding the fast module while the\n\
         parallel phase runs cheap). The paper's symmetric-only configuration\n\
         space gives up little — and nothing a frequency limiter can't\n\
         recover by duty-cycling."
    );

    let path = acs_bench::write_result(
        "ablation_asymmetric",
        &(kernels_with_gain, total_kernels, share, max_gain_pct, hull_beats),
    );
    println!("\nwrote {}", path.display());
}
