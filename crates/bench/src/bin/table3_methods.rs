//! Experiment T3 — Table III: comparison of power-limiting methods
//! (Model, Model+FL, GPU+FL, CPU+FL) against a perfect-knowledge oracle,
//! under leave-one-benchmark-out cross-validation over all 65
//! benchmark/input kernel combinations.
//!
//! Run with: `cargo run --release -p acs-bench --bin table3_methods`

fn main() {
    let eval = acs_bench::full_evaluation();
    let table = eval.table3();

    println!("Table III — methods vs. oracle (65 kernel/input combinations, LOBO-CV)");
    println!();
    print!("{}", acs_bench::render_table3(&table));
    println!();
    println!("Paper reference (Table III):");
    println!("  Model     | 70 | 91 | 94 | 112 | 139");
    println!("  Model+FL  | 88 | 91 | 91 | 106 | 154");
    println!("  GPU+FL    | 60 | 94 | 95 | 137 | 1723");
    println!("  CPU+FL    | 76 | 69 | 94 | 111 | 216");
    println!();
    println!("Per-fold clustering silhouettes:");
    for (label, s) in &eval.fold_silhouettes {
        println!("  hold out {label:<8} silhouette {s:.3}");
    }

    let path = acs_bench::write_result("table3_methods", &table);
    println!("\nwrote {}", path.display());
}
