//! Experiment F3 — Figure 3: an example classification tree, trained on
//! the full suite's sample-configuration features.
//!
//! Run with: `cargo run --release -p acs-bench --bin fig3_tree`

use acs_core::{train, KernelProfile, TrainingParams};

fn main() {
    let apps = acs_bench::characterized_suite();
    let profiles: Vec<KernelProfile> =
        apps.iter().flat_map(|a| a.profiles.iter().cloned()).collect();

    let model = train(&profiles, TrainingParams::default()).expect("training succeeds");

    println!("Figure 3 — classification tree over sample-configuration features");
    println!("(trained on all {} kernel/input combinations, k = 5 clusters)", profiles.len());
    println!();
    print!("{}", model.render_tree());
    println!();
    println!("cluster sizes: {:?}", model.clustering.sizes());
    println!("clustering silhouette: {:.3}", model.silhouette);
    println!("tree training accuracy: {:.1}%", model.tree_training_accuracy(&profiles) * 100.0);

    // The paper notes each cluster contains kernels from at least three of
    // the benchmark/input combinations; report the analogous spread.
    for c in 0..model.clustering.k() {
        let mut benchmarks: Vec<String> = model
            .clustering
            .members(c)
            .into_iter()
            .map(|i| {
                let id = &model.kernel_ids[i];
                id.split('/').take(2).collect::<Vec<_>>().join("/")
            })
            .collect();
        benchmarks.sort();
        benchmarks.dedup();
        println!("cluster {c}: kernels from {} benchmark/input combinations", benchmarks.len());
    }

    let path = acs_bench::write_result(
        "fig3_tree",
        &(model.render_tree(), model.clustering.sizes(), model.silhouette),
    );
    println!("\nwrote {}", path.display());
}
