//! Experiment T1 — Figure 2 and Table I: the power–performance Pareto
//! frontier of the `CalcFBHourglassForce` kernel from LULESH, plus the
//! Table II sample configurations.
//!
//! Run with: `cargo run --release -p acs-bench --bin fig2_table1_frontier`

use acs_core::{sample_config, KernelProfile};
use acs_sim::Device;

fn main() {
    let machine = acs_bench::default_machine();
    let apps = acs_kernels::app_instances();
    let lulesh_small =
        apps.iter().find(|a| a.label() == "LULESH Small").expect("LULESH Small in suite");
    let kernel = lulesh_small
        .kernels
        .iter()
        .find(|k| k.name == "CalcFBHourglassForce")
        .expect("CalcFBHourglassForce kernel");

    let profile = KernelProfile::collect(&machine, kernel);
    let frontier = profile.frontier().normalized();

    println!("Table I / Figure 2 — Pareto frontier of {}", kernel.id());
    println!();
    println!("Device | GPU f.    | Threads | CPU f.  | Power   | Perf.*");
    println!("-------+-----------+---------+---------+---------+-------");
    for p in frontier.points() {
        println!(
            "{:<6} | {:>6.3} GHz | {:>7} | {:>3.1} GHz | {:>5.1} w | {:>5.2}",
            p.config.device,
            p.config.gpu_pstate.freq_ghz(),
            p.config.threads,
            p.config.cpu_pstate.freq_ghz(),
            p.power_w,
            p.perf,
        );
    }
    println!("*Normalized performance");
    println!();
    println!(
        "Paper shape check: CPU configurations occupy the low-power region, GPU \
         configurations the high-performance region."
    );
    let first_gpu = frontier.points().iter().position(|p| p.config.device == Device::Gpu);
    match first_gpu {
        Some(i) => {
            let all_cpu_before =
                frontier.points()[..i].iter().all(|p| p.config.device == Device::Cpu);
            println!(
                "  crossover at frontier position {i}/{}; CPU-only below: {all_cpu_before}",
                frontier.len()
            );
        }
        None => println!("  no GPU configuration on this frontier"),
    }

    println!();
    println!("Table II — sample configurations:");
    for device in [Device::Cpu, Device::Gpu] {
        let c = sample_config(device);
        println!(
            "  {:<3}: CPU {:.1} GHz, {} thread(s), GPU {:.0} MHz",
            device,
            c.cpu_pstate.freq_ghz(),
            c.threads,
            c.gpu_pstate.freq_ghz() * 1000.0
        );
    }

    // Full scatter (Figure 2's non-frontier points) as machine-readable output.
    let all_points = profile.measured_points();
    let path = acs_bench::write_result("fig2_table1_frontier", &(frontier.points(), all_points));
    println!("\nwrote {}", path.display());
}
