//! Experiment A18 — online adaptation under model drift (`bench_adapt`).
//!
//! Replays the drift-differential grid from `crates/verify`: five seeded
//! drift processes (zero, thermal ramp, step throttle, aging, co-tenant)
//! × evaluation kernels × probe caps, comparing the pinned static
//! selection against the adaptive Kalman loop on mean per-iteration
//! regret and power-bound violations. The zero-drift column doubles as
//! the no-regression witness: adaptation must leave it bit-identical to
//! the static path. Writes `results/BENCH_adapt.json`.
//!
//! Run with: `cargo run --release -p acs-bench --bin bench_adapt`
//! (pass `--quick` for the CI-sized grid).

use acs_verify::{run_drift, AdaptThresholds, DriftGridParams, ScenarioRegret};
use serde::Serialize;

/// The serialized experiment result.
#[derive(Debug, Serialize)]
struct AdaptResult {
    experiment: String,
    params: DriftGridParams,
    scenarios: Vec<ScenarioRegret>,
    total_reselections: u64,
    total_drift_events: u64,
    zero_drift_identical: bool,
    threshold_failures: Vec<String>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick { DriftGridParams::quick() } else { DriftGridParams::full() };
    println!(
        "Experiment A18 — static vs. adaptive selection under drift ({} grid)",
        if quick { "quick" } else { "full" }
    );
    println!();

    let report = run_drift(&params).expect("training succeeds");
    println!("{}", report.render());

    let scenarios = report.scenario_regrets();
    let total_reselections: u64 = report.cells.iter().map(|c| c.reselections).sum();
    let total_drift_events: u64 = report.cells.iter().map(|c| c.drift_events).sum();
    let zero_drift_identical = report
        .cells
        .iter()
        .filter(|c| c.scenario == "zero")
        .all(|c| c.identical_selections && c.regret_bits_match);

    let failures = report.check(&AdaptThresholds::default());
    println!();
    if failures.is_empty() {
        println!("All adaptation gates pass.");
    } else {
        println!("Adaptation gates FAILED:");
        for f in &failures {
            println!("  {f}");
        }
    }

    let result = AdaptResult {
        experiment: "BENCH_adapt".into(),
        params,
        scenarios,
        total_reselections,
        total_drift_events,
        zero_drift_identical,
        threshold_failures: failures.clone(),
    };
    let path = acs_bench::write_result("BENCH_adapt", &result);
    println!("\nwrote {}", path.display());

    if !failures.is_empty() || !zero_drift_identical {
        std::process::exit(1);
    }
}
