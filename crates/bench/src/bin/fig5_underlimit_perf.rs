//! Experiment F5 — Figure 5: percent of optimal (oracle) performance in
//! under-limit cases, broken down by benchmark/input combination.
//!
//! Run with: `cargo run --release -p acs-bench --bin fig5_underlimit_perf`

fn main() {
    let eval = acs_bench::full_evaluation();
    let txt = acs_bench::render_by_app(
        &eval,
        "Figure 5 — % of oracle performance, under-limit cases, by benchmark",
        |s| s.under_perf_pct,
    );
    println!("{txt}");
    println!(
        "Paper shape check: Model+FL maintains high performance across all\n\
         benchmarks (paper worst case 74.9%); CPU+FL and GPU+FL collapse on\n\
         their worst-case benchmarks (paper: 13.3% and 62.4%)."
    );
    let path = acs_bench::write_result("fig5_underlimit_perf", &txt);
    println!("\nwrote {}", path.display());
}
