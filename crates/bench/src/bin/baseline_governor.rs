//! Experiment B1 — the power-oblivious OS baseline: the classic
//! `ondemand` governor with all cores enabled, which is what a node runs
//! with *no* power-aware selection at all. Evaluated against the oracle on
//! the same constraint grid as Table III — the gap is the motivation for
//! the entire paper.
//!
//! Run with: `cargo run --release -p acs-bench --bin baseline_governor`

use acs_sim::{Configuration, CpuPState, OndemandGovernor};

fn main() {
    let apps = acs_bench::characterized_suite();
    let governor = OndemandGovernor::default();

    let mut total_w = 0.0;
    let mut under_w = 0.0;
    let mut perf_w = 0.0;

    for app in &apps {
        for profile in &app.profiles {
            // The OS sees a busy HPC kernel: utilization pegged high on
            // all four threads → ondemand settles at the top P-state.
            let busy = 0.95;
            let (pstate, _) = governor.settle(CpuPState(2), busy);
            let config = Configuration::cpu(4, pstate);
            let run = profile.run_at(&config);

            let frontier = profile.oracle_frontier();
            let caps: Vec<f64> = frontier.points().iter().map(|p| p.power_w).collect();
            let w = profile.kernel.weight / caps.len() as f64;
            for &cap in &caps {
                let oracle = frontier.best_under(cap).expect("cap from frontier");
                total_w += w;
                if run.true_power_w() <= cap * (1.0 + 1e-9) {
                    under_w += w;
                    perf_w += w * (1.0 / run.time_s) / oracle.perf;
                }
            }
        }
    }

    let pct_under = under_w / total_w * 100.0;
    let perf = if under_w > 0.0 { perf_w / under_w * 100.0 } else { 0.0 };

    println!("Baseline B1 — power-oblivious OS (`ondemand`, 4 threads, GPU parked)");
    println!();
    println!("  % constraints met:          {pct_under:.1}");
    println!("  % oracle perf (under):      {perf:.1}");
    println!();
    println!("For comparison (Table III, this reproduction):");
    for s in acs_bench::full_evaluation().table3() {
        println!(
            "  {:<9} {:>5.1}% under, {:>5.1}% oracle perf",
            s.method.name(),
            s.pct_under,
            s.under_perf_pct.unwrap_or(0.0)
        );
    }
    println!();
    println!(
        "The ondemand governor pegs the top P-state under HPC load, so it\n\
         meets only the most generous constraints — power-aware configuration\n\
         selection is not optional under a cap."
    );

    let path = acs_bench::write_result("baseline_governor", &(pct_under, perf));
    println!("\nwrote {}", path.display());
}
